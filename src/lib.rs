//! # metadse-repro
//!
//! Facade crate for the MetaDSE reproduction workspace: re-exports the
//! five member crates under one roof so examples, integration tests, and
//! downstream users can depend on a single crate.
//!
//! | Module | Crate | Role |
//! |--------|-------|------|
//! | [`nn`] | `metadse-nn` | tensors, double-backward autodiff, layers, optimizers |
//! | [`sim`] | `metadse-sim` | analytical OoO CPU + power model (gem5/McPAT substitute) |
//! | [`workloads`] | `metadse-workloads` | SPEC CPU 2017 profiles, SimPoints, datasets, tasks |
//! | [`mlkit`] | `metadse-mlkit` | RF/GBRT/linear/k-means/GMM/Wasserstein/metrics |
//! | [`core`] | `metadse` | transformer predictor, MAML, WAM, TrEnDSE, experiments |
//!
//! # Quickstart
//!
//! ```
//! use metadse_repro::prelude::*;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! // Simulate a labeled dataset for one workload and sample a few-shot
//! // task from it.
//! let space = DesignSpace::new();
//! let simulator = Simulator::new();
//! let mut rng = StdRng::seed_from_u64(1);
//! let data = Dataset::generate(&space, &simulator, SpecWorkload::Mcf605, 60, &mut rng);
//! let task = TaskSampler::new(5, 45).sample(&data, Metric::Ipc, &mut rng);
//! assert_eq!(task.support_size(), 5);
//! ```

pub use metadse as core;
pub use metadse_mlkit as mlkit;
pub use metadse_nn as nn;
pub use metadse_sim as sim;
pub use metadse_workloads as workloads;

/// The most common imports, in one place.
pub mod prelude {
    pub use metadse::evaluation::{EvalSummary, TaskScores};
    pub use metadse::experiment::{Environment, Scale};
    pub use metadse::explorer::{explore_pareto, ExplorerConfig, ParetoEntry};
    pub use metadse::maml::{self, MamlConfig};
    pub use metadse::predictor::{PredictorConfig, TransformerPredictor};
    pub use metadse::trendse::{TrEnDse, TrEnDseConfig};
    pub use metadse::wam::{self, AdaptConfig, WamConfig};
    pub use metadse_mlkit::{metrics, Regressor};
    pub use metadse_nn::layers::Module;
    pub use metadse_nn::Tensor;
    pub use metadse_sim::{CpuConfig, DesignSpace, ParamId, Simulator, WorkloadProfileBuilder};
    pub use metadse_workloads::{
        Dataset, Metric, PhaseSet, SpecWorkload, Task, TaskSampler, WorkloadSplit,
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_compile() {
        use crate::prelude::*;
        let space = DesignSpace::new();
        assert_eq!(space.num_params(), 21);
    }
}
