//! Introspection-plane integration suite: endpoint round-trips over the
//! unix socket, watchdog health transitions under fault injection, and
//! the introspection soak — proving that polling the endpoint at full
//! tilt while the server is loaded does not perturb served results by a
//! single bit.
#![cfg(unix)]

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use metadse::predictor::{PredictorConfig, TransformerPredictor};
use metadse::ServablePredictor;
use metadse_obs::introspect::query;
use metadse_obs::window::Health;
use metadse_serve::{BatchConfig, ModelRegistry, ServeConfig, ServeError, Server};

const GEOMETRY: PredictorConfig = PredictorConfig {
    num_params: 6,
    d_model: 8,
    heads: 2,
    depth: 1,
    d_hidden: 16,
    head_hidden: 8,
};

fn servable(seed: u64) -> ServablePredictor {
    ServablePredictor::capture(&TransformerPredictor::new(GEOMETRY, seed), None, "ipc")
}

fn temp_registry(tag: &str) -> Arc<ModelRegistry> {
    let root = std::env::temp_dir().join(format!(
        "metadse-serve-introspect-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&root);
    Arc::new(ModelRegistry::new(root, 4))
}

fn sock_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("mdse-{tag}-{}.sock", std::process::id()))
}

fn sample_config(rng: &mut StdRng) -> Vec<f64> {
    (0..GEOMETRY.num_params)
        .map(|_| rng.gen_range(0.0..1.0))
        .collect()
}

/// Extracts the value following `key` on the line starting with
/// `line_prefix` in a metrics exposition.
fn field(body: &str, line_prefix: &str, key: &str) -> Option<f64> {
    let line = body.lines().find(|l| l.starts_with(line_prefix))?;
    let mut tokens = line.split_whitespace();
    while let Some(tok) = tokens.next() {
        if tok == key {
            return tokens.next()?.parse().ok();
        }
    }
    None
}

#[test]
fn endpoint_answers_health_ready_metrics_and_trace() {
    let registry = temp_registry("roundtrip");
    registry.publish("mcf", &servable(11)).unwrap();
    let mut server = Server::start(
        registry.clone(),
        ServeConfig {
            batch: BatchConfig {
                max_batch: 8,
                max_wait_us: 100,
                queue_capacity: 64,
            },
            workers: 2,
            ..ServeConfig::default()
        },
    );
    let sock = sock_path("roundtrip");
    server.enable_introspection(&sock).unwrap();

    let ready = query(&sock, "ready").unwrap();
    assert!(ready.ok, "published workload → ready, got {:?}", ready.body);

    let health = query(&sock, "health").unwrap();
    assert!(health.ok);
    assert_eq!(health.body.lines().next(), Some("ok"));

    // Serve a few requests, then read them back through the endpoint.
    let mut rng = StdRng::seed_from_u64(12);
    let mut last_trace_id = 0;
    for _ in 0..16 {
        let prediction = server
            .submit("mcf", &sample_config(&mut rng), None)
            .wait()
            .unwrap();
        assert!(prediction.trace_id > 0);
        last_trace_id = prediction.trace_id;
    }

    // Stats bookkeeping happens-before each reply is sent, so the
    // moment the last `.wait()` above returned, all 16 completions are
    // visible — a single direct read must observe them.
    let metrics = query(&sock, "metrics").unwrap();
    assert!(metrics.ok);
    let body = &metrics.body;
    assert_eq!(
        field(
            body,
            "counter serve/completed_total",
            "serve/completed_total"
        ),
        Some(16.0)
    );
    let count = field(body, "window serve/e2e_latency_us", "count").unwrap();
    let p50 = field(body, "window serve/e2e_latency_us", "p50").unwrap();
    let p99 = field(body, "window serve/e2e_latency_us", "p99").unwrap();
    assert_eq!(count, 16.0);
    assert!(
        p50 > 0.0 && p99 >= p50,
        "live quantiles: p50 {p50} p99 {p99}"
    );
    assert!(
        field(body, "window serve/batch_size", "count") == Some(16.0),
        "batch-size window populated"
    );
    // Plan-cache counters come off the registry atomics, so they must
    // appear in the exposition even in builds without the obs feature.
    for line in [
        "counter serve/plan_cache_hits",
        "counter serve/plan_cache_misses",
        "counter serve/plan_compile_us",
    ] {
        assert!(
            body.lines().any(|l| l.starts_with(line)),
            "metrics exposition must carry {line:?}"
        );
    }
    if ServeConfig::default().plan {
        assert!(
            field(
                body,
                "counter serve/plan_cache_misses",
                "serve/plan_cache_misses"
            )
            .is_some_and(|v| v >= 1.0),
            "plan path on: at least one plan compiled"
        );
    }
    // Tenant attribution: one fingerprint, 16 requests, nonzero forward.
    let tenant_line = body
        .lines()
        .find(|l| l.starts_with("tenant "))
        .expect("tenant row present");
    assert!(tenant_line.contains("workload mcf"));
    assert!(field(body, "tenant ", "requests") == Some(16.0));
    assert!(field(body, "tenant ", "forward_us").unwrap() > 0.0);

    // Phase breakdown for a specific request.
    let trace = query(&sock, &format!("trace?id={last_trace_id}")).unwrap();
    assert!(trace.ok, "{}", trace.body);
    assert!(trace.body.contains("outcome served"));
    assert!(trace.body.contains("workload mcf"));
    let e2e = field(&trace.body, "queue_wait_us", "e2e_us").unwrap();
    assert!(e2e > 0.0);

    // Unknown ids and commands answer with errors, not hangs.
    assert!(!query(&sock, "trace?id=999999").unwrap().ok);
    assert!(!query(&sock, "flush").unwrap().ok);

    server.shutdown();
    assert!(!sock.exists(), "socket removed on shutdown");
    std::fs::remove_dir_all(registry.root()).ok();
}

/// Fault injection: a single worker pinned behind an enormous coalescing
/// window plus millisecond deadlines forces every queued request to miss,
/// driving the trailing-window miss rate far past the 10 % threshold —
/// the watchdog must flip Ok → Degraded.
#[test]
fn health_transitions_ok_to_degraded_on_forced_deadline_misses() {
    let registry = temp_registry("degrade");
    registry.publish("mcf", &servable(31)).unwrap();
    let mut server = Server::start(
        registry.clone(),
        ServeConfig {
            batch: BatchConfig {
                max_batch: 1,
                max_wait_us: 0,
                queue_capacity: 64,
            },
            workers: 1,
            ..ServeConfig::default()
        },
    );
    let sock = sock_path("degrade");
    server.enable_introspection(&sock).unwrap();

    // Healthy while serving normally.
    let mut rng = StdRng::seed_from_u64(32);
    for _ in 0..5 {
        server
            .submit("mcf", &sample_config(&mut rng), None)
            .wait()
            .unwrap();
    }
    assert_eq!(server.health(), Health::Ok);
    assert_eq!(
        query(&sock, "health").unwrap().body.lines().next(),
        Some("ok")
    );

    // Force misses: 1 µs deadlines are already past by the time the
    // worker's expiry sweep runs, so every one of these requests dies
    // queued.
    let tickets: Vec<_> = (0..10)
        .map(|_| {
            server.submit(
                "mcf",
                &sample_config(&mut rng),
                Some(Duration::from_micros(1)),
            )
        })
        .collect();
    let mut misses = 0;
    for t in tickets {
        if t.wait() == Err(ServeError::DeadlineMiss) {
            misses += 1;
        }
    }
    assert!(misses >= 2, "fault injection produced {misses} misses");

    // 10+ misses over ~15 admitted is far past 100 ‰: Degraded, on both
    // the in-process API and the endpoint.
    assert_eq!(server.health(), Health::Degraded);
    let health = query(&sock, "health").unwrap();
    assert_eq!(health.body.lines().next(), Some("degraded"));

    server.shutdown();
    std::fs::remove_dir_all(registry.root()).ok();
}

/// The introspection soak (acceptance criterion): with workers ∈ {2,4}
/// and a poller hammering `health` + `metrics` concurrently while 4
/// client threads drive ≥ 100 req/s, every served result must stay
/// bit-identical to serial `predict` — observation cannot perturb the
/// data path.
#[test]
fn soak_polling_the_endpoint_never_perturbs_served_bits() {
    const CLIENTS: usize = 4;
    const REQUESTS_PER_CLIENT: usize = 48;

    let artifact = servable(42);
    let reference = artifact.instantiate().unwrap();

    let registry = temp_registry("soak");
    registry.publish("spec", &artifact).unwrap();

    for workers in [2usize, 4] {
        let mut server = Server::start(
            registry.clone(),
            ServeConfig {
                batch: BatchConfig {
                    max_batch: 8,
                    max_wait_us: 300,
                    queue_capacity: 256,
                },
                workers,
                ..ServeConfig::default()
            },
        );
        let sock = sock_path(&format!("soak{workers}"));
        server.enable_introspection(&sock).unwrap();

        let stop = Arc::new(AtomicBool::new(false));
        let polls = Arc::new(AtomicU64::new(0));
        let mut outcomes: Vec<(Vec<f64>, f64)> = Vec::new();
        std::thread::scope(|scope| {
            let server = &server;
            // The poller: continuous health+metrics round-trips for the
            // whole duration of the load.
            {
                let stop = Arc::clone(&stop);
                let polls = Arc::clone(&polls);
                let sock = sock.clone();
                scope.spawn(move || {
                    while !stop.load(Ordering::Acquire) {
                        let health = query(&sock, "health").unwrap();
                        assert!(health.ok);
                        let metrics = query(&sock, "metrics").unwrap();
                        assert!(metrics.ok);
                        polls.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
            let handles: Vec<_> = (0..CLIENTS)
                .map(|client| {
                    scope.spawn(move || {
                        let mut rng = StdRng::seed_from_u64(9000 * workers as u64 + client as u64);
                        let mut got = Vec::with_capacity(REQUESTS_PER_CLIENT);
                        for _ in 0..REQUESTS_PER_CLIENT {
                            let config = sample_config(&mut rng);
                            let prediction = server.submit("spec", &config, None).wait().unwrap();
                            got.push((config, prediction.value));
                        }
                        got
                    })
                })
                .collect();
            for handle in handles {
                outcomes.extend(handle.join().unwrap());
            }
            stop.store(true, Ordering::Release);
        });
        let elapsed_us = server.now_us();
        let polled = polls.load(Ordering::Relaxed);
        server.shutdown();

        assert_eq!(outcomes.len(), CLIENTS * REQUESTS_PER_CLIENT);
        // ≥ 100 req/s under concurrent polling (the load is far faster
        // in practice; this guards against the endpoint throttling the
        // data path).
        let rate = outcomes.len() as f64 / (elapsed_us as f64 / 1e6);
        assert!(
            rate >= 100.0,
            "{workers} workers: only {rate:.0} req/s with poller attached"
        );
        assert!(
            polled >= 3,
            "{workers} workers: poller completed only {polled} round-trips"
        );
        for (config, served) in &outcomes {
            let serial = reference.predict(std::slice::from_ref(config))[0];
            assert_eq!(
                serial.to_bits(),
                served.to_bits(),
                "{workers} workers: result diverged from serial predict under polling"
            );
        }
    }
    std::fs::remove_dir_all(registry.root()).ok();
}
