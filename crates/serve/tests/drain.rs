//! Scripted-replay harness for batcher shutdown interleavings.
//!
//! [`QueueCore`] is a pure state machine over a virtual clock, so exact
//! interleavings — a push on the same tick `close()` lands, a deadline
//! expiring mid-drain, a worker pop racing the drain — are replayable
//! deterministically. Each script drives the core op by op while a
//! ledger records every request's outcome; the harness then drains the
//! queue to `Closed` and proves the conservation law:
//!
//! * every admitted request ends **served** (in some popped batch),
//!   **expired** (surrendered by `take_expired`), or **refused** at the
//!   push (`Shed`/`Closed`, payload handed back) — exactly one outcome
//!   per request, never zero (lost) and never two (duplicated);
//! * served requests leave in admission order;
//! * no batch exceeds `max_batch`, even while draining a closed queue.
//!
//! Hand-written scripts pin the named shutdown races; a seeded random
//! sweep replays a few thousand more interleavings around them.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use metadse_serve::{Admission, BatchConfig, PopOutcome, QueueCore};

/// One scripted step against the core.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Push the next request id; `deadline_in_us` is relative to now.
    Push { deadline_in_us: Option<u64> },
    /// Advance the virtual clock.
    Tick(u64),
    /// Worker turn: `take_expired` then `pop` once (the runtime's loop
    /// body).
    Work,
    /// Close the queue (shutdown begins; drain continues).
    Close,
}

/// Where a request ended up. Exactly one per issued id.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Outcome {
    Served,
    Expired,
    Shed,
    RefusedClosed,
}

/// Replays `script` and returns the outcome ledger, after appending a
/// full drain (the runtime always runs its worker loop to `Closed`).
/// Panics on any conservation violation — the assertions *are* the
/// test.
fn replay(config: BatchConfig, script: &[Op]) -> HashMap<u32, Outcome> {
    let mut core: QueueCore<u32> = QueueCore::new(config);
    let max_batch = core.config().max_batch;
    let mut now = 0u64;
    let mut next_id = 0u32;
    let mut ledger: HashMap<u32, Outcome> = HashMap::new();
    // Admission-ordered ids still inside the queue, mirrored from the
    // outcomes the core reports — served batches must be prefixes.
    let mut inside: Vec<u32> = Vec::new();
    let mut closed = false;

    let settle = |ledger: &mut HashMap<u32, Outcome>, id: u32, outcome: Outcome| {
        let previous = ledger.insert(id, outcome);
        assert_eq!(
            previous, None,
            "request {id} got a second outcome {outcome:?} after {previous:?}"
        );
    };
    let work = |core: &mut QueueCore<u32>,
                now: u64,
                inside: &mut Vec<u32>,
                ledger: &mut HashMap<u32, Outcome>| {
        for dead in core.take_expired(now) {
            let pos = inside
                .iter()
                .position(|&id| id == dead.payload)
                .unwrap_or_else(|| panic!("expired {} was not queued", dead.payload));
            inside.remove(pos);
            let previous = ledger.insert(dead.payload, Outcome::Expired);
            assert_eq!(previous, None, "{} settled twice", dead.payload);
        }
        match core.pop(now) {
            PopOutcome::Batch(batch) => {
                assert!(
                    batch.len() <= max_batch,
                    "drain batch of {} exceeds max_batch {max_batch}",
                    batch.len()
                );
                let expect: Vec<u32> = inside.drain(..batch.len()).collect();
                let got: Vec<u32> = batch.iter().map(|p| p.payload).collect();
                assert_eq!(got, expect, "served out of admission order");
                for p in batch {
                    let previous = ledger.insert(p.payload, Outcome::Served);
                    assert_eq!(previous, None, "{} settled twice", p.payload);
                }
                true
            }
            PopOutcome::WaitUntil(wake) => {
                assert!(
                    wake > now,
                    "WaitUntil({wake}) is not in the future of {now}"
                );
                false
            }
            PopOutcome::Idle => {
                assert!(core.is_empty(), "Idle with requests still queued");
                false
            }
            PopOutcome::Closed => {
                assert!(core.is_empty(), "Closed with requests still queued");
                assert!(inside.is_empty(), "core closed but ledger still waits");
                false
            }
        }
    };

    for &op in script {
        match op {
            Op::Push { deadline_in_us } => {
                let id = next_id;
                next_id += 1;
                match core.push(id, now, deadline_in_us.map(|d| now + d)) {
                    Admission::Accepted => {
                        assert!(!closed, "push accepted after close");
                        inside.push(id);
                    }
                    Admission::Shed(returned) => {
                        assert_eq!(returned, id, "shed must hand the payload back");
                        settle(&mut ledger, id, Outcome::Shed);
                    }
                    Admission::Closed(returned) => {
                        assert_eq!(returned, id, "refusal must hand the payload back");
                        assert!(closed, "Closed admission from an open queue");
                        settle(&mut ledger, id, Outcome::RefusedClosed);
                    }
                }
            }
            Op::Tick(us) => now += us,
            Op::Work => {
                work(&mut core, now, &mut inside, &mut ledger);
            }
            Op::Close => {
                core.close();
                closed = true;
            }
        }
    }

    // Shutdown epilogue, exactly like the runtime's worker loop: close
    // (if the script did not) and drain until `Closed`. No admitted
    // request may still be in flight afterwards.
    core.close();
    let mut spins = 0;
    while !(core.is_empty() && inside.is_empty()) {
        work(&mut core, now, &mut inside, &mut ledger);
        now += 1;
        spins += 1;
        assert!(spins < 100_000, "drain failed to converge");
    }
    assert!(matches!(core.pop(now), PopOutcome::Closed));

    // Conservation: every issued id has exactly one outcome.
    assert_eq!(
        ledger.len(),
        next_id as usize,
        "issued {next_id} requests but settled {}",
        ledger.len()
    );
    ledger
}

fn counts(ledger: &HashMap<u32, Outcome>) -> (usize, usize, usize, usize) {
    let tally = |o: Outcome| ledger.values().filter(|&&v| v == o).count();
    (
        tally(Outcome::Served),
        tally(Outcome::Expired),
        tally(Outcome::Shed),
        tally(Outcome::RefusedClosed),
    )
}

fn config(max_batch: usize, max_wait_us: u64, queue_capacity: usize) -> BatchConfig {
    BatchConfig {
        max_batch,
        max_wait_us,
        queue_capacity,
    }
}

#[test]
fn push_on_the_close_tick_is_drained_not_lost() {
    // The named race: requests admitted on the very tick close() lands.
    // Both sides of the boundary get explicit outcomes — admitted-before
    // drains, pushed-after is refused with the payload handed back.
    let script = [
        Op::Push {
            deadline_in_us: None,
        },
        Op::Push {
            deadline_in_us: None,
        },
        Op::Close,
        Op::Push {
            deadline_in_us: None,
        }, // same tick, after close
        Op::Work,
    ];
    let ledger = replay(config(8, 1_000, 16), &script);
    assert_eq!(counts(&ledger), (2, 0, 0, 1));
    assert_eq!(ledger[&0], Outcome::Served);
    assert_eq!(ledger[&1], Outcome::Served);
    assert_eq!(ledger[&2], Outcome::RefusedClosed);
}

#[test]
fn oversize_backlog_drains_in_order_after_close() {
    // 3× max_batch queued, then shutdown: the drain chunks batches and
    // loses nothing, with no worker turn before close.
    let mut script = vec![
        Op::Push {
            deadline_in_us: None
        };
        12
    ];
    script.push(Op::Close);
    let ledger = replay(config(4, 1_000_000, 16), &script);
    assert_eq!(counts(&ledger), (12, 0, 0, 0));
}

#[test]
fn deadline_expiring_mid_drain_is_surrendered_not_served_late() {
    // A request whose deadline passes between close() and its drain
    // batch must expire with an explicit outcome, not ride along stale.
    let script = [
        Op::Push {
            deadline_in_us: None,
        },
        Op::Push {
            deadline_in_us: Some(10),
        },
        Op::Tick(50), // deadline 10 is long dead
        Op::Close,
        Op::Work,
    ];
    let ledger = replay(config(8, 1_000, 16), &script);
    assert_eq!(counts(&ledger), (1, 1, 0, 0));
    assert_eq!(ledger[&1], Outcome::Expired);
}

#[test]
fn shed_at_capacity_then_close_accounts_both_ways() {
    // Overload right up to the close: capacity-2 queue, four pushes.
    // Two admitted (drained), two shed (handed back) — all explicit.
    let script = [
        Op::Push {
            deadline_in_us: None,
        },
        Op::Push {
            deadline_in_us: None,
        },
        Op::Push {
            deadline_in_us: None,
        },
        Op::Push {
            deadline_in_us: None,
        },
        Op::Close,
    ];
    let ledger = replay(config(8, 1_000, 2), &script);
    assert_eq!(counts(&ledger), (2, 0, 2, 0));
}

#[test]
fn interleaved_worker_turns_and_closes_preserve_order() {
    // Worker turns interleave with pushes before the close lands.
    let script = [
        Op::Push {
            deadline_in_us: None,
        },
        Op::Push {
            deadline_in_us: None,
        },
        Op::Work, // full batch of 2 leaves
        Op::Push {
            deadline_in_us: None,
        },
        Op::Tick(5),
        Op::Push {
            deadline_in_us: None,
        },
        Op::Close,
        Op::Push {
            deadline_in_us: None,
        },
        Op::Work,
        Op::Work,
    ];
    let ledger = replay(config(2, 1_000, 16), &script);
    assert_eq!(counts(&ledger), (4, 0, 0, 1));
}

#[test]
fn random_interleaving_sweep_conserves_every_request() {
    // A few thousand seeded scripts around the shutdown boundary:
    // random pushes (some with tight deadlines), ticks, worker turns,
    // and a close at a random position. `replay` asserts conservation,
    // ordering, and batch bounds internally; the sweep's job is to
    // reach interleavings the hand-written scripts do not.
    let mut total_served = 0usize;
    let mut total_refused = 0usize;
    for seed in 0..400u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg = config(
            rng.gen_range(1..6),
            rng.gen_range(0..500),
            rng.gen_range(1..12),
        );
        let close_at = rng.gen_range(0..40);
        let script: Vec<Op> = (0..40)
            .map(|position| {
                if position == close_at {
                    return Op::Close;
                }
                match rng.gen_range(0..10) {
                    0..=4 => Op::Push {
                        deadline_in_us: (rng.gen_range(0..10) < 3)
                            .then(|| rng.gen_range(0..300u64)),
                    },
                    5..=6 => Op::Tick(rng.gen_range(1..400)),
                    _ => Op::Work,
                }
            })
            .collect();
        let ledger = replay(cfg, &script);
        let (served, _expired, _shed, refused) = counts(&ledger);
        total_served += served;
        total_refused += refused;
    }
    // The sweep must actually exercise both sides of the close.
    assert!(total_served > 1_000, "sweep served only {total_served}");
    assert!(total_refused > 100, "sweep refused only {total_refused}");
}
