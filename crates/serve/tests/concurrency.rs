//! Batcher concurrency suite: a deterministic virtual-clock harness for
//! the queue policy, end-to-end server behavior under contention, and
//! the multi-threaded soak test proving batched serving is bit-identical
//! to serial `TransformerPredictor::predict`.
//!
//! The harness tests replay a scripted schedule of pushes against a
//! [`QueueCore`] with a hand-advanced integer clock — no threads, no
//! timers — so every boundary (a flush landing exactly at `max_wait_us`,
//! a batch filling exactly to `max_batch`, a deadline expiring while
//! queued) is exercised on its exact tick, deterministically, every run.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use metadse::predictor::{PredictorConfig, TransformerPredictor};
use metadse::ServablePredictor;
use metadse_serve::{
    BatchConfig, ModelRegistry, PopOutcome, QueueCore, ServeConfig, ServeError, Server,
};

// ---------------------------------------------------------------------
// Virtual-clock harness
// ---------------------------------------------------------------------

/// Everything the policy did during a replay, stamped with virtual time.
#[derive(Debug, Default, PartialEq, Eq)]
struct Trace {
    /// `(release_time_us, request ids)` per batch, in release order.
    batches: Vec<(u64, Vec<u32>)>,
    /// `(expiry_time_us, request ids)` per expiry sweep.
    expired: Vec<(u64, Vec<u32>)>,
}

/// Replays `schedule` — `(push_time_us, id, deadline_us)` sorted by push
/// time — against a fresh [`QueueCore`] the way a single worker would:
/// time jumps straight to the next scheduled push or policy wake-up, so
/// the trace records the *exact* virtual instant of every transition.
fn replay(config: BatchConfig, schedule: &[(u64, u32, Option<u64>)]) -> Trace {
    let mut core = QueueCore::new(config);
    let mut trace = Trace::default();
    let mut next = 0; // next schedule index to admit
    let mut now = 0u64;
    loop {
        while next < schedule.len() && schedule[next].0 <= now {
            let (at, id, deadline) = schedule[next];
            assert!(
                matches!(
                    core.push(id, at, deadline),
                    metadse_serve::Admission::Accepted
                ),
                "harness schedules must stay within queue_capacity"
            );
            next += 1;
        }
        let dead: Vec<u32> = core
            .take_expired(now)
            .into_iter()
            .map(|p| p.payload)
            .collect();
        if !dead.is_empty() {
            trace.expired.push((now, dead));
        }
        match core.pop(now) {
            PopOutcome::Batch(batch) => {
                trace
                    .batches
                    .push((now, batch.into_iter().map(|p| p.payload).collect()));
            }
            PopOutcome::WaitUntil(wake) => {
                now = match schedule.get(next) {
                    Some(&(at, _, _)) => wake.min(at),
                    None => wake,
                };
            }
            PopOutcome::Idle => match schedule.get(next) {
                Some(&(at, _, _)) => now = at,
                None => core.close(),
            },
            PopOutcome::Closed => return trace,
        }
    }
}

#[test]
fn empty_schedule_never_flushes() {
    let trace = replay(BatchConfig::default(), &[]);
    assert_eq!(
        trace,
        Trace::default(),
        "an empty queue must not emit batches"
    );
}

#[test]
fn exactly_full_batch_releases_on_the_filling_push() {
    let config = BatchConfig {
        max_batch: 4,
        max_wait_us: 1_000_000,
        queue_capacity: 64,
    };
    // Staggered pushes; the 4th arrives at t=90, far before any flush.
    let schedule: Vec<(u64, u32, Option<u64>)> = (0..4).map(|i| (i * 30, i as u32, None)).collect();
    let trace = replay(config, &schedule);
    assert_eq!(trace.batches, vec![(90, vec![0, 1, 2, 3])]);
    assert!(trace.expired.is_empty());
}

#[test]
fn partial_batch_flushes_exactly_at_max_wait() {
    let config = BatchConfig {
        max_batch: 32,
        max_wait_us: 250,
        queue_capacity: 64,
    };
    let trace = replay(config, &[(40, 7, None), (90, 8, None)]);
    // The oldest request anchors the flush: 40 + 250 = 290, both ride.
    assert_eq!(trace.batches, vec![(290, vec![7, 8])]);
}

#[test]
fn deadline_expiring_while_queued_is_evicted_on_its_tick() {
    let config = BatchConfig {
        max_batch: 32,
        max_wait_us: 10_000,
        queue_capacity: 64,
    };
    let trace = replay(
        config,
        &[
            (0, 1, None),
            (10, 2, Some(500)), // dies at t=500, long before the t=10_000 flush
            (20, 3, None),
        ],
    );
    assert_eq!(
        trace.expired,
        vec![(500, vec![2])],
        "evicted exactly at its deadline"
    );
    assert_eq!(
        trace.batches,
        vec![(10_000, vec![1, 3])],
        "survivors flush on time"
    );
}

#[test]
fn oversize_burst_drains_in_back_to_back_full_batches() {
    let config = BatchConfig {
        max_batch: 3,
        max_wait_us: 100,
        queue_capacity: 64,
    };
    let schedule: Vec<(u64, u32, Option<u64>)> = (0..7).map(|i| (0, i, None)).collect();
    let trace = replay(config, &schedule);
    assert_eq!(
        trace.batches,
        vec![
            (0, vec![0, 1, 2]),
            (0, vec![3, 4, 5]),
            (100, vec![6]), // the remainder waits out max_wait alone
        ]
    );
}

// ---------------------------------------------------------------------
// End-to-end server behavior
// ---------------------------------------------------------------------

const GEOMETRY: PredictorConfig = PredictorConfig {
    num_params: 6,
    d_model: 8,
    heads: 2,
    depth: 1,
    d_hidden: 16,
    head_hidden: 8,
};

fn servable(seed: u64) -> ServablePredictor {
    ServablePredictor::capture(&TransformerPredictor::new(GEOMETRY, seed), None, "ipc")
}

fn temp_registry(tag: &str) -> Arc<ModelRegistry> {
    let root = std::env::temp_dir().join(format!(
        "metadse-serve-concurrency-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&root);
    Arc::new(ModelRegistry::new(root, 4))
}

fn sample_config(rng: &mut StdRng) -> Vec<f64> {
    (0..GEOMETRY.num_params)
        .map(|_| rng.gen_range(0.0..1.0))
        .collect()
}

#[test]
fn unknown_workload_and_bad_arity_fail_fast() {
    let registry = temp_registry("fastfail");
    registry.publish("mcf", &servable(1)).unwrap();
    let server = Server::start(registry.clone(), ServeConfig::default());
    assert_eq!(
        server.submit("gcc", &[0.0; 6], None).wait(),
        Err(ServeError::UnknownWorkload("gcc".into()))
    );
    assert_eq!(
        server.submit("mcf", &[0.0; 4], None).wait(),
        Err(ServeError::BadArity {
            expected: 6,
            got: 4
        })
    );
    server.shutdown();
    std::fs::remove_dir_all(registry.root()).ok();
}

#[test]
fn graceful_shutdown_drains_every_admitted_request() {
    let registry = temp_registry("drain");
    registry.publish("mcf", &servable(2)).unwrap();
    // A coalescing window far longer than the test: only the drain can
    // release these requests.
    let server = Server::start(
        registry.clone(),
        ServeConfig {
            batch: BatchConfig {
                max_batch: 64,
                max_wait_us: 60_000_000,
                queue_capacity: 64,
            },
            workers: 2,
            ..ServeConfig::default()
        },
    );
    let mut rng = StdRng::seed_from_u64(3);
    let tickets: Vec<_> = (0..10)
        .map(|_| server.submit("mcf", &sample_config(&mut rng), None))
        .collect();
    server.shutdown();
    for ticket in tickets {
        let prediction = ticket.wait().expect("drained, not dropped");
        assert!(prediction.value.is_finite());
    }
    std::fs::remove_dir_all(registry.root()).ok();
}

#[test]
fn overload_sheds_rather_than_blocking() {
    let registry = temp_registry("shed");
    registry.publish("mcf", &servable(4)).unwrap();
    // workers=1 with a long wait window: the queue can only empty on
    // drain, so pushes past capacity must shed immediately.
    let server = Server::start(
        registry.clone(),
        ServeConfig {
            batch: BatchConfig {
                max_batch: 64,
                max_wait_us: 60_000_000,
                queue_capacity: 4,
            },
            workers: 1,
            ..ServeConfig::default()
        },
    );
    let mut rng = StdRng::seed_from_u64(5);
    let tickets: Vec<_> = (0..12)
        .map(|_| server.submit("mcf", &sample_config(&mut rng), None))
        .collect();
    server.shutdown();
    let outcomes: Vec<_> = tickets.into_iter().map(|t| t.wait()).collect();
    let shed = outcomes
        .iter()
        .filter(|o| **o == Err(ServeError::Shed))
        .count();
    let served = outcomes.iter().filter(|o| o.is_ok()).count();
    assert!(
        shed >= 8,
        "at most capacity requests fit; {shed} shed of 12"
    );
    assert_eq!(served + shed, 12, "every ticket resolves exactly once");
    std::fs::remove_dir_all(registry.root()).ok();
}

#[test]
fn queued_past_deadline_misses_instead_of_serving_late() {
    let registry = temp_registry("deadline");
    registry.publish("mcf", &servable(6)).unwrap();
    // The flush window dwarfs the request deadline, so the worker's
    // deadline-aware wake must fire first and fail the request.
    let server = Server::start(
        registry.clone(),
        ServeConfig {
            batch: BatchConfig {
                max_batch: 64,
                max_wait_us: 60_000_000,
                queue_capacity: 64,
            },
            workers: 1,
            ..ServeConfig::default()
        },
    );
    let ticket = server.submit("mcf", &[0.5; 6], Some(Duration::from_millis(5)));
    assert_eq!(ticket.wait(), Err(ServeError::DeadlineMiss));
    server.shutdown();
    std::fs::remove_dir_all(registry.root()).ok();
}

#[test]
fn hot_swap_serves_the_new_generation_to_new_requests() {
    let registry = temp_registry("hotswap");
    registry.publish("mcf", &servable(7)).unwrap();
    let server = Server::start(
        registry.clone(),
        ServeConfig {
            batch: BatchConfig {
                max_batch: 1,
                max_wait_us: 0,
                queue_capacity: 64,
            },
            workers: 1,
            ..ServeConfig::default()
        },
    );
    let first = server.submit("mcf", &[0.25; 6], None).wait().unwrap();
    assert_eq!(first.generation, 1);
    registry.publish("mcf", &servable(8)).unwrap();
    let second = server.submit("mcf", &[0.25; 6], None).wait().unwrap();
    assert_eq!(second.generation, 2, "swap picked up without restart");
    assert_ne!(
        first.value.to_bits(),
        second.value.to_bits(),
        "distinct models must answer distinctly for this input"
    );
    server.shutdown();
    std::fs::remove_dir_all(registry.root()).ok();
}

// ---------------------------------------------------------------------
// Soak: batched serving is bit-identical to serial predict
// ---------------------------------------------------------------------

/// 4 client threads hammer the server concurrently; every response must
/// be bit-for-bit what a serial `predict` on a predictor instantiated
/// from the *same artifact* returns — across ≥ 2 worker counts, so the
/// identity holds regardless of how requests happen to coalesce.
#[test]
fn soak_batched_results_are_bit_identical_to_serial_predict() {
    const CLIENTS: usize = 4;
    const REQUESTS_PER_CLIENT: usize = 48;

    let artifact = servable(42);
    let reference = artifact.instantiate().unwrap();

    let registry = temp_registry("soak");
    registry.publish("spec", &artifact).unwrap();

    for workers in [2usize, 4] {
        let server = Server::start(
            registry.clone(),
            ServeConfig {
                batch: BatchConfig {
                    max_batch: 8,
                    max_wait_us: 300,
                    queue_capacity: 256,
                },
                workers,
                ..ServeConfig::default()
            },
        );
        let mut outcomes: Vec<(Vec<f64>, f64, usize)> = Vec::new();
        std::thread::scope(|scope| {
            let server = &server;
            let handles: Vec<_> = (0..CLIENTS)
                .map(|client| {
                    scope.spawn(move || {
                        let mut rng = StdRng::seed_from_u64(1000 * workers as u64 + client as u64);
                        let mut got = Vec::with_capacity(REQUESTS_PER_CLIENT);
                        for _ in 0..REQUESTS_PER_CLIENT {
                            let config = sample_config(&mut rng);
                            let prediction = server.submit("spec", &config, None).wait().unwrap();
                            got.push((config, prediction.value, prediction.batch_size));
                        }
                        got
                    })
                })
                .collect();
            for handle in handles {
                outcomes.extend(handle.join().unwrap());
            }
        });
        server.shutdown();

        assert_eq!(outcomes.len(), CLIENTS * REQUESTS_PER_CLIENT);
        let coalesced = outcomes.iter().filter(|(_, _, b)| *b > 1).count();
        let mut mismatches = 0;
        for (config, served, _) in &outcomes {
            let serial = reference.predict(std::slice::from_ref(config))[0];
            if serial.to_bits() != served.to_bits() {
                mismatches += 1;
            }
        }
        assert_eq!(
            mismatches,
            0,
            "{workers} workers: {mismatches} of {} batched results diverged from serial predict \
             ({coalesced} were served in multi-request batches)",
            outcomes.len()
        );
    }
    std::fs::remove_dir_all(registry.root()).ok();
}

/// Mixed-workload soak: two models served through the same queue must
/// never cross answers, even when their requests coalesce into one
/// scheduler batch.
#[test]
fn soak_mixed_workloads_never_cross_models() {
    let artifacts: HashMap<&str, ServablePredictor> =
        [("mcf", servable(21)), ("gcc", servable(22))].into();

    let registry = temp_registry("mixed");
    for (workload, artifact) in &artifacts {
        registry.publish(workload, artifact).unwrap();
    }
    let server = Server::start(
        registry.clone(),
        ServeConfig {
            batch: BatchConfig {
                max_batch: 16,
                max_wait_us: 300,
                queue_capacity: 256,
            },
            workers: 2,
            ..ServeConfig::default()
        },
    );
    std::thread::scope(|scope| {
        let server = &server;
        let artifacts = &artifacts;
        for (client, workload) in ["mcf", "gcc", "mcf", "gcc"].into_iter().enumerate() {
            scope.spawn(move || {
                // Predictors are thread-bound (Rc tensors): each client
                // rebuilds its own reference from the shared artifact.
                let reference = artifacts[workload].instantiate().unwrap();
                let mut rng = StdRng::seed_from_u64(77 + client as u64);
                for _ in 0..32 {
                    let config = sample_config(&mut rng);
                    let served = server.submit(workload, &config, None).wait().unwrap();
                    let serial = reference.predict(std::slice::from_ref(&config))[0];
                    assert_eq!(
                        serial.to_bits(),
                        served.value.to_bits(),
                        "{workload} answer diverged under mixed-workload batching"
                    );
                }
            });
        }
    });
    server.shutdown();
    std::fs::remove_dir_all(registry.root()).ok();
}
