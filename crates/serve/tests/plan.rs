//! Compiled-plan parity suite: the plan executor must be bit-identical
//! to `TransformerPredictor::predict` under every escape-hatch
//! combination (backend × pool × fused), on poisoned inputs (NaN, ±inf,
//! subnormals, zero-heavy rows), with and without a WAM attention mask
//! — and the server's plan cache must invalidate atomically across a
//! hot swap, never serving a stale generation's plan.
//!
//! Run through `scripts/test-matrix.sh` this suite also pins the plan
//! outputs to per-backend cross-build digests (`$METADSE_DIGEST_FILE
//! .plan{,.simd}`): the pool and fused toggles change nothing on the
//! plan path, so all four combinations per backend must reproduce one
//! digest bit-for-bit.

use std::sync::Arc;

use metadse::predictor::{PredictorConfig, TransformerPredictor};
use metadse::ServablePredictor;
use metadse_nn::layers::Param;
use metadse_nn::tensor::fused::FusedModeGuard;
use metadse_nn::tensor::pool::PoolModeGuard;
use metadse_nn::{autograd, backend, BackendKind, BackendModeGuard, Elem, Tensor};
use metadse_serve::{BatchConfig, ModelRegistry, Plan, PlanArena, ServeConfig, Server};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const GEOMETRY: PredictorConfig = PredictorConfig {
    num_params: 6,
    d_model: 8,
    heads: 2,
    depth: 2,
    d_hidden: 12,
    head_hidden: 8,
};

/// A captured artifact; `masked` adds a WAM-style additive attention
/// mask (a few strongly suppressed pairs) so the plan's compile-time
/// mask fold gets exercised.
fn servable(seed: u64, masked: bool) -> ServablePredictor {
    let model = TransformerPredictor::new(GEOMETRY, seed);
    let s = GEOMETRY.num_params;
    let mask = masked.then(|| {
        let mut values = vec![0.0; s * s];
        for i in 0..s {
            for j in 0..s {
                if (i + 2 * j) % 3 == 0 && i != j {
                    values[i * s + j] = -1e9;
                }
            }
        }
        Param::new("wam.mask", Tensor::from_vec(values, &[s, s]))
    });
    ServablePredictor::capture(&model, mask.as_ref(), "ipc")
}

/// Deterministic quantized inputs (exactly representable after the
/// round, so digests are stable across build flavors).
fn rows(n: usize, seed: u64) -> Vec<Vec<Elem>> {
    (0..n)
        .map(|i| {
            (0..GEOMETRY.num_params)
                .map(|j| {
                    let v = ((i * 31 + j * 7) as Elem + seed as Elem).sin();
                    (v * 8.0).round() / 8.0
                })
                .collect()
        })
        .collect()
}

/// Adversarial rows: NaN, ±inf, subnormals, and zero-heavy rows that
/// push zero fractions toward the sparse-kernel threshold.
fn poison_rows() -> Vec<Vec<Elem>> {
    let arity = GEOMETRY.num_params;
    let mut batch = vec![
        vec![0.0; arity],
        vec![Elem::NAN; arity],
        vec![Elem::INFINITY; arity],
        vec![Elem::NEG_INFINITY; arity],
        vec![Elem::MIN_POSITIVE / 2.0; arity],
        vec![-Elem::MIN_POSITIVE; arity],
    ];
    // Mixed rows: a single poisoned lane in otherwise ordinary data.
    for (lane, v) in [(0, Elem::NAN), (2, Elem::INFINITY), (4, 1e-310), (5, -0.0)] {
        let mut row: Vec<Elem> = (0..arity).map(|j| (j as Elem) * 0.125).collect();
        row[lane] = v;
        batch.push(row);
    }
    batch
}

fn assert_plan_matches_predict(sv: &ServablePredictor, inputs: &[Vec<Elem>], context: &str) {
    let plan = Plan::compile(sv, inputs.len()).unwrap();
    let model = sv.instantiate().unwrap();
    let expected = autograd::no_grad(|| model.predict(inputs));
    let mut arena = PlanArena::new();
    let got = plan.run(inputs, &mut arena);
    assert_eq!(got.len(), expected.len());
    for (i, (g, e)) in got.iter().zip(&expected).enumerate() {
        assert_eq!(
            g.to_bits(),
            e.to_bits(),
            "{context}: row {i} diverged (plan {g:?} vs predict {e:?})"
        );
    }
}

/// The tentpole parity matrix: every backend × pool × fused combination,
/// masked and unmasked, must agree with `predict` bit-for-bit. The plan
/// always executes fused-path accumulation orders on the thread's
/// backend; the fused≡composite and pool-neutrality contracts make the
/// graph side land on the same bits from either configuration.
#[test]
fn plan_parity_across_backend_pool_fused_matrix() {
    for masked in [false, true] {
        let sv = servable(11 + masked as u64, masked);
        for kind in [BackendKind::Scalar, BackendKind::Simd] {
            let _backend = BackendModeGuard::set(kind);
            for pool in [false, true] {
                let _pool = PoolModeGuard::set(pool);
                for fused in [false, true] {
                    let _fused = FusedModeGuard::set(fused);
                    assert_plan_matches_predict(
                        &sv,
                        &rows(8, 3),
                        &format!(
                            "masked={masked} backend={} pool={pool} fused={fused}",
                            kind.name()
                        ),
                    );
                }
            }
        }
    }
}

/// Poisoned inputs must not open a gap between the two paths: NaN
/// payloads, infinities and subnormals propagate through identical
/// kernel sequences, and zero-heavy intermediates must make the same
/// data-dependent dense/sparse choice on both sides.
#[test]
fn plan_parity_on_poison_inputs() {
    for masked in [false, true] {
        let sv = servable(23 + masked as u64, masked);
        for kind in [BackendKind::Scalar, BackendKind::Simd] {
            let _backend = BackendModeGuard::set(kind);
            for fused in [false, true] {
                let _fused = FusedModeGuard::set(fused);
                assert_plan_matches_predict(
                    &sv,
                    &poison_rows(),
                    &format!(
                        "poison masked={masked} backend={} fused={fused}",
                        kind.name()
                    ),
                );
            }
        }
    }
}

/// Cross-build digest pin for the plan path, composed with the
/// determinism suite's convention: the scalar backend records
/// `$METADSE_DIGEST_FILE.plan`, other backends `….plan.<backend>`.
/// Within one backend every pool×fused matrix combination must
/// reproduce the digest exactly — the plan path never touches either
/// toggle.
#[test]
fn plan_outputs_pin_cross_build_digest() {
    let Ok(base) = std::env::var("METADSE_DIGEST_FILE") else {
        return;
    };
    let base = format!("{base}.plan");
    let path = match backend::kind() {
        BackendKind::Scalar => base,
        kind => format!("{base}.{}", kind.name()),
    };

    let sv = servable(41, true);
    let plan = Plan::compile(&sv, 8).unwrap();
    let mut arena = PlanArena::new();
    let outputs = plan.run(&rows(8, 17), &mut arena);
    let mut bytes = Vec::with_capacity(outputs.len() * 8);
    for v in &outputs {
        bytes.extend_from_slice(&v.to_bits().to_le_bytes());
    }
    let digest = format!("{:016x}", metadse_nn::format::fnv1a(&bytes));

    match std::fs::read_to_string(&path) {
        Ok(previous) if !previous.trim().is_empty() => assert_eq!(
            previous.trim(),
            digest,
            "plan digest diverged from the one recorded in {path} — a \
             differently-configured build changed the plan numerics"
        ),
        _ => metadse_nn::format::atomic_write(&path, digest.as_bytes())
            .unwrap_or_else(|e| panic!("could not record plan digest in {path}: {e}")),
    }
}

// ---------------------------------------------------------------------
// Server-level plan cache and hot-swap invalidation
// ---------------------------------------------------------------------

fn temp_registry(tag: &str) -> Arc<ModelRegistry> {
    let root =
        std::env::temp_dir().join(format!("metadse-serve-plan-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    Arc::new(ModelRegistry::new(root, 4))
}

fn sample_config(rng: &mut StdRng) -> Vec<f64> {
    (0..GEOMETRY.num_params)
        .map(|_| rng.gen_range(0.0..1.0))
        .collect()
}

fn plan_server(registry: &Arc<ModelRegistry>, max_batch: usize, workers: usize) -> Server {
    Server::start(
        Arc::clone(registry),
        ServeConfig {
            batch: BatchConfig {
                max_batch,
                max_wait_us: 150,
                queue_capacity: 256,
            },
            workers,
            // Explicit: these assertions are about the plan path, so the
            // suite stays meaningful under a `METADSE_PLAN=0` run.
            plan: true,
        },
    )
}

/// One workload served through the plan path compiles exactly one plan
/// (batch-capacity keyed), reuses it for every subsequent admission
/// group, and still answers bit-identically to serial `predict`.
#[test]
fn server_compiles_one_plan_per_workload_and_reuses_it() {
    let artifact = servable(51, false);
    let reference = artifact.instantiate().unwrap();
    let registry = temp_registry("cache");
    registry.publish("mcf", &artifact).unwrap();
    let server = plan_server(&registry, 8, 2);

    let mut rng = StdRng::seed_from_u64(52);
    for _ in 0..4 {
        let pairs: Vec<(Vec<f64>, _)> = (0..8)
            .map(|_| {
                let config = sample_config(&mut rng);
                let ticket = server.submit("mcf", &config, None);
                (config, ticket)
            })
            .collect();
        for (config, ticket) in pairs {
            let served = ticket.wait().unwrap();
            let serial = reference.predict(std::slice::from_ref(&config))[0];
            assert_eq!(serial.to_bits(), served.value.to_bits());
        }
    }
    server.shutdown();

    let stats = registry.plan_cache_stats();
    assert_eq!(stats.misses, 1, "one workload → one compile, got {stats:?}");
    assert!(stats.compile_us > 0, "compile time attributed: {stats:?}");
    assert_eq!(
        registry.cached_plan_shapes(),
        vec![(artifact.fingerprint(), 8)],
        "plan keyed by fingerprint × batch capacity"
    );
    std::fs::remove_dir_all(registry.root()).ok();
}

/// Deterministic invalidation: a hot swap between two load phases must
/// purge the old generation's plan atomically (cache empty right after
/// `publish`) and the next phase must recompile for — and answer
/// bit-identically as — the new generation only.
#[test]
fn hot_swap_purges_cached_plans_between_soaks() {
    let v1 = servable(61, false);
    let v2 = servable(62, true);
    let ref1 = v1.instantiate().unwrap();
    let ref2 = v2.instantiate().unwrap();

    let registry = temp_registry("purge");
    registry.publish("mcf", &v1).unwrap();
    let server = plan_server(&registry, 4, 2);

    let mut rng = StdRng::seed_from_u64(63);
    let mut drive = |reference: &TransformerPredictor, generation: u64| {
        for _ in 0..3 {
            let pairs: Vec<(Vec<f64>, _)> = (0..4)
                .map(|_| {
                    let config = sample_config(&mut rng);
                    let ticket = server.submit("mcf", &config, None);
                    (config, ticket)
                })
                .collect();
            for (config, ticket) in pairs {
                let served = ticket.wait().unwrap();
                assert_eq!(served.generation, generation);
                let serial = reference.predict(std::slice::from_ref(&config))[0];
                assert_eq!(serial.to_bits(), served.value.to_bits());
            }
        }
    };

    drive(&ref1, 1);
    assert_eq!(registry.cached_plan_shapes(), vec![(v1.fingerprint(), 4)]);

    registry.publish("mcf", &v2).unwrap();
    assert!(
        registry.cached_plan_shapes().is_empty(),
        "swap must purge the stale plan before any new-generation request"
    );

    drive(&ref2, 2);
    assert_eq!(
        registry.cached_plan_shapes(),
        vec![(v2.fingerprint(), 4)],
        "only the live generation's plan may be cached after the swap"
    );

    server.shutdown();
    std::fs::remove_dir_all(registry.root()).ok();
}

/// Hot swap in the middle of a concurrent soak: whichever generation a
/// response reports, its value must be bit-identical to that
/// generation's serial `predict` — a request must never run through a
/// plan compiled for the other generation's weights.
#[test]
fn hot_swap_mid_soak_serves_each_generation_bit_identically() {
    const CLIENTS: usize = 3;
    const REQUESTS_PER_CLIENT: usize = 60;

    let v1 = servable(71, false);
    let v2 = servable(72, false);

    let registry = temp_registry("midsoak");
    registry.publish("mcf", &v1).unwrap();
    let server = plan_server(&registry, 4, 2);

    let mut outcomes: Vec<(Vec<f64>, f64, u64)> = Vec::new();
    std::thread::scope(|scope| {
        let server = &server;
        let handles: Vec<_> = (0..CLIENTS)
            .map(|client| {
                scope.spawn(move || {
                    let mut rng = StdRng::seed_from_u64(700 + client as u64);
                    let mut got = Vec::with_capacity(REQUESTS_PER_CLIENT);
                    for _ in 0..REQUESTS_PER_CLIENT {
                        let config = sample_config(&mut rng);
                        let served = server.submit("mcf", &config, None).wait().unwrap();
                        got.push((config, served.value, served.generation));
                    }
                    got
                })
            })
            .collect();
        // Swap mid-load, roughly when the clients are in full flight.
        std::thread::sleep(std::time::Duration::from_millis(5));
        registry.publish("mcf", &v2).unwrap();
        for handle in handles {
            outcomes.extend(handle.join().unwrap());
        }
    });

    // Requests submitted after the publish resolve the new generation.
    let last = server.submit("mcf", &[0.5; 6], None).wait().unwrap();
    assert_eq!(last.generation, 2);
    server.shutdown();

    let ref1 = v1.instantiate().unwrap();
    let ref2 = v2.instantiate().unwrap();
    assert_eq!(outcomes.len(), CLIENTS * REQUESTS_PER_CLIENT);
    for (config, served, generation) in &outcomes {
        let reference = match generation {
            1 => &ref1,
            2 => &ref2,
            g => panic!("impossible generation {g}"),
        };
        let serial = reference.predict(std::slice::from_ref(config))[0];
        assert_eq!(
            serial.to_bits(),
            served.to_bits(),
            "generation {generation} answer diverged across the mid-soak swap"
        );
    }
    std::fs::remove_dir_all(registry.root()).ok();
}
