//! Session-layer suite: checkpoint codec round-trips, dedup point-cache
//! exactly-once laws under scripted interleavings, incremental-front
//! properties over the wire format, engine-vs-standalone bit-identity,
//! and kill/resume determinism. Process-level crash-restart of whole
//! shards is exercised by the `session_soak` bin and CI's session-soak
//! job; here everything runs in one test process.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use metadse::checkpoint::{CheckpointConfig, Checkpointer, FaultMode, FaultSpec};
use metadse::explorer::{
    apply_front_delta, canonical_front, explore_pareto, ExplorerConfig, ExplorerState, FrontDelta,
    ParetoEntry,
};
use metadse::predictor::{PredictorConfig, TransformerPredictor};
use metadse::ServablePredictor;
use metadse_nn::format::fnv1a;
use metadse_serve::session::{
    decode_session, encode_session, power_proxy, Claim, PointCache, RoundReport, SessionSpec,
    SessionState,
};
use metadse_serve::{
    BatchConfig, ModelRegistry, ServeConfig, Server, SessionEngine, SessionEngineConfig,
    SessionError,
};
use metadse_sim::{ConfigPoint, DesignSpace};

/// Sessions encode full 21-parameter design points, so the served model
/// must accept that arity; everything else is sized for test speed.
const GEOMETRY: PredictorConfig = PredictorConfig {
    num_params: 21,
    d_model: 4,
    heads: 2,
    depth: 1,
    d_hidden: 8,
    head_hidden: 4,
};

fn servable(seed: u64) -> ServablePredictor {
    ServablePredictor::capture(&TransformerPredictor::new(GEOMETRY, seed), None, "ipc")
}

fn test_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("metadse-sessiontest-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn serve_config() -> ServeConfig {
    ServeConfig {
        batch: BatchConfig {
            max_batch: 8,
            max_wait_us: 100,
            queue_capacity: 256,
        },
        workers: 1,
        ..ServeConfig::default()
    }
}

/// Publishes `names` and starts an in-process server over them.
fn start_server(dir: &Path, names: &[&str]) -> Server {
    let root = dir.join("models");
    let registry = ModelRegistry::new(&root, 4);
    for (i, name) in names.iter().enumerate() {
        registry.publish(name, &servable(1000 + i as u64)).unwrap();
    }
    Server::start(Arc::new(registry), serve_config())
}

fn spec(workload: &str, seed: u64) -> SessionSpec {
    SessionSpec {
        workload: workload.to_string(),
        seed,
        initial_samples: 20,
        refinement_rounds: 2,
        beam: 3,
        round_timeout_us: 0,
    }
}

fn explorer_config(spec: &SessionSpec) -> ExplorerConfig {
    ExplorerConfig {
        initial_samples: spec.initial_samples as usize,
        refinement_rounds: spec.refinement_rounds as usize,
        beam: spec.beam as usize,
        seed: spec.seed,
    }
}

/// Steps a freshly-opened session to completion, asserting the per-round
/// accounting law, and returns every report in order.
fn drive_session(engine: &SessionEngine, server: &Server, spec: &SessionSpec) -> Vec<RoundReport> {
    let info = engine.open(server, spec).unwrap();
    let mut reports = Vec::new();
    for round in info.rounds_done + 1..=info.rounds_total {
        let report = engine
            .step(server, &spec.workload, info.session_id, round)
            .unwrap();
        assert_eq!(
            report.proposed,
            report.predicted + report.cache_hits + report.shed,
            "round accounting law broke at round {round}"
        );
        reports.push(report);
    }
    assert!(reports.last().unwrap().done);
    reports
}

fn assert_fronts_bit_identical(a: &[ParetoEntry], b: &[ParetoEntry], context: &str) {
    assert_eq!(a.len(), b.len(), "{context}: front sizes differ");
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.point, y.point, "{context}: points diverged");
        assert_eq!(
            x.ipc.to_bits(),
            y.ipc.to_bits(),
            "{context}: ipc bits diverged"
        );
        assert_eq!(
            x.power.to_bits(),
            y.power.to_bits(),
            "{context}: power bits diverged"
        );
    }
}

// ---------------------------------------------------------------------------
// Satellite 1: checkpoint codec + torn-write fallback
// ---------------------------------------------------------------------------

fn random_point(rng: &mut StdRng) -> ConfigPoint {
    ConfigPoint::new((0..21).map(|_| rng.gen_range(0usize..8)).collect())
}

/// Any f64 bit pattern is a legal objective in a checkpoint — including
/// NaNs, infinities, signed zeros, and subnormals.
fn random_f64(rng: &mut StdRng) -> f64 {
    const SPECIALS: [f64; 6] = [0.0, -0.0, f64::NAN, f64::NEG_INFINITY, 4.9e-324, -3.25];
    if rng.gen_range(0u32..4) == 0 {
        SPECIALS[rng.gen_range(0usize..SPECIALS.len())]
    } else {
        f64::from_bits(rng.next_u64())
    }
}

fn random_entry(rng: &mut StdRng) -> ParetoEntry {
    ParetoEntry {
        point: random_point(rng),
        ipc: random_f64(rng),
        power: random_f64(rng),
    }
}

fn random_state(seed: u64) -> SessionState {
    let mut rng = StdRng::seed_from_u64(seed);
    let archive: Vec<ParetoEntry> = (0..rng.gen_range(0usize..12))
        .map(|_| random_entry(&mut rng))
        .collect();
    let last_report = if rng.gen_range(0u32..3) > 0 {
        Some(RoundReport {
            round: rng.gen_range(1u64..4),
            done: rng.gen_range(0u32..2) == 1,
            hypervolume: random_f64(&mut rng),
            proposed: rng.gen_range(0u32..200),
            predicted: rng.gen_range(0u32..100),
            cache_hits: rng.gen_range(0u32..100),
            shed: rng.gen_range(0u32..10),
            added: (0..rng.gen_range(0usize..5))
                .map(|_| random_entry(&mut rng))
                .collect(),
            removed: (0..rng.gen_range(0usize..5))
                .map(|_| random_point(&mut rng))
                .collect(),
        })
    } else {
        None
    };
    SessionState {
        spec: SessionSpec {
            workload: format!("wl-{seed}"),
            seed: rng.next_u64(),
            initial_samples: rng.gen_range(1u32..512),
            refinement_rounds: rng.gen_range(0u32..8),
            beam: rng.gen_range(1u32..16),
            round_timeout_us: rng.next_u64() % 10_000_000,
        },
        fingerprint: rng.next_u64(),
        explorer: ExplorerState {
            rng: [
                rng.next_u64(),
                rng.next_u64(),
                rng.next_u64(),
                rng.next_u64(),
            ],
            rounds_done: rng.gen_range(0u64..4),
            seen: (0..rng.gen_range(0usize..16))
                .map(|_| random_point(&mut rng))
                .collect(),
            archive,
        },
        predictions: rng.next_u64(),
        cache_hits: rng.next_u64(),
        shed: rng.next_u64(),
        proposed: rng.next_u64(),
        last_report,
        cache_entries: (0..rng.gen_range(0usize..10))
            .map(|_| (random_point(&mut rng), rng.next_u64()))
            .collect(),
    }
}

#[test]
fn session_state_roundtrip_is_bit_exact() {
    for seed in 0..64u64 {
        let state = random_state(seed);
        let bytes = encode_session(&state);
        let decoded = decode_session(&bytes).unwrap();
        // Equality through re-encoding compares every field by exact bit
        // pattern (PartialEq would call NaN != NaN).
        assert_eq!(
            encode_session(&decoded),
            bytes,
            "seed {seed}: state drifted through a codec round-trip"
        );
        assert_eq!(decoded.spec, state.spec);
        assert_eq!(decoded.fingerprint, state.fingerprint);
        assert_eq!(decoded.explorer.rng, state.explorer.rng);
        assert_eq!(decoded.explorer.seen, state.explorer.seen);
        assert_eq!(decoded.cache_entries, state.cache_entries);
    }
}

#[test]
fn truncated_or_corrupt_session_state_is_rejected() {
    let state = random_state(0xC0FFEE);
    let bytes = encode_session(&state);
    // Truncation at every cut, including the empty file.
    for cut in 0..bytes.len() {
        assert!(
            decode_session(&bytes[..cut]).is_err(),
            "truncation to {cut}/{} bytes must be rejected",
            bytes.len()
        );
    }
    // A single flipped byte anywhere is caught (header, length,
    // payload, or checksum).
    for i in 0..bytes.len() {
        let mut torn = bytes.clone();
        torn[i] ^= 0x40;
        assert!(
            decode_session(&torn).is_err(),
            "flip at byte {i}/{} must be rejected",
            bytes.len()
        );
    }
    // Trailing garbage is rejected too — a sealed container knows its
    // exact extent.
    let mut padded = bytes.clone();
    padded.extend_from_slice(&[0u8; 8]);
    assert!(decode_session(&padded).is_err());
}

#[test]
fn session_checkpoints_fall_back_past_torn_and_crashed_generations() {
    let dir = test_dir("faultio");
    let good = random_state(7);
    let newer = random_state(8);

    // Generation 1 lands cleanly.
    let mut config = CheckpointConfig::new(&dir);
    config.keep = 3;
    let mut ckpt = Checkpointer::new(config.clone());
    assert_eq!(ckpt.save_bytes(&encode_session(&good)).unwrap(), 1);

    // Generation 2 is torn mid-write: half the chunk persists but the
    // save reports success — only the seal's checksum can catch it.
    let mut torn_config = config.clone();
    torn_config.fault = Some(FaultSpec {
        fail_at: 1, // create=0, first chunk write=1
        mode: FaultMode::TornWrite,
    });
    let mut torn = Checkpointer::new(torn_config);
    assert_eq!(torn.save_bytes(&encode_session(&newer)).unwrap(), 2);

    // Load walks newest-first and falls back to the intact generation.
    let mut loader = Checkpointer::new(config.clone());
    let (loaded, generation) = loader.load_latest_with(decode_session).unwrap().unwrap();
    assert_eq!(generation, 1);
    assert_eq!(encode_session(&loaded), encode_session(&good));

    // A crash mid-write leaves only a temp file — no new generation at
    // all, and the previous one still loads.
    let mut crash_config = config.clone();
    crash_config.fault = Some(FaultSpec {
        fail_at: 2,
        mode: FaultMode::CrashMidWrite,
    });
    let mut crash = Checkpointer::new(crash_config);
    assert!(crash.save_bytes(&encode_session(&newer)).is_err());
    let mut loader = Checkpointer::new(config);
    let (loaded, generation) = loader.load_latest_with(decode_session).unwrap().unwrap();
    assert_eq!(generation, 1);
    assert_eq!(encode_session(&loaded), encode_session(&good));

    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// Satellite 2: dedup point cache exactly-once laws
// ---------------------------------------------------------------------------

fn point_bits(fp: u64, point: &ConfigPoint) -> u64 {
    let mut bytes = fp.to_le_bytes().to_vec();
    for &i in point.indices() {
        bytes.extend_from_slice(&(i as u64).to_le_bytes());
    }
    fnv1a(&bytes)
}

#[test]
fn point_cache_predicts_each_point_exactly_once_across_interleavings() {
    // 200 seeded interleavings of 3 sessions racing over an overlapping
    // point set. Whatever the schedule, each point's "prediction" (the
    // Owed path) runs exactly once, every waiter observes the owner's
    // bits, and the duplicate counter stays zero.
    const SESSIONS: usize = 3;
    const FP: u64 = 0xFEED;
    for seed in 0..200u64 {
        let points: Vec<ConfigPoint> = {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..12).map(|_| random_point(&mut rng)).collect()
        };
        let cache = PointCache::new();
        let predictions = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for session in 0..SESSIONS {
                let cache = &cache;
                let predictions = &predictions;
                let points = &points;
                scope.spawn(move || {
                    // Each session visits the shared points in its own
                    // seeded order with its own seeded pauses.
                    let mut rng = StdRng::seed_from_u64(seed * 31 + session as u64);
                    let mut order: Vec<usize> = (0..points.len()).collect();
                    for i in (1..order.len()).rev() {
                        order.swap(i, rng.gen_range(0usize..=i));
                    }
                    for i in order {
                        let point = &points[i];
                        let want = point_bits(FP, point);
                        match cache.try_claim(FP, point) {
                            Claim::Owed => {
                                predictions.fetch_add(1, Ordering::SeqCst);
                                std::thread::sleep(Duration::from_micros(rng.gen_range(0u64..80)));
                                cache.fulfil(FP, point, want);
                            }
                            Claim::Ready(bits) => assert_eq!(bits, want),
                            Claim::InFlight => {
                                let bits = cache
                                    .await_ready(FP, point, Duration::from_secs(10))
                                    .expect("owner must fulfil");
                                assert_eq!(bits, want);
                            }
                        }
                    }
                });
            }
        });
        let unique: std::collections::HashSet<&ConfigPoint> = points.iter().collect();
        assert_eq!(
            predictions.load(Ordering::SeqCst),
            unique.len(),
            "seed {seed}: predictions issued != unique points proposed"
        );
        assert_eq!(
            cache.duplicate_fulfils(),
            0,
            "seed {seed}: duplicate prediction"
        );
        assert_eq!(cache.ready_points(), unique.len());
    }
}

#[test]
fn abandoned_claims_unblock_waiters_and_are_retaken() {
    let cache = Arc::new(PointCache::new());
    let point = ConfigPoint::new(vec![3; 21]);
    assert_eq!(cache.try_claim(1, &point), Claim::Owed);
    assert_eq!(cache.try_claim(1, &point), Claim::InFlight);

    let waiter = {
        let cache = cache.clone();
        let point = point.clone();
        std::thread::spawn(move || cache.await_ready(1, &point, Duration::from_secs(10)))
    };
    // The owner sheds: the waiter unblocks empty-handed and can retake
    // the claim itself.
    std::thread::sleep(Duration::from_millis(20));
    cache.abandon(1, &point);
    assert_eq!(waiter.join().unwrap(), None);
    assert_eq!(cache.try_claim(1, &point), Claim::Owed);
    cache.fulfil(1, &point, 42);
    assert_eq!(cache.try_claim(1, &point), Claim::Ready(42));
    assert_eq!(cache.duplicate_fulfils(), 0);

    // await_ready with a bounded timeout on a stuck in-flight point
    // returns None rather than hanging.
    let other = ConfigPoint::new(vec![4; 21]);
    assert_eq!(cache.try_claim(1, &other), Claim::Owed);
    assert_eq!(
        cache.await_ready(1, &other, Duration::from_millis(10)),
        None
    );
}

#[test]
fn purge_fingerprint_isolates_tenants() {
    let cache = PointCache::new();
    let mut rng = StdRng::seed_from_u64(11);
    let a_points: Vec<ConfigPoint> = (0..3).map(|_| random_point(&mut rng)).collect();
    let b_points: Vec<ConfigPoint> = (0..2).map(|_| random_point(&mut rng)).collect();
    for p in &a_points {
        assert_eq!(cache.try_claim(0xA, p), Claim::Owed);
        cache.fulfil(0xA, p, point_bits(0xA, p));
    }
    for p in &b_points {
        assert_eq!(cache.try_claim(0xB, p), Claim::Owed);
        cache.fulfil(0xB, p, point_bits(0xB, p));
    }
    let b_before = cache.ready_entries(0xB);

    // Hot-swapping tenant A's model purges exactly A's points.
    assert_eq!(cache.purge_fingerprint(0xA), 3);
    assert!(cache.ready_entries(0xA).is_empty());
    assert_eq!(cache.ready_entries(0xB), b_before);
    assert_eq!(cache.ready_points(), 2);

    // Restore seeds Ready entries but never clobbers a live claim.
    let claimed = random_point(&mut rng);
    assert_eq!(cache.try_claim(0xA, &claimed), Claim::Owed);
    cache.restore(0xA, &[(claimed.clone(), 7), (a_points[0].clone(), 9)]);
    assert_eq!(cache.try_claim(0xA, &a_points[0]), Claim::Ready(9));
    assert_eq!(cache.try_claim(0xA, &claimed), Claim::InFlight);
}

// ---------------------------------------------------------------------------
// Engine: bit-identity against the standalone explorer, cache sharing,
// kill/resume, hot-swap coherence, protocol misuse
// ---------------------------------------------------------------------------

#[test]
fn session_rounds_match_standalone_explorer_bit_for_bit() {
    let dir = test_dir("standalone");
    let server = start_server(&dir, &["mcf"]);
    let engine = SessionEngine::new(SessionEngineConfig::default());
    let sp = spec("mcf", 0x5E55);

    let reports = drive_session(&engine, &server, &sp);
    assert_eq!(reports.iter().map(|r| r.shed).sum::<u32>(), 0);

    // Satellite 3 over the service path: the per-round deltas rebuild
    // the front, and hypervolume never regresses.
    let mut applied: Vec<ParetoEntry> = Vec::new();
    let mut prev_hv = 0.0;
    for report in &reports {
        apply_front_delta(
            &mut applied,
            &FrontDelta {
                added: report.added.clone(),
                removed: report.removed.clone(),
            },
        );
        assert!(report.hypervolume >= prev_hv, "hypervolume regressed");
        prev_hv = report.hypervolume;
    }

    // The standalone explorer, predicting through the same server one
    // point at a time, lands on the identical front: sessions add
    // batching, caching, and checkpoints — never different bits.
    let space = DesignSpace::new();
    let standalone = explore_pareto(
        &space,
        |batch| {
            batch
                .iter()
                .map(|row| {
                    let ipc = server.submit("mcf", row, None).wait().unwrap().value;
                    (ipc, power_proxy(row))
                })
                .collect()
        },
        &explorer_config(&sp),
    );
    assert_fronts_bit_identical(
        &canonical_front(applied),
        &canonical_front(standalone),
        "session vs standalone",
    );

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn identical_exploration_is_served_entirely_from_the_shared_cache() {
    let dir = test_dir("dedup");
    let server = start_server(&dir, &["mcf"]);
    let engine = SessionEngine::new(SessionEngineConfig::default());

    // Two tenants running the same exploration seed (their specs differ
    // only in round timeout, so the session ids differ): the second
    // session proposes exactly the points the first predicted.
    let first = spec("mcf", 9);
    let mut second = spec("mcf", 9);
    second.round_timeout_us = 4_000_000;
    assert_ne!(first.session_id(), second.session_id());

    let reports_a = drive_session(&engine, &server, &first);
    let predicted_total: u32 = reports_a.iter().map(|r| r.predicted).sum();
    assert!(predicted_total > 0);

    let reports_b = drive_session(&engine, &server, &second);
    for (round, report) in reports_b.iter().enumerate() {
        assert_eq!(
            report.predicted,
            0,
            "round {}: twin session re-predicted cached points",
            round + 1
        );
        assert_eq!(report.cache_hits, report.proposed);
    }
    // Fleet-wide exactly-once law: predictions issued == unique points.
    assert_eq!(predicted_total as usize, engine.cache().ready_points());
    assert_eq!(engine.cache().duplicate_fulfils(), 0);

    // Same seed → bit-identical deltas, hypervolumes, and fronts.
    assert_eq!(reports_a.len(), reports_b.len());
    for (a, b) in reports_a.iter().zip(&reports_b) {
        assert_eq!(a.hypervolume.to_bits(), b.hypervolume.to_bits());
        assert_fronts_bit_identical(&a.added, &b.added, "twin deltas");
        assert_eq!(a.removed, b.removed);
    }

    // The exposition carries the law's instruments and both tenants'
    // hypervolume gauges.
    let text = engine.exposition();
    assert!(text.contains("counter session/duplicate_predictions_total 0"));
    assert!(text.contains("tenant "), "missing per-tenant gauge: {text}");

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn killed_session_resumes_bit_identically_and_replays_the_last_round() {
    let dir = test_dir("resume");
    let server = start_server(&dir, &["omnetpp"]);
    let sp = spec("omnetpp", 0xDEAD);
    let session_dir = dir.join("sessions");
    let persistent = || SessionEngineConfig {
        dir: Some(session_dir.clone()),
        ..SessionEngineConfig::default()
    };

    // Engine A completes two rounds, then "dies" (dropped without
    // close — exactly what a SIGKILL leaves behind).
    let engine_a = SessionEngine::new(persistent());
    let info = engine_a.open(&server, &sp).unwrap();
    let report_1 = engine_a
        .step(&server, "omnetpp", info.session_id, 1)
        .unwrap();
    let report_2 = engine_a
        .step(&server, "omnetpp", info.session_id, 2)
        .unwrap();
    drop(engine_a);

    // Engine B resumes from the checkpoint: same rounds_done, and a
    // retry of the unacknowledged round replays the stored report
    // instead of re-executing it.
    let engine_b = SessionEngine::new(persistent());
    let reopened = engine_b.open(&server, &sp).unwrap();
    assert!(reopened.resumed);
    assert_eq!(reopened.session_id, info.session_id);
    assert_eq!(reopened.rounds_done, 2);
    let replayed = engine_b
        .step(&server, "omnetpp", info.session_id, 2)
        .unwrap();
    assert_eq!(replayed, report_2);
    let report_3 = engine_b
        .step(&server, "omnetpp", info.session_id, 3)
        .unwrap();
    assert!(report_3.done);

    // An uninterrupted engine (fresh cache, no persistence) lands on
    // the same exploration state bit for bit.
    let engine_c = SessionEngine::new(SessionEngineConfig::default());
    let reports_c = drive_session(&engine_c, &server, &sp);
    assert_eq!(reports_c[0], report_1);
    assert_eq!(*reports_c.last().unwrap(), report_3);
    let state_b = engine_b.state_of(info.session_id).unwrap();
    let state_c = engine_c.state_of(info.session_id).unwrap();
    assert_eq!(state_b.explorer, state_c.explorer);
    assert_fronts_bit_identical(
        &canonical_front(metadse::explorer::pareto_front(&state_b.explorer.archive)),
        &canonical_front(metadse::explorer::pareto_front(&state_c.explorer.archive)),
        "kill+resume vs uninterrupted",
    );

    // The resumed engine restored A's cache entries, so resumption
    // never re-predicted an already-predicted point: total predictions
    // across A and B equal the unique points in B's cache.
    assert_eq!(
        state_b.predictions as usize,
        engine_b.cache().ready_points()
    );
    assert_eq!(engine_b.cache().duplicate_fulfils(), 0);

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn hot_swap_rebinds_the_session_and_purges_only_its_fingerprint() {
    let dir = test_dir("hotswap");
    let server = start_server(&dir, &["mcf", "omnetpp"]);
    let engine = SessionEngine::new(SessionEngineConfig::default());
    let spec_a = spec("mcf", 21);
    let spec_b = spec("omnetpp", 22);

    let info_a = engine.open(&server, &spec_a).unwrap();
    let info_b = engine.open(&server, &spec_b).unwrap();
    assert_ne!(info_a.fingerprint, info_b.fingerprint);
    engine.step(&server, "mcf", info_a.session_id, 1).unwrap();
    engine
        .step(&server, "omnetpp", info_b.session_id, 1)
        .unwrap();
    assert!(!engine.cache().ready_entries(info_a.fingerprint).is_empty());
    let b_before = engine.cache().ready_entries(info_b.fingerprint);
    assert!(!b_before.is_empty());

    // Publish a new generation for mcf and make the server see it.
    server.registry().publish("mcf", &servable(777)).unwrap();
    let swapped = server.registry().refresh("mcf").unwrap();
    let new_fp = swapped.servable.fingerprint();
    assert_ne!(new_fp, info_a.fingerprint);

    // The next step rebinds to the new generation and purges exactly
    // the old fingerprint's cached points; the other tenant's cache and
    // session are untouched.
    let report = engine.step(&server, "mcf", info_a.session_id, 2).unwrap();
    assert_eq!(report.round, 2);
    assert!(engine.cache().ready_entries(info_a.fingerprint).is_empty());
    assert_eq!(engine.cache().ready_entries(info_b.fingerprint), b_before);
    let state_a = engine.state_of(info_a.session_id).unwrap();
    assert_eq!(state_a.fingerprint, new_fp);
    let text = engine.exposition();
    assert!(
        !text.contains("counter session/swap_purged_points_total 0"),
        "swap purge went unrecorded: {text}"
    );
    engine
        .step(&server, "omnetpp", info_b.session_id, 2)
        .unwrap();

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn step_protocol_rejects_misuse_with_typed_errors() {
    let dir = test_dir("protocol");
    let server = start_server(&dir, &["mcf"]);
    let engine = SessionEngine::new(SessionEngineConfig::default());

    // Unknown workload at open; unknown session at step.
    assert_eq!(
        engine.open(&server, &spec("nope", 1)),
        Err(SessionError::UnknownWorkload("nope".to_string()))
    );
    assert_eq!(
        engine.step(&server, "mcf", 0xBAD, 1),
        Err(SessionError::UnknownSession(0xBAD))
    );

    let sp = spec("mcf", 2);
    let info = engine.open(&server, &sp).unwrap();
    // Opening the same spec again is idempotent, not a new session.
    let again = engine.open(&server, &sp).unwrap();
    assert_eq!(again.session_id, info.session_id);
    assert_eq!(engine.active(), 1);

    // Round 0 has no stored report to replay; skipping ahead is a
    // protocol violation with the expected round in the error.
    assert_eq!(
        engine.step(&server, "mcf", info.session_id, 0),
        Err(SessionError::BadRound {
            expected: 1,
            got: 0
        })
    );
    assert_eq!(
        engine.step(&server, "mcf", info.session_id, 2),
        Err(SessionError::BadRound {
            expected: 1,
            got: 2
        })
    );
    // A step for the right session under the wrong workload is refused.
    assert_eq!(
        engine.step(&server, "omnetpp", info.session_id, 1),
        Err(SessionError::WorkloadMismatch)
    );

    for round in 1..=info.rounds_total {
        engine.step(&server, "mcf", info.session_id, round).unwrap();
    }
    // Past the budget: the session is exhausted, but the final round
    // still replays.
    assert_eq!(
        engine.step(&server, "mcf", info.session_id, info.rounds_total + 1),
        Err(SessionError::Exhausted)
    );
    assert!(engine
        .step(&server, "mcf", info.session_id, info.rounds_total)
        .is_ok());

    // Close is final (without persistence the state is gone).
    assert!(engine.close(info.session_id));
    assert!(!engine.close(info.session_id));
    assert_eq!(
        engine.step(&server, "mcf", info.session_id, info.rounds_total),
        Err(SessionError::UnknownSession(info.session_id))
    );

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// Wire level: session ops through shard workers and the front door
// ---------------------------------------------------------------------------

#[cfg(unix)]
mod wire {
    use super::*;
    use metadse::shard::ShardSpec;
    use metadse_obs::introspect::query;
    use metadse_serve::front::{Front, FrontClient, FrontConfig};
    use metadse_serve::shard::{intro_socket, shard_socket, ShardOptions, ShardServer};
    use metadse_serve::supervisor::wait_ready;
    use metadse_serve::ErrorCode;

    fn start_fleet(dir: &Path, count: usize) -> (Vec<ShardServer>, Front) {
        let root = dir.join("models");
        let shards: Vec<ShardServer> = (0..count)
            .map(|index| {
                ShardServer::start(ShardOptions {
                    socket: shard_socket(dir, index),
                    registry_root: root.clone(),
                    spec: ShardSpec::new(index, count).unwrap(),
                    keep: 4,
                    config: serve_config(),
                    session_dir: Some(dir.join(format!("sessions-{index}"))),
                })
                .unwrap()
            })
            .collect();
        for shard in &shards {
            wait_ready(&intro_socket(shard.socket()), Duration::from_secs(10)).unwrap();
        }
        let front = Front::start(FrontConfig::new(
            dir.join("front.sock"),
            shards.iter().map(|s| s.socket().to_path_buf()).collect(),
        ))
        .unwrap();
        (shards, front)
    }

    #[test]
    fn sessions_route_through_the_front_door_per_tenant() {
        let dir = test_dir("wire");
        {
            let registry = ModelRegistry::new(dir.join("models"), 4);
            for (i, name) in ["mcf", "omnetpp", "gcc"].iter().enumerate() {
                registry.publish(name, &servable(1000 + i as u64)).unwrap();
            }
        }
        let (shards, front) = start_fleet(&dir, 2);
        let mut client = FrontClient::connect(front.socket()).unwrap();

        for (i, workload) in ["mcf", "omnetpp", "gcc"].iter().enumerate() {
            let sp = spec(workload, 100 + i as u64);
            let info = client.open_session(&sp).unwrap();
            assert_eq!(info.session_id, sp.session_id());
            assert_eq!(info.rounds_total, u64::from(sp.refinement_rounds) + 1);
            // Idempotent re-open across the wire.
            let again = client.open_session(&sp).unwrap();
            assert_eq!(again.session_id, info.session_id);

            let mut applied: Vec<ParetoEntry> = Vec::new();
            let mut prev_hv = 0.0;
            for round in 1..=info.rounds_total {
                let report = client
                    .step_session(workload, info.session_id, round)
                    .unwrap();
                assert_eq!(report.round, round);
                assert_eq!(
                    report.proposed,
                    report.predicted + report.cache_hits + report.shed
                );
                assert!(report.hypervolume >= prev_hv);
                prev_hv = report.hypervolume;
                apply_front_delta(
                    &mut applied,
                    &FrontDelta {
                        added: report.added.clone(),
                        removed: report.removed.clone(),
                    },
                );
                assert_eq!(report.done, round == info.rounds_total);
            }
            assert!(!applied.is_empty());

            // The shard owning this tenant exposes its session metrics
            // through the introspection plane.
            let owner = shards
                .iter()
                .find(|s| {
                    query(&intro_socket(s.socket()), "metrics")
                        .unwrap()
                        .body
                        .contains(&format!("workload {workload}"))
                })
                .unwrap_or_else(|| panic!("no shard exposes tenant {workload}"));
            let metrics = query(&intro_socket(owner.socket()), "metrics").unwrap();
            assert!(metrics
                .body
                .contains("counter session/duplicate_predictions_total 0"));

            assert!(client.close_session(workload, info.session_id).unwrap());
        }

        // Bad round numbers and unknown sessions cross both hops as
        // typed, non-retryable errors.
        let sp = spec("mcf", 999);
        let info = client.open_session(&sp).unwrap();
        let err = client.step_session("mcf", info.session_id, 5).unwrap_err();
        assert_eq!(err.code, ErrorCode::BadRequest);
        let err = client.step_session("mcf", 0x1234, 1).unwrap_err();
        assert_eq!(err.code, ErrorCode::UnknownSession);
        assert!(!err.retryable());

        front.shutdown();
        for shard in shards {
            shard.shutdown();
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
