//! In-process integration suite for the sharded serving fabric: shard
//! workers + front door wired through real unix sockets (process-level
//! crash-restart is exercised by the `shard_soak` bin and CI's
//! shard-soak job; here every piece runs in one test process so
//! failures are debuggable).
#![cfg(unix)]

use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use metadse::predictor::{PredictorConfig, TransformerPredictor};
use metadse::shard::ShardSpec;
use metadse::ServablePredictor;
use metadse_obs::introspect::query;
use metadse_serve::front::{Front, FrontClient, FrontConfig};
use metadse_serve::shard::{intro_socket, shard_socket, ShardOptions, ShardServer};
use metadse_serve::supervisor::wait_ready;
use metadse_serve::{BatchConfig, ErrorCode, ModelRegistry, ServeConfig};

const GEOMETRY: PredictorConfig = PredictorConfig {
    num_params: 6,
    d_model: 8,
    heads: 2,
    depth: 1,
    d_hidden: 16,
    head_hidden: 8,
};

fn servable(seed: u64) -> ServablePredictor {
    ServablePredictor::capture(&TransformerPredictor::new(GEOMETRY, seed), None, "ipc")
}

fn fleet_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("metadse-shardtest-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn serve_config() -> ServeConfig {
    ServeConfig {
        batch: BatchConfig {
            max_batch: 8,
            max_wait_us: 100,
            queue_capacity: 256,
        },
        workers: 1,
        ..ServeConfig::default()
    }
}

fn sample_config(rng: &mut StdRng) -> Vec<f64> {
    (0..GEOMETRY.num_params)
        .map(|_| rng.gen_range(0.0..1.0))
        .collect()
}

/// Publishes `names` into a fresh registry at `dir/models`, returning
/// the root and each workload's reference predictor for bit-identity
/// checks.
fn publish_workloads(dir: &Path, names: &[&str]) -> (PathBuf, Vec<TransformerPredictor>) {
    let root = dir.join("models");
    let registry = ModelRegistry::new(&root, 4);
    let mut references = Vec::new();
    for (i, name) in names.iter().enumerate() {
        let artifact = servable(1000 + i as u64);
        registry.publish(name, &artifact).unwrap();
        references.push(artifact.instantiate().unwrap());
    }
    (root, references)
}

fn start_fleet(dir: &Path, root: &Path, count: usize) -> (Vec<ShardServer>, Front) {
    let shards: Vec<ShardServer> = (0..count)
        .map(|index| {
            ShardServer::start(ShardOptions {
                socket: shard_socket(dir, index),
                registry_root: root.to_path_buf(),
                spec: ShardSpec::new(index, count).unwrap(),
                keep: 4,
                config: serve_config(),
                session_dir: None,
            })
            .unwrap()
        })
        .collect();
    // The supervisor's barrier, in-process: every shard must answer
    // ready (including shards owning zero workloads).
    for shard in &shards {
        wait_ready(&intro_socket(shard.socket()), Duration::from_secs(10)).unwrap();
    }
    let front = Front::start(FrontConfig::new(
        dir.join("front.sock"),
        shards.iter().map(|s| s.socket().to_path_buf()).collect(),
    ))
    .unwrap();
    (shards, front)
}

#[test]
fn front_routes_every_workload_and_results_are_bit_identical() {
    let dir = fleet_dir("route");
    let names = ["astar", "bzip2", "gcc", "mcf", "omnetpp"];
    let (root, references) = publish_workloads(&dir, &names);
    let (shards, front) = start_fleet(&dir, &root, 3);

    // The partition is total: every workload landed on exactly one
    // shard, and the front routes all of them.
    assert_eq!(
        front.routed_workloads(),
        names.iter().map(|n| n.to_string()).collect::<Vec<_>>()
    );
    let owned: usize = shards.iter().map(|s| s.registry().workloads().len()).sum();
    assert_eq!(owned, names.len());

    let mut client = FrontClient::connect(front.socket()).unwrap();
    // The front's workload listing aggregates the shards'.
    let listed = client.workloads().unwrap();
    assert_eq!(listed.len(), names.len());

    let mut rng = StdRng::seed_from_u64(7);
    for round in 0..20 {
        for (i, name) in names.iter().enumerate() {
            let config = sample_config(&mut rng);
            let got = client.predict(name, &config, None).unwrap();
            let want = references[i].predict(std::slice::from_ref(&config))[0];
            assert_eq!(
                got.value.to_bits(),
                want.to_bits(),
                "round {round}: {name} diverged from serial predict across two hops"
            );
            assert!(got.shard < 3);
            assert!(got.trace_id > 0);
        }
    }
    let served: u64 = shards.iter().map(ShardServer::served).sum();
    assert_eq!(served, 20 * names.len() as u64, "every predict hit a shard");

    front.shutdown();
    for shard in shards {
        shard.shutdown();
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn typed_errors_cross_both_hops() {
    let dir = fleet_dir("errors");
    let (root, _refs) = publish_workloads(&dir, &["mcf"]);
    let (shards, front) = start_fleet(&dir, &root, 2);
    let mut client = FrontClient::connect(front.socket()).unwrap();

    // Unknown workload: typed, not a hang or transport error.
    let err = client.predict("nope", &[0.0; 6], None).unwrap_err();
    assert_eq!(err.code, ErrorCode::UnknownWorkload);
    assert!(!err.retryable());

    // Arity mismatch: rejected by the owning shard's server.
    let err = client.predict("mcf", &[0.5; 3], None).unwrap_err();
    assert_eq!(err.code, ErrorCode::BadArity);

    // A 1 µs deadline dies queued on the shard → DeadlineMiss crosses
    // back through the front.
    let mut misses = 0;
    for _ in 0..50 {
        match client.predict("mcf", &[0.5; 6], Some(Duration::from_micros(1))) {
            Err(e) if e.code == ErrorCode::DeadlineMiss => misses += 1,
            Ok(_) | Err(_) => {}
        }
    }
    assert!(misses > 0, "tight deadlines should produce typed misses");

    front.shutdown();
    for shard in shards {
        shard.shutdown();
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn empty_shard_is_ready_and_front_survives_it() {
    let dir = fleet_dir("empty");
    // One workload, four shards: at least three shards own nothing.
    let (root, references) = publish_workloads(&dir, &["mcf"]);
    let (shards, front) = start_fleet(&dir, &root, 4);

    for shard in &shards {
        let ready = query(&intro_socket(shard.socket()), "ready").unwrap();
        assert!(
            ready.ok,
            "shard {} must be ready even with zero workloads: {}",
            shard.spec(),
            ready.body
        );
    }
    let mut client = FrontClient::connect(front.socket()).unwrap();
    let got = client.predict("mcf", &[0.25; 6], None).unwrap();
    let want = references[0].predict(&[vec![0.25; 6]])[0];
    assert_eq!(got.value.to_bits(), want.to_bits());

    front.shutdown();
    for shard in shards {
        shard.shutdown();
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn workload_published_after_launch_becomes_routable_via_rebuild() {
    let dir = fleet_dir("late");
    let (root, _refs) = publish_workloads(&dir, &["mcf"]);
    let (shards, front) = start_fleet(&dir, &root, 2);
    let mut client = FrontClient::connect(front.socket()).unwrap();

    // Publish a new workload after the fleet is up, then make its
    // owning shard load it (process workers would see it on their next
    // refresh; in-process we drive the refresh directly).
    let artifact = servable(4242);
    let reference = artifact.instantiate().unwrap();
    let publisher = ModelRegistry::new(&root, 4);
    publisher.publish("leela", &artifact).unwrap();
    let owner = metadse::shard::shard_of(artifact.fingerprint(), 2);
    shards[owner].registry().refresh("leela").unwrap();

    // First predict for the unseen name triggers a routing rebuild.
    let got = client.predict("leela", &[0.75; 6], None).unwrap();
    let want = reference.predict(&[vec![0.75; 6]])[0];
    assert_eq!(got.value.to_bits(), want.to_bits());
    assert_eq!(got.shard, owner);
    assert!(
        front
            .stats()
            .route_rebuilds
            .load(std::sync::atomic::Ordering::Relaxed)
            >= 1
    );

    front.shutdown();
    for shard in shards {
        shard.shutdown();
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn front_introspection_reports_ready_and_per_shard_counters() {
    let dir = fleet_dir("frontintro");
    let names = ["astar", "bzip2", "gcc", "mcf"];
    let (root, _refs) = publish_workloads(&dir, &names);
    let (shards, front) = start_fleet(&dir, &root, 2);
    let front_intro = intro_socket(front.socket());

    let ready = query(&front_intro, "ready").unwrap();
    assert!(ready.ok);
    assert!(ready.body.contains("shards 2"));
    assert!(ready.body.contains("workloads 4"));

    let mut client = FrontClient::connect(front.socket()).unwrap();
    let mut rng = StdRng::seed_from_u64(11);
    for name in &names {
        client
            .predict(name, &sample_config(&mut rng), None)
            .unwrap();
    }
    let metrics = query(&front_intro, "metrics").unwrap();
    assert!(metrics.ok);
    let count = |prefix: &str| -> u64 {
        metrics
            .body
            .lines()
            .find(|l| l.starts_with(prefix))
            .and_then(|l| l.split_whitespace().last())
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| panic!("missing {prefix} in {}", metrics.body))
    };
    assert_eq!(count("counter front/served_total"), 4);
    assert_eq!(count("counter front/unavailable_total"), 0);
    assert_eq!(
        count("counter front/shard0_forwarded") + count("counter front/shard1_forwarded"),
        4
    );

    front.shutdown();
    for shard in shards {
        shard.shutdown();
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn dead_shard_yields_typed_unavailable_not_a_hang() {
    let dir = fleet_dir("deadshard");
    let names = ["astar", "bzip2", "gcc", "mcf", "omnetpp", "sjeng"];
    let (root, references) = publish_workloads(&dir, &names);
    let (mut shards, front) = start_fleet(&dir, &root, 2);
    let mut client = FrontClient::connect(front.socket()).unwrap();

    // Which workloads does shard 1 own?
    let shard1_owned: Vec<String> = shards[1].registry().workloads();
    assert!(
        !shard1_owned.is_empty(),
        "test needs shard 1 to own something; got {shard1_owned:?}"
    );

    // Tear shard 1 down (the in-process stand-in for SIGKILL: its
    // socket stops answering; the front's pooled connections die).
    shards.remove(1).shutdown();

    for (i, name) in names.iter().enumerate() {
        let config = vec![0.5; 6];
        let result = client.predict(name, &config, None);
        if shard1_owned.iter().any(|w| w == name) {
            let err = result.unwrap_err();
            assert_eq!(err.code, ErrorCode::Unavailable, "{name}: {err}");
            assert!(err.retryable(), "unavailable must invite a retry");
        } else {
            // Shard 0's workloads keep serving, bit-identically.
            let got = result.unwrap();
            let want = references[i].predict(&[config])[0];
            assert_eq!(got.value.to_bits(), want.to_bits());
        }
    }
    assert!(
        front
            .stats()
            .unavailable
            .load(std::sync::atomic::Ordering::Relaxed)
            >= shard1_owned.len() as u64
    );

    front.shutdown();
    for shard in shards {
        shard.shutdown();
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn direct_shard_connection_speaks_the_same_protocol() {
    // FrontClient against a bare shard socket: the front adds routing,
    // not protocol.
    let dir = fleet_dir("direct");
    let (root, references) = publish_workloads(&dir, &["mcf"]);
    let shard = ShardServer::start(ShardOptions {
        socket: shard_socket(&dir, 0),
        registry_root: root,
        spec: ShardSpec::single(),
        keep: 4,
        config: serve_config(),
        session_dir: None,
    })
    .unwrap();
    wait_ready(&intro_socket(shard.socket()), Duration::from_secs(10)).unwrap();

    let mut client = FrontClient::connect(shard.socket()).unwrap();
    let got = client.predict("mcf", &[0.125; 6], None).unwrap();
    let want = references[0].predict(&[vec![0.125; 6]])[0];
    assert_eq!(got.value.to_bits(), want.to_bits());
    let arc: Arc<ModelRegistry> = Arc::clone(shard.registry());
    assert_eq!(arc.workloads(), vec!["mcf".to_string()]);

    shard.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
