//! Hot-swap race suite: `ModelRegistry::publish` swapping generations
//! at full tilt while `Server::submit` traffic resolves through the
//! per-epoch plan-cache memo.
//!
//! The property under test: a prediction's `generation` field names the
//! model that actually computed it, and its value is bit-identical to
//! that generation's serial `predict` — a swap can change *which*
//! generation answers, never hand a request generation G's plan with
//! generation H's weights. Afterwards the plan cache must hold plans
//! only for the fingerprint still being served (stale plans were purged
//! by the swaps, not leaked).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use metadse::predictor::{PredictorConfig, TransformerPredictor};
use metadse::ServablePredictor;
use metadse_serve::{BatchConfig, ModelRegistry, ServeConfig, ServeError, Server};

const GEOMETRY: PredictorConfig = PredictorConfig {
    num_params: 6,
    d_model: 8,
    heads: 2,
    depth: 1,
    d_hidden: 16,
    head_hidden: 8,
};

/// Two artifacts that alternate generations: odd generations serve
/// seed 21, even generations seed 42.
fn artifacts() -> [ServablePredictor; 2] {
    [21u64, 42].map(|seed| {
        ServablePredictor::capture(&TransformerPredictor::new(GEOMETRY, seed), None, "ipc")
    })
}

fn request_config(i: usize) -> Vec<f64> {
    (0..GEOMETRY.num_params)
        .map(|j| ((i * 13 + j * 5) % 23) as f64 / 23.0)
        .collect()
}

#[test]
fn hot_swap_race_never_serves_stale_plan_or_mismatched_generation() {
    let root = std::env::temp_dir().join(format!("metadse-serve-hotswap-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let registry = Arc::new(ModelRegistry::new(&root, 4));
    let pair = artifacts();
    // Generation 1 = pair[0] (odd → seed 21); the swapper continues the
    // alternation, so generation g is always pair[(g + 1) % 2].
    registry.publish("mcf", &pair[0]).unwrap();

    let server = Server::start(
        Arc::clone(&registry),
        ServeConfig {
            batch: BatchConfig {
                max_batch: 8,
                max_wait_us: 50,
                queue_capacity: 256,
            },
            workers: 2,
            ..ServeConfig::default()
        },
    );

    const SWAPS: u64 = 150;
    let swapping = AtomicBool::new(true);
    let checked = AtomicU64::new(0);
    let swap_generations = AtomicU64::new(0);
    std::thread::scope(|s| {
        let registry_ref = &registry;
        let swapping_ref = &swapping;
        let swap_generations = &swap_generations;
        let pair_ref = &pair;
        s.spawn(move || {
            for _ in 0..SWAPS {
                // Alternation invariant: next generation is the parity
                // opposite of the one just published.
                let next = registry_ref.get("mcf").unwrap().generation + 1;
                let generation = registry_ref
                    .publish("mcf", &pair_ref[(next as usize + 1) % 2])
                    .unwrap();
                assert_eq!(generation, next, "single publisher, no gaps");
                swap_generations.store(generation, Ordering::Release);
                std::thread::sleep(Duration::from_micros(300));
            }
            swapping_ref.store(false, Ordering::Release);
        });

        for worker in 0..2usize {
            let server_ref = &server;
            let swapping_ref = &swapping;
            let checked_ref = &checked;
            s.spawn(move || {
                // Live predictors are not Sync — every checker owns its
                // own pair, instantiated from the same sealed bytes.
                let models =
                    artifacts().map(|servable| servable.instantiate().expect("reference model"));
                let mut i = worker * 1_000_000;
                let deadline = Instant::now() + Duration::from_secs(60);
                while swapping_ref.load(Ordering::Acquire) && Instant::now() < deadline {
                    i += 1;
                    let config = request_config(i);
                    match server_ref.submit("mcf", &config, None).wait() {
                        Ok(prediction) => {
                            // The generation the server claims answered
                            // must reproduce the value bit for bit.
                            let expect = models[(prediction.generation as usize + 1) % 2]
                                .predict(std::slice::from_ref(&config))[0];
                            assert_eq!(
                                prediction.value.to_bits(),
                                expect.to_bits(),
                                "request {i}: generation {} answered with foreign bits \
                                 (stale plan or torn swap)",
                                prediction.generation
                            );
                            checked_ref.fetch_add(1, Ordering::Relaxed);
                        }
                        // Back-pressure under the swap storm is a valid
                        // outcome; losing the workload is not.
                        Err(ServeError::Shed) => std::thread::sleep(Duration::from_micros(100)),
                        Err(e) => panic!("request {i}: unexpected outcome {e}"),
                    }
                }
            });
        }
    });

    let verified = checked.load(Ordering::Relaxed);
    assert!(
        verified > 500,
        "checkers only verified {verified} predictions — the race never raced"
    );
    assert_eq!(swap_generations.load(Ordering::Acquire), SWAPS + 1);

    // Post-race: the memo must already be (or harmlessly re-resolve to)
    // the final generation, and the plan cache must hold plans for the
    // surviving fingerprint only — every superseded plan was purged.
    let last = registry.get("mcf").unwrap();
    let prediction = server
        .submit("mcf", &request_config(7), None)
        .wait()
        .unwrap();
    assert_eq!(prediction.generation, last.generation);
    let live_fp = last.servable.fingerprint();
    for (fp, _capacity) in registry.cached_plan_shapes() {
        assert_eq!(
            fp, live_fp,
            "plan cache retains fingerprint {fp:#x} after its generation was swapped out"
        );
    }

    server.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}
