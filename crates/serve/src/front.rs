//! The serving front door: the one process DSE clients talk to.
//!
//! A [`Front`] binds a unix socket speaking the same binary protocol as
//! the shards ([`crate::shard`]) and routes every predict request to
//! the worker process owning its workload's artifact. Routing is a
//! table `workload → shard index` built by asking each shard what it
//! serves (the shards derived their partitions from the deterministic
//! [`metadse::shard::shard_of`] assignment, so the table is consistent
//! by construction); it is rebuilt on demand when a request names a
//! workload the table has never seen — the path by which workloads
//! published after fleet launch become routable.
//!
//! ## Failure model
//!
//! The front holds a small pool of reusable connections per shard. When
//! a shard is SIGKILLed mid-round-trip, the forward fails, the pooled
//! connection is discarded, and one fresh connect is attempted; if the
//! shard is still down the client receives a typed
//! [`ErrorCode::Unavailable`] reply — **never** a silent drop and never
//! a hang. Predictions are pure functions of `(artifact, config)`, so
//! clients retry `Unavailable` outcomes freely; once the supervisor has
//! restarted the shard (recovering its registry partition via the
//! corrupt-generation fallback), the same request returns the same
//! bits it would have before the crash.
//!
//! The front's own introspection endpoint (`<socket>.intro`) serves
//! `ready` / `health` / `metrics` with per-shard forward counters.

#![cfg(unix)]

use std::collections::HashMap;
use std::io;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::{Duration, Instant};

use metadse_obs as obs;
use metadse_obs::frame::write_frame;
use metadse_obs::introspect::{Respond, Response};

use crate::shard::{
    intro_socket, read_frame_or_stop, round_trip, ErrorCode, ShardError, ShardReply, ShardRequest,
    WirePrediction, WorkloadInfo, IDLE_POLL,
};

/// Front-door configuration.
#[derive(Debug, Clone)]
pub struct FrontConfig {
    /// Socket clients connect to; introspection binds `<socket>.intro`.
    pub socket: PathBuf,
    /// Data sockets of the shard fleet, indexed by shard.
    pub shards: Vec<PathBuf>,
    /// How long [`Front::start`] keeps retrying the initial routing
    /// sweep while shards finish binding their sockets.
    pub route_timeout: Duration,
}

impl FrontConfig {
    /// A front on `socket` over `shards`, with a 10 s routing budget.
    pub fn new(socket: impl Into<PathBuf>, shards: Vec<PathBuf>) -> FrontConfig {
        FrontConfig {
            socket: socket.into(),
            shards,
            route_timeout: Duration::from_secs(10),
        }
    }
}

/// Lifetime counters, exposed on the introspection endpoint and to
/// embedding harnesses.
#[derive(Debug)]
pub struct FrontStats {
    /// Requests received from clients (any kind).
    pub received: AtomicU64,
    /// Predictions forwarded and answered with a value.
    pub served: AtomicU64,
    /// Requests answered `Unavailable` (owning shard down).
    pub unavailable: AtomicU64,
    /// Requests answered with any other error class.
    pub errored: AtomicU64,
    /// Routing-table rebuilds triggered after launch.
    pub route_rebuilds: AtomicU64,
    /// Predictions forwarded per shard.
    pub per_shard: Vec<AtomicU64>,
}

impl FrontStats {
    fn new(shards: usize) -> FrontStats {
        FrontStats {
            received: AtomicU64::new(0),
            served: AtomicU64::new(0),
            unavailable: AtomicU64::new(0),
            errored: AtomicU64::new(0),
            route_rebuilds: AtomicU64::new(0),
            per_shard: (0..shards).map(|_| AtomicU64::new(0)).collect(),
        }
    }
}

/// One pooled, reusable connection lane set per shard.
struct Pool {
    sockets: Vec<PathBuf>,
    lanes: Vec<Mutex<Vec<UnixStream>>>,
}

impl Pool {
    fn new(sockets: Vec<PathBuf>) -> Pool {
        let lanes = (0..sockets.len()).map(|_| Mutex::new(Vec::new())).collect();
        Pool { sockets, lanes }
    }

    /// A connection to `shard`: pooled when available (`false`), fresh
    /// otherwise (`true`).
    fn checkout(&self, shard: usize) -> io::Result<(UnixStream, bool)> {
        if let Some(stream) = self.lanes[shard].lock().unwrap().pop() {
            return Ok((stream, false));
        }
        let stream = UnixStream::connect(&self.sockets[shard])?;
        stream.set_read_timeout(Some(Duration::from_secs(30)))?;
        stream.set_write_timeout(Some(Duration::from_secs(5)))?;
        Ok((stream, true))
    }

    fn checkin(&self, shard: usize, stream: UnixStream) {
        self.lanes[shard].lock().unwrap().push(stream);
    }

    /// Drops every pooled connection to `shard` (it just died; they are
    /// all dead with it).
    fn purge(&self, shard: usize) {
        self.lanes[shard].lock().unwrap().clear();
    }
}

/// The routing table: workload → owning shard plus what it reported.
#[derive(Default)]
struct Routes {
    by_workload: HashMap<String, (usize, WorkloadInfo)>,
}

struct FrontCore {
    pool: Pool,
    routes: RwLock<Routes>,
    /// Serializes rebuilds and rate-limits them (a stampede of unknown
    /// workloads must not hammer every shard per request).
    rebuild_gate: Mutex<Option<Instant>>,
    stats: FrontStats,
    stop: AtomicBool,
}

impl FrontCore {
    /// Queries every reachable shard for its workloads and swaps the
    /// table. Down shards contribute nothing (their workloads reroute
    /// nowhere until they return — requests for them get
    /// `Unavailable` … `UnknownWorkload` is reserved for names no shard
    /// has ever claimed).
    fn sweep_routes(&self) -> usize {
        let mut table = Routes::default();
        for (index, socket) in self.pool.sockets.iter().enumerate() {
            let Ok(mut stream) = UnixStream::connect(socket) else {
                continue;
            };
            let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
            let _ = stream.set_write_timeout(Some(Duration::from_secs(5)));
            if let Ok(ShardReply::Workloads(list)) =
                round_trip(&mut stream, &ShardRequest::Workloads)
            {
                for info in list {
                    table.by_workload.insert(info.name.clone(), (index, info));
                }
            }
        }
        let count = table.by_workload.len();
        *self.routes.write().unwrap() = table;
        count
    }

    /// Rebuilds the routing table, at most once per second across all
    /// handler threads.
    fn rebuild_routes(&self) {
        let mut gate = self.rebuild_gate.lock().unwrap();
        if let Some(last) = *gate {
            if last.elapsed() < Duration::from_secs(1) {
                return;
            }
        }
        *gate = Some(Instant::now());
        drop(gate);
        self.stats.route_rebuilds.fetch_add(1, Ordering::Relaxed);
        self.sweep_routes();
    }

    fn route(&self, workload: &str) -> Option<usize> {
        self.routes
            .read()
            .unwrap()
            .by_workload
            .get(workload)
            .map(|(shard, _)| *shard)
    }

    /// Forwards one request to `shard`, reusing a pooled connection
    /// when one exists. A failed round-trip on a pooled connection is
    /// retried once on a fresh connect (the pooled stream may simply
    /// predate a shard restart); a failure on a fresh connection means
    /// the shard is down *now* → `Unavailable`.
    fn forward(&self, shard: usize, request: &ShardRequest) -> ShardReply {
        for _attempt in 0..2 {
            let (mut stream, fresh) = match self.pool.checkout(shard) {
                Ok(pair) => pair,
                Err(e) => {
                    self.pool.purge(shard);
                    return unavailable(shard, &format!("connect failed: {e}"));
                }
            };
            match round_trip(&mut stream, request) {
                Ok(reply) => {
                    self.pool.checkin(shard, stream);
                    return reply;
                }
                Err(e) => {
                    // The stream is dead either way; a pooled one earns
                    // a retry against a fresh connection.
                    self.pool.purge(shard);
                    if fresh {
                        return unavailable(shard, &format!("round-trip failed: {e}"));
                    }
                }
            }
        }
        unavailable(shard, "retry exhausted")
    }

    fn handle(&self, request: ShardRequest) -> ShardReply {
        self.stats.received.fetch_add(1, Ordering::Relaxed);
        // Predicts and session ops route identically: every session op
        // carries its workload, so a tenant's whole exploration stays
        // pinned to the shard owning its model (and its point cache).
        let reply = match request.routing_workload() {
            Some(workload) => {
                let shard = match self.route(workload) {
                    Some(shard) => Some(shard),
                    None => {
                        // Never-seen workload: maybe published after
                        // launch — sweep once, then decide.
                        self.rebuild_routes();
                        self.route(workload)
                    }
                };
                match shard {
                    Some(shard) => {
                        self.stats.per_shard[shard].fetch_add(1, Ordering::Relaxed);
                        self.forward(shard, &request)
                    }
                    None => ShardReply::Error(ShardError::new(
                        ErrorCode::UnknownWorkload,
                        format!("no shard serves workload {workload:?}"),
                    )),
                }
            }
            None => {
                let routes = self.routes.read().unwrap();
                let mut list: Vec<WorkloadInfo> = routes
                    .by_workload
                    .values()
                    .map(|(_, info)| info.clone())
                    .collect();
                list.sort_by(|a, b| a.name.cmp(&b.name));
                ShardReply::Workloads(list)
            }
        };
        match &reply {
            ShardReply::Error(e) if e.code == ErrorCode::Unavailable => {
                self.stats.unavailable.fetch_add(1, Ordering::Relaxed);
            }
            ShardReply::Error(_) => {
                self.stats.errored.fetch_add(1, Ordering::Relaxed);
            }
            _ => {
                self.stats.served.fetch_add(1, Ordering::Relaxed);
            }
        }
        reply
    }
}

fn unavailable(shard: usize, detail: &str) -> ShardReply {
    ShardReply::Error(ShardError::new(
        ErrorCode::Unavailable,
        format!("shard {shard} unavailable ({detail}); retry"),
    ))
}

/// Introspection responder for the front process.
struct FrontResponder {
    core: Arc<FrontCore>,
}

impl Respond for FrontResponder {
    fn respond(&self, command: &str) -> Response {
        let stats = &self.core.stats;
        match command {
            "ready" => {
                if self.core.stop.load(Ordering::Acquire) {
                    return Response::err("not ready: front stopped");
                }
                let workloads = self.core.routes.read().unwrap().by_workload.len();
                Response::ok(format!(
                    "ready\nshards {}\nworkloads {workloads}\n",
                    self.core.pool.sockets.len()
                ))
            }
            "health" => Response::ok("ok\n".to_string()),
            "metrics" => {
                let mut out = String::new();
                out.push_str(&format!(
                    "counter front/received_total {}\n",
                    stats.received.load(Ordering::Relaxed)
                ));
                out.push_str(&format!(
                    "counter front/served_total {}\n",
                    stats.served.load(Ordering::Relaxed)
                ));
                out.push_str(&format!(
                    "counter front/unavailable_total {}\n",
                    stats.unavailable.load(Ordering::Relaxed)
                ));
                out.push_str(&format!(
                    "counter front/errored_total {}\n",
                    stats.errored.load(Ordering::Relaxed)
                ));
                out.push_str(&format!(
                    "counter front/route_rebuilds {}\n",
                    stats.route_rebuilds.load(Ordering::Relaxed)
                ));
                for (i, n) in stats.per_shard.iter().enumerate() {
                    out.push_str(&format!(
                        "counter front/shard{}_forwarded {}\n",
                        i,
                        n.load(Ordering::Relaxed)
                    ));
                }
                Response::ok(out)
            }
            other => Response::err(format!(
                "unknown command {other:?} (try health, ready, metrics)"
            )),
        }
    }
}

/// A running front-door process. Drop (or [`shutdown`](Front::shutdown))
/// stops the listeners.
pub struct Front {
    socket: PathBuf,
    core: Arc<FrontCore>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
    conn_threads: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
    _intro: obs::introspect::Listener,
}

impl Front {
    /// Builds the routing table (retrying until every shard answered at
    /// least once or `route_timeout` elapsed), binds the client socket
    /// and the introspection socket, and starts accepting.
    ///
    /// # Errors
    ///
    /// Any socket bind or thread-spawn error. An incomplete routing
    /// sweep is *not* an error — missing shards stay unroutable until
    /// a later rebuild finds them.
    pub fn start(config: FrontConfig) -> io::Result<Front> {
        let shard_count = config.shards.len();
        let core = Arc::new(FrontCore {
            pool: Pool::new(config.shards),
            routes: RwLock::new(Routes::default()),
            rebuild_gate: Mutex::new(None),
            stats: FrontStats::new(shard_count),
            stop: AtomicBool::new(false),
        });

        // Initial sweep: keep asking until every shard has contributed
        // (workload counts can legitimately be zero on small fleets) or
        // the budget runs out.
        let deadline = Instant::now() + config.route_timeout;
        loop {
            let routed = core.sweep_routes();
            if routed > 0 || Instant::now() >= deadline {
                break;
            }
            std::thread::sleep(Duration::from_millis(20));
        }

        let responder = Arc::new(FrontResponder {
            core: Arc::clone(&core),
        });
        let intro = obs::introspect::serve_unix(&intro_socket(&config.socket), responder)?;

        let _ = std::fs::remove_file(&config.socket);
        let listener = UnixListener::bind(&config.socket)?;
        listener.set_nonblocking(true)?;
        let conn_threads = Arc::new(Mutex::new(Vec::new()));
        let accept_core = Arc::clone(&core);
        let accept_conns = Arc::clone(&conn_threads);
        let accept_thread = std::thread::Builder::new()
            .name("metadse-front".to_string())
            .spawn(move || accept_loop(&listener, &accept_core, &accept_conns))?;

        obs::report::line(format!(
            "front: {} shard(s), {} workload(s) routed, listening on {}",
            shard_count,
            core.routes.read().unwrap().by_workload.len(),
            config.socket.display()
        ));
        Ok(Front {
            socket: config.socket,
            core,
            accept_thread: Some(accept_thread),
            conn_threads,
            _intro: intro,
        })
    }

    /// The client-socket path.
    pub fn socket(&self) -> &Path {
        &self.socket
    }

    /// Lifetime counters.
    pub fn stats(&self) -> &FrontStats {
        &self.core.stats
    }

    /// Workloads currently routed, sorted.
    pub fn routed_workloads(&self) -> Vec<String> {
        let routes = self.core.routes.read().unwrap();
        let mut names: Vec<String> = routes.by_workload.keys().cloned().collect();
        names.sort_unstable();
        names
    }

    /// Stops accepting and joins every handler thread.
    pub fn shutdown(mut self) {
        self.close();
    }

    fn close(&mut self) {
        self.core.stop.store(true, Ordering::Release);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        let handles: Vec<_> = self.conn_threads.lock().unwrap().drain(..).collect();
        for t in handles {
            let _ = t.join();
        }
        let _ = std::fs::remove_file(&self.socket);
    }
}

impl Drop for Front {
    fn drop(&mut self) {
        self.close();
    }
}

fn accept_loop(
    listener: &UnixListener,
    core: &Arc<FrontCore>,
    conns: &Mutex<Vec<std::thread::JoinHandle<()>>>,
) {
    const POLL: Duration = Duration::from_millis(1);
    while !core.stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _)) => {
                let core = Arc::clone(core);
                if let Ok(handle) =
                    std::thread::Builder::new().spawn(move || serve_connection(stream, &core))
                {
                    let mut guard = conns.lock().unwrap();
                    guard.retain(|h| !h.is_finished());
                    guard.push(handle);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => std::thread::sleep(POLL),
            Err(_) => std::thread::sleep(POLL),
        }
    }
}

fn serve_connection(mut stream: UnixStream, core: &FrontCore) {
    let _ = stream.set_read_timeout(Some(IDLE_POLL));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(5)));
    loop {
        let payload = match read_frame_or_stop(&mut stream, &core.stop) {
            Ok(Some(p)) => p,
            Ok(None) | Err(_) => return,
        };
        let reply = match ShardRequest::decode(&payload) {
            Ok(request) => core.handle(request),
            Err(e) => ShardReply::Error(ShardError::new(
                ErrorCode::BadRequest,
                format!("bad request frame: {e}"),
            )),
        };
        let Ok(encoded) = reply.encode() else { return };
        if write_frame(&mut stream, &encoded).is_err() {
            return;
        }
    }
}

// ---------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------

/// A prediction as decoded by a client, with the value rebuilt from its
/// wire bits (bit-identical to the serving shard's serial `predict`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardPrediction {
    /// Predicted metric value.
    pub value: f64,
    /// Registry generation of the serving model.
    pub generation: u64,
    /// Coalesced batch size on the owning shard.
    pub batch_size: usize,
    /// Trace id on the owning shard's introspection endpoint.
    pub trace_id: u64,
    /// Which shard executed the forward.
    pub shard: usize,
}

impl From<WirePrediction> for ShardPrediction {
    fn from(w: WirePrediction) -> ShardPrediction {
        ShardPrediction {
            value: f64::from_bits(w.value_bits),
            generation: w.generation,
            batch_size: w.batch_size as usize,
            trace_id: w.trace_id,
            shard: w.shard as usize,
        }
    }
}

/// A blocking client connection to a [`Front`] (or directly to one
/// shard — the protocol is identical).
pub struct FrontClient {
    stream: UnixStream,
}

impl FrontClient {
    /// Connects to the front (or shard) socket at `path`.
    ///
    /// # Errors
    ///
    /// Any connect error.
    pub fn connect(path: &Path) -> io::Result<FrontClient> {
        let stream = UnixStream::connect(path)?;
        stream.set_read_timeout(Some(Duration::from_secs(30)))?;
        stream.set_write_timeout(Some(Duration::from_secs(5)))?;
        Ok(FrontClient { stream })
    }

    /// One predict round-trip. Transport failures (the front died, the
    /// stream broke) come back as [`ErrorCode::Unavailable`] so callers
    /// have a single retry policy; reconnect before retrying.
    ///
    /// # Errors
    ///
    /// Typed [`ShardError`] — see [`ShardError::retryable`].
    pub fn predict(
        &mut self,
        workload: &str,
        config: &[f64],
        timeout: Option<Duration>,
    ) -> Result<ShardPrediction, ShardError> {
        let request = ShardRequest::Predict {
            workload: workload.to_string(),
            config: config.to_vec(),
            timeout_us: timeout.map_or(0, |t| t.as_micros() as u64),
        };
        match self.round_trip(&request)? {
            ShardReply::Value(w) => Ok(w.into()),
            ShardReply::Error(e) => Err(e),
            _ => Err(ShardError::new(
                ErrorCode::BadRequest,
                "peer answered predict with a different reply kind",
            )),
        }
    }

    /// Lists the workloads the peer routes/serves.
    ///
    /// # Errors
    ///
    /// Typed [`ShardError`] (transport failures map to `Unavailable`).
    pub fn workloads(&mut self) -> Result<Vec<WorkloadInfo>, ShardError> {
        match self.round_trip(&ShardRequest::Workloads)? {
            ShardReply::Workloads(list) => Ok(list),
            ShardReply::Error(e) => Err(e),
            _ => Err(ShardError::new(
                ErrorCode::BadRequest,
                "peer answered workload listing with a different reply kind",
            )),
        }
    }

    /// Opens (idempotently) an exploration session for `spec`. A
    /// session that already exists — or resumes from a checkpoint on
    /// the owning shard — reports its `rounds_done` so the client can
    /// continue stepping where it left off.
    ///
    /// # Errors
    ///
    /// Typed [`ShardError`] (transport failures map to `Unavailable`).
    pub fn open_session(
        &mut self,
        spec: &crate::session::SessionSpec,
    ) -> Result<crate::session::OpenInfo, ShardError> {
        match self.round_trip(&ShardRequest::OpenSession(spec.clone()))? {
            ShardReply::SessionOpened(info) => Ok(info),
            ShardReply::Error(e) => Err(e),
            _ => Err(ShardError::new(
                ErrorCode::BadRequest,
                "peer answered open-session with a different reply kind",
            )),
        }
    }

    /// Steps one exploration round (execute `rounds_done + 1` or replay
    /// `rounds_done` — see `SessionEngine::step` for the protocol).
    ///
    /// # Errors
    ///
    /// Typed [`ShardError`]; [`ErrorCode::UnknownSession`] means the
    /// shard lost the session (restart without persistence) — re-open,
    /// then retry.
    pub fn step_session(
        &mut self,
        workload: &str,
        session: u64,
        round: u64,
    ) -> Result<crate::session::RoundReport, ShardError> {
        let request = ShardRequest::StepSession {
            workload: workload.to_string(),
            session,
            round,
        };
        match self.round_trip(&request)? {
            ShardReply::SessionDelta { report, .. } => Ok(report),
            ShardReply::Error(e) => Err(e),
            _ => Err(ShardError::new(
                ErrorCode::BadRequest,
                "peer answered step-session with a different reply kind",
            )),
        }
    }

    /// Closes a session on its owning shard; `Ok(true)` when it was
    /// open there.
    ///
    /// # Errors
    ///
    /// Typed [`ShardError`] (transport failures map to `Unavailable`).
    pub fn close_session(&mut self, workload: &str, session: u64) -> Result<bool, ShardError> {
        let request = ShardRequest::CloseSession {
            workload: workload.to_string(),
            session,
        };
        match self.round_trip(&request)? {
            ShardReply::SessionClosed(existed) => Ok(existed),
            ShardReply::Error(e) => Err(e),
            _ => Err(ShardError::new(
                ErrorCode::BadRequest,
                "peer answered close-session with a different reply kind",
            )),
        }
    }

    fn round_trip(&mut self, request: &ShardRequest) -> Result<ShardReply, ShardError> {
        round_trip(&mut self.stream, request)
            .map_err(|e| ShardError::new(ErrorCode::Unavailable, format!("transport: {e}")))
    }
}
