//! Shard-fleet supervisor: spawn worker processes, gate on readiness,
//! restart crashes.
//!
//! The supervisor owns N child processes (normally `metadse-serve`
//! workers, or any binary re-executing itself with a worker flag). For
//! each it:
//!
//! 1. **spawns** the configured command;
//! 2. **waits ready** by polling the worker's introspection socket with
//!    the same `ready` probe the `metadse-introspect ready --wait` CLI
//!    uses ([`wait_ready`]) — the barrier that keeps load off a shard
//!    still loading its registry partition;
//! 3. **monitors**: a background thread reaps exits. Any child that
//!    dies while the supervisor is running — SIGKILL from a fault
//!    injector, OOM kill, a crash — is respawned with the *same*
//!    command after a short backoff, up to
//!    [`SupervisorConfig::max_restarts`] per shard. The respawned
//!    worker reopens the shared registry root; the registry's
//!    newest-first corrupt-generation fallback means even a crash that
//!    tore an artifact mid-write leaves the shard serving its partition.
//!
//! [`Supervisor::kill`] delivers SIGKILL ([`std::process::Child::kill`]
//! on unix) — the soak harness's fault injector — and the monitor
//! treats it like any other crash.

#![cfg(unix)]

use std::io;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use metadse_obs as obs;
use metadse_obs::introspect::query;

use crate::shard::intro_socket;

/// Polls `sock`'s introspection endpoint with the `ready` command until
/// it answers ok — the same probe/poll loop as
/// `metadse-introspect ready --wait` — or `timeout` elapses.
///
/// # Errors
///
/// `TimedOut` with the last failure detail when the deadline passes.
pub fn wait_ready(sock: &Path, timeout: Duration) -> io::Result<()> {
    const POLL: Duration = Duration::from_millis(25);
    let deadline = Instant::now() + timeout;
    loop {
        let last = match query(sock, "ready") {
            Ok(reply) if reply.ok => return Ok(()),
            Ok(reply) => reply.body,
            Err(e) => e.to_string(),
        };
        if Instant::now() >= deadline {
            return Err(io::Error::new(
                io::ErrorKind::TimedOut,
                format!("{} not ready: {last}", sock.display()),
            ));
        }
        std::thread::sleep(POLL);
    }
}

/// How to launch one shard worker, and where to probe its readiness.
#[derive(Debug, Clone)]
pub struct ShardPlan {
    /// Executable to spawn.
    pub program: PathBuf,
    /// Full argument vector.
    pub args: Vec<String>,
    /// The worker's data socket; readiness is probed at
    /// `<socket>.intro`.
    pub socket: PathBuf,
}

impl ShardPlan {
    fn spawn(&self) -> io::Result<Child> {
        Command::new(&self.program)
            .args(&self.args)
            .stdin(Stdio::null())
            .spawn()
    }
}

/// Restart policy and readiness budget.
#[derive(Debug, Clone, Copy)]
pub struct SupervisorConfig {
    /// Restarts allowed per shard before it is left down for good.
    pub max_restarts: u64,
    /// Pause before respawning a dead shard.
    pub restart_backoff: Duration,
    /// Readiness budget per worker, at launch and after each restart.
    pub ready_timeout: Duration,
}

impl Default for SupervisorConfig {
    fn default() -> SupervisorConfig {
        SupervisorConfig {
            max_restarts: 64,
            restart_backoff: Duration::from_millis(50),
            ready_timeout: Duration::from_secs(30),
        }
    }
}

struct ShardSlot {
    plan: ShardPlan,
    child: Mutex<Option<Child>>,
    restarts: AtomicU64,
}

struct SupervisorCore {
    slots: Vec<ShardSlot>,
    config: SupervisorConfig,
    stopping: AtomicBool,
    total_restarts: AtomicU64,
}

/// A running fleet of supervised shard workers.
pub struct Supervisor {
    core: Arc<SupervisorCore>,
    monitor: Option<std::thread::JoinHandle<()>>,
}

impl Supervisor {
    /// Spawns one worker per plan and blocks until every worker's
    /// introspection endpoint reports ready.
    ///
    /// # Errors
    ///
    /// Spawn failures, or `TimedOut` when a worker never became ready
    /// (the fleet is torn down before returning the error).
    pub fn launch(plans: Vec<ShardPlan>, config: SupervisorConfig) -> io::Result<Supervisor> {
        let core = Arc::new(SupervisorCore {
            slots: plans
                .into_iter()
                .map(|plan| ShardSlot {
                    plan,
                    child: Mutex::new(None),
                    restarts: AtomicU64::new(0),
                })
                .collect(),
            config,
            stopping: AtomicBool::new(false),
            total_restarts: AtomicU64::new(0),
        });
        // Spawn everything first, then barrier: workers load their
        // registry partitions concurrently.
        for slot in &core.slots {
            match slot.plan.spawn() {
                Ok(child) => *slot.child.lock().unwrap() = Some(child),
                Err(e) => {
                    kill_all(&core);
                    return Err(e);
                }
            }
        }
        for slot in &core.slots {
            if let Err(e) = wait_ready(&intro_socket(&slot.plan.socket), config.ready_timeout) {
                kill_all(&core);
                return Err(e);
            }
        }
        let monitor_core = Arc::clone(&core);
        let monitor = std::thread::Builder::new()
            .name("metadse-supervisor".to_string())
            .spawn(move || monitor_loop(&monitor_core))?;
        Ok(Supervisor {
            core,
            monitor: Some(monitor),
        })
    }

    /// Number of supervised shards.
    pub fn len(&self) -> usize {
        self.core.slots.len()
    }

    /// Whether the fleet is empty.
    pub fn is_empty(&self) -> bool {
        self.core.slots.is_empty()
    }

    /// Total restarts performed across all shards.
    pub fn restarts(&self) -> u64 {
        self.core.total_restarts.load(Ordering::Relaxed)
    }

    /// Restarts performed for one shard.
    pub fn shard_restarts(&self, index: usize) -> u64 {
        self.core.slots[index].restarts.load(Ordering::Relaxed)
    }

    /// Delivers SIGKILL to shard `index` (fault injection). The monitor
    /// observes the death and restarts the worker like any crash.
    /// Returns whether a living child was actually signalled.
    pub fn kill(&self, index: usize) -> bool {
        let mut guard = self.core.slots[index].child.lock().unwrap();
        match guard.as_mut() {
            Some(child) => child.kill().is_ok(),
            None => false,
        }
    }

    /// The pid of shard `index`'s current worker process, if alive.
    pub fn pid(&self, index: usize) -> Option<u32> {
        self.core.slots[index]
            .child
            .lock()
            .unwrap()
            .as_ref()
            .map(Child::id)
    }

    /// Blocks until shard `index` reports ready again (used by fault
    /// injectors to pace kills so every crash is a crash of a *serving*
    /// shard).
    ///
    /// # Errors
    ///
    /// `TimedOut` when the shard never came back.
    pub fn await_shard_ready(&self, index: usize, timeout: Duration) -> io::Result<()> {
        wait_ready(&intro_socket(&self.core.slots[index].plan.socket), timeout)
    }

    /// Stops monitoring, kills every worker, and reaps them.
    pub fn shutdown(mut self) {
        self.close();
    }

    fn close(&mut self) {
        self.core.stopping.store(true, Ordering::Release);
        if let Some(t) = self.monitor.take() {
            let _ = t.join();
        }
        kill_all(&self.core);
    }
}

impl Drop for Supervisor {
    fn drop(&mut self) {
        self.close();
    }
}

fn kill_all(core: &SupervisorCore) {
    for slot in &core.slots {
        if let Some(mut child) = slot.child.lock().unwrap().take() {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

fn monitor_loop(core: &SupervisorCore) {
    const SWEEP: Duration = Duration::from_millis(10);
    while !core.stopping.load(Ordering::Acquire) {
        for (index, slot) in core.slots.iter().enumerate() {
            let died = {
                let mut guard = slot.child.lock().unwrap();
                match guard.as_mut().map(Child::try_wait) {
                    Some(Ok(Some(status))) => {
                        *guard = None;
                        Some(status)
                    }
                    // Still running, already down, or a transient wait
                    // error — nothing to do this sweep.
                    _ => None,
                }
            };
            let Some(status) = died else { continue };
            if core.stopping.load(Ordering::Acquire) {
                return;
            }
            let restarts = slot.restarts.load(Ordering::Relaxed);
            if restarts >= core.config.max_restarts {
                obs::report::warn(format!(
                    "supervisor: shard {index} died ({status}) after {restarts} restarts; giving up"
                ));
                continue;
            }
            obs::report::warn(format!(
                "supervisor: shard {index} died ({status}); restarting (restart #{})",
                restarts + 1
            ));
            std::thread::sleep(core.config.restart_backoff);
            match slot.plan.spawn() {
                Ok(child) => {
                    *slot.child.lock().unwrap() = Some(child);
                    slot.restarts.fetch_add(1, Ordering::Relaxed);
                    core.total_restarts.fetch_add(1, Ordering::Relaxed);
                    // Best-effort readiness: the monitor must keep
                    // sweeping other shards, so failures surface on the
                    // next probe of this shard, not here.
                    let _ = wait_ready(&intro_socket(&slot.plan.socket), core.config.ready_timeout);
                }
                Err(e) => {
                    obs::report::warn(format!("supervisor: shard {index} respawn failed: {e}"));
                }
            }
        }
        std::thread::sleep(SWEEP);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sleeper_plan(tag: &str) -> ShardPlan {
        // `/bin/sleep` stands in for a worker: the supervisor only
        // needs spawn/kill/reap semantics here, so readiness is probed
        // against a socket that a stub listener answers for.
        ShardPlan {
            program: PathBuf::from("/bin/sleep"),
            args: vec!["600".to_string()],
            socket: std::env::temp_dir().join(format!(
                "metadse-supervisor-{tag}-{}.sock",
                std::process::id()
            )),
        }
    }

    fn stub_ready_listener(socket: &Path) -> metadse_obs::introspect::Listener {
        metadse_obs::introspect::serve_unix(
            &intro_socket(socket),
            Arc::new(|cmd: &str| {
                if cmd == "ready" {
                    metadse_obs::introspect::Response::ok("ready\n")
                } else {
                    metadse_obs::introspect::Response::err("unknown")
                }
            }),
        )
        .unwrap()
    }

    #[test]
    fn crash_restart_respawns_with_backoff_and_counts() {
        let plan = sleeper_plan("restart");
        let _stub = stub_ready_listener(&plan.socket);
        let supervisor = Supervisor::launch(
            vec![plan],
            SupervisorConfig {
                max_restarts: 8,
                restart_backoff: Duration::from_millis(5),
                ready_timeout: Duration::from_secs(5),
            },
        )
        .unwrap();
        let first_pid = supervisor.pid(0).expect("child alive");

        assert!(supervisor.kill(0), "SIGKILL delivered");
        let deadline = Instant::now() + Duration::from_secs(10);
        while supervisor.restarts() == 0 {
            assert!(
                Instant::now() < deadline,
                "monitor never restarted the shard"
            );
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(supervisor.shard_restarts(0), 1);
        let second_pid = supervisor.pid(0).expect("respawned child alive");
        assert_ne!(first_pid, second_pid, "a fresh process was spawned");
        supervisor.shutdown();
    }

    #[test]
    fn max_restarts_caps_the_crash_loop() {
        let plan = sleeper_plan("cap");
        let _stub = stub_ready_listener(&plan.socket);
        let supervisor = Supervisor::launch(
            vec![plan],
            SupervisorConfig {
                max_restarts: 1,
                restart_backoff: Duration::from_millis(1),
                ready_timeout: Duration::from_secs(5),
            },
        )
        .unwrap();
        assert!(supervisor.kill(0));
        let deadline = Instant::now() + Duration::from_secs(10);
        while supervisor.restarts() < 1 {
            assert!(Instant::now() < deadline);
            std::thread::sleep(Duration::from_millis(10));
        }
        // Kill the respawn; the cap forbids a second restart.
        let deadline = Instant::now() + Duration::from_secs(10);
        while !supervisor.kill(0) {
            assert!(Instant::now() < deadline);
            std::thread::sleep(Duration::from_millis(10));
        }
        std::thread::sleep(Duration::from_millis(200));
        assert_eq!(supervisor.restarts(), 1, "cap respected");
        assert!(supervisor.pid(0).is_none(), "shard left down at the cap");
        supervisor.shutdown();
    }

    #[test]
    fn launch_fails_fast_when_readiness_never_comes() {
        // No stub listener → wait_ready must time out and the child be
        // reaped, not leaked.
        let plan = sleeper_plan("noready");
        let result = Supervisor::launch(
            vec![plan],
            SupervisorConfig {
                max_restarts: 0,
                restart_backoff: Duration::from_millis(1),
                ready_timeout: Duration::from_millis(200),
            },
        );
        assert!(matches!(result, Err(ref e) if e.kind() == io::ErrorKind::TimedOut));
    }
}
