//! Generation-rotated model registry with hot swap and corrupt fallback.
//!
//! On disk the registry is one directory per workload, each holding
//! generation-numbered sealed [`ServablePredictor`] artifacts:
//!
//! ```text
//! <root>/<workload>/gen-00000001.model
//! <root>/<workload>/gen-00000002.model   ← newest wins
//! ```
//!
//! [`ModelRegistry::publish`] writes the next generation atomically
//! (temp file → fsync → rename, via [`ServablePredictor::save`]) and
//! prunes old generations beyond the keep window — the same discipline
//! as the training checkpointer in `metadse::checkpoint`, so a crash
//! mid-publish can never leave a half-written artifact where loads look.
//!
//! Loading mirrors the checkpointer's *corrupt-generation fallback*:
//! [`ModelRegistry::refresh`] walks generations newest-first and serves
//! the first one that decodes; every unreadable generation is warned
//! about and counted on `serve/corrupt_fallbacks`. A torn latest file
//! therefore degrades to the previous generation instead of taking the
//! workload down.
//!
//! In memory the registry is a read-mostly table of
//! `Arc<`[`ModelEntry`]`>` behind an `RwLock`. Lookups clone the `Arc`,
//! so an in-flight batch keeps using the model it started with while
//! `refresh`/`publish` swap the table entry underneath — hot swap
//! without a stop-the-world. Swaps are fingerprint-checked: a refresh
//! that finds bytes describing the content already being served keeps
//! the existing entry, so worker-side instance caches keyed by
//! fingerprint stay warm across no-op refreshes.

use std::collections::HashMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Instant;

use metadse::shard::ShardSpec;
use metadse::ServablePredictor;
use metadse_nn::serialize::CheckpointError;
use metadse_obs::{self as obs, report};

use crate::plan::Plan;

/// One servable model at one generation, shared immutably with workers.
#[derive(Debug)]
pub struct ModelEntry {
    /// Workload the model serves.
    pub workload: String,
    /// On-disk generation number this entry was loaded from.
    pub generation: u64,
    /// The decoded artifact (fingerprint-verified).
    pub servable: ServablePredictor,
}

/// Cumulative plan-cache counters (see
/// [`ModelRegistry::plan_cache_stats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PlanCacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that compiled a fresh plan.
    pub misses: u64,
    /// Total wall time spent compiling plans, in microseconds.
    pub compile_us: u64,
}

/// Directory-backed registry of hot-swappable serving models.
#[derive(Debug)]
pub struct ModelRegistry {
    root: PathBuf,
    /// Generations retained per workload after a publish (min 2).
    keep: usize,
    table: RwLock<HashMap<String, Arc<ModelEntry>>>,
    /// Compiled plans keyed by `(artifact fingerprint, batch capacity)`.
    /// Content-addressed: a cached plan is *correct* for its
    /// fingerprint forever; eviction on hot swap is memory hygiene, not
    /// a correctness requirement.
    plans: RwLock<HashMap<(u64, usize), Arc<Plan>>>,
    /// Bumped on every table install; servers use it to invalidate
    /// per-workload route memos without re-locking the table per
    /// request.
    epoch: AtomicU64,
    /// When set, this registry is one shard of a fleet: only workloads
    /// whose newest readable artifact this spec [`owns`](ShardSpec::owns)
    /// are installed; everything else on disk is invisible. The
    /// assignment is the deterministic [`metadse::shard::shard_of`], so
    /// every worker process derives the same partition with no
    /// coordination.
    shard: Option<ShardSpec>,
    plan_hits: AtomicU64,
    plan_misses: AtomicU64,
    plan_compile_us: AtomicU64,
}

impl ModelRegistry {
    /// A registry rooted at `root` (created lazily), retaining `keep`
    /// generations per workload.
    pub fn new(root: impl Into<PathBuf>, keep: usize) -> ModelRegistry {
        ModelRegistry {
            root: root.into(),
            keep: keep.max(2),
            table: RwLock::new(HashMap::new()),
            plans: RwLock::new(HashMap::new()),
            epoch: AtomicU64::new(0),
            plan_hits: AtomicU64::new(0),
            plan_misses: AtomicU64::new(0),
            plan_compile_us: AtomicU64::new(0),
            shard: None,
        }
    }

    /// Opens `root` and loads the newest readable generation of every
    /// workload directory found there.
    pub fn open(root: impl Into<PathBuf>, keep: usize) -> ModelRegistry {
        let registry = ModelRegistry::new(root, keep);
        for workload in registry.scan_workloads() {
            let _ = registry.refresh(&workload);
        }
        registry
    }

    /// Opens `root` as one shard of a fleet: only workloads whose
    /// artifacts `spec` owns (by fingerprint) are loaded and served.
    /// This is the registry a `metadse-serve` worker process runs on —
    /// after a crash-restart it reopens the same root with the same
    /// spec and recovers exactly its partition, falling back past any
    /// generation the crash left corrupt.
    pub fn open_sharded(root: impl Into<PathBuf>, keep: usize, spec: ShardSpec) -> ModelRegistry {
        let mut registry = ModelRegistry::new(root, keep);
        registry.shard = Some(spec);
        for workload in registry.scan_workloads() {
            let _ = registry.refresh(&workload);
        }
        registry
    }

    /// The shard spec this registry filters by, if any.
    pub fn shard(&self) -> Option<ShardSpec> {
        self.shard
    }

    /// The registry's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Workload names currently loaded, sorted.
    pub fn workloads(&self) -> Vec<String> {
        let mut names: Vec<String> = self.table.read().unwrap().keys().cloned().collect();
        names.sort_unstable();
        names
    }

    /// The currently served entry for `workload`, if any.
    pub fn get(&self, workload: &str) -> Option<Arc<ModelEntry>> {
        self.table.read().unwrap().get(workload).cloned()
    }

    /// Publishes `servable` as the next generation for `workload`:
    /// atomic write, prune beyond the keep window, hot-swap the table.
    /// Returns the generation number written.
    ///
    /// # Errors
    ///
    /// Any I/O failure creating the workload directory or writing the
    /// artifact; on error the previously served entry stays in place.
    pub fn publish(
        &self,
        workload: &str,
        servable: &ServablePredictor,
    ) -> Result<u64, CheckpointError> {
        let dir = self.workload_dir(workload);
        fs::create_dir_all(&dir)?;
        let generations = scan_generations(&dir);
        let generation = generations.last().map_or(1, |(g, _)| g + 1);
        servable.save(dir.join(generation_file_name(generation)))?;
        for (old, path) in &generations {
            if old + self.keep as u64 <= generation {
                // Pruning is advisory; never fail a successful publish.
                let _ = fs::remove_file(path);
            }
        }
        self.install(Arc::new(ModelEntry {
            workload: workload.to_string(),
            generation,
            servable: servable.clone(),
        }));
        obs::gauge("serve/generation", generation as f64);
        Ok(generation)
    }

    /// Re-reads `workload` from disk, newest generation first, falling
    /// back past corrupt files (each fallback is warned about and
    /// counted on `serve/corrupt_fallbacks`). Returns the entry now
    /// being served, or `None` when nothing on disk is readable — in
    /// which case a previously loaded entry is *kept*, not dropped.
    pub fn refresh(&self, workload: &str) -> Option<Arc<ModelEntry>> {
        let dir = self.workload_dir(workload);
        for (generation, path) in scan_generations(&dir).iter().rev() {
            match ServablePredictor::load(path) {
                Ok(servable) => {
                    if let Some(spec) = self.shard {
                        // Ownership is decided by the newest readable
                        // artifact: if it belongs to another shard, the
                        // workload is invisible here — no fallback to
                        // older (possibly differently-owned) bytes.
                        if !spec.owns(servable.fingerprint()) {
                            return None;
                        }
                    }
                    if let Some(current) = self.get(workload) {
                        // Fingerprint-checked swap: identical content at
                        // the same generation keeps worker caches warm.
                        if current.generation == *generation
                            && current.servable.fingerprint() == servable.fingerprint()
                        {
                            return Some(current);
                        }
                    }
                    let entry = Arc::new(ModelEntry {
                        workload: workload.to_string(),
                        generation: *generation,
                        servable,
                    });
                    self.install(entry.clone());
                    return Some(entry);
                }
                Err(e) => {
                    obs::counter("serve/corrupt_fallbacks", 1);
                    report::warn(format!(
                        "model {} unreadable ({e}); falling back to the previous generation",
                        path.display()
                    ));
                }
            }
        }
        self.get(workload)
    }

    /// Refreshes every workload directory under the root; returns the
    /// sorted names that ended up served.
    pub fn refresh_all(&self) -> Vec<String> {
        for workload in self.scan_workloads() {
            let _ = self.refresh(&workload);
        }
        self.workloads()
    }

    /// The compiled plan for `entry`'s artifact at `capacity` batch
    /// rows, served from the cache when one exists (one compile per
    /// `fingerprint × capacity`, shared by every worker via `Arc`).
    ///
    /// # Errors
    ///
    /// Propagates [`Plan::compile`] failures (malformed parameter
    /// payloads); nothing is cached on error, so callers can fall back
    /// to the layer-stack path.
    pub fn plan_for(
        &self,
        entry: &ModelEntry,
        capacity: usize,
    ) -> Result<Arc<Plan>, CheckpointError> {
        let key = (entry.servable.fingerprint(), capacity.max(1));
        if let Some(plan) = self.plans.read().unwrap().get(&key) {
            self.plan_hits.fetch_add(1, Ordering::Relaxed);
            obs::counter("serve/plan_cache_hits", 1);
            return Ok(plan.clone());
        }
        // Compile outside any lock: compiles are rare and readers must
        // not stall behind one.
        let started = Instant::now();
        let plan = Arc::new(Plan::compile(&entry.servable, key.1)?);
        let elapsed = started.elapsed().as_micros() as u64;
        self.plan_misses.fetch_add(1, Ordering::Relaxed);
        self.plan_compile_us.fetch_add(elapsed, Ordering::Relaxed);
        obs::counter("serve/plan_cache_misses", 1);
        obs::counter("serve/plan_compile_us", elapsed);
        let mut plans = self.plans.write().unwrap();
        // Keep the first plan on a compile race so every worker
        // converges on one Arc (either is bit-identical).
        Ok(plans.entry(key).or_insert(plan).clone())
    }

    /// Monotone table version; bumped by every install (publish,
    /// refresh swap). Route memos keyed on this value are invalidated
    /// by hot swaps without touching the table lock.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Cumulative plan-cache counters.
    pub fn plan_cache_stats(&self) -> PlanCacheStats {
        PlanCacheStats {
            hits: self.plan_hits.load(Ordering::Relaxed),
            misses: self.plan_misses.load(Ordering::Relaxed),
            compile_us: self.plan_compile_us.load(Ordering::Relaxed),
        }
    }

    /// `(fingerprint, capacity)` keys currently cached (tests and
    /// diagnostics).
    pub fn cached_plan_shapes(&self) -> Vec<(u64, usize)> {
        let mut keys: Vec<(u64, usize)> = self.plans.read().unwrap().keys().copied().collect();
        keys.sort_unstable();
        keys
    }

    fn install(&self, entry: Arc<ModelEntry>) {
        if let Some(spec) = self.shard {
            // A publish through a sharded registry still writes the
            // artifact (any process may produce models), but only the
            // owning shard serves it.
            if !spec.owns(entry.servable.fingerprint()) {
                return;
            }
        }
        let live: Vec<u64> = {
            let mut table = self.table.write().unwrap();
            table.insert(entry.workload.clone(), entry);
            table.values().map(|e| e.servable.fingerprint()).collect()
        };
        // Evict plans whose artifact is no longer served anywhere.
        // Purely memory hygiene — plans are content-addressed by
        // fingerprint, so a stale plan could never serve wrong bits; it
        // would only pin dead weights. Lock order is table → plans
        // here, and `plan_for` takes only `plans`, so no cycle exists.
        self.plans
            .write()
            .unwrap()
            .retain(|(fp, _), _| live.contains(fp));
        self.epoch.fetch_add(1, Ordering::Release);
    }

    fn workload_dir(&self, workload: &str) -> PathBuf {
        self.root.join(workload)
    }

    fn scan_workloads(&self) -> Vec<String> {
        let Ok(entries) = fs::read_dir(&self.root) else {
            return Vec::new();
        };
        let mut names: Vec<String> = entries
            .filter_map(|e| {
                let e = e.ok()?;
                if !e.file_type().ok()?.is_dir() {
                    return None;
                }
                Some(e.file_name().to_str()?.to_string())
            })
            .collect();
        names.sort_unstable();
        names
    }
}

fn generation_file_name(generation: u64) -> String {
    format!("gen-{generation:08}.model")
}

/// Parses `gen-XXXXXXXX.model`, rejecting temp files and strangers.
fn parse_generation(name: &str) -> Option<u64> {
    name.strip_prefix("gen-")?
        .strip_suffix(".model")?
        .parse()
        .ok()
}

/// Generation files under `dir`, sorted oldest → newest. A missing
/// directory is an empty list, not an error.
fn scan_generations(dir: &Path) -> Vec<(u64, PathBuf)> {
    let Ok(entries) = fs::read_dir(dir) else {
        return Vec::new();
    };
    let mut generations: Vec<(u64, PathBuf)> = entries
        .filter_map(|e| {
            let e = e.ok()?;
            let generation = parse_generation(e.file_name().to_str()?)?;
            Some((generation, e.path()))
        })
        .collect();
    generations.sort_unstable_by_key(|(g, _)| *g);
    generations
}

#[cfg(test)]
mod tests {
    use super::*;
    use metadse::predictor::{PredictorConfig, TransformerPredictor};

    fn small_servable(seed: u64) -> ServablePredictor {
        let model = TransformerPredictor::new(
            PredictorConfig {
                num_params: 4,
                d_model: 8,
                heads: 2,
                depth: 1,
                d_hidden: 12,
                head_hidden: 8,
            },
            seed,
        );
        ServablePredictor::capture(&model, None, "ipc")
    }

    fn temp_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "metadse-serve-registry-{tag}-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn publish_rotates_generations_and_prunes() {
        let root = temp_root("rotate");
        let registry = ModelRegistry::new(&root, 2);
        for seed in 0..4 {
            let generation = registry.publish("mcf", &small_servable(seed)).unwrap();
            assert_eq!(generation, seed + 1);
        }
        let on_disk: Vec<u64> = scan_generations(&root.join("mcf"))
            .iter()
            .map(|(g, _)| *g)
            .collect();
        assert_eq!(on_disk, vec![3, 4], "keep=2 retains the last two");
        assert_eq!(registry.get("mcf").unwrap().generation, 4);
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn open_loads_newest_generation_of_every_workload() {
        let root = temp_root("open");
        {
            let writer = ModelRegistry::new(&root, 4);
            writer.publish("mcf", &small_servable(1)).unwrap();
            writer.publish("mcf", &small_servable(2)).unwrap();
            writer.publish("gcc", &small_servable(3)).unwrap();
        }
        let registry = ModelRegistry::open(&root, 4);
        assert_eq!(registry.workloads(), vec!["gcc", "mcf"]);
        assert_eq!(registry.get("mcf").unwrap().generation, 2);
        assert_eq!(
            registry.get("mcf").unwrap().servable.fingerprint(),
            small_servable(2).fingerprint()
        );
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn torn_latest_generation_falls_back_to_previous() {
        let root = temp_root("torn");
        let registry = ModelRegistry::new(&root, 4);
        registry.publish("mcf", &small_servable(1)).unwrap();
        registry.publish("mcf", &small_servable(2)).unwrap();

        // Tear the newest file mid-byte, as a crashed publish that
        // bypassed the atomic rename would.
        let newest = root.join("mcf").join(generation_file_name(2));
        let bytes = fs::read(&newest).unwrap();
        fs::write(&newest, &bytes[..bytes.len() / 2]).unwrap();

        let fresh = ModelRegistry::open(&root, 4);
        let entry = fresh.get("mcf").expect("fallback generation served");
        assert_eq!(entry.generation, 1, "corrupt latest must fall back");
        assert_eq!(
            entry.servable.fingerprint(),
            small_servable(1).fingerprint()
        );
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn refresh_keeps_served_entry_when_disk_is_unreadable() {
        let root = temp_root("keep");
        let registry = ModelRegistry::new(&root, 4);
        registry.publish("mcf", &small_servable(1)).unwrap();
        // Wreck everything on disk; the in-memory entry must survive.
        for (_, path) in scan_generations(&root.join("mcf")) {
            fs::write(&path, b"garbage").unwrap();
        }
        let entry = registry.refresh("mcf").expect("stale entry retained");
        assert_eq!(entry.generation, 1);
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn noop_refresh_returns_the_same_arc() {
        let root = temp_root("noop");
        let registry = ModelRegistry::new(&root, 4);
        registry.publish("mcf", &small_servable(1)).unwrap();
        let before = registry.get("mcf").unwrap();
        let after = registry.refresh("mcf").unwrap();
        assert!(
            Arc::ptr_eq(&before, &after),
            "identical content must not churn the entry"
        );
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn missing_workload_is_none() {
        let root = temp_root("missing");
        let registry = ModelRegistry::new(&root, 4);
        assert!(registry.get("nope").is_none());
        assert!(registry.refresh("nope").is_none());
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn sharded_open_partitions_workloads_without_overlap_or_loss() {
        let root = temp_root("sharded");
        let workloads = ["astar", "bzip2", "gcc", "mcf", "omnetpp", "sjeng"];
        {
            let writer = ModelRegistry::new(&root, 4);
            for (i, w) in workloads.iter().enumerate() {
                writer.publish(w, &small_servable(100 + i as u64)).unwrap();
            }
        }
        let count = 3;
        let mut seen: Vec<String> = Vec::new();
        for index in 0..count {
            let spec = ShardSpec::new(index, count).unwrap();
            let shard = ModelRegistry::open_sharded(&root, 4, spec);
            assert_eq!(shard.shard(), Some(spec));
            for w in shard.workloads() {
                let fp = shard.get(&w).unwrap().servable.fingerprint();
                assert!(spec.owns(fp), "shard {index} loaded unowned {w}");
                seen.push(w);
            }
        }
        seen.sort_unstable();
        assert_eq!(
            seen,
            workloads.iter().map(|w| w.to_string()).collect::<Vec<_>>(),
            "every workload owned by exactly one shard"
        );
        // Unsharded open sees everything.
        assert_eq!(ModelRegistry::open(&root, 4).workloads().len(), 6);
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn plan_for_caches_one_plan_per_fingerprint_and_capacity() {
        let root = temp_root("plancache");
        let registry = ModelRegistry::new(&root, 4);
        registry.publish("mcf", &small_servable(1)).unwrap();
        let entry = registry.get("mcf").unwrap();

        let first = registry.plan_for(&entry, 8).unwrap();
        let second = registry.plan_for(&entry, 8).unwrap();
        assert!(Arc::ptr_eq(&first, &second), "same key must share one Arc");
        let other_cap = registry.plan_for(&entry, 16).unwrap();
        assert!(!Arc::ptr_eq(&first, &other_cap));

        let stats = registry.plan_cache_stats();
        assert_eq!(stats.misses, 2, "two distinct shapes compiled");
        assert_eq!(stats.hits, 1, "one lookup served from cache");
        assert!(stats.compile_us > 0 || stats.misses > 0);
        assert_eq!(registry.cached_plan_shapes().len(), 2);
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn hot_swap_purges_stale_plans_and_bumps_epoch() {
        let root = temp_root("planswap");
        let registry = ModelRegistry::new(&root, 4);
        registry.publish("mcf", &small_servable(1)).unwrap();
        let old_entry = registry.get("mcf").unwrap();
        let old_fp = old_entry.servable.fingerprint();
        registry.plan_for(&old_entry, 8).unwrap();
        assert_eq!(registry.cached_plan_shapes(), vec![(old_fp, 8)]);

        let epoch_before = registry.epoch();
        registry.publish("mcf", &small_servable(2)).unwrap();
        assert!(registry.epoch() > epoch_before, "install must bump epoch");
        assert!(
            registry.cached_plan_shapes().is_empty(),
            "plans of unserved fingerprints are purged on swap"
        );

        // The new entry compiles (and caches) its own plan.
        let new_entry = registry.get("mcf").unwrap();
        let plan = registry.plan_for(&new_entry, 8).unwrap();
        assert_eq!(plan.fingerprint(), new_entry.servable.fingerprint());
        fs::remove_dir_all(&root).ok();
    }
}
