//! # metadse-serve
//!
//! Batched inference serving for trained MetaDSE predictors: the
//! missing layer between "a model finished meta-training" and "a DSE
//! tool is querying it at scale".
//!
//! Four pieces compose the crate:
//!
//! * [`registry`] — a directory of generation-rotated, sealed
//!   [`ServablePredictor`](metadse::ServablePredictor) artifacts per
//!   workload, loaded fingerprint-checked with newest-first fallback
//!   past corrupt generations, hot-swappable while serving.
//! * [`batcher`] — the micro-batching policy as a pure state machine
//!   over a virtual clock: bounded admission with shed-on-full,
//!   `max_batch`/`max_wait_us` coalescing, per-request deadlines, and
//!   graceful drain — all unit-testable with no threads or timers.
//! * [`plan`] / [`exec`] — compiled fixed-shape inference plans: a
//!   tiny ~10-op serving IR lowered once per artifact × batch capacity,
//!   executed over one preallocated arena sized by op liveness, with
//!   every kernel choice resolved at compile time and bit-exact parity
//!   with the layer-stack forward (`METADSE_PLAN=0` falls back).
//! * [`server`] — the runtime: a worker pool (on
//!   [`metadse_parallel::WorkerPool`]) pops batches, groups them by
//!   model fingerprint, and runs one inference-mode forward per group
//!   through the compiled plan; callers block on per-request
//!   [`Ticket`]s.
//!
//! Because every op in the `metadse-nn` forward path computes each
//! output element independently of batch row count, a batched forward
//! is **bit-identical** to running each request alone — coalescing is
//! purely a throughput optimization, never an accuracy trade. The soak
//! test in `tests/concurrency.rs` asserts this across thread counts.
//!
//! ## Example
//!
//! ```no_run
//! use std::sync::Arc;
//! use metadse_serve::{ModelRegistry, ServeConfig, Server};
//!
//! let registry = Arc::new(ModelRegistry::open("results/models", 4));
//! let server = Server::start(registry, ServeConfig::default());
//! let ticket = server.submit("mcf", &[0.1, 0.5, 0.9, 0.2, 0.7, 0.3], None);
//! let prediction = ticket.wait().unwrap();
//! println!("ipc = {}", prediction.value);
//! server.shutdown();
//! ```

pub mod batcher;
pub mod exec;
pub mod front;
pub mod introspect;
pub mod plan;
pub mod registry;
pub mod server;
pub mod session;
pub mod shard;
pub mod stats;
pub mod supervisor;

pub use batcher::{Admission, BatchConfig, Pending, PopOutcome, QueueCore};
pub use exec::{PlanArena, PlanProfile};
pub use introspect::ServeHealth;
pub use plan::Plan;
pub use registry::{ModelEntry, ModelRegistry, PlanCacheStats};
pub use server::{Prediction, ServeConfig, ServeError, Server, Ticket};
pub use session::{
    OpenInfo, PointCache, RoundReport, SessionEngine, SessionEngineConfig, SessionError,
    SessionSpec, SessionState,
};
pub use shard::{ErrorCode, ShardError, ShardOptions, ShardReply, ShardRequest, WirePrediction};
pub use stats::{RequestTrace, ServerStats, TenantStats, TraceTable};

#[cfg(unix)]
pub use front::{Front, FrontClient, FrontConfig, ShardPrediction};
#[cfg(unix)]
pub use shard::ShardServer;
#[cfg(unix)]
pub use supervisor::{ShardPlan, Supervisor, SupervisorConfig};
