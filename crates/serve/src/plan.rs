//! Compiled fixed-shape inference plans: a tiny serving IR.
//!
//! Serving geometry is frozen at artifact-seal time, so the layer-stack
//! walk a [`ServablePredictor`] instantiation performs on every forward
//! — graph-node allocation, shape re-derivation, per-forward weight
//! packing, pool churn — can be compiled away once. [`Plan::compile`]
//! lowers an artifact into a flat sequence of ten shape-specialized ops
//! ([`Op`]) over preallocated arena buffers:
//!
//! ```text
//! Embed → { LayerNorm → Linear×3 → SplitHeads×3 → AttnScores →
//!           Softmax (in place) → AttnContext → MergeHeads →
//!           Linear+residual → LayerNorm → Linear(gelu) →
//!           Linear+residual }×depth
//!       → LayerNorm → MeanPool → Linear(gelu) → Linear
//! ```
//!
//! Two structural savings fall out of compile-time scheduling: softmax
//! runs **in place** on the logits block (the graph materializes a
//! separate probability tensor), and each residual add is **folded
//! into the bias pass** of the linear that produces its right-hand
//! side (the graph runs a separate elementwise add over a third
//! buffer). Both keep the per-element expression trees — and therefore
//! the bits — identical; they only drop a buffer and a memory pass.
//!
//! Everything dynamic about the layer stack is resolved at compile
//! time: shapes and strides are burned into each op, dense weights are
//! pre-packed transposed (the per-forward `pack_transposed` the tensor
//! matmul pays per distinct weight), the attention scale, mask, and
//! layernorm constants are folded in, and every intermediate gets a
//! fixed offset in one arena buffer sized by a linear-scan over op
//! def/use liveness (buffers whose lifetimes don't overlap share
//! memory). The only per-forward decisions left are the ones that are
//! *data-dependent by contract*: each matmul's sparse/dense path choice
//! counts zeros at run time with the same
//! [`prims::SPARSE_ZERO_FRACTION`] threshold the tensor kernel uses.
//!
//! **Bit-exactness.** Plan execution ([`Plan::run`], in
//! [`crate::exec`]) dispatches onto the same backend primitives as the
//! tensor ops ([`metadse_nn::prims`]) and reproduces each op's exact
//! accumulation order — the fused-kernel order, which the `metadse-nn`
//! contracts pin bit-identical to the composite forms under every
//! `METADSE_FUSED`/`METADSE_POOL` setting and per backend. A plan
//! forward is therefore bit-identical to
//! `servable.instantiate().predict(...)` on the same thread; the parity
//! suite in `tests/plan.rs` asserts this across the whole mode matrix,
//! poison inputs included.
//!
//! **Batch capacity.** A plan is compiled for a maximum batch
//! (`capacity`, the server's `max_batch`) and serves any batch `1 ≤ b ≤
//! capacity`: every buffer is `rows × fixed-width` with the row count
//! scaling in `b`, so smaller batches just use a prefix of each region.
//! Per-row independence of every op keeps results identical to a
//! capacity-sized run — the registry therefore caches **one** plan per
//! `fingerprint × capacity` ([`crate::registry::ModelRegistry::plan_for`]).

use metadse::predictor::PredictorConfig;
use metadse::ServablePredictor;
use metadse_nn::serialize::{CheckpointError, ParamEntry};
use metadse_nn::Elem;

/// LayerNorm epsilon, fixed by `metadse_nn::layers::LayerNorm::new`.
pub(crate) const LN_EPS: Elem = 1e-5;

/// One virtual buffer in the plan; resolved to an arena range.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct BufId(pub(crate) usize);

/// A virtual buffer's geometry and its assigned arena placement.
#[derive(Clone, Debug)]
pub(crate) struct BufSpec {
    /// Elements per batch row (0 for batch-independent scratch).
    pub(crate) per_item: usize,
    /// Batch-independent elements (per-batch scratch like attention
    /// packing panels, reused across the `b × heads` batch loop).
    pub(crate) fixed: usize,
    /// Arena offset in elements, 32-byte aligned; assigned by the
    /// liveness scan.
    pub(crate) offset: usize,
}

impl BufSpec {
    /// Live length at runtime batch `b`.
    pub(crate) fn len_at(&self, b: usize) -> usize {
        self.fixed + self.per_item * b
    }
}

/// Number of [`Op`] kinds (the IR's op set).
pub const OP_KINDS: usize = 10;

/// Display names for each op kind, indexed by [`Op::kind`]; the label
/// vocabulary of the per-op attribution counters
/// (`serve/plan_op/<name>_us`).
pub const OP_KIND_NAMES: [&str; OP_KINDS] = [
    "embed",
    "layernorm",
    "linear",
    "split_heads",
    "merge_heads",
    "attn_scores",
    "softmax",
    "attn_context",
    "residual",
    "mean_pool",
];

/// One op of the serving IR. Shapes and strides come from the plan's
/// compiled geometry; buffers are arena ranges.
#[derive(Clone, Debug)]
pub(crate) enum Op {
    /// `out[b,s,:] = table[s,:] + x[b,s] * dir[s,:]` — token identity
    /// embedding plus the value-direction encoding, fused.
    Embed { x: BufId, out: BufId },
    /// Row-wise affine layernorm (`norms[norm]`, eps [`LN_EPS`]).
    LayerNorm { src: BufId, dst: BufId, norm: usize },
    /// `dst = src · W + bias`, optionally through GELU
    /// (`linears[lin]`). `rows_per_item` rows per batch row; the
    /// GELU form stages the matmul in `mm` and needs a tanh scratch.
    /// `add` folds a residual connection into the bias pass:
    /// `dst = add + (src · W + bias)` with the standalone residual
    /// op's exact rounding sequence (never combined with `gelu`).
    Linear {
        src: BufId,
        dst: BufId,
        lin: usize,
        rows_per_item: usize,
        gelu: Option<(BufId, BufId)>,
        add: Option<BufId>,
    },
    /// `[b, s, h·dk] → [b, h, s, dk]` head split (strided copy).
    SplitHeads { src: BufId, dst: BufId },
    /// `[b, h, s, dk] → [b, s, h·dk]` head merge (strided copy).
    MergeHeads { src: BufId, dst: BufId },
    /// `dst = (q · kᵀ) * scale (+ mask)` per `(b, h)` block, with the
    /// tensor matmul's per-block sparse/dense choice.
    AttnScores { q: BufId, key: BufId, dst: BufId },
    /// Row-wise softmax over the trailing axis.
    Softmax { src: BufId, dst: BufId },
    /// `dst = probs · v` per `(b, h)` block; dense blocks pack `v`
    /// transposed into the `pack` scratch (the compile-time analogue
    /// of the matmul's per-forward packing).
    AttnContext {
        probs: BufId,
        v: BufId,
        dst: BufId,
        pack: BufId,
    },
    /// `dst[b,:] = mean over s of src[b,s,:]`.
    MeanPool { src: BufId, dst: BufId },
}

impl Op {
    /// Kind index into [`OP_KIND_NAMES`].
    pub(crate) fn kind(&self) -> usize {
        match self {
            Op::Embed { .. } => 0,
            Op::LayerNorm { .. } => 1,
            Op::Linear { .. } => 2,
            Op::SplitHeads { .. } => 3,
            Op::MergeHeads { .. } => 4,
            Op::AttnScores { .. } => 5,
            Op::Softmax { .. } => 6,
            Op::AttnContext { .. } => 7,
            // Kind 8 ("residual") is retired: residual adds are folded
            // into `Op::Linear::add`. The name stays in
            // [`OP_KIND_NAMES`] so counter indices remain stable.
            Op::MeanPool { .. } => 9,
        }
    }

    /// Every buffer the op touches (reads and writes).
    fn bufs(&self) -> Vec<BufId> {
        match *self {
            Op::Embed { x, out } => vec![x, out],
            Op::LayerNorm { src, dst, .. } => vec![src, dst],
            Op::Linear {
                src,
                dst,
                gelu,
                add,
                ..
            } => {
                let mut v = vec![src, dst];
                if let Some((mm, tanh)) = gelu {
                    v.push(mm);
                    v.push(tanh);
                }
                if let Some(a) = add {
                    v.push(a);
                }
                v
            }
            Op::SplitHeads { src, dst } | Op::MergeHeads { src, dst } => vec![src, dst],
            Op::AttnScores { q, key, dst } => vec![q, key, dst],
            Op::Softmax { src, dst } => vec![src, dst],
            Op::AttnContext {
                probs,
                v,
                dst,
                pack,
            } => vec![probs, v, dst, pack],
            Op::MeanPool { src, dst } => vec![src, dst],
        }
    }
}

/// One linear layer's compiled weights.
#[derive(Clone, Debug)]
pub(crate) struct LinearW {
    /// Input width.
    pub(crate) k: usize,
    /// Output width.
    pub(crate) n: usize,
    /// Row-major `[k, n]` weight — the sparse (axpy) path operand.
    pub(crate) w: Vec<Elem>,
    /// Pre-packed transpose `[n, k]` — the dense (dot) path panel,
    /// packed once at compile time instead of once per forward.
    pub(crate) wt: Vec<Elem>,
    /// Bias `[n]`.
    pub(crate) bias: Vec<Elem>,
}

/// One layernorm's compiled affine parameters.
#[derive(Clone, Debug)]
pub(crate) struct NormW {
    pub(crate) dim: usize,
    pub(crate) gamma: Vec<Elem>,
    pub(crate) beta: Vec<Elem>,
}

/// A compiled, shape-specialized inference plan for one artifact at one
/// batch capacity. Plain `Send + Sync` data — workers share it by
/// `Arc` and bring their own [`crate::exec::PlanArena`].
#[derive(Debug)]
pub struct Plan {
    pub(crate) fingerprint: u64,
    pub(crate) capacity: usize,
    pub(crate) seq: usize,
    pub(crate) d_model: usize,
    pub(crate) heads: usize,
    pub(crate) dk: usize,
    /// Attention logit scale `1/sqrt(dk)`.
    pub(crate) scale: Elem,
    /// Mean-pool multiplier `1/seq` (the tensor `div_scalar` form).
    pub(crate) inv_seq: Elem,
    pub(crate) table: Vec<Elem>,
    pub(crate) dir: Vec<Elem>,
    /// Additive WAM attention-logit mask `[seq, seq]`, if captured.
    pub(crate) mask: Option<Vec<Elem>>,
    pub(crate) linears: Vec<LinearW>,
    pub(crate) norms: Vec<NormW>,
    pub(crate) ops: Vec<Op>,
    pub(crate) bufs: Vec<BufSpec>,
    pub(crate) input: BufId,
    pub(crate) output: BufId,
    arena_len: usize,
}

impl Plan {
    /// Lowers `servable` into a plan serving batches of up to
    /// `capacity` rows (min 1).
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::Format`] when the embedded parameter
    /// payload is missing a tensor or carries one at the wrong shape —
    /// possible only for hand-built artifacts, exactly like
    /// [`ServablePredictor::instantiate`].
    pub fn compile(servable: &ServablePredictor, capacity: usize) -> Result<Plan, CheckpointError> {
        let capacity = capacity.max(1);
        let cfg: PredictorConfig = servable.config;
        let (s, d, h, f, hh) = (
            cfg.num_params,
            cfg.d_model,
            cfg.heads,
            cfg.d_hidden,
            cfg.head_hidden,
        );
        if h == 0 || d % h != 0 {
            return Err(CheckpointError::Format(format!(
                "d_model {d} not divisible by heads {h}"
            )));
        }
        let dk = d / h;
        let entries = Weights::new(servable.param_entries()?);

        let table = entries.tensor("predictor.token.table", &[s, d])?;
        let dir = entries.tensor("predictor.value_direction", &[s, d])?;
        let mut linears = Vec::with_capacity(6 * cfg.depth + 2);
        let mut norms = Vec::with_capacity(2 * cfg.depth + 1);
        for i in 0..cfg.depth {
            let p = format!("predictor.encoder.layer{i}");
            norms.push(entries.norm(&format!("{p}.ln1"), d)?);
            norms.push(entries.norm(&format!("{p}.ln2"), d)?);
            for wname in ["wq", "wk", "wv", "wo"] {
                linears.push(entries.linear(&format!("{p}.attn.{wname}"), d, d)?);
            }
            linears.push(entries.linear(&format!("{p}.ffn.lift"), d, f)?);
            linears.push(entries.linear(&format!("{p}.ffn.project"), f, d)?);
        }
        norms.push(entries.norm("predictor.encoder.final_ln", d)?);
        linears.push(entries.linear("predictor.head.0", d, hh)?);
        linears.push(entries.linear("predictor.head.1", hh, 1)?);

        let mask = servable.mask_values().map(<[Elem]>::to_vec);
        if let Some(m) = &mask {
            if m.len() != s * s {
                return Err(CheckpointError::Format(format!(
                    "mask has {} entries for {s} tokens",
                    m.len()
                )));
            }
        }

        // --- Emit the op sequence over fresh virtual buffers. --------
        let mut b = Builder::default();
        let x = b.buf(s);
        let tok = b.buf(s * d);
        b.push(Op::Embed { x, out: tok });
        let mut hcur = tok;
        for i in 0..cfg.depth {
            // norms: [ln1, ln2] per layer; linears: 6 per layer.
            let (nrm, lin) = (2 * i, 6 * i);
            let ln1 = b.buf(s * d);
            b.push(Op::LayerNorm {
                src: hcur,
                dst: ln1,
                norm: nrm,
            });
            let mut heads_split = [BufId(0); 3];
            for (w, slot) in heads_split.iter_mut().enumerate() {
                let flat = b.buf(s * d);
                b.push(Op::Linear {
                    src: ln1,
                    dst: flat,
                    lin: lin + w,
                    rows_per_item: s,
                    gelu: None,
                    add: None,
                });
                let split = b.buf(s * d);
                b.push(Op::SplitHeads {
                    src: flat,
                    dst: split,
                });
                *slot = split;
            }
            let [qh, kh, vh] = heads_split;
            let logits = b.buf(h * s * s);
            b.push(Op::AttnScores {
                q: qh,
                key: kh,
                dst: logits,
            });
            // Softmax runs in place on the logits block — the graph's
            // separate probability tensor never exists here.
            b.push(Op::Softmax {
                src: logits,
                dst: logits,
            });
            let pack = b.scratch(s * dk);
            let ctx = b.buf(s * d);
            b.push(Op::AttnContext {
                probs: logits,
                v: vh,
                dst: ctx,
                pack,
            });
            let merged = b.buf(s * d);
            b.push(Op::MergeHeads {
                src: ctx,
                dst: merged,
            });
            // The attention-output projection writes straight into the
            // residual sum (`res1 = hcur + merged·wo + bias`), folding
            // the graph's standalone elementwise add into the bias
            // pass.
            let res1 = b.buf(s * d);
            b.push(Op::Linear {
                src: merged,
                dst: res1,
                lin: lin + 3,
                rows_per_item: s,
                gelu: None,
                add: Some(hcur),
            });
            let ln2 = b.buf(s * d);
            b.push(Op::LayerNorm {
                src: res1,
                dst: ln2,
                norm: nrm + 1,
            });
            let (mm, tanh, lift) = (b.buf(s * f), b.buf(s * f), b.buf(s * f));
            b.push(Op::Linear {
                src: ln2,
                dst: lift,
                lin: lin + 4,
                rows_per_item: s,
                gelu: Some((mm, tanh)),
                add: None,
            });
            let res2 = b.buf(s * d);
            b.push(Op::Linear {
                src: lift,
                dst: res2,
                lin: lin + 5,
                rows_per_item: s,
                gelu: None,
                add: Some(res1),
            });
            hcur = res2;
        }
        let enc = b.buf(s * d);
        b.push(Op::LayerNorm {
            src: hcur,
            dst: enc,
            norm: 2 * cfg.depth,
        });
        let pooled = b.buf(d);
        b.push(Op::MeanPool {
            src: enc,
            dst: pooled,
        });
        let (hmm, htanh, hid) = (b.buf(hh), b.buf(hh), b.buf(hh));
        b.push(Op::Linear {
            src: pooled,
            dst: hid,
            lin: 6 * cfg.depth,
            rows_per_item: 1,
            gelu: Some((hmm, htanh)),
            add: None,
        });
        let out = b.buf(1);
        b.push(Op::Linear {
            src: hid,
            dst: out,
            lin: 6 * cfg.depth + 1,
            rows_per_item: 1,
            gelu: None,
            add: None,
        });

        let Builder { mut bufs, ops } = b;
        let arena_len = assign_arena(&mut bufs, &ops, out, capacity);
        Ok(Plan {
            fingerprint: servable.fingerprint(),
            capacity,
            seq: s,
            d_model: d,
            heads: h,
            dk,
            scale: 1.0 / (dk as Elem).sqrt(),
            inv_seq: 1.0 / (s as Elem),
            table,
            dir,
            mask,
            linears,
            norms,
            ops,
            bufs,
            input: x,
            output: out,
            arena_len,
        })
    }

    /// Fingerprint of the artifact this plan was compiled from.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Maximum batch rows a single [`Plan::run`] accepts.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Arena elements one execution needs at full capacity — the peak
    /// of the liveness scan, not the sum of all buffers.
    pub fn arena_len(&self) -> usize {
        self.arena_len
    }

    /// Ops in the compiled sequence.
    pub fn num_ops(&self) -> usize {
        self.ops.len()
    }

    /// Input arity (`num_params` of the compiled geometry).
    pub fn arity(&self) -> usize {
        self.seq
    }
}

/// Decoded parameter payload indexed by name.
struct Weights {
    by_name: std::collections::HashMap<String, ParamEntry>,
}

impl Weights {
    fn new(entries: Vec<ParamEntry>) -> Weights {
        Weights {
            by_name: entries.into_iter().map(|e| (e.name.clone(), e)).collect(),
        }
    }

    fn tensor(&self, name: &str, shape: &[usize]) -> Result<Vec<Elem>, CheckpointError> {
        let entry = self.by_name.get(name).ok_or_else(|| {
            CheckpointError::Format(format!("plan compile: parameter {name:?} missing"))
        })?;
        if entry.shape != shape {
            return Err(CheckpointError::Format(format!(
                "plan compile: parameter {name:?} has shape {:?}, expected {shape:?}",
                entry.shape
            )));
        }
        Ok(entry.data.clone())
    }

    fn linear(&self, prefix: &str, k: usize, n: usize) -> Result<LinearW, CheckpointError> {
        let w = self.tensor(&format!("{prefix}.weight"), &[k, n])?;
        let bias = self.tensor(&format!("{prefix}.bias"), &[n])?;
        // Pack the dense panel exactly as the matmul's `pack_transposed`
        // would per forward: `wt[j, kk] = w[kk, j]` (a pure copy, so the
        // dense dot consumes bit-identical operands).
        let mut wt = vec![0.0; n * k];
        for kk in 0..k {
            for j in 0..n {
                wt[j * k + kk] = w[kk * n + j];
            }
        }
        Ok(LinearW { k, n, w, wt, bias })
    }

    fn norm(&self, prefix: &str, dim: usize) -> Result<NormW, CheckpointError> {
        Ok(NormW {
            dim,
            gamma: self.tensor(&format!("{prefix}.gamma"), &[dim])?,
            beta: self.tensor(&format!("{prefix}.beta"), &[dim])?,
        })
    }
}

/// Accumulates virtual buffers and ops during lowering.
#[derive(Default)]
struct Builder {
    bufs: Vec<BufSpec>,
    ops: Vec<Op>,
}

impl Builder {
    /// A buffer of `per_item` elements per batch row.
    fn buf(&mut self, per_item: usize) -> BufId {
        self.bufs.push(BufSpec {
            per_item,
            fixed: 0,
            offset: usize::MAX,
        });
        BufId(self.bufs.len() - 1)
    }

    /// A batch-independent scratch buffer of `fixed` elements.
    fn scratch(&mut self, fixed: usize) -> BufId {
        self.bufs.push(BufSpec {
            per_item: 0,
            fixed,
            offset: usize::MAX,
        });
        BufId(self.bufs.len() - 1)
    }

    fn push(&mut self, op: Op) {
        self.ops.push(op);
    }
}

/// Arena granule in elements: 4 × f64 = 32 bytes, so every buffer
/// offset keeps the pool [`metadse_nn::tensor::pool::Buf`] alignment.
const ALIGN_ELEMS: usize = 4;

fn align_up(n: usize) -> usize {
    n.div_ceil(ALIGN_ELEMS) * ALIGN_ELEMS
}

/// Assigns arena offsets by a linear scan over op def/use: each buffer
/// is allocated at its defining op and released after its last use, so
/// non-overlapping lifetimes share arena ranges. Returns the arena
/// length (in elements) at full `capacity` — the peak simultaneous
/// liveness, which is what "sized exactly" means here.
fn assign_arena(bufs: &mut [BufSpec], ops: &[Op], output: BufId, capacity: usize) -> usize {
    let n = bufs.len();
    let mut def = vec![usize::MAX; n];
    let mut last = vec![0usize; n];
    for (i, op) in ops.iter().enumerate() {
        for BufId(b) in op.bufs() {
            if def[b] == usize::MAX {
                def[b] = i;
            }
            last[b] = i;
        }
    }
    // The output must survive past the final op so `run` can read it.
    last[output.0] = usize::MAX;

    let mut alloc = FreeList::default();
    for (i, _) in ops.iter().enumerate() {
        // Allocate every buffer defined here before releasing anything:
        // an op's outputs must never alias its still-live inputs.
        for b in 0..n {
            if def[b] == i {
                bufs[b].offset = alloc.alloc(align_up(bufs[b].len_at(capacity)));
            }
        }
        for b in 0..n {
            if last[b] == i {
                alloc.free(bufs[b].offset, align_up(bufs[b].len_at(capacity)));
            }
        }
    }
    debug_assert!(
        bufs.iter().all(|s| s.offset != usize::MAX),
        "every plan buffer must be placed"
    );
    alloc.top
}

/// First-fit free-list allocator over one contiguous arena, with
/// coalescing on free. Offsets/lengths are in elements, always
/// [`ALIGN_ELEMS`]-aligned.
#[derive(Default)]
struct FreeList {
    /// Free `(offset, len)` ranges, sorted by offset, coalesced.
    free: Vec<(usize, usize)>,
    /// High-water mark — the arena length.
    top: usize,
}

impl FreeList {
    fn alloc(&mut self, len: usize) -> usize {
        if let Some(i) = self.free.iter().position(|&(_, l)| l >= len) {
            let (off, l) = self.free[i];
            if l == len {
                self.free.remove(i);
            } else {
                self.free[i] = (off + len, l - len);
            }
            return off;
        }
        let off = self.top;
        self.top += len;
        off
    }

    fn free(&mut self, offset: usize, len: usize) {
        if len == 0 {
            return;
        }
        let i = self
            .free
            .iter()
            .position(|&(o, _)| o > offset)
            .unwrap_or(self.free.len());
        self.free.insert(i, (offset, len));
        // Coalesce with the successor, then the predecessor.
        if i + 1 < self.free.len() && self.free[i].0 + self.free[i].1 == self.free[i + 1].0 {
            self.free[i].1 += self.free[i + 1].1;
            self.free.remove(i + 1);
        }
        if i > 0 && self.free[i - 1].0 + self.free[i - 1].1 == self.free[i].0 {
            self.free[i - 1].1 += self.free[i].1;
            self.free.remove(i);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metadse::predictor::TransformerPredictor;

    fn servable(depth: usize) -> ServablePredictor {
        let model = TransformerPredictor::new(
            PredictorConfig {
                num_params: 6,
                d_model: 8,
                heads: 2,
                depth,
                d_hidden: 12,
                head_hidden: 8,
            },
            7,
        );
        ServablePredictor::capture(&model, None, "ipc")
    }

    #[test]
    fn compile_shapes_the_expected_sequence() {
        let plan = Plan::compile(&servable(2), 4).unwrap();
        // 1 prologue op (embed) + 15 per layer (residual adds are
        // folded into their linears) + 4 epilogue ops.
        assert_eq!(plan.num_ops(), 1 + 15 * 2 + 4);
        assert_eq!(plan.capacity(), 4);
        assert_eq!(plan.arity(), 6);
        assert_eq!(plan.linears.len(), 6 * 2 + 2);
        assert_eq!(plan.norms.len(), 2 * 2 + 1);
    }

    #[test]
    fn liveness_reuse_beats_sum_of_buffers() {
        let plan = Plan::compile(&servable(3), 8).unwrap();
        let total: usize = plan
            .bufs
            .iter()
            .map(|s| align_up(s.len_at(plan.capacity())))
            .sum();
        assert!(
            plan.arena_len() < total / 2,
            "liveness sharing should reclaim most of {total}, got {}",
            plan.arena_len()
        );
    }

    #[test]
    fn live_ranges_never_overlap() {
        let plan = Plan::compile(&servable(2), 4).unwrap();
        // Recompute def/last and walk the schedule asserting that
        // simultaneously-live buffers occupy disjoint arena ranges.
        let n = plan.bufs.len();
        let mut def = vec![usize::MAX; n];
        let mut last = vec![0usize; n];
        for (i, op) in plan.ops.iter().enumerate() {
            for BufId(b) in op.bufs() {
                if def[b] == usize::MAX {
                    def[b] = i;
                }
                last[b] = i;
            }
        }
        last[plan.output.0] = usize::MAX;
        for i in 0..plan.ops.len() {
            let live: Vec<usize> = (0..n).filter(|&b| def[b] <= i && last[b] >= i).collect();
            for (ai, &a) in live.iter().enumerate() {
                for &b in &live[ai + 1..] {
                    let (sa, sb) = (&plan.bufs[a], &plan.bufs[b]);
                    let (ea, eb) = (
                        sa.offset + sa.len_at(plan.capacity()),
                        sb.offset + sb.len_at(plan.capacity()),
                    );
                    assert!(
                        ea <= sb.offset || eb <= sa.offset,
                        "buffers {a} and {b} overlap while both live at op {i}"
                    );
                }
            }
        }
    }

    #[test]
    fn offsets_are_32_byte_aligned() {
        let plan = Plan::compile(&servable(2), 3).unwrap();
        for spec in &*plan.bufs {
            assert_eq!(spec.offset % ALIGN_ELEMS, 0);
        }
    }

    #[test]
    fn compile_rejects_capacity_zero_by_clamping() {
        let plan = Plan::compile(&servable(1), 0).unwrap();
        assert_eq!(plan.capacity(), 1);
    }

    #[test]
    fn free_list_coalesces() {
        let mut fl = FreeList::default();
        let a = fl.alloc(8);
        let b = fl.alloc(8);
        let c = fl.alloc(8);
        fl.free(a, 8);
        fl.free(c, 8);
        fl.free(b, 8);
        // All three coalesced: the next fit reuses offset 0.
        assert_eq!(fl.alloc(24), 0);
        assert_eq!(fl.top, 24);
    }
}
