//! The threaded serving runtime: workers, tickets, batch execution.
//!
//! [`Server::start`] wraps a [`QueueCore`] in a mutex/condvar pair and
//! spins up a [`metadse_parallel::WorkerPool`]. Callers submit single
//! `(workload, configuration)` queries with [`Server::submit`] and block
//! on the returned [`Ticket`]; workers coalesce queued requests into
//! batches (per the [`BatchConfig`] policy), group each batch by model
//! fingerprint, and run **one** inference-mode `predict` per group.
//!
//! The autodiff graph in `metadse-nn` is `Rc`-backed and thread-bound,
//! so models never cross threads: each worker rebuilds its own
//! [`TransformerPredictor`] from the registry's plain-data
//! [`ServablePredictor`](metadse::ServablePredictor) artifact and caches
//! it per workload, keyed by content fingerprint — a hot-swapped
//! generation is picked up on the first batch that carries it, and
//! batched execution stays bit-identical to a serial `predict` on the
//! same artifact (asserted by the soak test in `tests/concurrency.rs`).
//!
//! Observability (feature `obs`): `serve/queue_depth` gauge,
//! `serve/batch_size` and `serve/e2e_latency_us` histograms,
//! `serve/shed` and `serve/deadline_miss` counters.

use std::collections::HashMap;
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use metadse::predictor::TransformerPredictor;
use metadse_obs as obs;
use metadse_parallel::WorkerPool;

use crate::batcher::{Admission, BatchConfig, Pending, PopOutcome, QueueCore};
use crate::registry::{ModelEntry, ModelRegistry};

/// Serving runtime tuning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// Micro-batching policy.
    pub batch: BatchConfig,
    /// Worker threads executing batches (min 1).
    pub workers: usize,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            batch: BatchConfig::default(),
            workers: 2,
        }
    }
}

/// Why a request was refused or failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The admission queue was full; retry with backoff.
    Shed,
    /// The server is shutting down (or the worker side vanished).
    Closed,
    /// The request's deadline passed while it was still queued.
    DeadlineMiss,
    /// No model is registered for this workload.
    UnknownWorkload(String),
    /// The configuration vector has the wrong number of parameters.
    BadArity {
        /// Parameters the model expects.
        expected: usize,
        /// Parameters the request carried.
        got: usize,
    },
    /// The model artifact could not be instantiated on a worker.
    Artifact(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Shed => write!(f, "request shed: admission queue full"),
            ServeError::Closed => write!(f, "server closed"),
            ServeError::DeadlineMiss => write!(f, "deadline passed while queued"),
            ServeError::UnknownWorkload(w) => write!(f, "no model registered for workload {w:?}"),
            ServeError::BadArity { expected, got } => {
                write!(
                    f,
                    "configuration has {got} parameters, model expects {expected}"
                )
            }
            ServeError::Artifact(m) => write!(f, "model artifact failed to instantiate: {m}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// A successful prediction.
#[derive(Debug, Clone, PartialEq)]
pub struct Prediction {
    /// The model's predicted metric value.
    pub value: f64,
    /// Registry generation of the model that served the request.
    pub generation: u64,
    /// Size of the forward batch this request was coalesced into.
    pub batch_size: usize,
}

/// One queued query, resolved to its model at admission time so a
/// concurrent hot swap never splits a batch's view of a workload.
struct Request {
    entry: Arc<ModelEntry>,
    config: Vec<f64>,
    tx: mpsc::Sender<Result<Prediction, ServeError>>,
}

/// Handle for one submitted request; redeem with [`Ticket::wait`].
#[derive(Debug)]
pub struct Ticket {
    rx: mpsc::Receiver<Result<Prediction, ServeError>>,
}

impl Ticket {
    /// Blocks until the request completes or fails.
    pub fn wait(self) -> Result<Prediction, ServeError> {
        self.rx.recv().unwrap_or(Err(ServeError::Closed))
    }

    /// Non-blocking poll; `None` while the request is still in flight.
    pub fn try_wait(&self) -> Option<Result<Prediction, ServeError>> {
        match self.rx.try_recv() {
            Ok(outcome) => Some(outcome),
            Err(mpsc::TryRecvError::Empty) => None,
            Err(mpsc::TryRecvError::Disconnected) => Some(Err(ServeError::Closed)),
        }
    }
}

struct Shared {
    registry: Arc<ModelRegistry>,
    core: Mutex<QueueCore<Request>>,
    cv: Condvar,
    /// Epoch for the virtual microsecond clock fed to the queue core.
    epoch: Instant,
}

impl Shared {
    fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }
}

/// A running batched-inference server over a [`ModelRegistry`].
pub struct Server {
    shared: Arc<Shared>,
    pool: Option<WorkerPool>,
}

impl Server {
    /// Starts `config.workers` serving threads over `registry`.
    pub fn start(registry: Arc<ModelRegistry>, config: ServeConfig) -> Server {
        // Resolve the tensor backend (`METADSE_BACKEND`) once, before any
        // worker touches a model, so every inference thread runs the same
        // kernels for the life of the server; surfaced on a gauge so
        // operators can tell which kernels a serving process is using.
        let backend = metadse_nn::backend::kind();
        obs::gauge(
            "serve/backend_simd",
            u64::from(backend != metadse_nn::BackendKind::Scalar) as f64,
        );
        obs::report::line(format!("serve: tensor backend = {}", backend.name()));
        let shared = Arc::new(Shared {
            registry,
            core: Mutex::new(QueueCore::new(config.batch)),
            cv: Condvar::new(),
            epoch: Instant::now(),
        });
        let worker_shared = shared.clone();
        let pool = WorkerPool::spawn("serve", config.workers.max(1), move |_| {
            worker_loop(&worker_shared);
        });
        Server {
            shared,
            pool: Some(pool),
        }
    }

    /// The registry this server reads models from.
    pub fn registry(&self) -> &Arc<ModelRegistry> {
        &self.shared.registry
    }

    /// Requests currently queued (excluding in-flight batches).
    pub fn queue_depth(&self) -> usize {
        self.shared.core.lock().unwrap().len()
    }

    /// Submits one query. Unknown workloads and arity mismatches fail
    /// the ticket immediately; otherwise the request is admitted (or
    /// shed) and resolved by a worker batch. `timeout` bounds the time
    /// the request may sit in the queue, not the batch execution.
    pub fn submit(&self, workload: &str, config: &[f64], timeout: Option<Duration>) -> Ticket {
        let (tx, rx) = mpsc::channel();
        let ticket = Ticket { rx };
        let Some(entry) = self.shared.registry.get(workload) else {
            let _ = tx.send(Err(ServeError::UnknownWorkload(workload.to_string())));
            return ticket;
        };
        let expected = entry.servable.config.num_params;
        if config.len() != expected {
            let _ = tx.send(Err(ServeError::BadArity {
                expected,
                got: config.len(),
            }));
            return ticket;
        }
        let now = self.shared.now_us();
        let deadline = timeout.map(|t| now.saturating_add(t.as_micros() as u64));
        let request = Request {
            entry,
            config: config.to_vec(),
            tx,
        };
        let admission = {
            let mut core = self.shared.core.lock().unwrap();
            let admission = core.push(request, now, deadline);
            obs::gauge("serve/queue_depth", core.len() as f64);
            admission
        };
        match admission {
            Admission::Accepted => self.shared.cv.notify_one(),
            Admission::Shed(request) => {
                obs::counter("serve/shed", 1);
                let _ = request.tx.send(Err(ServeError::Shed));
            }
            Admission::Closed(request) => {
                let _ = request.tx.send(Err(ServeError::Closed));
            }
        }
        ticket
    }

    /// Stops admitting, drains every queued request through the normal
    /// batch path, and joins the workers.
    pub fn shutdown(mut self) {
        self.close_and_join();
    }

    fn close_and_join(&mut self) {
        self.shared.core.lock().unwrap().close();
        self.shared.cv.notify_all();
        if let Some(pool) = self.pool.take() {
            pool.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.close_and_join();
    }
}

fn worker_loop(shared: &Shared) {
    // Thread-local instance cache: workload → (fingerprint, predictor).
    // Keyed by fingerprint so a hot-swapped generation rebuilds exactly
    // once per worker, while no-op refreshes keep the instance warm.
    let mut cache: HashMap<String, (u64, TransformerPredictor)> = HashMap::new();
    let mut guard = shared.core.lock().unwrap();
    loop {
        let now = shared.now_us();
        let expired = guard.take_expired(now);
        if !expired.is_empty() {
            obs::counter("serve/deadline_miss", expired.len() as u64);
            for dead in expired {
                let _ = dead.payload.tx.send(Err(ServeError::DeadlineMiss));
            }
        }
        match guard.pop(now) {
            PopOutcome::Batch(batch) => {
                obs::gauge("serve/queue_depth", guard.len() as f64);
                drop(guard);
                run_batch(shared, &mut cache, batch);
                guard = shared.core.lock().unwrap();
            }
            PopOutcome::WaitUntil(wake_us) => {
                let wait = Duration::from_micros(wake_us.saturating_sub(shared.now_us()));
                guard = shared.cv.wait_timeout(guard, wait).unwrap().0;
            }
            PopOutcome::Idle => guard = shared.cv.wait(guard).unwrap(),
            PopOutcome::Closed => break,
        }
    }
}

fn run_batch(
    shared: &Shared,
    cache: &mut HashMap<String, (u64, TransformerPredictor)>,
    batch: Vec<Pending<Request>>,
) {
    obs::histogram("serve/batch_size", batch.len() as f64);
    // Group by model identity; requests for distinct workloads (or two
    // generations caught mid-swap) coalesce into separate forwards.
    let mut groups: HashMap<u64, Vec<Pending<Request>>> = HashMap::new();
    let mut order: Vec<u64> = Vec::new();
    for pending in batch {
        let key = pending.payload.entry.servable.fingerprint();
        let group = groups.entry(key).or_default();
        if group.is_empty() {
            order.push(key);
        }
        group.push(pending);
    }
    for key in order {
        let mut group = groups.remove(&key).unwrap();
        let entry = group[0].payload.entry.clone();
        let model = match cached_instance(cache, &entry) {
            Ok(model) => model,
            Err(e) => {
                let message = e.to_string();
                for pending in group {
                    let _ = pending
                        .payload
                        .tx
                        .send(Err(ServeError::Artifact(message.clone())));
                }
                continue;
            }
        };
        let inputs: Vec<Vec<f64>> = group
            .iter_mut()
            .map(|p| std::mem::take(&mut p.payload.config))
            .collect();
        let values = model.predict(&inputs);
        let done_us = shared.now_us();
        let batch_size = group.len();
        for (pending, value) in group.into_iter().zip(values) {
            obs::histogram(
                "serve/e2e_latency_us",
                done_us.saturating_sub(pending.enqueued_at_us) as f64,
            );
            let _ = pending.payload.tx.send(Ok(Prediction {
                value,
                generation: pending.payload.entry.generation,
                batch_size,
            }));
        }
    }
}

/// The worker's live predictor for `entry`, instantiating on first use
/// or when the served fingerprint changed.
fn cached_instance<'a>(
    cache: &'a mut HashMap<String, (u64, TransformerPredictor)>,
    entry: &ModelEntry,
) -> Result<&'a TransformerPredictor, metadse_nn::serialize::CheckpointError> {
    let fingerprint = entry.servable.fingerprint();
    let slot = cache.entry(entry.workload.clone());
    let slot = match slot {
        std::collections::hash_map::Entry::Occupied(o) if o.get().0 == fingerprint => {
            return Ok(&o.into_mut().1)
        }
        std::collections::hash_map::Entry::Occupied(o) => o.into_mut(),
        std::collections::hash_map::Entry::Vacant(v) => {
            let model = entry.servable.instantiate()?;
            return Ok(&v.insert((fingerprint, model)).1);
        }
    };
    *slot = (fingerprint, entry.servable.instantiate()?);
    Ok(&slot.1)
}
