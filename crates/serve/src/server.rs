//! The threaded serving runtime: workers, tickets, batch execution.
//!
//! [`Server::start`] wraps a [`QueueCore`] in a mutex/condvar pair and
//! spins up a [`metadse_parallel::WorkerPool`]. Callers submit single
//! `(workload, configuration)` queries with [`Server::submit`] and block
//! on the returned [`Ticket`]; workers coalesce queued requests into
//! batches (per the [`BatchConfig`] policy), group each batch by model
//! fingerprint, and run **one** inference-mode `predict` per group.
//!
//! The autodiff graph in `metadse-nn` is `Rc`-backed and thread-bound,
//! so models never cross threads: each worker rebuilds its own
//! [`TransformerPredictor`] from the registry's plain-data
//! [`ServablePredictor`](metadse::ServablePredictor) artifact and caches
//! it per workload, keyed by content fingerprint — a hot-swapped
//! generation is picked up on the first batch that carries it, and
//! batched execution stays bit-identical to a serial `predict` on the
//! same artifact (asserted by the soak test in `tests/concurrency.rs`).
//!
//! Observability (feature `obs`): `serve/queue_depth` gauge,
//! `serve/batch_size`, `serve/e2e_latency_us`, `serve/queue_wait_us`,
//! and `serve/forward_us` histograms, `serve/shed` and
//! `serve/deadline_miss` counters, plus `serve/batch` → `serve/forward`
//! spans nested (via `adopt_span`) under the submitting caller's span.
//!
//! Independent of the `obs` feature, every server keeps always-on
//! [`ServerStats`] — per-request [`RequestTrace`]s, rolling-window
//! latencies, per-tenant attribution — served over the introspection
//! endpoint ([`Server::enable_introspection`], or `METADSE_INTROSPECT`).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::time::{Duration, Instant};

use metadse::predictor::TransformerPredictor;
use metadse_obs as obs;
use metadse_obs::window::{Health, WatchdogConfig, WatchdogSample, WindowConfig};
use metadse_parallel::WorkerPool;

use crate::batcher::{Admission, BatchConfig, Pending, PopOutcome, QueueCore};
use crate::exec::{PlanArena, PlanProfile};
use crate::plan::Plan;
use crate::registry::{ModelEntry, ModelRegistry};
use crate::stats::{RequestTrace, ServerStats};

/// Serving runtime tuning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// Micro-batching policy.
    pub batch: BatchConfig,
    /// Worker threads executing batches (min 1).
    pub workers: usize,
    /// Execute grouped batches through compiled inference plans
    /// ([`crate::plan`]). Defaults to on; `METADSE_PLAN=0` in the
    /// environment (or setting this to `false`) falls back to the
    /// layer-stack `predict` path — an escape hatch, since the two are
    /// bit-identical.
    pub plan: bool,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            batch: BatchConfig::default(),
            workers: 2,
            plan: plan_enabled_from_env(),
        }
    }
}

/// `METADSE_PLAN=0` disables plan execution; anything else (including
/// unset) leaves it on.
fn plan_enabled_from_env() -> bool {
    std::env::var("METADSE_PLAN").map_or(true, |v| v != "0")
}

/// Why a request was refused or failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The admission queue was full; retry with backoff.
    Shed,
    /// The server is shutting down (or the worker side vanished).
    Closed,
    /// The request's deadline passed while it was still queued.
    DeadlineMiss,
    /// No model is registered for this workload.
    UnknownWorkload(String),
    /// The configuration vector has the wrong number of parameters.
    BadArity {
        /// Parameters the model expects.
        expected: usize,
        /// Parameters the request carried.
        got: usize,
    },
    /// The model artifact could not be instantiated on a worker.
    Artifact(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Shed => write!(f, "request shed: admission queue full"),
            ServeError::Closed => write!(f, "server closed"),
            ServeError::DeadlineMiss => write!(f, "deadline passed while queued"),
            ServeError::UnknownWorkload(w) => write!(f, "no model registered for workload {w:?}"),
            ServeError::BadArity { expected, got } => {
                write!(
                    f,
                    "configuration has {got} parameters, model expects {expected}"
                )
            }
            ServeError::Artifact(m) => write!(f, "model artifact failed to instantiate: {m}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// A successful prediction.
#[derive(Debug, Clone, PartialEq)]
pub struct Prediction {
    /// The model's predicted metric value.
    pub value: f64,
    /// Registry generation of the model that served the request.
    pub generation: u64,
    /// Size of the forward batch this request was coalesced into.
    pub batch_size: usize,
    /// Server-unique request id; pass to the introspection endpoint's
    /// `trace?id=` for this request's phase breakdown.
    pub trace_id: u64,
}

/// One queued query, resolved to its model at admission time so a
/// concurrent hot swap never splits a batch's view of a workload.
pub(crate) struct Request {
    entry: Arc<ModelEntry>,
    /// Compiled plan for `entry`'s artifact, resolved alongside it at
    /// admission (None when plan execution is off or compile failed —
    /// the worker then falls back to the layer-stack path).
    plan: Option<Arc<Plan>>,
    config: Vec<f64>,
    tx: mpsc::Sender<Result<Prediction, ServeError>>,
    /// Per-request trace context, minted at admission; carried through
    /// the queue so workers stamp each pipeline phase into it.
    trace: RequestTrace,
    /// The submitting thread's innermost open obs span, adopted by the
    /// worker so `serve/batch` spans nest under the caller.
    parent_span: Option<u64>,
}

/// Handle for one submitted request; redeem with [`Ticket::wait`].
#[derive(Debug)]
pub struct Ticket {
    rx: mpsc::Receiver<Result<Prediction, ServeError>>,
}

impl Ticket {
    /// Blocks until the request completes or fails.
    pub fn wait(self) -> Result<Prediction, ServeError> {
        self.rx.recv().unwrap_or(Err(ServeError::Closed))
    }

    /// Non-blocking poll; `None` while the request is still in flight.
    pub fn try_wait(&self) -> Option<Result<Prediction, ServeError>> {
        match self.rx.try_recv() {
            Ok(outcome) => Some(outcome),
            Err(mpsc::TryRecvError::Empty) => None,
            Err(mpsc::TryRecvError::Disconnected) => Some(Err(ServeError::Closed)),
        }
    }
}

/// One workload's resolved serving route, memoized per registry epoch.
struct CachedRoute {
    epoch: u64,
    entry: Arc<ModelEntry>,
    plan: Option<Arc<Plan>>,
}

pub(crate) struct Shared {
    pub(crate) registry: Arc<ModelRegistry>,
    pub(crate) core: Mutex<QueueCore<Request>>,
    pub(crate) cv: Condvar,
    /// Epoch for the virtual microsecond clock fed to the queue core.
    pub(crate) epoch: Instant,
    /// Always-on rolling-window stats, traces, tenant attribution.
    pub(crate) stats: Arc<ServerStats>,
    /// Health thresholds the watchdog judges the windows against.
    pub(crate) watchdog: WatchdogConfig,
    /// Request-id mint (first id is 1; 0 never names a request).
    next_id: AtomicU64,
    /// Whether admitted requests carry compiled plan handles.
    plan_mode: bool,
    /// Plan batch capacity (= the batcher's `max_batch`).
    batch_capacity: usize,
    /// Workload → route memo, validated against the registry epoch so a
    /// burst of submits resolves the table (and plan cache) once per
    /// workload per swap instead of once per request.
    routes: RwLock<HashMap<String, CachedRoute>>,
}

impl Shared {
    pub(crate) fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    pub(crate) fn health_at(&self, now_us: u64) -> (Health, WatchdogSample) {
        crate::introspect::evaluate(self, now_us)
    }

    /// The serving route for `workload`: its current registry entry
    /// plus (in plan mode) the compiled plan handle. Memoized per
    /// registry epoch — the epoch is read *before* the table, so a
    /// concurrent hot swap can only leave the memo stamped older than
    /// its contents, forcing a harmless re-resolve next lookup, never a
    /// stale hit.
    fn resolve(&self, workload: &str) -> Option<(Arc<ModelEntry>, Option<Arc<Plan>>)> {
        let epoch = self.registry.epoch();
        if let Some(route) = self.routes.read().unwrap().get(workload) {
            if route.epoch == epoch {
                return Some((route.entry.clone(), route.plan.clone()));
            }
        }
        let entry = self.registry.get(workload)?;
        let plan = if self.plan_mode {
            match self.registry.plan_for(&entry, self.batch_capacity) {
                Ok(plan) => Some(plan),
                Err(e) => {
                    // Malformed payloads fall back to the layer-stack
                    // path, which surfaces the same failure as an
                    // `Artifact` error on the ticket. Memoizing the
                    // `None` keeps the warn at once per epoch.
                    obs::report::warn(format!(
                        "serve: plan compile failed for {workload} ({e}); using layer-stack path"
                    ));
                    None
                }
            }
        } else {
            None
        };
        self.routes.write().unwrap().insert(
            workload.to_string(),
            CachedRoute {
                epoch,
                entry: entry.clone(),
                plan: plan.clone(),
            },
        );
        Some((entry, plan))
    }
}

/// A running batched-inference server over a [`ModelRegistry`].
pub struct Server {
    shared: Arc<Shared>,
    pool: Option<WorkerPool>,
    #[cfg(unix)]
    listener: Option<obs::introspect::Listener>,
}

impl Server {
    /// Starts `config.workers` serving threads over `registry`.
    pub fn start(registry: Arc<ModelRegistry>, config: ServeConfig) -> Server {
        // Resolve the tensor backend (`METADSE_BACKEND`) once, before any
        // worker touches a model, so every inference thread runs the same
        // kernels for the life of the server; surfaced on a gauge so
        // operators can tell which kernels a serving process is using.
        let backend = metadse_nn::backend::kind();
        obs::gauge(
            "serve/backend_simd",
            u64::from(backend != metadse_nn::BackendKind::Scalar) as f64,
        );
        obs::report::line(format!("serve: tensor backend = {}", backend.name()));
        let shared = Arc::new(Shared {
            registry,
            core: Mutex::new(QueueCore::new(config.batch)),
            cv: Condvar::new(),
            epoch: Instant::now(),
            stats: Arc::new(ServerStats::new(WindowConfig::from_env())),
            watchdog: WatchdogConfig::from_env(),
            next_id: AtomicU64::new(1),
            plan_mode: config.plan,
            batch_capacity: config.batch.max_batch.max(1),
            routes: RwLock::new(HashMap::new()),
        });
        let worker_shared = shared.clone();
        let pool = WorkerPool::spawn("serve", config.workers.max(1), move |_| {
            worker_loop(&worker_shared);
        });
        let mut server = Server {
            shared,
            pool: Some(pool),
            #[cfg(unix)]
            listener: None,
        };
        // `METADSE_INTROSPECT=<socket path>` turns the endpoint on for
        // processes that cannot call `enable_introspection` themselves
        // (CI smoke steps, soak drivers launching stock binaries).
        #[cfg(unix)]
        if let Ok(path) = std::env::var("METADSE_INTROSPECT") {
            if !path.is_empty() {
                if let Err(e) = server.enable_introspection(std::path::Path::new(&path)) {
                    obs::report::warn(format!("serve: introspection bind failed: {e}"));
                }
            }
        }
        server
    }

    /// Binds the introspection endpoint on a unix socket at `path`,
    /// replacing any previously enabled listener. The endpoint serves
    /// `health`, `ready`, `metrics`, and `trace?id=` (see
    /// [`crate::introspect`]); it reads stats and never touches the
    /// inference path.
    ///
    /// # Errors
    ///
    /// Returns any socket bind error.
    #[cfg(unix)]
    pub fn enable_introspection(&mut self, path: &std::path::Path) -> std::io::Result<()> {
        let responder = Arc::new(crate::introspect::ServeResponder {
            shared: Arc::clone(&self.shared),
        });
        self.listener = Some(obs::introspect::serve_unix(path, responder)?);
        obs::report::line(format!("serve: introspection on {}", path.display()));
        Ok(())
    }

    /// The shared runtime state, for in-crate embedders (the shard
    /// worker wraps it in its own introspection responder).
    pub(crate) fn shared_handle(&self) -> Arc<Shared> {
        Arc::clone(&self.shared)
    }

    /// This server's always-on stats hub (rolling windows, traces,
    /// tenant attribution) — the same data the endpoint serves.
    pub fn stats(&self) -> Arc<ServerStats> {
        Arc::clone(&self.shared.stats)
    }

    /// Current watchdog verdict over the trailing window.
    pub fn health(&self) -> Health {
        self.shared.health_at(self.shared.now_us()).0
    }

    /// Microseconds elapsed on this server's virtual clock — the
    /// timebase of every trace timestamp and window snapshot.
    pub fn now_us(&self) -> u64 {
        self.shared.now_us()
    }

    /// The registry this server reads models from.
    pub fn registry(&self) -> &Arc<ModelRegistry> {
        &self.shared.registry
    }

    /// Requests currently queued (excluding in-flight batches).
    pub fn queue_depth(&self) -> usize {
        self.shared.core.lock().unwrap().len()
    }

    /// Submits one query. Unknown workloads and arity mismatches fail
    /// the ticket immediately; otherwise the request is admitted (or
    /// shed) and resolved by a worker batch. `timeout` bounds the time
    /// the request may sit in the queue, not the batch execution.
    pub fn submit(&self, workload: &str, config: &[f64], timeout: Option<Duration>) -> Ticket {
        let (tx, rx) = mpsc::channel();
        let ticket = Ticket { rx };
        // One epoch-memoized resolve covers the registry lookup *and*
        // the plan handle: submit bursts within a batch window no
        // longer take the registry table lock per request.
        let Some((entry, plan)) = self.shared.resolve(workload) else {
            let _ = tx.send(Err(ServeError::UnknownWorkload(workload.to_string())));
            return ticket;
        };
        let expected = entry.servable.config.num_params;
        if config.len() != expected {
            let _ = tx.send(Err(ServeError::BadArity {
                expected,
                got: config.len(),
            }));
            return ticket;
        }
        let now = self.shared.now_us();
        let deadline = timeout.map(|t| now.saturating_add(t.as_micros() as u64));
        let trace = RequestTrace::admitted(
            self.shared.next_id.fetch_add(1, Ordering::Relaxed),
            workload,
            entry.servable.fingerprint(),
            entry.generation,
            now,
        );
        let request = Request {
            entry,
            plan,
            config: config.to_vec(),
            tx,
            trace,
            parent_span: obs::current_span(),
        };
        let admission = {
            let mut core = self.shared.core.lock().unwrap();
            let admission = core.push(request, now, deadline);
            obs::gauge("serve/queue_depth", core.len() as f64);
            admission
        };
        match admission {
            Admission::Accepted => {
                self.shared.stats.record_admitted(now);
                self.shared.cv.notify_one();
            }
            Admission::Shed(request) => {
                obs::counter("serve/shed", 1);
                self.shared.stats.record_shed(request.trace, now);
                let _ = request.tx.send(Err(ServeError::Shed));
            }
            Admission::Closed(request) => {
                let _ = request.tx.send(Err(ServeError::Closed));
            }
        }
        ticket
    }

    /// Stops admitting, drains every queued request through the normal
    /// batch path, and joins the workers.
    pub fn shutdown(mut self) {
        self.close_and_join();
    }

    fn close_and_join(&mut self) {
        // Stop answering introspection queries before tearing down the
        // queue so probes never observe a half-shut server.
        #[cfg(unix)]
        if let Some(mut listener) = self.listener.take() {
            listener.shutdown();
        }
        self.shared.core.lock().unwrap().close();
        self.shared.cv.notify_all();
        if let Some(pool) = self.pool.take() {
            pool.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.close_and_join();
    }
}

fn worker_loop(shared: &Shared) {
    // Thread-local instance cache: workload → (fingerprint, predictor).
    // Keyed by fingerprint so a hot-swapped generation rebuilds exactly
    // once per worker, while no-op refreshes keep the instance warm.
    let mut cache: HashMap<String, (u64, TransformerPredictor)> = HashMap::new();
    // Worker-owned plan arena: one slab reused by every plan forward
    // this thread runs, across batches, plans, and hot swaps.
    let mut arena = PlanArena::new();
    let mut guard = shared.core.lock().unwrap();
    loop {
        let now = shared.now_us();
        let expired = guard.take_expired(now);
        if !expired.is_empty() {
            obs::counter("serve/deadline_miss", expired.len() as u64);
            for dead in expired {
                shared.stats.record_miss(dead.payload.trace, now);
                let _ = dead.payload.tx.send(Err(ServeError::DeadlineMiss));
            }
        }
        match guard.pop(now) {
            PopOutcome::Batch(batch) => {
                obs::gauge("serve/queue_depth", guard.len() as f64);
                drop(guard);
                run_batch(shared, &mut cache, &mut arena, batch, now);
                guard = shared.core.lock().unwrap();
            }
            PopOutcome::WaitUntil(wake_us) => {
                let wait = Duration::from_micros(wake_us.saturating_sub(shared.now_us()));
                guard = shared.cv.wait_timeout(guard, wait).unwrap().0;
            }
            PopOutcome::Idle => guard = shared.cv.wait(guard).unwrap(),
            PopOutcome::Closed => break,
        }
    }
}

fn run_batch(
    shared: &Shared,
    cache: &mut HashMap<String, (u64, TransformerPredictor)>,
    arena: &mut PlanArena,
    batch: Vec<Pending<Request>>,
    popped_us: u64,
) {
    obs::histogram("serve/batch_size", batch.len() as f64);
    // Nest this batch's spans under the span of whichever caller's
    // request leads the batch — batches mix tenants, so one adopted
    // parent is a heuristic, but it keeps `serve/batch` attached to
    // real request flows in the trace tree instead of floating at root.
    let parent = batch.iter().find_map(|p| p.payload.parent_span);
    obs::adopt_span(parent);
    let _batch_span = obs::span("serve/batch");
    // Group by model identity; requests for distinct workloads (or two
    // generations caught mid-swap) coalesce into separate forwards.
    let mut groups: HashMap<u64, Vec<Pending<Request>>> = HashMap::new();
    let mut order: Vec<u64> = Vec::new();
    for pending in batch {
        let key = pending.payload.entry.servable.fingerprint();
        let group = groups.entry(key).or_default();
        if group.is_empty() {
            order.push(key);
        }
        group.push(pending);
    }
    for key in order {
        let mut group = groups.remove(&key).unwrap();
        let entry = group[0].payload.entry.clone();
        // A plan handle attached at admission serves the whole group —
        // the group key *is* the artifact fingerprint, so any member's
        // handle is valid for all of them. Requests without one (plan
        // mode off, or compile fell back) take the layer-stack path.
        let plan: Option<Arc<Plan>> = group.iter().find_map(|p| {
            p.payload
                .plan
                .as_ref()
                .filter(|plan| plan.fingerprint() == key && plan.capacity() >= group.len())
                .cloned()
        });
        let model = if plan.is_some() {
            None
        } else {
            match cached_instance(cache, &entry) {
                Ok(model) => Some(model),
                Err(e) => {
                    let message = e.to_string();
                    let failed_us = shared.now_us();
                    for mut pending in group {
                        pending.payload.trace.popped_us = popped_us;
                        pending.payload.trace.done_us = failed_us;
                        pending.payload.trace.outcome = "artifact_error";
                        shared.stats.traces.push(pending.payload.trace);
                        let _ = pending
                            .payload
                            .tx
                            .send(Err(ServeError::Artifact(message.clone())));
                    }
                    continue;
                }
            }
        };
        let inputs: Vec<Vec<f64>> = group
            .iter_mut()
            .map(|p| std::mem::take(&mut p.payload.config))
            .collect();
        let forward_start_us = shared.now_us();
        let values = {
            let _forward_span = obs::span("serve/forward");
            match (&plan, model) {
                (Some(plan), _) => run_plan(plan, &inputs, arena),
                (None, Some(model)) => model.predict(&inputs),
                (None, None) => unreachable!("group has neither plan nor model"),
            }
        };
        let done_us = shared.now_us();
        let batch_size = group.len();
        for (pending, value) in group.into_iter().zip(values) {
            obs::histogram(
                "serve/e2e_latency_us",
                done_us.saturating_sub(pending.enqueued_at_us) as f64,
            );
            let mut trace = pending.payload.trace;
            trace.popped_us = popped_us;
            trace.forward_start_us = forward_start_us;
            trace.forward_end_us = done_us;
            trace.batch_size = batch_size;
            trace.outcome = "served";
            obs::histogram("serve/queue_wait_us", trace.queue_wait_us() as f64);
            // Bookkeeping happens-before the reply: the trace, tenant
            // rollups, and window counters are folded in *before* the
            // caller's channel learns the outcome, so a client whose
            // `wait()` returned can immediately read its own request in
            // `completed_total` / `trace?id=` — no polling window. The
            // `done_us` stamp is therefore taken at reply *handoff*
            // (send is an in-process channel push; what it can't cover
            // is the receiver's wake-up, which no server-side stamp
            // could observe anyway).
            trace.done_us = shared.now_us();
            let trace_id = trace.id;
            shared.stats.record_served(trace);
            let _ = pending.payload.tx.send(Ok(Prediction {
                value,
                generation: pending.payload.entry.generation,
                batch_size,
                trace_id,
            }));
        }
        obs::histogram(
            "serve/forward_us",
            done_us.saturating_sub(forward_start_us) as f64,
        );
    }
    // The pool threads are long-lived: clear the adopted parent so the
    // next batch (possibly from an unrelated caller) starts clean. The
    // batch span's parent was resolved when it opened, so the order of
    // this reset and the guard's drop doesn't matter.
    obs::adopt_span(None);
}

/// Executes one grouped batch through its compiled plan. Per-op wall
/// time is attributed onto `serve/plan_op/<kind>_us` counters — only
/// when instrumentation is compiled in, because the two `Instant` reads
/// per op are measurable against dispatch-bound geometries.
fn run_plan(plan: &Plan, inputs: &[Vec<f64>], arena: &mut PlanArena) -> Vec<f64> {
    if obs::enabled() {
        let mut profile = PlanProfile::default();
        let values = plan.run_profiled(inputs, arena, &mut profile);
        for (name, us) in profile.rows() {
            obs::counter(&format!("serve/plan_op/{name}_us"), us);
        }
        values
    } else {
        plan.run(inputs, arena)
    }
}

/// The worker's live predictor for `entry`, instantiating on first use
/// or when the served fingerprint changed.
fn cached_instance<'a>(
    cache: &'a mut HashMap<String, (u64, TransformerPredictor)>,
    entry: &ModelEntry,
) -> Result<&'a TransformerPredictor, metadse_nn::serialize::CheckpointError> {
    let fingerprint = entry.servable.fingerprint();
    let slot = cache.entry(entry.workload.clone());
    let slot = match slot {
        std::collections::hash_map::Entry::Occupied(o) if o.get().0 == fingerprint => {
            return Ok(&o.into_mut().1)
        }
        std::collections::hash_map::Entry::Occupied(o) => o.into_mut(),
        std::collections::hash_map::Entry::Vacant(v) => {
            let model = entry.servable.instantiate()?;
            return Ok(&v.insert((fingerprint, model)).1);
        }
    };
    *slot = (fingerprint, entry.servable.instantiate()?);
    Ok(&slot.1)
}
