//! Multi-tenant online DSE exploration sessions.
//!
//! The paper's end goal is a design-space *search*, not one prediction;
//! this module closes that loop as a service. Each tenant opens a
//! session bound to a workload (and thereby to the fingerprint of the
//! model generation serving it) and drives propose → batched-predict →
//! front-update rounds through [`SessionEngine::step`], receiving an
//! incremental Pareto-front delta per round. The exploration cursor is
//! the resumable [`Explorer`] stepper from `metadse::explorer`, so a
//! session killed between rounds resumes bit-identically.
//!
//! # Determinism contract
//!
//! For a fixed [`SessionSpec`], the sequence of round deltas — and
//! therefore the final front — is a pure function of the spec and the
//! served model generation. Concurrency, cache hits, checkpoint/resume,
//! and even re-executed rounds after a lost checkpoint cannot change
//! it, because:
//!
//! - the RNG stream words are part of the session state ([`Explorer`]
//!   owns no hidden randomness),
//! - point objectives travel as `f64` bit patterns, and the serving
//!   plans are bit-stable per row regardless of batch composition,
//! - the archive is extended in proposal order, so the stable sort
//!   inside `pareto_front` breaks ties identically everywhere,
//! - rounds are executed at-most-once: a re-step of the last completed
//!   round replays the stored delta instead of re-running it.
//!
//! # Dedup point cache
//!
//! The [`PointCache`] is shared by every session on a shard and keyed
//! `(fingerprint, config point)`: no design point is predicted twice
//! fleet-wide (sessions for a workload all route to the same shard).
//! Claiming is exactly-once: the first session to propose a point owns
//! its prediction; concurrent proposers of the same in-flight point
//! *block* on the owner's result rather than duplicate-predict.
//! Deadlock-freedom holds because every session resolves all the points
//! it owns **before** blocking on points owned by others. A hot-swapped
//! model generation purges exactly its old fingerprint's entries.
//!
//! # Checkpoints
//!
//! Session state rides the same `MDSECKPT`-style machinery as training
//! checkpoints: a sealed (`MDSESESS`) payload written through
//! [`Checkpointer::save_bytes`] — atomic temp → chunk → fsync → rename,
//! generation rotation, corrupt-fallback on load. A round is
//! checkpointed *before* its delta is returned, so a kill at any
//! instant loses at most one unacknowledged round, which the client's
//! retry re-executes deterministically.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use metadse::checkpoint::{CheckpointConfig, Checkpointer};
use metadse::explorer::{
    front_delta, hypervolume, Explorer, ExplorerConfig, ExplorerState, ParetoEntry,
};
use metadse_nn::format::{fnv1a, seal, unseal, ByteReader, ByteWriter};
use metadse_nn::serialize::CheckpointError;
use metadse_obs as obs;
use metadse_sim::{ConfigPoint, DesignSpace};

use crate::server::{ServeError, Server};

const MAGIC: &[u8; 8] = b"MDSESESS";
const VERSION: u32 = 1;

/// Hypervolume reference IPC (maximize objective lower bound).
pub const HV_IPC_REF: f64 = 0.0;
/// Hypervolume reference power (minimize objective upper bound).
pub const HV_POWER_REF: f64 = 32.0;

/// Deterministic analytic power proxy over the normalized feature
/// encoding, giving sessions their second objective while the registry
/// serves a single (IPC) model per workload — one prediction per point
/// keeps the exactly-once law clean. Replacing this with a served power
/// head is an open item tracked in DESIGN §3.10.
pub fn power_proxy(encoded: &[f64]) -> f64 {
    let mut acc = 0.0;
    for (i, &x) in encoded.iter().enumerate() {
        let w = 0.35 + 0.1 * ((i % 7) as f64);
        acc = x.mul_add(w, acc);
    }
    1.0 + acc
}

// ---------------------------------------------------------------------------
// Dedup point cache
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq)]
enum Slot {
    /// A session owns the prediction and will fulfil or abandon it.
    InFlight,
    /// The predicted IPC, as bits.
    Ready(u64),
}

/// Outcome of [`PointCache::try_claim`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Claim {
    /// The caller now owns this point and must fulfil or abandon it.
    Owed,
    /// Already predicted; the IPC bits.
    Ready(u64),
    /// Another session owns the in-flight prediction; block on it.
    InFlight,
}

/// Cross-session deduplicating point cache keyed
/// `(model fingerprint, design point)`.
#[derive(Debug, Default)]
pub struct PointCache {
    slots: Mutex<HashMap<u64, HashMap<ConfigPoint, Slot>>>,
    wake: Condvar,
    /// Fulfils that found the slot already `Ready` — i.e. the same
    /// point was predicted twice. The exactly-once law is exactly
    /// "this counter stays zero".
    duplicate_fulfils: AtomicU64,
}

impl PointCache {
    /// An empty cache.
    pub fn new() -> PointCache {
        PointCache::default()
    }

    /// Claims `(fp, point)`: a vacant slot becomes `InFlight` owned by
    /// the caller ([`Claim::Owed`]); otherwise the current state is
    /// reported without blocking.
    pub fn try_claim(&self, fp: u64, point: &ConfigPoint) -> Claim {
        let mut slots = self.slots.lock().unwrap();
        match slots.entry(fp).or_default().entry(point.clone()) {
            std::collections::hash_map::Entry::Occupied(e) => match *e.get() {
                Slot::Ready(bits) => Claim::Ready(bits),
                Slot::InFlight => Claim::InFlight,
            },
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(Slot::InFlight);
                Claim::Owed
            }
        }
    }

    /// Blocks while `(fp, point)` is in flight. `Some(bits)` once the
    /// owner fulfils; `None` when the slot was abandoned (or vanished)
    /// or `timeout` elapsed — either way the caller should re-claim.
    pub fn await_ready(&self, fp: u64, point: &ConfigPoint, timeout: Duration) -> Option<u64> {
        let deadline = std::time::Instant::now() + timeout;
        let mut slots = self.slots.lock().unwrap();
        loop {
            match slots.get(&fp).and_then(|m| m.get(point)) {
                Some(Slot::Ready(bits)) => return Some(*bits),
                None => return None,
                Some(Slot::InFlight) => {}
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return None;
            }
            let (guard, result) = self.wake.wait_timeout(slots, deadline - now).unwrap();
            slots = guard;
            if result.timed_out() {
                match slots.get(&fp).and_then(|m| m.get(point)) {
                    Some(Slot::Ready(bits)) => return Some(*bits),
                    _ => return None,
                }
            }
        }
    }

    /// Publishes the predicted bits for `(fp, point)` and wakes
    /// waiters. A slot that was already `Ready` means the point was
    /// predicted twice; that is counted, never silently absorbed.
    pub fn fulfil(&self, fp: u64, point: &ConfigPoint, bits: u64) {
        let mut slots = self.slots.lock().unwrap();
        let prev = slots
            .entry(fp)
            .or_default()
            .insert(point.clone(), Slot::Ready(bits));
        if matches!(prev, Some(Slot::Ready(_))) {
            self.duplicate_fulfils.fetch_add(1, Ordering::Relaxed);
            obs::counter("session/duplicate_predictions", 1);
        }
        drop(slots);
        self.wake.notify_all();
    }

    /// Releases an in-flight claim without a result (shed, deadline
    /// miss) so waiters unblock and a later proposer can retry.
    pub fn abandon(&self, fp: u64, point: &ConfigPoint) {
        let mut slots = self.slots.lock().unwrap();
        if let Some(m) = slots.get_mut(&fp) {
            if m.get(point) == Some(&Slot::InFlight) {
                m.remove(point);
            }
        }
        drop(slots);
        self.wake.notify_all();
    }

    /// Drops every entry of one fingerprint (model hot-swap coherence);
    /// returns how many points were purged. Other fingerprints are
    /// untouched.
    pub fn purge_fingerprint(&self, fp: u64) -> usize {
        let purged = self
            .slots
            .lock()
            .unwrap()
            .remove(&fp)
            .map_or(0, |m| m.len());
        self.wake.notify_all();
        purged
    }

    /// Seeds `Ready` entries (checkpoint restore). Occupied slots win —
    /// a live owner's in-flight claim is never clobbered.
    pub fn restore(&self, fp: u64, entries: &[(ConfigPoint, u64)]) {
        let mut slots = self.slots.lock().unwrap();
        let m = slots.entry(fp).or_default();
        for (point, bits) in entries {
            m.entry(point.clone()).or_insert(Slot::Ready(*bits));
        }
        drop(slots);
        self.wake.notify_all();
    }

    /// The `Ready` entries of one fingerprint, sorted by point indices
    /// for a deterministic checkpoint encoding.
    pub fn ready_entries(&self, fp: u64) -> Vec<(ConfigPoint, u64)> {
        let slots = self.slots.lock().unwrap();
        let mut entries: Vec<(ConfigPoint, u64)> = slots
            .get(&fp)
            .map(|m| {
                m.iter()
                    .filter_map(|(p, s)| match s {
                        Slot::Ready(bits) => Some((p.clone(), *bits)),
                        Slot::InFlight => None,
                    })
                    .collect()
            })
            .unwrap_or_default();
        entries.sort_by(|a, b| a.0.indices().cmp(b.0.indices()));
        entries
    }

    /// Total `Ready` points across all fingerprints.
    pub fn ready_points(&self) -> usize {
        self.slots
            .lock()
            .unwrap()
            .values()
            .map(|m| m.values().filter(|s| matches!(s, Slot::Ready(_))).count())
            .sum()
    }

    /// How often a fulfil found the slot already `Ready` (a duplicate
    /// prediction). Zero iff the exactly-once law held.
    pub fn duplicate_fulfils(&self) -> u64 {
        self.duplicate_fulfils.load(Ordering::Relaxed)
    }
}

// ---------------------------------------------------------------------------
// Session spec / state / round report
// ---------------------------------------------------------------------------

/// Everything that identifies a session. Opening the same spec twice is
/// idempotent: the session id is a pure hash of the spec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionSpec {
    /// Workload the session explores (routes to that workload's shard).
    pub workload: String,
    /// Exploration RNG seed.
    pub seed: u64,
    /// Initial random sweep size.
    pub initial_samples: u32,
    /// Hill-climbing rounds after the sweep.
    pub refinement_rounds: u32,
    /// Front entries expanded per refinement round.
    pub beam: u32,
    /// Per-round prediction deadline in microseconds; `0` uses the
    /// engine default. Requests past the deadline shed gracefully via
    /// the batcher's existing admission control.
    pub round_timeout_us: u64,
}

impl SessionSpec {
    /// The session id: a stable FNV-1a hash of the spec, so re-opening
    /// after a reconnect (or crash) lands on the same session.
    pub fn session_id(&self) -> u64 {
        let mut w = ByteWriter::new();
        w.str(&self.workload);
        w.u64(self.seed);
        w.u32(self.initial_samples);
        w.u32(self.refinement_rounds);
        w.u32(self.beam);
        w.u64(self.round_timeout_us);
        fnv1a(&w.into_bytes())
    }

    fn explorer_config(&self) -> ExplorerConfig {
        ExplorerConfig {
            initial_samples: self.initial_samples as usize,
            refinement_rounds: self.refinement_rounds as usize,
            beam: self.beam as usize,
            seed: self.seed,
        }
    }
}

/// Reply to a successful open.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpenInfo {
    /// The session id ([`SessionSpec::session_id`]).
    pub session_id: u64,
    /// Fingerprint of the model generation the session is bound to.
    pub fingerprint: u64,
    /// Rounds already completed (> 0 when an existing or checkpointed
    /// session was picked up).
    pub rounds_done: u64,
    /// Total rounds the spec will run.
    pub rounds_total: u64,
    /// Whether state was resumed from a checkpoint.
    pub resumed: bool,
}

/// One round's incremental result: the front delta plus accounting.
/// `proposed == predicted + cache_hits + shed` holds per round.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RoundReport {
    /// 1-based round number this report describes.
    pub round: u64,
    /// True once the exploration budget is exhausted.
    pub done: bool,
    /// Hypervolume of the front after this round, against the fixed
    /// ([`HV_IPC_REF`], [`HV_POWER_REF`]) reference point.
    pub hypervolume: f64,
    /// Fresh (never-seen) points proposed this round.
    pub proposed: u32,
    /// Points this session predicted itself.
    pub predicted: u32,
    /// Points resolved from the dedup cache (ready or another
    /// session's in-flight prediction).
    pub cache_hits: u32,
    /// Points dropped on deadline/shed — excluded from the archive.
    pub shed: u32,
    /// Entries that joined the front this round.
    pub added: Vec<ParetoEntry>,
    /// Points that left the front this round.
    pub removed: Vec<ConfigPoint>,
}

/// Complete session state at a round boundary — the checkpoint payload.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionState {
    /// The opening spec (identity; resume refuses a mismatch).
    pub spec: SessionSpec,
    /// Model fingerprint the session was last bound to.
    pub fingerprint: u64,
    /// The exploration cursor (RNG words, round, seen set, archive).
    pub explorer: ExplorerState,
    /// Lifetime predictions issued by this session.
    pub predictions: u64,
    /// Lifetime cache hits.
    pub cache_hits: u64,
    /// Lifetime shed points.
    pub shed: u64,
    /// Lifetime fresh points proposed.
    pub proposed: u64,
    /// The last completed round's report (replayed on a duplicate
    /// step after e.g. a lost reply).
    pub last_report: Option<RoundReport>,
    /// `Ready` dedup-cache entries of this session's fingerprint,
    /// restored on resume so exactly-once spans a crash.
    pub cache_entries: Vec<(ConfigPoint, u64)>,
}

fn put_point(w: &mut ByteWriter, point: &ConfigPoint) {
    let indices = point.indices();
    w.u32(indices.len() as u32);
    for &i in indices {
        w.u32(i as u32);
    }
}

fn get_point(r: &mut ByteReader) -> Result<ConfigPoint, CheckpointError> {
    let n = r.u32()? as usize;
    let mut indices = Vec::with_capacity(n);
    for _ in 0..n {
        indices.push(r.u32()? as usize);
    }
    Ok(ConfigPoint::new(indices))
}

fn put_entry(w: &mut ByteWriter, entry: &ParetoEntry) {
    put_point(w, &entry.point);
    w.f64(entry.ipc);
    w.f64(entry.power);
}

fn get_entry(r: &mut ByteReader) -> Result<ParetoEntry, CheckpointError> {
    let point = get_point(r)?;
    let ipc = r.f64()?;
    let power = r.f64()?;
    Ok(ParetoEntry { point, ipc, power })
}

fn put_entries(w: &mut ByteWriter, entries: &[ParetoEntry]) {
    w.u32(entries.len() as u32);
    for e in entries {
        put_entry(w, e);
    }
}

fn get_entries(r: &mut ByteReader) -> Result<Vec<ParetoEntry>, CheckpointError> {
    let n = r.u32()? as usize;
    let mut entries = Vec::with_capacity(n);
    for _ in 0..n {
        entries.push(get_entry(r)?);
    }
    Ok(entries)
}

fn put_report(w: &mut ByteWriter, report: &RoundReport) {
    w.u64(report.round);
    w.u32(u32::from(report.done));
    w.f64(report.hypervolume);
    w.u32(report.proposed);
    w.u32(report.predicted);
    w.u32(report.cache_hits);
    w.u32(report.shed);
    put_entries(w, &report.added);
    w.u32(report.removed.len() as u32);
    for p in &report.removed {
        put_point(w, p);
    }
}

fn get_report(r: &mut ByteReader) -> Result<RoundReport, CheckpointError> {
    let round = r.u64()?;
    let done = r.u32()? != 0;
    let hypervolume = r.f64()?;
    let proposed = r.u32()?;
    let predicted = r.u32()?;
    let cache_hits = r.u32()?;
    let shed = r.u32()?;
    let added = get_entries(r)?;
    let n = r.u32()? as usize;
    let mut removed = Vec::with_capacity(n);
    for _ in 0..n {
        removed.push(get_point(r)?);
    }
    Ok(RoundReport {
        round,
        done,
        hypervolume,
        proposed,
        predicted,
        cache_hits,
        shed,
        added,
        removed,
    })
}

/// Encodes a [`SessionState`] into a sealed `MDSESESS` container
/// (checksummed; every `f64` travels as its exact bit pattern).
pub fn encode_session(state: &SessionState) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.str(&state.spec.workload);
    w.u64(state.spec.seed);
    w.u32(state.spec.initial_samples);
    w.u32(state.spec.refinement_rounds);
    w.u32(state.spec.beam);
    w.u64(state.spec.round_timeout_us);
    w.u64(state.fingerprint);
    for word in state.explorer.rng {
        w.u64(word);
    }
    w.u64(state.explorer.rounds_done);
    w.u32(state.explorer.seen.len() as u32);
    for p in &state.explorer.seen {
        put_point(&mut w, p);
    }
    put_entries(&mut w, &state.explorer.archive);
    w.u64(state.predictions);
    w.u64(state.cache_hits);
    w.u64(state.shed);
    w.u64(state.proposed);
    match &state.last_report {
        Some(report) => {
            w.u32(1);
            put_report(&mut w, report);
        }
        None => w.u32(0),
    }
    w.u32(state.cache_entries.len() as u32);
    for (p, bits) in &state.cache_entries {
        put_point(&mut w, p);
        w.u64(*bits);
    }
    seal(MAGIC, VERSION, &w.into_bytes())
}

/// Decodes a sealed session checkpoint, rejecting bad checksums, wrong
/// versions, truncation, and trailing bytes.
///
/// # Errors
///
/// [`CheckpointError::Format`] on any integrity or layout violation.
pub fn decode_session(bytes: &[u8]) -> Result<SessionState, CheckpointError> {
    let (version, payload) = unseal(MAGIC, bytes)?;
    if version != VERSION {
        return Err(CheckpointError::Format(format!(
            "unsupported session state version {version}"
        )));
    }
    let mut r = ByteReader::new(payload);
    let workload = r.str()?;
    let seed = r.u64()?;
    let initial_samples = r.u32()?;
    let refinement_rounds = r.u32()?;
    let beam = r.u32()?;
    let round_timeout_us = r.u64()?;
    let spec = SessionSpec {
        workload,
        seed,
        initial_samples,
        refinement_rounds,
        beam,
        round_timeout_us,
    };
    let fingerprint = r.u64()?;
    let mut rng = [0u64; 4];
    for word in &mut rng {
        *word = r.u64()?;
    }
    let rounds_done = r.u64()?;
    let n = r.u32()? as usize;
    let mut seen = Vec::with_capacity(n);
    for _ in 0..n {
        seen.push(get_point(&mut r)?);
    }
    let archive = get_entries(&mut r)?;
    let predictions = r.u64()?;
    let cache_hits = r.u64()?;
    let shed = r.u64()?;
    let proposed = r.u64()?;
    let last_report = match r.u32()? {
        0 => None,
        1 => Some(get_report(&mut r)?),
        tag => {
            return Err(CheckpointError::Format(format!(
                "bad last-report tag {tag}"
            )))
        }
    };
    let n = r.u32()? as usize;
    let mut cache_entries = Vec::with_capacity(n);
    for _ in 0..n {
        let p = get_point(&mut r)?;
        let bits = r.u64()?;
        cache_entries.push((p, bits));
    }
    if r.remaining() != 0 {
        return Err(CheckpointError::Format(format!(
            "{} trailing bytes after session state",
            r.remaining()
        )));
    }
    Ok(SessionState {
        spec,
        fingerprint,
        explorer: ExplorerState {
            rng,
            rounds_done,
            seen,
            archive,
        },
        predictions,
        cache_hits,
        shed,
        proposed,
        last_report,
        cache_entries,
    })
}

// ---------------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------------

/// Session-layer failures, kept separate from [`ServeError`] so the
/// wire layer can map protocol misuse to `BadRequest` rather than a
/// serving fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionError {
    /// No model is registered for the workload.
    UnknownWorkload(String),
    /// The session id is not open here and no checkpoint was found.
    UnknownSession(u64),
    /// The step's round number does not match the protocol (must be
    /// `rounds_done` to replay or `rounds_done + 1` to advance).
    BadRound {
        /// The next round the session would execute.
        expected: u64,
        /// The round the client asked for.
        got: u64,
    },
    /// The session is already complete; no further rounds exist.
    Exhausted,
    /// The step's workload does not match the session's.
    WorkloadMismatch,
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionError::UnknownWorkload(w) => write!(f, "unknown workload '{w}'"),
            SessionError::UnknownSession(id) => write!(f, "unknown session {id:#018x}"),
            SessionError::BadRound { expected, got } => {
                write!(f, "bad round {got} (next executable round is {expected})")
            }
            SessionError::Exhausted => write!(f, "session exploration budget exhausted"),
            SessionError::WorkloadMismatch => write!(f, "step workload differs from session's"),
        }
    }
}

impl std::error::Error for SessionError {}

/// Where and how the engine persists session state.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionEngineConfig {
    /// Checkpoint root; each session writes generations under
    /// `<dir>/session-<id:016x>/`. `None` keeps sessions in memory
    /// only (a killed shard then loses them).
    pub dir: Option<PathBuf>,
    /// Checkpoint generations to retain per session.
    pub keep: usize,
    /// Round prediction deadline when the spec leaves it 0.
    pub default_round_timeout: Duration,
}

impl Default for SessionEngineConfig {
    fn default() -> Self {
        SessionEngineConfig {
            dir: None,
            keep: 3,
            default_round_timeout: Duration::from_secs(5),
        }
    }
}

impl SessionEngineConfig {
    /// Reads the environment: `METADSE_SESSION_DIR` enables
    /// checkpointing, `METADSE_SESSION_CKPT_KEEP` sets retention,
    /// `METADSE_SESSION_ROUND_TIMEOUT_US` the default round deadline.
    pub fn from_env() -> SessionEngineConfig {
        let mut config = SessionEngineConfig::default();
        if let Ok(dir) = std::env::var("METADSE_SESSION_DIR") {
            if !dir.is_empty() {
                config.dir = Some(PathBuf::from(dir));
            }
        }
        if let Some(keep) = std::env::var("METADSE_SESSION_CKPT_KEEP")
            .ok()
            .and_then(|v| v.parse().ok())
        {
            config.keep = keep;
        }
        if let Some(us) = std::env::var("METADSE_SESSION_ROUND_TIMEOUT_US")
            .ok()
            .and_then(|v| v.parse().ok())
        {
            config.default_round_timeout = Duration::from_micros(us);
        }
        config
    }
}

struct Session {
    spec: SessionSpec,
    fingerprint: u64,
    explorer: Explorer,
    space: DesignSpace,
    predictions: u64,
    cache_hits: u64,
    shed: u64,
    proposed: u64,
    last_report: Option<RoundReport>,
    ckpt: Option<Checkpointer>,
}

/// Per-shard session runtime: owns the open sessions, the shared
/// [`PointCache`], and the checkpoint plumbing. Prediction itself is
/// delegated to the [`Server`] passed into each call, so sessions ride
/// the same batching, deadlines, and hot-swap path as plain predicts.
pub struct SessionEngine {
    config: SessionEngineConfig,
    cache: PointCache,
    sessions: Mutex<HashMap<u64, Arc<Mutex<Session>>>>,
    opened: AtomicU64,
    resumed: AtomicU64,
    rounds: AtomicU64,
    checkpoints: AtomicU64,
    swap_purged: AtomicU64,
}

impl std::fmt::Debug for SessionEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionEngine")
            .field("config", &self.config)
            .field("active", &self.active())
            .finish()
    }
}

impl SessionEngine {
    /// An engine over `config`.
    pub fn new(config: SessionEngineConfig) -> SessionEngine {
        SessionEngine {
            config,
            cache: PointCache::new(),
            sessions: Mutex::new(HashMap::new()),
            opened: AtomicU64::new(0),
            resumed: AtomicU64::new(0),
            rounds: AtomicU64::new(0),
            checkpoints: AtomicU64::new(0),
            swap_purged: AtomicU64::new(0),
        }
    }

    /// An engine configured from `METADSE_SESSION_*`.
    pub fn from_env() -> SessionEngine {
        SessionEngine::new(SessionEngineConfig::from_env())
    }

    /// The shared dedup point cache.
    pub fn cache(&self) -> &PointCache {
        &self.cache
    }

    /// Open sessions currently held in memory.
    pub fn active(&self) -> usize {
        self.sessions.lock().unwrap().len()
    }

    fn checkpointer_for(&self, session_id: u64) -> Option<Checkpointer> {
        let dir = self.config.dir.as_ref()?;
        let mut config = CheckpointConfig::new(dir.join(format!("session-{session_id:016x}")));
        config.keep = self.config.keep;
        Some(Checkpointer::new(config))
    }

    fn install(&self, session_id: u64, session: Session) -> Arc<Mutex<Session>> {
        let handle = Arc::new(Mutex::new(session));
        self.sessions
            .lock()
            .unwrap()
            .entry(session_id)
            .or_insert_with(|| handle.clone())
            .clone()
    }

    /// Tries to rebuild a session from its newest readable checkpoint.
    fn resume_from_disk(&self, session_id: u64) -> Option<Arc<Mutex<Session>>> {
        let mut ckpt = self.checkpointer_for(session_id)?;
        let (state, _generation) = ckpt.load_latest_with(decode_session).ok().flatten()?;
        if state.spec.session_id() != session_id {
            obs::counter("session/resume_spec_mismatches", 1);
            return None;
        }
        self.cache.restore(state.fingerprint, &state.cache_entries);
        let session = Session {
            explorer: Explorer::from_state(&state.spec.explorer_config(), &state.explorer),
            spec: state.spec,
            fingerprint: state.fingerprint,
            space: DesignSpace::new(),
            predictions: state.predictions,
            cache_hits: state.cache_hits,
            shed: state.shed,
            proposed: state.proposed,
            last_report: state.last_report,
            ckpt: Some(ckpt),
        };
        self.resumed.fetch_add(1, Ordering::Relaxed);
        obs::counter("session/resumed", 1);
        Some(self.install(session_id, session))
    }

    /// Opens (or idempotently re-opens, or resumes from checkpoint)
    /// the session identified by `spec`.
    ///
    /// # Errors
    ///
    /// [`SessionError::UnknownWorkload`] when no model serves the
    /// spec's workload.
    pub fn open(&self, server: &Server, spec: &SessionSpec) -> Result<OpenInfo, SessionError> {
        let session_id = spec.session_id();
        let rounds_total = u64::from(spec.refinement_rounds) + 1;
        if let Some(handle) = self.sessions.lock().unwrap().get(&session_id).cloned() {
            let s = handle.lock().unwrap();
            return Ok(OpenInfo {
                session_id,
                fingerprint: s.fingerprint,
                rounds_done: s.explorer.rounds_done(),
                rounds_total,
                resumed: false,
            });
        }
        if let Some(handle) = self.resume_from_disk(session_id) {
            let s = handle.lock().unwrap();
            return Ok(OpenInfo {
                session_id,
                fingerprint: s.fingerprint,
                rounds_done: s.explorer.rounds_done(),
                rounds_total,
                resumed: true,
            });
        }
        let entry = server
            .registry()
            .get(&spec.workload)
            .ok_or_else(|| SessionError::UnknownWorkload(spec.workload.clone()))?;
        let fingerprint = entry.servable.fingerprint();
        let session = Session {
            spec: spec.clone(),
            fingerprint,
            explorer: Explorer::new(&spec.explorer_config()),
            space: DesignSpace::new(),
            predictions: 0,
            cache_hits: 0,
            shed: 0,
            proposed: 0,
            last_report: None,
            ckpt: self.checkpointer_for(session_id),
        };
        self.install(session_id, session);
        self.opened.fetch_add(1, Ordering::Relaxed);
        obs::counter("session/opened", 1);
        Ok(OpenInfo {
            session_id,
            fingerprint,
            rounds_done: 0,
            rounds_total,
            resumed: false,
        })
    }

    /// Executes (or replays) one exploration round.
    ///
    /// The round protocol makes steps idempotent: `round ==
    /// rounds_done` replays the stored report (a retry after a lost
    /// reply), `round == rounds_done + 1` executes the next round and
    /// checkpoints it *before* replying, anything else is
    /// [`SessionError::BadRound`].
    ///
    /// # Errors
    ///
    /// [`SessionError`] on protocol misuse or an unknown
    /// session/workload. Prediction-level failures (shed, deadline)
    /// are not errors: the affected points are dropped and counted in
    /// [`RoundReport::shed`].
    pub fn step(
        &self,
        server: &Server,
        workload: &str,
        session_id: u64,
        round: u64,
    ) -> Result<RoundReport, SessionError> {
        let handle = {
            let existing = self.sessions.lock().unwrap().get(&session_id).cloned();
            match existing {
                Some(h) => h,
                None => self
                    .resume_from_disk(session_id)
                    .ok_or(SessionError::UnknownSession(session_id))?,
            }
        };
        let mut s = handle.lock().unwrap();
        if s.spec.workload != workload {
            return Err(SessionError::WorkloadMismatch);
        }
        let rounds_done = s.explorer.rounds_done();
        if round == rounds_done {
            if let Some(report) = s.last_report.clone() {
                if report.round == round {
                    obs::counter("session/replays", 1);
                    return Ok(report);
                }
            }
            return Err(SessionError::BadRound {
                expected: rounds_done + 1,
                got: round,
            });
        }
        if s.explorer.is_done() {
            return Err(SessionError::Exhausted);
        }
        if round != rounds_done + 1 {
            return Err(SessionError::BadRound {
                expected: rounds_done + 1,
                got: round,
            });
        }

        // Hot-swap coherence: rebind to the current generation and
        // purge exactly the old fingerprint's cached points.
        let entry = server
            .registry()
            .get(workload)
            .ok_or_else(|| SessionError::UnknownWorkload(workload.to_string()))?;
        let fingerprint = entry.servable.fingerprint();
        if fingerprint != s.fingerprint {
            let purged = self.cache.purge_fingerprint(s.fingerprint);
            self.swap_purged.fetch_add(purged as u64, Ordering::Relaxed);
            obs::counter("session/swap_purged_points", purged as u64);
            s.fingerprint = fingerprint;
        }

        let timeout = if s.spec.round_timeout_us > 0 {
            Duration::from_micros(s.spec.round_timeout_us)
        } else {
            self.config.default_round_timeout
        };
        let prev_front = s.explorer.front();
        let s = &mut *s;
        let points = s.explorer.propose(&s.space).expect("budget checked above");
        let encoded: Vec<Vec<f64>> = points.iter().map(|p| s.space.encode(p)).collect();

        // Phase 1: classify every point. Owned points are resolved
        // before any blocking on other sessions' in-flight points —
        // that ordering is the deadlock-freedom argument.
        let mut values: Vec<Option<u64>> = vec![None; points.len()];
        let mut owned = Vec::new();
        let mut waiting = Vec::new();
        let mut predicted = 0u32;
        let mut cache_hits = 0u32;
        let mut shed = 0u32;
        for (i, point) in points.iter().enumerate() {
            match self.cache.try_claim(fingerprint, point) {
                Claim::Ready(bits) => {
                    values[i] = Some(bits);
                    cache_hits += 1;
                }
                Claim::Owed => owned.push(i),
                Claim::InFlight => waiting.push(i),
            }
        }

        // Phase 2: batch-submit the owned points and fulfil them.
        let tickets: Vec<(usize, crate::server::Ticket)> = owned
            .iter()
            .map(|&i| (i, server.submit(workload, &encoded[i], Some(timeout))))
            .collect();
        for (i, ticket) in tickets {
            match ticket.wait() {
                Ok(prediction) => {
                    let bits = prediction.value.to_bits();
                    self.cache.fulfil(fingerprint, &points[i], bits);
                    values[i] = Some(bits);
                    predicted += 1;
                }
                Err(e) => {
                    // Shed/deadline (and any serving fault) drops the
                    // point from the archive; the claim is released so
                    // a later round or session can retry it.
                    self.cache.abandon(fingerprint, &points[i]);
                    shed += 1;
                    if !matches!(
                        e,
                        ServeError::Shed | ServeError::DeadlineMiss | ServeError::Closed
                    ) {
                        obs::counter("session/predict_errors", 1);
                    }
                }
            }
        }

        // Phase 3: block on points owned elsewhere. If an owner
        // vanishes (abandon, crash) the claim is retaken here; the
        // escape hatch after repeated timeouts predicts redundantly
        // rather than hang — any real duplicate is counted, not hidden.
        for i in waiting {
            let mut attempts = 0u32;
            loop {
                match self.cache.await_ready(fingerprint, &points[i], timeout) {
                    Some(bits) => {
                        values[i] = Some(bits);
                        cache_hits += 1;
                        break;
                    }
                    None => match self.cache.try_claim(fingerprint, &points[i]) {
                        Claim::Ready(bits) => {
                            values[i] = Some(bits);
                            cache_hits += 1;
                            break;
                        }
                        Claim::Owed => {
                            match server.submit(workload, &encoded[i], Some(timeout)).wait() {
                                Ok(prediction) => {
                                    let bits = prediction.value.to_bits();
                                    self.cache.fulfil(fingerprint, &points[i], bits);
                                    values[i] = Some(bits);
                                    predicted += 1;
                                }
                                Err(_) => {
                                    self.cache.abandon(fingerprint, &points[i]);
                                    shed += 1;
                                }
                            }
                            break;
                        }
                        Claim::InFlight => {
                            attempts += 1;
                            if attempts >= 3 {
                                match server.submit(workload, &encoded[i], Some(timeout)).wait() {
                                    Ok(prediction) => {
                                        let bits = prediction.value.to_bits();
                                        self.cache.fulfil(fingerprint, &points[i], bits);
                                        values[i] = Some(bits);
                                        predicted += 1;
                                    }
                                    Err(_) => {
                                        shed += 1;
                                    }
                                }
                                break;
                            }
                        }
                    },
                }
            }
        }

        // Archive entries in proposal order (stable-sort tie-breaking
        // depends on it); shed points are simply absent.
        let proposed = points.len() as u32;
        let mut entries = Vec::with_capacity(points.len());
        for (i, point) in points.into_iter().enumerate() {
            if let Some(bits) = values[i] {
                entries.push(ParetoEntry {
                    point,
                    ipc: f64::from_bits(bits),
                    power: power_proxy(&encoded[i]),
                });
            }
        }
        s.explorer.record(entries);
        let next_front = s.explorer.front();
        let delta = front_delta(&prev_front, &next_front);
        let report = RoundReport {
            round,
            done: s.explorer.is_done(),
            hypervolume: hypervolume(&next_front, HV_IPC_REF, HV_POWER_REF),
            proposed,
            predicted,
            cache_hits,
            shed,
            added: delta.added,
            removed: delta.removed,
        };
        s.predictions += u64::from(predicted);
        s.cache_hits += u64::from(cache_hits);
        s.shed += u64::from(shed);
        s.proposed += u64::from(proposed);
        s.last_report = Some(report.clone());
        self.rounds.fetch_add(1, Ordering::Relaxed);
        obs::counter("session/rounds", 1);

        // Checkpoint before replying. A failed save is survivable (the
        // client's next steps re-execute deterministically from the
        // previous generation), so it is counted, not fatal.
        self.checkpoint(s, session_id);
        Ok(report)
    }

    fn snapshot(&self, s: &Session) -> SessionState {
        SessionState {
            spec: s.spec.clone(),
            fingerprint: s.fingerprint,
            explorer: s.explorer.state(),
            predictions: s.predictions,
            cache_hits: s.cache_hits,
            shed: s.shed,
            proposed: s.proposed,
            last_report: s.last_report.clone(),
            cache_entries: self.cache.ready_entries(s.fingerprint),
        }
    }

    fn checkpoint(&self, s: &mut Session, session_id: u64) {
        let state = self.snapshot(s);
        if let Some(ckpt) = s.ckpt.as_mut() {
            match ckpt.save_bytes(&encode_session(&state)) {
                Ok(_) => {
                    self.checkpoints.fetch_add(1, Ordering::Relaxed);
                    obs::counter("session/checkpoints", 1);
                }
                Err(e) => {
                    obs::counter("session/checkpoint_errors", 1);
                    metadse_obs::report::warn(format!(
                        "session {session_id:#018x} checkpoint failed: {e}"
                    ));
                }
            }
        }
    }

    /// Captures a session's full state (tests and diagnostics).
    pub fn state_of(&self, session_id: u64) -> Option<SessionState> {
        let handle = self.sessions.lock().unwrap().get(&session_id).cloned()?;
        let s = handle.lock().unwrap();
        Some(self.snapshot(&s))
    }

    /// Closes a session: a final checkpoint (when persistence is on),
    /// then removal from memory. Returns whether it was open.
    pub fn close(&self, session_id: u64) -> bool {
        let Some(handle) = self.sessions.lock().unwrap().remove(&session_id) else {
            return false;
        };
        let mut s = handle.lock().unwrap();
        self.checkpoint(&mut s, session_id);
        obs::counter("session/closed", 1);
        true
    }

    /// `session/*` metrics in the introspection exposition format,
    /// including a per-tenant hypervolume gauge line per open session's
    /// fingerprint.
    pub fn exposition(&self) -> String {
        let mut out = String::new();
        let mut push = |line: String| {
            out.push_str(&line);
            out.push('\n');
        };
        push(format!(
            "counter session/opened_total {}",
            self.opened.load(Ordering::Relaxed)
        ));
        push(format!(
            "counter session/resumed_total {}",
            self.resumed.load(Ordering::Relaxed)
        ));
        push(format!(
            "counter session/rounds_total {}",
            self.rounds.load(Ordering::Relaxed)
        ));
        push(format!(
            "counter session/checkpoints_total {}",
            self.checkpoints.load(Ordering::Relaxed)
        ));
        push(format!(
            "counter session/duplicate_predictions_total {}",
            self.cache.duplicate_fulfils()
        ));
        push(format!(
            "counter session/swap_purged_points_total {}",
            self.swap_purged.load(Ordering::Relaxed)
        ));
        push(format!("gauge session/active {}", self.active()));
        push(format!(
            "gauge session/cache_points {}",
            self.cache.ready_points()
        ));
        let mut predictions = 0u64;
        let mut cache_hits = 0u64;
        let mut shed = 0u64;
        // Best (max) hypervolume per tenant fingerprint across its
        // open sessions.
        let mut tenants: Vec<(u64, String, u64, f64)> = Vec::new();
        let handles: Vec<Arc<Mutex<Session>>> =
            self.sessions.lock().unwrap().values().cloned().collect();
        for handle in handles {
            let s = handle.lock().unwrap();
            predictions += s.predictions;
            cache_hits += s.cache_hits;
            shed += s.shed;
            let hv = s.last_report.as_ref().map_or(0.0, |r| r.hypervolume);
            match tenants
                .iter_mut()
                .find(|(fp, _, _, _)| *fp == s.fingerprint)
            {
                Some(t) => {
                    t.2 += 1;
                    if hv > t.3 {
                        t.3 = hv;
                    }
                }
                None => tenants.push((s.fingerprint, s.spec.workload.clone(), 1, hv)),
            }
        }
        push(format!("counter session/predictions_total {predictions}"));
        push(format!("counter session/cache_hits_total {cache_hits}"));
        push(format!("counter session/shed_total {shed}"));
        tenants.sort_by_key(|(fp, _, _, _)| *fp);
        for (fp, workload, sessions, hv) in tenants {
            push(format!(
                "tenant {fp:016x} workload {workload} sessions {sessions} hypervolume {hv:.6}"
            ));
        }
        out
    }
}
