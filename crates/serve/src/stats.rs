//! Live serving statistics: per-request trace contexts, rolling-window
//! SLO aggregation, and per-tenant attribution.
//!
//! Unlike the feature-gated `metadse-obs` registry (lifetime-cumulative,
//! compiled out by default), everything here is always on: the
//! introspection endpoint must answer `health` and `metrics` in every
//! build. The cost is a handful of relaxed atomic adds per request —
//! none of it feeds back into inference, so batched results stay
//! bit-identical to serial `predict` with or without a reader attached
//! (asserted by the introspection soak test).
//!
//! A [`RequestTrace`] is minted at `Server::submit` and rides inside the
//! queued request, collecting one timestamp per pipeline phase:
//!
//! ```text
//! admitted ──queue_wait──▶ popped ──assembly──▶ forward_start
//!          ──forward──▶ forward_end ──reply──▶ done
//! ```
//!
//! Completed (and failed) traces land in a bounded [`TraceTable`] for
//! `trace?id=` lookups, phase sums accumulate per model fingerprint in
//! [`TenantStats`], and latencies/rates feed the [`ServerStats`] rolling
//! windows that the endpoint's `metrics` command exposes as live
//! trailing-window p50/p99/shed-rate/miss-rate.
//!
//! **Ordering contract**: every terminal record (`record_served`,
//! `record_miss`, `record_shed`) is folded into the ledgers *before*
//! the request's reply is handed to the caller's channel. A client
//! whose `Ticket::wait` has returned can therefore read its own request
//! in `completed_total`, the tenant rollups, and `trace?id=` without a
//! bookkeeping race — the introspection suite asserts this directly.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

use metadse_obs::window::{WindowConfig, WindowCounter, WindowHistogram, WindowSnapshot};

/// How many completed traces the table retains (oldest evicted first).
pub const TRACE_CAPACITY: usize = 1024;

/// One request's journey through the serving pipeline. Timestamps are
/// on the server's virtual microsecond clock; a phase that never
/// happened (e.g. `forward_start_us` on a deadline miss) stays 0.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestTrace {
    /// Server-unique request id (also returned on the `Prediction`).
    pub id: u64,
    /// Workload the request targeted.
    pub workload: String,
    /// Content fingerprint of the model pinned at admission — the
    /// tenant key.
    pub fingerprint: u64,
    /// Registry generation of that model.
    pub generation: u64,
    /// Admission timestamp (`Server::submit`).
    pub admitted_us: u64,
    /// When a worker popped the batch containing this request.
    pub popped_us: u64,
    /// When the request's fingerprint group entered `predict`.
    pub forward_start_us: u64,
    /// When `predict` returned for the group.
    pub forward_end_us: u64,
    /// When the reply was handed to the caller's channel.
    pub done_us: u64,
    /// Size of the forward group this request was coalesced into.
    pub batch_size: usize,
    /// Terminal state: `served`, `deadline_miss`, `shed`, `closed`, or
    /// `artifact_error`.
    pub outcome: &'static str,
}

impl RequestTrace {
    /// A fresh trace at admission time.
    pub fn admitted(
        id: u64,
        workload: &str,
        fingerprint: u64,
        generation: u64,
        admitted_us: u64,
    ) -> RequestTrace {
        RequestTrace {
            id,
            workload: workload.to_string(),
            fingerprint,
            generation,
            admitted_us,
            popped_us: 0,
            forward_start_us: 0,
            forward_end_us: 0,
            done_us: 0,
            batch_size: 0,
            outcome: "queued",
        }
    }

    /// Microseconds spent queued before a worker popped the batch.
    pub fn queue_wait_us(&self) -> u64 {
        self.popped_us.saturating_sub(self.admitted_us)
    }

    /// Microseconds between pop and forward start (grouping by
    /// fingerprint, instance-cache lookup/rebuild, input assembly).
    pub fn assembly_us(&self) -> u64 {
        self.forward_start_us.saturating_sub(self.popped_us)
    }

    /// Microseconds inside the batched `predict`.
    pub fn forward_us(&self) -> u64 {
        self.forward_end_us.saturating_sub(self.forward_start_us)
    }

    /// Microseconds between the forward finishing and this request's
    /// reply handoff (per-request result assembly and stats
    /// bookkeeping, including that of group members replied-to first).
    pub fn reply_us(&self) -> u64 {
        self.done_us.saturating_sub(self.forward_end_us)
    }

    /// End-to-end: admission to reply delivery.
    pub fn e2e_us(&self) -> u64 {
        self.done_us.saturating_sub(self.admitted_us)
    }

    /// Plain-text phase breakdown, one `key value` pair per token —
    /// the `trace?id=` reply body.
    pub fn render(&self) -> String {
        format!(
            "trace {} workload {} fingerprint {:016x} generation {} outcome {}\n\
             admitted_us {} batch_size {}\n\
             queue_wait_us {} assembly_us {} forward_us {} reply_us {} e2e_us {}\n",
            self.id,
            self.workload,
            self.fingerprint,
            self.generation,
            self.outcome,
            self.admitted_us,
            self.batch_size,
            self.queue_wait_us(),
            self.assembly_us(),
            self.forward_us(),
            self.reply_us(),
            self.e2e_us(),
        )
    }
}

/// Bounded ring of recent terminal traces, addressable by request id.
#[derive(Debug, Default)]
pub struct TraceTable {
    ring: Mutex<VecDeque<RequestTrace>>,
}

impl TraceTable {
    /// Records a terminal trace, evicting the oldest beyond capacity.
    pub fn push(&self, trace: RequestTrace) {
        let mut ring = self.ring.lock().expect("trace table poisoned");
        if ring.len() >= TRACE_CAPACITY {
            ring.pop_front();
        }
        ring.push_back(trace);
    }

    /// Looks up a retained trace by request id.
    pub fn lookup(&self, id: u64) -> Option<RequestTrace> {
        self.ring
            .lock()
            .expect("trace table poisoned")
            .iter()
            .rev()
            .find(|t| t.id == id)
            .cloned()
    }

    /// Number of retained traces.
    pub fn len(&self) -> usize {
        self.ring.lock().expect("trace table poisoned").len()
    }

    /// Whether no traces are retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Lifetime phase-time attribution for one tenant (model fingerprint).
#[derive(Debug)]
pub struct TenantStats {
    /// Workload name at first sighting.
    pub workload: String,
    /// Latest generation seen serving this fingerprint.
    pub generation: AtomicU64,
    /// Requests served.
    pub requests: AtomicU64,
    /// Deadline misses attributed to this tenant.
    pub misses: AtomicU64,
    /// Per-phase total microseconds across all served requests.
    pub queue_wait_us: AtomicU64,
    /// See [`RequestTrace::assembly_us`].
    pub assembly_us: AtomicU64,
    /// See [`RequestTrace::forward_us`].
    pub forward_us: AtomicU64,
    /// See [`RequestTrace::reply_us`].
    pub reply_us: AtomicU64,
    /// See [`RequestTrace::e2e_us`].
    pub e2e_us: AtomicU64,
}

impl TenantStats {
    fn new(workload: &str) -> TenantStats {
        TenantStats {
            workload: workload.to_string(),
            generation: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            queue_wait_us: AtomicU64::new(0),
            assembly_us: AtomicU64::new(0),
            forward_us: AtomicU64::new(0),
            reply_us: AtomicU64::new(0),
            e2e_us: AtomicU64::new(0),
        }
    }
}

/// The server's always-on statistics hub: rolling windows for the SLO
/// view, lifetime totals, tenant attribution, and the trace table.
#[derive(Debug)]
pub struct ServerStats {
    window: WindowConfig,
    /// Trailing-window end-to-end latency (admission → forward end, the
    /// same quantity the `serve/e2e_latency_us` lifetime histogram
    /// records, so windowed and cumulative views stay comparable).
    pub e2e_us: WindowHistogram,
    /// Trailing-window queue-wait latency.
    pub queue_wait_us: WindowHistogram,
    /// Trailing-window forward latency.
    pub forward_us: WindowHistogram,
    /// Trailing-window forward-group sizes.
    pub batch_size: WindowHistogram,
    /// Requests admitted in the window.
    pub admitted: WindowCounter,
    /// Requests completed (served) in the window.
    pub completed: WindowCounter,
    /// Requests shed in the window.
    pub shed: WindowCounter,
    /// Deadline misses in the window.
    pub misses: WindowCounter,
    total_admitted: AtomicU64,
    total_completed: AtomicU64,
    total_shed: AtomicU64,
    total_misses: AtomicU64,
    tenants: RwLock<HashMap<u64, Arc<TenantStats>>>,
    /// Recent terminal traces for `trace?id=` lookups.
    pub traces: TraceTable,
}

impl ServerStats {
    /// Fresh stats with `window` ring geometry for every window metric.
    pub fn new(window: WindowConfig) -> ServerStats {
        ServerStats {
            e2e_us: WindowHistogram::new(window),
            queue_wait_us: WindowHistogram::new(window),
            forward_us: WindowHistogram::new(window),
            batch_size: WindowHistogram::new(window),
            admitted: WindowCounter::new(window),
            completed: WindowCounter::new(window),
            shed: WindowCounter::new(window),
            misses: WindowCounter::new(window),
            total_admitted: AtomicU64::new(0),
            total_completed: AtomicU64::new(0),
            total_shed: AtomicU64::new(0),
            total_misses: AtomicU64::new(0),
            tenants: RwLock::new(HashMap::new()),
            traces: TraceTable::default(),
            window,
        }
    }

    /// The ring geometry shared by all window metrics.
    pub fn window_config(&self) -> &WindowConfig {
        &self.window
    }

    fn tenant(&self, trace: &RequestTrace) -> Arc<TenantStats> {
        if let Some(t) = self
            .tenants
            .read()
            .expect("tenant table poisoned")
            .get(&trace.fingerprint)
        {
            return Arc::clone(t);
        }
        let mut table = self.tenants.write().expect("tenant table poisoned");
        Arc::clone(
            table
                .entry(trace.fingerprint)
                .or_insert_with(|| Arc::new(TenantStats::new(&trace.workload))),
        )
    }

    /// Snapshot of every tenant, sorted by fingerprint.
    pub fn tenants(&self) -> Vec<(u64, Arc<TenantStats>)> {
        let mut out: Vec<(u64, Arc<TenantStats>)> = self
            .tenants
            .read()
            .expect("tenant table poisoned")
            .iter()
            .map(|(k, v)| (*k, Arc::clone(v)))
            .collect();
        out.sort_by_key(|(k, _)| *k);
        out
    }

    /// Counts an admission at `now_us`.
    pub fn record_admitted(&self, now_us: u64) {
        self.total_admitted.fetch_add(1, Ordering::Relaxed);
        self.admitted.add(1, now_us);
    }

    /// Counts a shed and retains its trace.
    pub fn record_shed(&self, mut trace: RequestTrace, now_us: u64) {
        self.total_shed.fetch_add(1, Ordering::Relaxed);
        self.shed.add(1, now_us);
        trace.outcome = "shed";
        trace.done_us = now_us;
        self.traces.push(trace);
    }

    /// Counts a deadline miss, attributes it to the tenant, and retains
    /// the trace.
    pub fn record_miss(&self, mut trace: RequestTrace, now_us: u64) {
        self.total_misses.fetch_add(1, Ordering::Relaxed);
        self.misses.add(1, now_us);
        trace.outcome = "deadline_miss";
        trace.done_us = now_us;
        let tenant = self.tenant(&trace);
        tenant.misses.fetch_add(1, Ordering::Relaxed);
        self.traces.push(trace);
    }

    /// Records a served request: window latencies keyed at the trace's
    /// forward-end instant, tenant phase attribution, trace retention.
    pub fn record_served(&self, trace: RequestTrace) {
        let now_us = trace.forward_end_us;
        self.total_completed.fetch_add(1, Ordering::Relaxed);
        self.completed.add(1, now_us);
        self.e2e_us.record(
            trace.forward_end_us.saturating_sub(trace.admitted_us) as f64,
            now_us,
        );
        self.queue_wait_us
            .record(trace.queue_wait_us() as f64, now_us);
        self.forward_us.record(trace.forward_us() as f64, now_us);
        self.batch_size.record(trace.batch_size as f64, now_us);
        let tenant = self.tenant(&trace);
        tenant.generation.store(trace.generation, Ordering::Relaxed);
        tenant.requests.fetch_add(1, Ordering::Relaxed);
        tenant
            .queue_wait_us
            .fetch_add(trace.queue_wait_us(), Ordering::Relaxed);
        tenant
            .assembly_us
            .fetch_add(trace.assembly_us(), Ordering::Relaxed);
        tenant
            .forward_us
            .fetch_add(trace.forward_us(), Ordering::Relaxed);
        tenant
            .reply_us
            .fetch_add(trace.reply_us(), Ordering::Relaxed);
        tenant.e2e_us.fetch_add(trace.e2e_us(), Ordering::Relaxed);
        self.traces.push(trace);
    }

    /// Lifetime totals: `(admitted, completed, shed, misses)`.
    pub fn totals(&self) -> (u64, u64, u64, u64) {
        (
            self.total_admitted.load(Ordering::Relaxed),
            self.total_completed.load(Ordering::Relaxed),
            self.total_shed.load(Ordering::Relaxed),
            self.total_misses.load(Ordering::Relaxed),
        )
    }

    /// Trailing-window e2e latency snapshot at `now_us` — the quantity
    /// the `metrics` command exposes as live p50/p99.
    pub fn e2e_window(&self, now_us: u64) -> WindowSnapshot {
        self.e2e_us.snapshot(now_us)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(id: u64) -> RequestTrace {
        let mut t = RequestTrace::admitted(id, "mcf", 0xfeed, 3, 100);
        t.popped_us = 150;
        t.forward_start_us = 160;
        t.forward_end_us = 400;
        t.done_us = 410;
        t.batch_size = 8;
        t.outcome = "served";
        t
    }

    #[test]
    fn phase_accounting_adds_up() {
        let t = trace(1);
        assert_eq!(t.queue_wait_us(), 50);
        assert_eq!(t.assembly_us(), 10);
        assert_eq!(t.forward_us(), 240);
        assert_eq!(t.reply_us(), 10);
        assert_eq!(t.e2e_us(), 310);
        assert_eq!(
            t.queue_wait_us() + t.assembly_us() + t.forward_us() + t.reply_us(),
            t.e2e_us()
        );
        let rendered = t.render();
        assert!(rendered.contains("trace 1 workload mcf"));
        assert!(rendered.contains("e2e_us 310"));
    }

    #[test]
    fn trace_table_is_bounded_and_addressable() {
        let table = TraceTable::default();
        for id in 0..(TRACE_CAPACITY as u64 + 10) {
            table.push(trace(id));
        }
        assert_eq!(table.len(), TRACE_CAPACITY);
        assert!(table.lookup(0).is_none(), "oldest evicted");
        assert_eq!(
            table.lookup(TRACE_CAPACITY as u64 + 9).unwrap().id,
            TRACE_CAPACITY as u64 + 9
        );
    }

    #[test]
    fn served_requests_roll_into_windows_and_tenants() {
        let stats = ServerStats::new(WindowConfig {
            slot_us: 1_000,
            slots: 4,
        });
        stats.record_admitted(100);
        stats.record_served(trace(7));
        let snap = stats.e2e_window(400);
        assert_eq!(snap.count, 1);
        assert_eq!(snap.min(), 300.0); // forward_end − admitted
        let tenants = stats.tenants();
        assert_eq!(tenants.len(), 1);
        let (fp, tenant) = &tenants[0];
        assert_eq!(*fp, 0xfeed);
        assert_eq!(tenant.workload, "mcf");
        assert_eq!(tenant.requests.load(Ordering::Relaxed), 1);
        assert_eq!(tenant.forward_us.load(Ordering::Relaxed), 240);
        assert_eq!(stats.totals(), (1, 1, 0, 0));
        assert_eq!(stats.traces.lookup(7).unwrap().outcome, "served");
    }

    #[test]
    fn misses_and_sheds_attribute_outcomes() {
        let stats = ServerStats::new(WindowConfig {
            slot_us: 1_000,
            slots: 4,
        });
        stats.record_admitted(100);
        stats.record_miss(RequestTrace::admitted(1, "mcf", 0xfeed, 3, 100), 500);
        stats.record_shed(RequestTrace::admitted(2, "mcf", 0xfeed, 3, 120), 120);
        assert_eq!(stats.totals(), (1, 0, 1, 1));
        assert_eq!(stats.misses.total(500), 1);
        assert_eq!(stats.shed.total(500), 1);
        assert_eq!(stats.traces.lookup(1).unwrap().outcome, "deadline_miss");
        assert_eq!(stats.traces.lookup(2).unwrap().outcome, "shed");
    }
}
