//! Micro-batching queue core: a pure state machine over a virtual clock.
//!
//! All batching policy lives here, with **no** threads, locks, or real
//! time: callers pass `now_us` (microseconds on any monotone clock) into
//! every transition, so unit tests can drive the exact interleavings —
//! a deadline expiring one tick before a flush, a batch filling exactly
//! to `max_batch`, a close racing a pending wait — that wall-clock tests
//! can only hope to hit. The runtime in [`crate::server`] wraps a
//! [`QueueCore`] in a mutex/condvar pair and feeds it `Instant`-derived
//! time; the loom-style tests in `tests/concurrency.rs` feed it a
//! hand-advanced integer.
//!
//! ## Policy
//!
//! * **Admission**: the queue is bounded by
//!   [`BatchConfig::queue_capacity`]; a push beyond it is *shed*
//!   immediately ([`Admission::Shed`]) rather than blocking the caller —
//!   under overload the server degrades by rejecting, never by building
//!   an unbounded backlog.
//! * **Coalescing**: a batch is released as soon as
//!   [`BatchConfig::max_batch`] requests are queued, or when the oldest
//!   request has waited [`BatchConfig::max_wait_us`], whichever comes
//!   first.
//! * **Deadlines**: a request may carry an absolute deadline; once
//!   `now_us` passes it the request is surrendered by
//!   [`QueueCore::take_expired`] instead of occupying batch slots.
//! * **Drain**: after [`QueueCore::close`], pushes are refused but
//!   queued requests keep flowing out in batches until empty — graceful
//!   shutdown loses nothing that was admitted.

use std::collections::VecDeque;

/// Tuning for the micro-batching queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchConfig {
    /// Release a batch once this many requests are queued (min 1).
    pub max_batch: usize,
    /// Release a partial batch once the oldest request has waited this
    /// long, in microseconds. `0` disables coalescing: every pop releases
    /// whatever is queued immediately.
    pub max_wait_us: u64,
    /// Admission bound: pushes beyond this many queued requests are shed.
    pub queue_capacity: usize,
}

impl Default for BatchConfig {
    fn default() -> BatchConfig {
        BatchConfig {
            max_batch: 32,
            max_wait_us: 200,
            queue_capacity: 1024,
        }
    }
}

/// A queued request: caller payload plus the timing the policy needs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pending<T> {
    /// The caller's request.
    pub payload: T,
    /// Virtual-clock time the request was admitted.
    pub enqueued_at_us: u64,
    /// Absolute virtual-clock deadline, if the caller set one.
    pub deadline_us: Option<u64>,
}

/// Outcome of [`QueueCore::push`].
#[derive(Debug, PartialEq, Eq)]
pub enum Admission<T> {
    /// The request is queued.
    Accepted,
    /// The queue is full; the payload is handed back untouched.
    Shed(T),
    /// The queue is closed; the payload is handed back untouched.
    Closed(T),
}

/// Outcome of [`QueueCore::pop`].
#[derive(Debug, PartialEq, Eq)]
pub enum PopOutcome<T> {
    /// A batch is ready — run it.
    Batch(Vec<Pending<T>>),
    /// Nothing is ready yet; nothing can happen before this virtual time
    /// (the earlier of the oldest request's flush point and the soonest
    /// queued deadline), so sleep until then or until a push arrives.
    WaitUntil(u64),
    /// The queue is empty and open — wait for a push.
    Idle,
    /// The queue is empty and closed — the worker can exit.
    Closed,
}

/// The pure micro-batching state machine. See the module docs for the
/// policy; see [`crate::server::Server`] for the threaded runtime.
#[derive(Debug)]
pub struct QueueCore<T> {
    config: BatchConfig,
    queue: VecDeque<Pending<T>>,
    closed: bool,
}

impl<T> QueueCore<T> {
    /// An empty, open queue under `config` (capacities clamped to ≥ 1).
    pub fn new(config: BatchConfig) -> QueueCore<T> {
        QueueCore {
            config: BatchConfig {
                max_batch: config.max_batch.max(1),
                queue_capacity: config.queue_capacity.max(1),
                ..config
            },
            queue: VecDeque::new(),
            closed: false,
        }
    }

    /// The effective (clamped) configuration.
    pub fn config(&self) -> &BatchConfig {
        &self.config
    }

    /// Number of queued requests.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Whether [`close`](QueueCore::close) has been called.
    pub fn is_closed(&self) -> bool {
        self.closed
    }

    /// Admits `payload` at virtual time `now_us`, or refuses it.
    pub fn push(&mut self, payload: T, now_us: u64, deadline_us: Option<u64>) -> Admission<T> {
        if self.closed {
            return Admission::Closed(payload);
        }
        if self.queue.len() >= self.config.queue_capacity {
            return Admission::Shed(payload);
        }
        self.queue.push_back(Pending {
            payload,
            enqueued_at_us: now_us,
            deadline_us,
        });
        Admission::Accepted
    }

    /// Refuses further pushes; queued requests still drain via
    /// [`pop`](QueueCore::pop).
    pub fn close(&mut self) {
        self.closed = true;
    }

    /// Admission time of the oldest queued request, if any — the
    /// watchdog's queue-stall probe: `now_us − oldest_enqueued_us()`
    /// bounds how long the head of line has been waiting for a worker.
    pub fn oldest_enqueued_us(&self) -> Option<u64> {
        self.queue.front().map(|p| p.enqueued_at_us)
    }

    /// Removes and returns every queued request whose deadline is at or
    /// before `now_us`, preserving queue order. The runtime fails these
    /// with a deadline error; the policy here only evicts them so they
    /// never occupy batch slots.
    pub fn take_expired(&mut self, now_us: u64) -> Vec<Pending<T>> {
        if self
            .queue
            .iter()
            .all(|p| p.deadline_us.is_none_or(|d| d > now_us))
        {
            return Vec::new();
        }
        let mut expired = Vec::new();
        let mut kept = VecDeque::with_capacity(self.queue.len());
        for p in self.queue.drain(..) {
            if p.deadline_us.is_some_and(|d| d <= now_us) {
                expired.push(p);
            } else {
                kept.push_back(p);
            }
        }
        self.queue = kept;
        expired
    }

    /// Advances the policy at virtual time `now_us`. Call
    /// [`take_expired`](QueueCore::take_expired) first so dead requests
    /// are failed rather than served late.
    pub fn pop(&mut self, now_us: u64) -> PopOutcome<T> {
        let Some(oldest) = self.queue.front() else {
            return if self.closed {
                PopOutcome::Closed
            } else {
                PopOutcome::Idle
            };
        };
        let full = self.queue.len() >= self.config.max_batch;
        let flush_at = oldest
            .enqueued_at_us
            .saturating_add(self.config.max_wait_us);
        if full || self.closed || now_us >= flush_at {
            let take = self.queue.len().min(self.config.max_batch);
            return PopOutcome::Batch(self.queue.drain(..take).collect());
        }
        // Wake for whichever comes first: the oldest request's flush
        // point or the soonest deadline (so expiry is noticed on time).
        let mut wake = flush_at;
        for p in &self.queue {
            if let Some(d) = p.deadline_us {
                wake = wake.min(d);
            }
        }
        PopOutcome::WaitUntil(wake)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn core(max_batch: usize, max_wait_us: u64, capacity: usize) -> QueueCore<u32> {
        QueueCore::new(BatchConfig {
            max_batch,
            max_wait_us,
            queue_capacity: capacity,
        })
    }

    fn payloads(batch: &[Pending<u32>]) -> Vec<u32> {
        batch.iter().map(|p| p.payload).collect()
    }

    #[test]
    fn empty_queue_is_idle_then_closed() {
        let mut q = core(4, 100, 8);
        assert_eq!(q.pop(0), PopOutcome::Idle);
        q.close();
        assert_eq!(q.pop(0), PopOutcome::Closed);
        // Empty flush: closing an empty queue never yields a batch.
        assert!(q.is_empty());
    }

    #[test]
    fn exactly_full_batch_releases_without_waiting() {
        let mut q = core(4, 1_000_000, 8);
        for i in 0..4 {
            assert_eq!(q.push(i, 0, None), Admission::Accepted);
        }
        // Time has not advanced at all — fullness alone releases.
        match q.pop(0) {
            PopOutcome::Batch(b) => assert_eq!(payloads(&b), vec![0, 1, 2, 3]),
            other => panic!("expected a full batch, got {other:?}"),
        }
        assert_eq!(q.pop(0), PopOutcome::Idle);
    }

    #[test]
    fn partial_batch_waits_exactly_max_wait() {
        let mut q = core(4, 100, 8);
        q.push(7, 10, None);
        // One tick early: still waiting, and the wake time is exact.
        assert_eq!(q.pop(109), PopOutcome::WaitUntil(110));
        match q.pop(110) {
            PopOutcome::Batch(b) => {
                assert_eq!(payloads(&b), vec![7]);
                assert_eq!(b[0].enqueued_at_us, 10);
            }
            other => panic!("expected flush at max_wait, got {other:?}"),
        }
    }

    #[test]
    fn oversize_backlog_drains_in_max_batch_chunks() {
        let mut q = core(2, 0, 16);
        for i in 0..5 {
            q.push(i, 0, None);
        }
        let mut seen = Vec::new();
        while let PopOutcome::Batch(b) = q.pop(0) {
            assert!(b.len() <= 2);
            seen.extend(payloads(&b));
        }
        assert_eq!(seen, vec![0, 1, 2, 3, 4], "order preserved across chunks");
    }

    #[test]
    fn deadline_expiring_while_queued_bounds_the_wait() {
        let mut q = core(8, 10_000, 16);
        q.push(1, 0, None);
        q.push(2, 0, Some(50)); // dies long before the 10 ms flush
        assert_eq!(q.pop(0), PopOutcome::WaitUntil(50), "wake for the deadline");
        assert!(q.take_expired(49).is_empty(), "not dead one tick early");
        let dead = q.take_expired(50);
        assert_eq!(payloads(&dead), vec![2]);
        // The survivor still flushes at its own max_wait point.
        assert_eq!(q.pop(50), PopOutcome::WaitUntil(10_000));
        match q.pop(10_000) {
            PopOutcome::Batch(b) => assert_eq!(payloads(&b), vec![1]),
            other => panic!("expected survivor flush, got {other:?}"),
        }
    }

    #[test]
    fn shed_on_full_hands_the_payload_back() {
        let mut q = core(4, 100, 2);
        assert_eq!(q.push(1, 0, None), Admission::Accepted);
        assert_eq!(q.push(2, 0, None), Admission::Accepted);
        assert_eq!(q.push(3, 0, None), Admission::Shed(3));
        assert_eq!(q.len(), 2, "shed pushes leave the queue untouched");
    }

    #[test]
    fn close_drains_admitted_requests_then_reports_closed() {
        let mut q = core(2, 1_000_000, 8);
        for i in 0..3 {
            q.push(i, 0, None);
        }
        q.close();
        assert_eq!(q.push(9, 0, None), Admission::Closed(9));
        // Drain ignores max_wait — shutdown should not dawdle.
        match q.pop(0) {
            PopOutcome::Batch(b) => assert_eq!(payloads(&b), vec![0, 1]),
            other => panic!("expected drain batch, got {other:?}"),
        }
        match q.pop(0) {
            PopOutcome::Batch(b) => assert_eq!(payloads(&b), vec![2]),
            other => panic!("expected final drain batch, got {other:?}"),
        }
        assert_eq!(q.pop(0), PopOutcome::Closed);
    }

    #[test]
    fn zero_max_wait_disables_coalescing() {
        let mut q = core(32, 0, 8);
        q.push(5, 123, None);
        match q.pop(123) {
            PopOutcome::Batch(b) => assert_eq!(payloads(&b), vec![5]),
            other => panic!("expected immediate release, got {other:?}"),
        }
    }

    #[test]
    fn config_clamps_degenerate_sizes() {
        let q: QueueCore<u32> = core(0, 0, 0);
        assert_eq!(q.config().max_batch, 1);
        assert_eq!(q.config().queue_capacity, 1);
    }
}
