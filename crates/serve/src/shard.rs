//! One shard of the multi-process serving fleet: the binary wire
//! protocol and the worker-process runtime behind it.
//!
//! ## Topology
//!
//! ```text
//! client ──frames──▶ metadse-front ──frames──▶ metadse-serve (shard 0)
//!                        │                     metadse-serve (shard 1)
//!                        └──── routes by ────▶ metadse-serve (shard …)
//!                              fingerprint
//! ```
//!
//! Each worker process runs a [`ShardServer`]: a [`ModelRegistry`]
//! opened with [`ModelRegistry::open_sharded`] (it loads only the
//! workloads its [`ShardSpec`] owns), an in-process [`Server`] for
//! batched execution, a unix-socket listener speaking the frame codec
//! from [`metadse_obs::frame`], and the standard introspection endpoint
//! at `<socket>.intro` for the supervisor's readiness barrier.
//!
//! ## Wire protocol
//!
//! Every message is one length-prefixed frame (u32-LE, ≤ 1 MiB — the
//! same framing as the introspection plane). Payloads are binary,
//! little-endian, tag-discriminated:
//!
//! ```text
//! request  := 'P' predict   workload:str16 config:vec16<f64-bits>
//!                           timeout_us:u64 (0 = none)
//!           | 'W' workloads (no body)
//!           | 'O' open      workload:str16 seed:u64 initial:u32
//!                           rounds:u32 beam:u32 timeout_us:u64
//!           | 'S' step      workload:str16 session:u64 round:u64
//!           | 'C' close     workload:str16 session:u64
//! reply    := 'V' value     bits:u64 generation:u64 batch:u32
//!                           trace_id:u64 shard:u32
//!           | 'L' list      count:u16 · (name:str16 fp:u64 gen:u64)*
//!           | 'O' opened    session:u64 fp:u64 rounds_done:u64
//!                           rounds_total:u64 resumed:u8
//!           | 'D' delta     session:u64 round:u64 done:u8 hv:f64-bits
//!                           proposed:u32 predicted:u32 hits:u32 shed:u32
//!                           added:vec16<entry> removed:vec16<point>
//!           | 'K' closed    existed:u8
//!           | 'E' error     code:u8 message:str16
//! point    := n:u16 · idx:u16 each; entry := point ipc:u64 power:u64
//! str16    := len:u16-LE bytes; vec16 := len:u16-LE elems
//! ```
//!
//! Session ops (`'O'`/`'S'`/`'C'`) carry their workload so the front
//! door routes them statelessly exactly like predicts — sessions for a
//! workload always land on the shard that owns its model.
//!
//! `f64`s travel as raw IEEE-754 bits ([`f64::to_bits`]) in both
//! directions, so a value crossing two process boundaries arrives
//! **bit-identical** to the serial `predict` that produced it — the
//! property the shard soak asserts end to end.
//!
//! One request per round-trip; connections are reused for further
//! round-trips. A connection that dies mid-flight (the shard was
//! SIGKILLed) surfaces as an I/O error to the peer, which maps it to
//! [`ErrorCode::Unavailable`] — predictions are pure, so retrying a
//! lost round-trip is always safe.

use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use metadse::shard::ShardSpec;
use metadse_obs as obs;
use metadse_obs::frame::{read_frame, write_frame};
use metadse_obs::introspect::{Respond, Response};

use crate::registry::ModelRegistry;
use crate::server::{Prediction, ServeConfig, ServeError, Server};

/// Suffix appended to a shard's (or the front's) data socket to name
/// its introspection socket.
pub const INTRO_SUFFIX: &str = ".intro";

/// The introspection socket path for a data socket: `<sock>.intro`.
pub fn intro_socket(socket: &Path) -> PathBuf {
    let mut os = socket.as_os_str().to_os_string();
    os.push(INTRO_SUFFIX);
    PathBuf::from(os)
}

/// The data-socket path for shard `index` under `dir`.
pub fn shard_socket(dir: &Path, index: usize) -> PathBuf {
    dir.join(format!("shard-{index}.sock"))
}

// ---------------------------------------------------------------------
// Wire protocol
// ---------------------------------------------------------------------

/// Error classes carried on the wire (`'E'` replies).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    /// Admission queue full; retry with backoff.
    Shed = 1,
    /// The serving process is shutting down.
    Closed = 2,
    /// The request's deadline passed while queued.
    DeadlineMiss = 3,
    /// No shard serves this workload.
    UnknownWorkload = 4,
    /// Configuration vector has the wrong arity.
    BadArity = 5,
    /// The model artifact failed to instantiate on a worker.
    Artifact = 6,
    /// The owning shard is down (crashed / restarting); the request was
    /// **not** executed-and-acknowledged — retry.
    Unavailable = 7,
    /// The peer sent a frame this side cannot decode.
    BadRequest = 8,
    /// The session id is not open on this shard (and no checkpoint was
    /// found); re-open the session, then retry the step.
    UnknownSession = 9,
}

impl ErrorCode {
    fn from_u8(v: u8) -> Option<ErrorCode> {
        Some(match v {
            1 => ErrorCode::Shed,
            2 => ErrorCode::Closed,
            3 => ErrorCode::DeadlineMiss,
            4 => ErrorCode::UnknownWorkload,
            5 => ErrorCode::BadArity,
            6 => ErrorCode::Artifact,
            7 => ErrorCode::Unavailable,
            8 => ErrorCode::BadRequest,
            9 => ErrorCode::UnknownSession,
            _ => return None,
        })
    }
}

/// A typed failure from the sharded serving fabric, as seen by clients.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardError {
    /// Failure class (drives retry policy).
    pub code: ErrorCode,
    /// Human-readable detail.
    pub message: String,
}

impl ShardError {
    /// Shorthand constructor.
    pub fn new(code: ErrorCode, message: impl Into<String>) -> ShardError {
        ShardError {
            code,
            message: message.into(),
        }
    }

    /// Whether a client may safely retry this request (predictions are
    /// pure, so anything that did not *deterministically* fail is
    /// retryable).
    pub fn retryable(&self) -> bool {
        matches!(
            self.code,
            ErrorCode::Shed | ErrorCode::Closed | ErrorCode::Unavailable
        )
    }
}

impl std::fmt::Display for ShardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:?}: {}", self.code, self.message)
    }
}

impl std::error::Error for ShardError {}

impl From<ServeError> for ShardError {
    fn from(e: ServeError) -> ShardError {
        let code = match &e {
            ServeError::Shed => ErrorCode::Shed,
            ServeError::Closed => ErrorCode::Closed,
            ServeError::DeadlineMiss => ErrorCode::DeadlineMiss,
            ServeError::UnknownWorkload(_) => ErrorCode::UnknownWorkload,
            ServeError::BadArity { .. } => ErrorCode::BadArity,
            ServeError::Artifact(_) => ErrorCode::Artifact,
        };
        ShardError::new(code, e.to_string())
    }
}

impl From<crate::session::SessionError> for ShardError {
    fn from(e: crate::session::SessionError) -> ShardError {
        use crate::session::SessionError;
        let code = match &e {
            SessionError::UnknownWorkload(_) => ErrorCode::UnknownWorkload,
            SessionError::UnknownSession(_) => ErrorCode::UnknownSession,
            SessionError::BadRound { .. }
            | SessionError::Exhausted
            | SessionError::WorkloadMismatch => ErrorCode::BadRequest,
        };
        ShardError::new(code, e.to_string())
    }
}

/// One request frame.
#[derive(Debug, Clone, PartialEq)]
pub enum ShardRequest {
    /// Predict one configuration for `workload`.
    Predict {
        /// Target workload name.
        workload: String,
        /// Configuration vector (model input).
        config: Vec<f64>,
        /// Queue-residency deadline in µs; 0 = none.
        timeout_us: u64,
    },
    /// List the workloads this process serves.
    Workloads,
    /// Open (or idempotently re-open / resume) an exploration session.
    OpenSession(crate::session::SessionSpec),
    /// Execute or replay one exploration round.
    StepSession {
        /// Session workload (the routing key).
        workload: String,
        /// Session id from the open reply.
        session: u64,
        /// 1-based round to execute (`rounds_done + 1`) or replay
        /// (`rounds_done`).
        round: u64,
    },
    /// Close a session (final checkpoint, then release).
    CloseSession {
        /// Session workload (the routing key).
        workload: String,
        /// Session id from the open reply.
        session: u64,
    },
}

impl ShardRequest {
    /// The workload a front door routes this request by; `None` for
    /// fleet-wide requests answered by any shard.
    pub fn routing_workload(&self) -> Option<&str> {
        match self {
            ShardRequest::Predict { workload, .. }
            | ShardRequest::StepSession { workload, .. }
            | ShardRequest::CloseSession { workload, .. } => Some(workload),
            ShardRequest::OpenSession(spec) => Some(&spec.workload),
            ShardRequest::Workloads => None,
        }
    }
}

/// One workload a shard serves, as reported by [`ShardRequest::Workloads`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkloadInfo {
    /// Workload name.
    pub name: String,
    /// Artifact fingerprint (the sharding key).
    pub fingerprint: u64,
    /// Registry generation currently served.
    pub generation: u64,
}

/// A successful prediction as it crosses the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WirePrediction {
    /// IEEE-754 bits of the predicted value ([`f64::to_bits`]).
    pub value_bits: u64,
    /// Registry generation of the serving model.
    pub generation: u64,
    /// Coalesced batch size.
    pub batch_size: u32,
    /// Server-unique trace id on the owning shard.
    pub trace_id: u64,
    /// Index of the shard that executed the forward.
    pub shard: u32,
}

/// One reply frame.
#[derive(Debug, Clone, PartialEq)]
pub enum ShardReply {
    /// Prediction succeeded.
    Value(WirePrediction),
    /// Workload listing.
    Workloads(Vec<WorkloadInfo>),
    /// Session opened (or resumed).
    SessionOpened(crate::session::OpenInfo),
    /// One round's incremental front delta.
    SessionDelta {
        /// Session the round belongs to.
        session: u64,
        /// The round's report (delta, hypervolume, accounting).
        report: crate::session::RoundReport,
    },
    /// Session closed; whether it was open here.
    SessionClosed(bool),
    /// Typed failure.
    Error(ShardError),
}

fn put_point16(out: &mut Vec<u8>, point: &metadse_sim::ConfigPoint) -> io::Result<()> {
    let indices = point.indices();
    let len = u16::try_from(indices.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "point exceeds u16 length"))?;
    out.extend_from_slice(&len.to_le_bytes());
    for &i in indices {
        let idx = u16::try_from(i)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "index exceeds u16"))?;
        out.extend_from_slice(&idx.to_le_bytes());
    }
    Ok(())
}

fn put_entry16(out: &mut Vec<u8>, entry: &metadse::explorer::ParetoEntry) -> io::Result<()> {
    put_point16(out, &entry.point)?;
    out.extend_from_slice(&entry.ipc.to_bits().to_le_bytes());
    out.extend_from_slice(&entry.power.to_bits().to_le_bytes());
    Ok(())
}

fn put_str16(out: &mut Vec<u8>, s: &str) -> io::Result<()> {
    let len = u16::try_from(s.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "string exceeds u16 length"))?;
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(s.as_bytes());
    Ok(())
}

/// Sequential decoder over one frame payload; every read is
/// bounds-checked so a malformed frame is an error, never a panic.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Cursor<'a> {
        Cursor { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> io::Result<&'a [u8]> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.buf.len());
        let Some(end) = end else {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "frame payload truncated",
            ));
        };
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> io::Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> io::Result<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> io::Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> io::Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn str16(&mut self) -> io::Result<String> {
        let len = self.u16()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }

    fn point16(&mut self) -> io::Result<metadse_sim::ConfigPoint> {
        let n = self.u16()? as usize;
        let mut indices = Vec::with_capacity(n);
        for _ in 0..n {
            indices.push(self.u16()? as usize);
        }
        Ok(metadse_sim::ConfigPoint::new(indices))
    }

    fn entry16(&mut self) -> io::Result<metadse::explorer::ParetoEntry> {
        let point = self.point16()?;
        let ipc = f64::from_bits(self.u64()?);
        let power = f64::from_bits(self.u64()?);
        Ok(metadse::explorer::ParetoEntry { point, ipc, power })
    }

    fn finish(self) -> io::Result<()> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "trailing bytes after message",
            ))
        }
    }
}

impl ShardRequest {
    /// Serializes to one frame payload.
    ///
    /// # Errors
    ///
    /// `InvalidInput` when a workload name or configuration exceeds the
    /// u16 length fields.
    pub fn encode(&self) -> io::Result<Vec<u8>> {
        let mut out = Vec::new();
        match self {
            ShardRequest::Predict {
                workload,
                config,
                timeout_us,
            } => {
                out.push(b'P');
                put_str16(&mut out, workload)?;
                let len = u16::try_from(config.len()).map_err(|_| {
                    io::Error::new(io::ErrorKind::InvalidInput, "config exceeds u16 length")
                })?;
                out.extend_from_slice(&len.to_le_bytes());
                for v in config {
                    out.extend_from_slice(&v.to_bits().to_le_bytes());
                }
                out.extend_from_slice(&timeout_us.to_le_bytes());
            }
            ShardRequest::Workloads => out.push(b'W'),
            ShardRequest::OpenSession(spec) => {
                out.push(b'O');
                put_str16(&mut out, &spec.workload)?;
                out.extend_from_slice(&spec.seed.to_le_bytes());
                out.extend_from_slice(&spec.initial_samples.to_le_bytes());
                out.extend_from_slice(&spec.refinement_rounds.to_le_bytes());
                out.extend_from_slice(&spec.beam.to_le_bytes());
                out.extend_from_slice(&spec.round_timeout_us.to_le_bytes());
            }
            ShardRequest::StepSession {
                workload,
                session,
                round,
            } => {
                out.push(b'S');
                put_str16(&mut out, workload)?;
                out.extend_from_slice(&session.to_le_bytes());
                out.extend_from_slice(&round.to_le_bytes());
            }
            ShardRequest::CloseSession { workload, session } => {
                out.push(b'C');
                put_str16(&mut out, workload)?;
                out.extend_from_slice(&session.to_le_bytes());
            }
        }
        Ok(out)
    }

    /// Parses one frame payload.
    ///
    /// # Errors
    ///
    /// `InvalidData` on unknown tags, truncation, or trailing bytes.
    pub fn decode(payload: &[u8]) -> io::Result<ShardRequest> {
        let mut c = Cursor::new(payload);
        let request = match c.u8()? {
            b'P' => {
                let workload = c.str16()?;
                let n = c.u16()? as usize;
                let mut config = Vec::with_capacity(n);
                for _ in 0..n {
                    config.push(f64::from_bits(c.u64()?));
                }
                ShardRequest::Predict {
                    workload,
                    config,
                    timeout_us: c.u64()?,
                }
            }
            b'W' => ShardRequest::Workloads,
            b'O' => ShardRequest::OpenSession(crate::session::SessionSpec {
                workload: c.str16()?,
                seed: c.u64()?,
                initial_samples: c.u32()?,
                refinement_rounds: c.u32()?,
                beam: c.u32()?,
                round_timeout_us: c.u64()?,
            }),
            b'S' => ShardRequest::StepSession {
                workload: c.str16()?,
                session: c.u64()?,
                round: c.u64()?,
            },
            b'C' => ShardRequest::CloseSession {
                workload: c.str16()?,
                session: c.u64()?,
            },
            tag => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("unknown request tag {tag:#04x}"),
                ))
            }
        };
        c.finish()?;
        Ok(request)
    }
}

impl ShardReply {
    /// Serializes to one frame payload.
    ///
    /// # Errors
    ///
    /// `InvalidInput` when a name or message exceeds the u16 length
    /// fields.
    pub fn encode(&self) -> io::Result<Vec<u8>> {
        let mut out = Vec::new();
        match self {
            ShardReply::Value(p) => {
                out.push(b'V');
                out.extend_from_slice(&p.value_bits.to_le_bytes());
                out.extend_from_slice(&p.generation.to_le_bytes());
                out.extend_from_slice(&p.batch_size.to_le_bytes());
                out.extend_from_slice(&p.trace_id.to_le_bytes());
                out.extend_from_slice(&p.shard.to_le_bytes());
            }
            ShardReply::Workloads(list) => {
                out.push(b'L');
                let len = u16::try_from(list.len()).map_err(|_| {
                    io::Error::new(io::ErrorKind::InvalidInput, "workload list exceeds u16")
                })?;
                out.extend_from_slice(&len.to_le_bytes());
                for w in list {
                    put_str16(&mut out, &w.name)?;
                    out.extend_from_slice(&w.fingerprint.to_le_bytes());
                    out.extend_from_slice(&w.generation.to_le_bytes());
                }
            }
            ShardReply::SessionOpened(info) => {
                out.push(b'O');
                out.extend_from_slice(&info.session_id.to_le_bytes());
                out.extend_from_slice(&info.fingerprint.to_le_bytes());
                out.extend_from_slice(&info.rounds_done.to_le_bytes());
                out.extend_from_slice(&info.rounds_total.to_le_bytes());
                out.push(u8::from(info.resumed));
            }
            ShardReply::SessionDelta { session, report } => {
                out.push(b'D');
                out.extend_from_slice(&session.to_le_bytes());
                out.extend_from_slice(&report.round.to_le_bytes());
                out.push(u8::from(report.done));
                out.extend_from_slice(&report.hypervolume.to_bits().to_le_bytes());
                out.extend_from_slice(&report.proposed.to_le_bytes());
                out.extend_from_slice(&report.predicted.to_le_bytes());
                out.extend_from_slice(&report.cache_hits.to_le_bytes());
                out.extend_from_slice(&report.shed.to_le_bytes());
                let added = u16::try_from(report.added.len()).map_err(|_| {
                    io::Error::new(io::ErrorKind::InvalidInput, "delta added exceeds u16")
                })?;
                out.extend_from_slice(&added.to_le_bytes());
                for entry in &report.added {
                    put_entry16(&mut out, entry)?;
                }
                let removed = u16::try_from(report.removed.len()).map_err(|_| {
                    io::Error::new(io::ErrorKind::InvalidInput, "delta removed exceeds u16")
                })?;
                out.extend_from_slice(&removed.to_le_bytes());
                for point in &report.removed {
                    put_point16(&mut out, point)?;
                }
            }
            ShardReply::SessionClosed(existed) => {
                out.push(b'K');
                out.push(u8::from(*existed));
            }
            ShardReply::Error(e) => {
                out.push(b'E');
                out.push(e.code as u8);
                put_str16(&mut out, &e.message)?;
            }
        }
        Ok(out)
    }

    /// Parses one frame payload.
    ///
    /// # Errors
    ///
    /// `InvalidData` on unknown tags or codes, truncation, or trailing
    /// bytes.
    pub fn decode(payload: &[u8]) -> io::Result<ShardReply> {
        let mut c = Cursor::new(payload);
        let reply = match c.u8()? {
            b'V' => ShardReply::Value(WirePrediction {
                value_bits: c.u64()?,
                generation: c.u64()?,
                batch_size: c.u32()?,
                trace_id: c.u64()?,
                shard: c.u32()?,
            }),
            b'L' => {
                let n = c.u16()? as usize;
                let mut list = Vec::with_capacity(n);
                for _ in 0..n {
                    list.push(WorkloadInfo {
                        name: c.str16()?,
                        fingerprint: c.u64()?,
                        generation: c.u64()?,
                    });
                }
                ShardReply::Workloads(list)
            }
            b'O' => ShardReply::SessionOpened(crate::session::OpenInfo {
                session_id: c.u64()?,
                fingerprint: c.u64()?,
                rounds_done: c.u64()?,
                rounds_total: c.u64()?,
                resumed: c.u8()? != 0,
            }),
            b'D' => {
                let session = c.u64()?;
                let round = c.u64()?;
                let done = c.u8()? != 0;
                let hypervolume = f64::from_bits(c.u64()?);
                let proposed = c.u32()?;
                let predicted = c.u32()?;
                let cache_hits = c.u32()?;
                let shed = c.u32()?;
                let n = c.u16()? as usize;
                let mut added = Vec::with_capacity(n);
                for _ in 0..n {
                    added.push(c.entry16()?);
                }
                let n = c.u16()? as usize;
                let mut removed = Vec::with_capacity(n);
                for _ in 0..n {
                    removed.push(c.point16()?);
                }
                ShardReply::SessionDelta {
                    session,
                    report: crate::session::RoundReport {
                        round,
                        done,
                        hypervolume,
                        proposed,
                        predicted,
                        cache_hits,
                        shed,
                        added,
                        removed,
                    },
                }
            }
            b'K' => ShardReply::SessionClosed(c.u8()? != 0),
            b'E' => {
                let raw = c.u8()?;
                let code = ErrorCode::from_u8(raw).ok_or_else(|| {
                    io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("unknown error code {raw}"),
                    )
                })?;
                ShardReply::Error(ShardError {
                    code,
                    message: c.str16()?,
                })
            }
            tag => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("unknown reply tag {tag:#04x}"),
                ))
            }
        };
        c.finish()?;
        Ok(reply)
    }
}

/// One blocking round-trip on an established stream: write the request
/// frame, read the reply frame.
///
/// # Errors
///
/// Any frame I/O or decode error (the peer died, the stream timed out,
/// or the bytes are malformed).
pub fn round_trip(
    stream: &mut (impl Read + Write),
    request: &ShardRequest,
) -> io::Result<ShardReply> {
    write_frame(stream, &request.encode()?)?;
    ShardReply::decode(&read_frame(stream)?)
}

/// Waits for the next frame on a stream whose read timeout is short
/// (the handler's idle poll), returning `Ok(None)` when `stop` was
/// raised while the connection sat idle.
///
/// The idle poll may only fire *between* frames: this reads the first
/// header byte under the short timeout, then switches the stream to a
/// generous per-frame timeout for the remainder, so a slow peer can
/// never desynchronize the framing by straddling a poll boundary.
///
/// # Errors
///
/// Peer hangup (`UnexpectedEof`), oversize frames (`InvalidData`), or
/// any underlying I/O error once a frame has started.
#[cfg(unix)]
pub(crate) fn read_frame_or_stop(
    stream: &mut std::os::unix::net::UnixStream,
    stop: &AtomicBool,
) -> io::Result<Option<Vec<u8>>> {
    use metadse_obs::frame::MAX_FRAME;

    const FRAME_TIMEOUT: Duration = Duration::from_secs(5);

    let mut first = [0u8; 1];
    loop {
        if stop.load(Ordering::Acquire) {
            return Ok(None);
        }
        match stream.read(&mut first) {
            Ok(0) => return Err(io::ErrorKind::UnexpectedEof.into()),
            Ok(_) => break,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut => {
            }
            Err(e) => return Err(e),
        }
    }
    stream.set_read_timeout(Some(FRAME_TIMEOUT))?;
    let result = (|| {
        let mut rest = [0u8; 3];
        stream.read_exact(&mut rest)?;
        let len = u32::from_le_bytes([first[0], rest[0], rest[1], rest[2]]) as usize;
        if len > MAX_FRAME {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("frame of {len} bytes exceeds cap {MAX_FRAME}"),
            ));
        }
        let mut payload = vec![0u8; len];
        stream.read_exact(&mut payload)?;
        Ok(payload)
    })();
    stream.set_read_timeout(Some(IDLE_POLL))?;
    result.map(Some)
}

/// Short read timeout letting connection handlers observe the stop flag
/// while a peer holds the connection open idle.
#[cfg(unix)]
pub(crate) const IDLE_POLL: Duration = Duration::from_millis(100);

// ---------------------------------------------------------------------
// Shard worker runtime
// ---------------------------------------------------------------------

/// Configuration for one shard worker process.
#[derive(Debug, Clone)]
pub struct ShardOptions {
    /// Data socket this shard listens on; the introspection endpoint
    /// binds `<socket>.intro`.
    pub socket: PathBuf,
    /// Registry root shared by the whole fleet.
    pub registry_root: PathBuf,
    /// This worker's position in the fleet (drives registry filtering).
    pub spec: ShardSpec,
    /// Generations retained per workload.
    pub keep: usize,
    /// In-process serving runtime tuning.
    pub config: ServeConfig,
    /// Exploration-session checkpoint root; `None` falls back to
    /// `METADSE_SESSION_DIR` (and in-memory-only sessions when that is
    /// unset too).
    pub session_dir: Option<PathBuf>,
}

impl ShardOptions {
    /// Options serving everything (a single-shard fleet) from
    /// `registry_root` on `socket`, with default runtime tuning.
    pub fn single(socket: impl Into<PathBuf>, registry_root: impl Into<PathBuf>) -> ShardOptions {
        ShardOptions {
            socket: socket.into(),
            registry_root: registry_root.into(),
            spec: ShardSpec::single(),
            keep: 4,
            config: ServeConfig::default(),
            session_dir: None,
        }
    }
}

#[cfg(unix)]
/// Readiness wrapper around the standard serve responder: a shard that
/// owns *zero* workloads (small fleets leave some shards empty) is
/// still ready — it simply serves nothing — whereas the unsharded
/// responder treats an empty registry as "not ready yet".
struct ShardResponder {
    serve: crate::introspect::ServeResponder,
    spec: ShardSpec,
    engine: Arc<crate::session::SessionEngine>,
}

#[cfg(unix)]
impl Respond for ShardResponder {
    fn respond(&self, command: &str) -> Response {
        if command == "ready" {
            let closed = self
                .serve
                .shared
                .core
                .lock()
                .expect("queue poisoned")
                .is_closed();
            if closed {
                return Response::err("not ready: server closed");
            }
            let workloads = self.serve.shared.registry.workloads();
            return Response::ok(format!(
                "ready\nshard {}\nworkloads {}\n",
                self.spec,
                workloads.len()
            ));
        }
        let mut response = self.serve.respond(command);
        if command == "metrics" && response.ok {
            // The session plane's metrics ride the same exposition.
            response.body.push_str(&self.engine.exposition());
        }
        response
    }
}

#[cfg(unix)]
/// A running shard worker: filtered registry, batched server, data
/// socket, introspection socket. Drop (or [`shutdown`](ShardServer::shutdown))
/// stops the listeners and drains the server.
pub struct ShardServer {
    socket: PathBuf,
    spec: ShardSpec,
    registry: Arc<ModelRegistry>,
    server: Option<Arc<Server>>,
    stop: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
    conn_threads: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
    _intro: obs::introspect::Listener,
    served: Arc<AtomicU64>,
}

#[cfg(unix)]
impl ShardServer {
    /// Opens the sharded registry, starts the in-process server, binds
    /// the data socket and the introspection socket, and begins
    /// accepting connections.
    ///
    /// # Errors
    ///
    /// Any socket bind or thread-spawn error.
    pub fn start(opts: ShardOptions) -> io::Result<ShardServer> {
        use std::os::unix::net::UnixListener;

        let registry = Arc::new(ModelRegistry::open_sharded(
            &opts.registry_root,
            opts.keep,
            opts.spec,
        ));
        let server = Arc::new(Server::start(Arc::clone(&registry), opts.config));
        let mut engine_config = crate::session::SessionEngineConfig::from_env();
        if opts.session_dir.is_some() {
            engine_config.dir = opts.session_dir.clone();
        }
        let engine = Arc::new(crate::session::SessionEngine::new(engine_config));
        // The supervisor's readiness barrier and CI probes speak the
        // standard introspection protocol against `<socket>.intro`.
        let responder = Arc::new(ShardResponder {
            serve: crate::introspect::ServeResponder {
                shared: server.shared_handle(),
            },
            spec: opts.spec,
            engine: Arc::clone(&engine),
        });
        let intro = obs::introspect::serve_unix(&intro_socket(&opts.socket), responder)?;

        let _ = std::fs::remove_file(&opts.socket);
        let listener = UnixListener::bind(&opts.socket)?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let conn_threads = Arc::new(Mutex::new(Vec::new()));
        let served = Arc::new(AtomicU64::new(0));

        let ctx = Arc::new(ConnContext {
            server: Arc::clone(&server),
            registry: Arc::clone(&registry),
            engine,
            spec: opts.spec,
            stop: Arc::clone(&stop),
            served: Arc::clone(&served),
        });
        let accept_stop = Arc::clone(&stop);
        let accept_conns = Arc::clone(&conn_threads);
        let accept_thread = std::thread::Builder::new()
            .name(format!("metadse-shard-{}", opts.spec.index))
            .spawn(move || accept_loop(&listener, &ctx, &accept_stop, &accept_conns))?;

        obs::report::line(format!(
            "shard {}: serving {} workload(s) on {}",
            opts.spec,
            registry.workloads().len(),
            opts.socket.display()
        ));
        Ok(ShardServer {
            socket: opts.socket,
            spec: opts.spec,
            registry,
            server: Some(server),
            stop,
            accept_thread: Some(accept_thread),
            conn_threads,
            _intro: intro,
            served,
        })
    }

    /// The data-socket path.
    pub fn socket(&self) -> &Path {
        &self.socket
    }

    /// This worker's shard spec.
    pub fn spec(&self) -> ShardSpec {
        self.spec
    }

    /// The filtered registry backing this shard.
    pub fn registry(&self) -> &Arc<ModelRegistry> {
        &self.registry
    }

    /// Predictions this shard has answered over the socket.
    pub fn served(&self) -> u64 {
        self.served.load(Ordering::Relaxed)
    }

    /// Stops accepting, joins connection handlers, drains the server.
    pub fn shutdown(mut self) {
        self.close();
    }

    fn close(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        let handles: Vec<_> = self.conn_threads.lock().unwrap().drain(..).collect();
        for t in handles {
            let _ = t.join();
        }
        // Every handler thread (each holding a ConnContext Arc) has
        // been joined, so this is the last `Server` reference; dropping
        // it drains queued requests and joins the worker pool.
        drop(self.server.take());
        let _ = std::fs::remove_file(&self.socket);
    }
}

#[cfg(unix)]
impl Drop for ShardServer {
    fn drop(&mut self) {
        self.close();
    }
}

#[cfg(unix)]
/// Shared state of every connection-handler thread.
struct ConnContext {
    server: Arc<Server>,
    registry: Arc<ModelRegistry>,
    engine: Arc<crate::session::SessionEngine>,
    spec: ShardSpec,
    stop: Arc<AtomicBool>,
    served: Arc<AtomicU64>,
}

#[cfg(unix)]
fn accept_loop(
    listener: &std::os::unix::net::UnixListener,
    ctx: &Arc<ConnContext>,
    stop: &AtomicBool,
    conns: &Mutex<Vec<std::thread::JoinHandle<()>>>,
) {
    const POLL: Duration = Duration::from_millis(1);
    while !stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _)) => {
                let ctx = Arc::clone(ctx);
                if let Ok(handle) =
                    std::thread::Builder::new().spawn(move || serve_connection(stream, &ctx))
                {
                    let mut guard = conns.lock().unwrap();
                    // Reap finished handlers so a long-lived shard does
                    // not accumulate dead JoinHandles.
                    guard.retain(|h| !h.is_finished());
                    guard.push(handle);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => std::thread::sleep(POLL),
            Err(_) => std::thread::sleep(POLL),
        }
    }
}

#[cfg(unix)]
fn serve_connection(mut stream: std::os::unix::net::UnixStream, ctx: &ConnContext) {
    let _ = stream.set_read_timeout(Some(IDLE_POLL));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(5)));
    loop {
        let payload = match read_frame_or_stop(&mut stream, &ctx.stop) {
            Ok(Some(p)) => p,
            // Stop raised while idle, peer hung up, or the stream died.
            Ok(None) | Err(_) => return,
        };
        let reply = match ShardRequest::decode(&payload) {
            Ok(request) => handle_request(ctx, request),
            Err(e) => ShardReply::Error(ShardError::new(
                ErrorCode::BadRequest,
                format!("bad request frame: {e}"),
            )),
        };
        let Ok(encoded) = reply.encode() else { return };
        if write_frame(&mut stream, &encoded).is_err() {
            return;
        }
    }
}

#[cfg(unix)]
fn handle_request(ctx: &ConnContext, request: ShardRequest) -> ShardReply {
    match request {
        ShardRequest::Predict {
            workload,
            config,
            timeout_us,
        } => {
            let timeout = (timeout_us > 0).then(|| Duration::from_micros(timeout_us));
            match ctx.server.submit(&workload, &config, timeout).wait() {
                Ok(Prediction {
                    value,
                    generation,
                    batch_size,
                    trace_id,
                }) => {
                    ctx.served.fetch_add(1, Ordering::Relaxed);
                    ShardReply::Value(WirePrediction {
                        value_bits: value.to_bits(),
                        generation,
                        batch_size: batch_size as u32,
                        trace_id,
                        shard: ctx.spec.index as u32,
                    })
                }
                Err(e) => ShardReply::Error(ShardError::from(e)),
            }
        }
        ShardRequest::Workloads => {
            let list = ctx
                .registry
                .workloads()
                .into_iter()
                .filter_map(|name| {
                    let entry = ctx.registry.get(&name)?;
                    Some(WorkloadInfo {
                        name,
                        fingerprint: entry.servable.fingerprint(),
                        generation: entry.generation,
                    })
                })
                .collect();
            ShardReply::Workloads(list)
        }
        ShardRequest::OpenSession(spec) => match ctx.engine.open(&ctx.server, &spec) {
            Ok(info) => ShardReply::SessionOpened(info),
            Err(e) => ShardReply::Error(ShardError::from(e)),
        },
        ShardRequest::StepSession {
            workload,
            session,
            round,
        } => match ctx.engine.step(&ctx.server, &workload, session, round) {
            Ok(report) => ShardReply::SessionDelta { session, report },
            Err(e) => ShardReply::Error(ShardError::from(e)),
        },
        ShardRequest::CloseSession { session, .. } => {
            ShardReply::SessionClosed(ctx.engine.close(session))
        }
    }
}

// ---------------------------------------------------------------------
// Worker process entry
// ---------------------------------------------------------------------

/// Flag marking a process invocation as a shard worker. Fleet launchers
/// (`metadse-front`, `serve_bench --shards`, the soak harness) respawn
/// `std::env::current_exe()` with this flag so one binary carries both
/// the driver and the worker.
pub const WORKER_FLAG: &str = "--shard-worker";

/// Parses shard-worker CLI flags:
///
/// ```text
/// --socket PATH --registry DIR [--shard-index I --shard-count N]
/// [--keep K] [--workers W] [--max-batch B] [--max-wait-us U]
/// [--queue-capacity Q] [--session-dir DIR]
/// ```
///
/// # Errors
///
/// A usage message on unknown/missing flags or malformed values.
pub fn parse_worker_args(args: &[String]) -> Result<ShardOptions, String> {
    let mut socket: Option<PathBuf> = None;
    let mut registry: Option<PathBuf> = None;
    let mut index = 0usize;
    let mut count = 1usize;
    let mut keep = 4usize;
    let mut config = ServeConfig::default();
    let mut session_dir: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--socket" => socket = Some(PathBuf::from(value("--socket")?)),
            "--registry" => registry = Some(PathBuf::from(value("--registry")?)),
            "--shard-index" => {
                index = value("--shard-index")?
                    .parse()
                    .map_err(|e| format!("--shard-index: {e}"))?;
            }
            "--shard-count" => {
                count = value("--shard-count")?
                    .parse()
                    .map_err(|e| format!("--shard-count: {e}"))?;
            }
            "--keep" => {
                keep = value("--keep")?
                    .parse()
                    .map_err(|e| format!("--keep: {e}"))?
            }
            "--workers" => {
                config.workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?;
            }
            "--max-batch" => {
                config.batch.max_batch = value("--max-batch")?
                    .parse()
                    .map_err(|e| format!("--max-batch: {e}"))?;
            }
            "--max-wait-us" => {
                config.batch.max_wait_us = value("--max-wait-us")?
                    .parse()
                    .map_err(|e| format!("--max-wait-us: {e}"))?;
            }
            "--queue-capacity" => {
                config.batch.queue_capacity = value("--queue-capacity")?
                    .parse()
                    .map_err(|e| format!("--queue-capacity: {e}"))?;
            }
            "--session-dir" => session_dir = Some(PathBuf::from(value("--session-dir")?)),
            other => return Err(format!("unknown shard-worker flag {other:?}")),
        }
    }
    let socket = socket.ok_or("--socket is required")?;
    let registry = registry.ok_or("--registry is required")?;
    let spec = ShardSpec::new(index, count)?;
    Ok(ShardOptions {
        socket,
        registry_root: registry,
        spec,
        keep,
        config,
        session_dir,
    })
}

/// Runs a shard worker until the process is killed: start the
/// [`ShardServer`], then park. Never returns `Ok` — the supervisor ends
/// workers with SIGKILL; a graceful return only happens on startup
/// failure.
///
/// # Errors
///
/// Any [`ShardServer::start`] failure.
#[cfg(unix)]
pub fn worker_main(opts: ShardOptions) -> io::Result<std::convert::Infallible> {
    let _server = ShardServer::start(opts)?;
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}

/// Self-reexec hook: when the process argv carries [`WORKER_FLAG`],
/// runs the shard worker and returns its exit code (never on success —
/// the worker parks until killed); returns `None` when this invocation
/// is not a worker. Fleet-launching binaries call this first in `main`.
#[cfg(unix)]
pub fn run_worker_if_flagged() -> Option<i32> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) != Some(WORKER_FLAG) {
        return None;
    }
    match parse_worker_args(&args[1..]) {
        Ok(opts) => match worker_main(opts) {
            Ok(never) => match never {},
            Err(e) => {
                eprintln!("shard worker failed to start: {e}");
                Some(1)
            }
        },
        Err(usage) => {
            eprintln!("shard worker: {usage}");
            Some(2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worker_args_parse_full_and_minimal() {
        let to_vec = |s: &str| s.split(' ').map(String::from).collect::<Vec<_>>();
        let opts = parse_worker_args(&to_vec(
            "--socket /tmp/s.sock --registry /tmp/reg --shard-index 2 --shard-count 4 \
             --keep 3 --workers 1 --max-batch 16 --max-wait-us 50 --queue-capacity 99",
        ))
        .unwrap();
        assert_eq!(opts.socket, PathBuf::from("/tmp/s.sock"));
        assert_eq!(opts.spec, ShardSpec::new(2, 4).unwrap());
        assert_eq!(opts.keep, 3);
        assert_eq!(opts.config.workers, 1);
        assert_eq!(opts.config.batch.max_batch, 16);
        assert_eq!(opts.config.batch.max_wait_us, 50);
        assert_eq!(opts.config.batch.queue_capacity, 99);

        let minimal = parse_worker_args(&to_vec("--socket /a --registry /b")).unwrap();
        assert_eq!(minimal.spec, ShardSpec::single());

        assert!(parse_worker_args(&to_vec("--registry /b")).is_err());
        assert!(parse_worker_args(&to_vec("--socket /a --registry /b --bogus 1")).is_err());
        assert!(parse_worker_args(&to_vec(
            "--socket /a --registry /b --shard-index 4 --shard-count 4"
        ))
        .is_err());
    }

    #[test]
    fn request_frames_round_trip() {
        let requests = [
            ShardRequest::Predict {
                workload: "mcf".to_string(),
                config: vec![0.25, -1.5, f64::from_bits(0x7ff8_0000_0000_0001)],
                timeout_us: 1_500,
            },
            ShardRequest::Predict {
                workload: String::new(),
                config: vec![],
                timeout_us: 0,
            },
            ShardRequest::Workloads,
            ShardRequest::OpenSession(crate::session::SessionSpec {
                workload: "astar".to_string(),
                seed: 7,
                initial_samples: 64,
                refinement_rounds: 3,
                beam: 4,
                round_timeout_us: 250_000,
            }),
            ShardRequest::StepSession {
                workload: "astar".to_string(),
                session: 0xABCD,
                round: 2,
            },
            ShardRequest::CloseSession {
                workload: "astar".to_string(),
                session: 0xABCD,
            },
        ];
        for request in requests {
            let wire = request.encode().unwrap();
            let back = ShardRequest::decode(&wire).unwrap();
            // NaN payloads defeat PartialEq; compare the re-encoding,
            // which is bit-exact by construction.
            assert_eq!(back.encode().unwrap(), wire);
        }
    }

    #[test]
    fn reply_frames_round_trip() {
        let replies = [
            ShardReply::Value(WirePrediction {
                value_bits: 0.125f64.to_bits(),
                generation: 3,
                batch_size: 8,
                trace_id: 42,
                shard: 1,
            }),
            ShardReply::Workloads(vec![
                WorkloadInfo {
                    name: "mcf".to_string(),
                    fingerprint: 0xdead_beef,
                    generation: 2,
                },
                WorkloadInfo {
                    name: "gcc".to_string(),
                    fingerprint: 7,
                    generation: 1,
                },
            ]),
            ShardReply::Workloads(vec![]),
            ShardReply::SessionOpened(crate::session::OpenInfo {
                session_id: 99,
                fingerprint: 0xF00D,
                rounds_done: 1,
                rounds_total: 4,
                resumed: true,
            }),
            ShardReply::SessionDelta {
                session: 99,
                report: crate::session::RoundReport {
                    round: 2,
                    done: false,
                    hypervolume: 1.5,
                    proposed: 10,
                    predicted: 6,
                    cache_hits: 3,
                    shed: 1,
                    added: vec![metadse::explorer::ParetoEntry {
                        point: metadse_sim::ConfigPoint::new(vec![1, 2, 3]),
                        ipc: 2.25,
                        power: 4.5,
                    }],
                    removed: vec![metadse_sim::ConfigPoint::new(vec![0, 0, 7])],
                },
            },
            ShardReply::SessionClosed(true),
            ShardReply::Error(ShardError::new(ErrorCode::Shed, "queue full")),
            ShardReply::Error(ShardError::new(ErrorCode::Unavailable, "")),
        ];
        for reply in replies {
            let wire = reply.encode().unwrap();
            assert_eq!(ShardReply::decode(&wire).unwrap(), reply);
        }
    }

    #[test]
    fn malformed_frames_are_errors_not_panics() {
        assert!(ShardRequest::decode(b"").is_err());
        assert!(ShardRequest::decode(b"Z").is_err());
        assert!(ShardReply::decode(&[b'E', 99, 0, 0]).is_err());
        // Truncated at every prefix of a valid predict frame.
        let wire = ShardRequest::Predict {
            workload: "w".to_string(),
            config: vec![1.0, 2.0],
            timeout_us: 9,
        }
        .encode()
        .unwrap();
        for cut in 0..wire.len() {
            assert!(ShardRequest::decode(&wire[..cut]).is_err(), "cut {cut}");
        }
        // Trailing garbage is rejected, not silently ignored.
        let mut padded = wire.clone();
        padded.push(0);
        assert!(ShardRequest::decode(&padded).is_err());
    }

    #[test]
    fn error_codes_map_retry_policy() {
        for (code, retryable) in [
            (ErrorCode::Shed, true),
            (ErrorCode::Closed, true),
            (ErrorCode::Unavailable, true),
            (ErrorCode::DeadlineMiss, false),
            (ErrorCode::UnknownWorkload, false),
            (ErrorCode::BadArity, false),
            (ErrorCode::Artifact, false),
            (ErrorCode::BadRequest, false),
            (ErrorCode::UnknownSession, false),
        ] {
            assert_eq!(ShardError::new(code, "x").retryable(), retryable);
        }
        let e: ShardError = ServeError::Shed.into();
        assert_eq!(e.code, ErrorCode::Shed);
        let e: ShardError = ServeError::BadArity {
            expected: 6,
            got: 2,
        }
        .into();
        assert_eq!(e.code, ErrorCode::BadArity);
    }

    #[test]
    fn socket_naming_helpers() {
        let dir = Path::new("/tmp/fleet");
        assert_eq!(
            shard_socket(dir, 2),
            PathBuf::from("/tmp/fleet/shard-2.sock")
        );
        assert_eq!(
            intro_socket(&shard_socket(dir, 0)),
            PathBuf::from("/tmp/fleet/shard-0.sock.intro")
        );
    }
}
