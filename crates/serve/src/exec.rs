//! Arena execution of compiled [`Plan`]s.
//!
//! [`Plan::run`] walks the flat op sequence over one preallocated arena
//! slab — no graph nodes, no per-op `Vec` or `HashMap` bookkeeping, no
//! pool traffic beyond the arena itself. Every op dispatches onto the
//! resolved backend primitives ([`metadse_nn::prims::kernels`], looked
//! up once per run so thread-local backend overrides behave exactly
//! like a `predict` forward) and reproduces the tensor ops'
//! accumulation orders bit-for-bit; see the module docs in
//! [`crate::plan`] for the contract.
//!
//! The only `unsafe` here is [`views_mut`], which splits one arena slab
//! into the disjoint per-op views the borrow checker cannot prove
//! disjoint itself; every call asserts pairwise disjointness and
//! bounds, and the plan compiler's liveness allocator guarantees an
//! op's outputs never overlap its still-live inputs (property-checked
//! in `plan::tests::live_ranges_never_overlap`).

use std::ops::Range;
use std::time::Instant;

use metadse_nn::prims::{self, Kernels, SPARSE_ZERO_FRACTION};
use metadse_nn::tensor::pool::Buf;
use metadse_nn::Elem;

use crate::plan::{BufId, Op, Plan, LN_EPS, OP_KINDS, OP_KIND_NAMES};

/// A worker-owned execution arena. One slab backs every intermediate of
/// a plan forward; it grows to the largest [`Plan::arena_len`] it has
/// served and is reused across batches (and across plans — hot-swaps
/// don't reallocate). The slab is the 32-byte-aligned pool buffer type,
/// so arena offsets inherit the pool's SIMD alignment.
#[derive(Debug, Default)]
pub struct PlanArena {
    slab: Buf,
}

impl PlanArena {
    pub fn new() -> PlanArena {
        PlanArena::default()
    }

    /// Current slab capacity in elements (diagnostics/tests).
    pub fn len(&self) -> usize {
        self.slab.len()
    }

    pub fn is_empty(&self) -> bool {
        self.slab.len() == 0
    }

    /// Grows the slab to at least `len` elements and returns it.
    fn ensure(&mut self, len: usize) -> &mut [Elem] {
        if self.slab.len() < len {
            self.slab.resize(len, 0.0);
        }
        &mut self.slab[..len]
    }
}

/// Per-op wall-time attribution for one [`Plan::run_profiled`] call,
/// bucketed by op kind.
#[derive(Clone, Copy, Debug, Default)]
pub struct PlanProfile {
    /// Microseconds per op kind, indexed like
    /// [`crate::plan::OP_KIND_NAMES`].
    pub us: [u64; OP_KINDS],
}

impl PlanProfile {
    /// `(kind name, total µs)` rows for kinds that actually ran.
    pub fn rows(&self) -> Vec<(&'static str, u64)> {
        OP_KIND_NAMES
            .iter()
            .zip(self.us)
            .filter(|&(_, us)| us > 0)
            .map(|(&name, us)| (name, us))
            .collect()
    }

    /// Accumulates another profile into this one.
    pub fn merge(&mut self, other: &PlanProfile) {
        for (a, b) in self.us.iter_mut().zip(other.us) {
            *a += b;
        }
    }
}

/// Splits `arena` into `N` mutable views over the given ranges.
///
/// # Panics
///
/// Panics if any range is out of bounds or any two ranges overlap —
/// the executor's guard against a miscompiled arena layout.
fn views_mut<const N: usize>(arena: &mut [Elem], ranges: [Range<usize>; N]) -> [&mut [Elem]; N] {
    for (i, r) in ranges.iter().enumerate() {
        assert!(
            r.start <= r.end && r.end <= arena.len(),
            "plan view out of bounds"
        );
        for q in &ranges[i + 1..] {
            assert!(
                r.end <= q.start || q.end <= r.start,
                "plan views must be disjoint ({r:?} vs {q:?})"
            );
        }
    }
    let base = arena.as_mut_ptr();
    // SAFETY: every range is in bounds of `arena` and pairwise disjoint
    // (asserted above), so the derived slices never alias each other or
    // anything else reachable while the `&mut [Elem]` borrow is held.
    ranges.map(|r| unsafe { std::slice::from_raw_parts_mut(base.add(r.start), r.end - r.start) })
}

impl Plan {
    /// Runs the plan on `inputs` (one configuration row per batch
    /// element), returning one prediction per row. Bit-identical to
    /// `servable.instantiate()?.predict(inputs)` on the same thread.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` is empty, exceeds [`Plan::capacity`], or any
    /// row's arity differs from the compiled geometry.
    pub fn run(&self, inputs: &[Vec<Elem>], arena: &mut PlanArena) -> Vec<Elem> {
        self.execute(inputs, arena, None)
    }

    /// As [`Plan::run`], also accumulating per-op wall time into
    /// `profile`. Timing costs two `Instant` reads per op, so callers
    /// keep it off the hot path unless observability is on.
    pub fn run_profiled(
        &self,
        inputs: &[Vec<Elem>],
        arena: &mut PlanArena,
        profile: &mut PlanProfile,
    ) -> Vec<Elem> {
        self.execute(inputs, arena, Some(profile))
    }

    fn execute(
        &self,
        inputs: &[Vec<Elem>],
        arena: &mut PlanArena,
        mut profile: Option<&mut PlanProfile>,
    ) -> Vec<Elem> {
        let b = inputs.len();
        assert!(b >= 1, "plan run needs at least one input row");
        assert!(
            b <= self.capacity,
            "batch of {b} exceeds plan capacity {}",
            self.capacity
        );
        // Resolve the backend once per forward, exactly like a tensor
        // forward pass — thread-local mode guards apply to this run.
        let kb = prims::kernels();
        let slab = arena.ensure(self.arena_len());

        {
            let [xs] = views_mut(slab, [self.range(self.input, b)]);
            for (row, dst) in inputs.iter().zip(xs.chunks_exact_mut(self.seq)) {
                assert_eq!(
                    row.len(),
                    self.seq,
                    "input row arity {} does not match plan arity {}",
                    row.len(),
                    self.seq
                );
                dst.copy_from_slice(row);
            }
        }

        for op in &self.ops {
            let t0 = profile.as_ref().map(|_| Instant::now());
            self.step(op, b, kb, slab);
            if let (Some(p), Some(t0)) = (profile.as_deref_mut(), t0) {
                p.us[op.kind()] += t0.elapsed().as_micros() as u64;
            }
        }

        let [out] = views_mut(slab, [self.range(self.output, b)]);
        out.to_vec()
    }

    fn range(&self, id: BufId, b: usize) -> Range<usize> {
        let spec = &self.bufs[id.0];
        spec.offset..spec.offset + spec.len_at(b)
    }

    fn step(&self, op: &Op, b: usize, kb: Kernels, slab: &mut [Elem]) {
        let (s, d, h, dk) = (self.seq, self.d_model, self.heads, self.dk);
        match *op {
            // out[bi,s,:] = table[s,:] + x[bi,s] * dir[s,:] — the token
            // identity embedding plus the value-direction encoding
            // (`identity.add(values)` in the predictor), one mul and
            // one add rounding per element.
            Op::Embed { x, out } => {
                let [xs, dst] = views_mut(slab, [self.range(x, b), self.range(out, b)]);
                for bi in 0..b {
                    for si in 0..s {
                        let xv = xs[bi * s + si];
                        let t_row = &self.table[si * d..(si + 1) * d];
                        let d_row = &self.dir[si * d..(si + 1) * d];
                        let o_row = &mut dst[(bi * s + si) * d..(bi * s + si + 1) * d];
                        for ((o, &t), &dir) in o_row.iter_mut().zip(t_row).zip(d_row) {
                            *o = t + xv * dir;
                        }
                    }
                }
            }
            // The fused layernorm_affine row kernel: backend sum for
            // the mean, centering pass, backend sum_sq (or the fused
            // sequential square-accumulate for tiny rows), then the
            // affine normalize — identical expression trees.
            Op::LayerNorm { src, dst, norm } => {
                let nw = &self.norms[norm];
                let dim = nw.dim;
                let inv = 1.0 / dim as Elem;
                let [sx, out] = views_mut(slab, [self.range(src, b), self.range(dst, b)]);
                let rows = sx.len() / dim;
                for r in 0..rows {
                    let base = r * dim;
                    let mean = kb.sum(&sx[base..base + dim]) * inv;
                    let o_row = &mut out[base..base + dim];
                    let s2 = if dim <= prims::SEQ_EQUIV_MAX {
                        let mut s2 = 0.0;
                        for (o, &v) in o_row.iter_mut().zip(&sx[base..base + dim]) {
                            let c = v - mean;
                            *o = c;
                            s2 += c * c;
                        }
                        s2
                    } else {
                        for (o, &v) in o_row.iter_mut().zip(&sx[base..base + dim]) {
                            *o = v - mean;
                        }
                        kb.sum_sq(o_row)
                    };
                    let sd = (s2 * inv + LN_EPS).sqrt();
                    for ((o, &gm), &bt) in o_row.iter_mut().zip(&nw.gamma).zip(&nw.beta) {
                        let hv = *o / sd;
                        *o = hv * gm + bt;
                    }
                }
            }
            // dst = src · W (+ bias | gelu(·+bias)). The sparse/dense
            // choice replays the matmul kernel's per-call decision on
            // the runtime activations; the dense panel is the
            // compile-time pre-pack of the same transposed copy.
            Op::Linear {
                src,
                dst,
                lin,
                rows_per_item,
                gelu,
                add,
            } => {
                let lw = &self.linears[lin];
                let (k, n) = (lw.k, lw.n);
                let rows = rows_per_item * b;
                match gelu {
                    None => match add {
                        None => {
                            let [sx, out] =
                                views_mut(slab, [self.range(src, b), self.range(dst, b)]);
                            matmul_rows(kb, lw, &sx[..rows * k], &mut out[..rows * n], rows);
                            // Identity bias: the tensor suffix-broadcast
                            // add, one rounding per element.
                            for o_row in out[..rows * n].chunks_exact_mut(n) {
                                for (o, &bv) in o_row.iter_mut().zip(&lw.bias) {
                                    *o += bv;
                                }
                            }
                        }
                        Some(res) => {
                            // Folded residual: bias add then residual
                            // add per element — `av + (o + bv)` is the
                            // rounding sequence of the tensor bias
                            // broadcast followed by the standalone
                            // residual op (`a + b` with `a` the skip
                            // connection), so the bits match the
                            // two-op graph form exactly.
                            let [sx, out, rv] = views_mut(
                                slab,
                                [self.range(src, b), self.range(dst, b), self.range(res, b)],
                            );
                            matmul_rows(kb, lw, &sx[..rows * k], &mut out[..rows * n], rows);
                            for (o_row, a_row) in out[..rows * n]
                                .chunks_exact_mut(n)
                                .zip(rv[..rows * n].chunks_exact(n))
                            {
                                for ((o, &bv), &av) in o_row.iter_mut().zip(&lw.bias).zip(a_row) {
                                    *o = av + (*o + bv);
                                }
                            }
                        }
                    },
                    Some((mm, tanh)) => {
                        debug_assert!(add.is_none(), "gelu linears never fold a residual");
                        // GELU linears stage the matmul in `mm` because
                        // the fused bias+GELU kernel reads its input
                        // while writing its output — they cannot alias.
                        let [sx, out, stage, tc] = views_mut(
                            slab,
                            [
                                self.range(src, b),
                                self.range(dst, b),
                                self.range(mm, b),
                                self.range(tanh, b),
                            ],
                        );
                        matmul_rows(kb, lw, &sx[..rows * k], &mut stage[..rows * n], rows);
                        kb.bias_gelu_forward(
                            &stage[..rows * n],
                            &lw.bias,
                            &mut out[..rows * n],
                            &mut tc[..rows * n],
                        );
                    }
                }
            }
            // [b, s, h·dk] → [b, h, s, dk]: the reshape+transpose(1,2)
            // head split as one strided copy (no arithmetic).
            Op::SplitHeads { src, dst } => {
                let [sx, out] = views_mut(slab, [self.range(src, b), self.range(dst, b)]);
                for bi in 0..b {
                    for hi in 0..h {
                        for si in 0..s {
                            let from = (bi * s + si) * d + hi * dk;
                            let to = ((bi * h + hi) * s + si) * dk;
                            out[to..to + dk].copy_from_slice(&sx[from..from + dk]);
                        }
                    }
                }
            }
            // Inverse strided copy: [b, h, s, dk] → [b, s, h·dk].
            Op::MergeHeads { src, dst } => {
                let [sx, out] = views_mut(slab, [self.range(src, b), self.range(dst, b)]);
                for bi in 0..b {
                    for hi in 0..h {
                        for si in 0..s {
                            let from = ((bi * h + hi) * s + si) * dk;
                            let to = (bi * s + si) * d + hi * dk;
                            out[to..to + dk].copy_from_slice(&sx[from..from + dk]);
                        }
                    }
                }
            }
            // Per (b, h) block: q · kᵀ via the matmul_nt kernel's
            // per-block sparse/dense choice, then the scale (and
            // additive mask) folded in per element.
            Op::AttnScores { q, key, dst } => {
                let [qs, ks, out] = views_mut(
                    slab,
                    [self.range(q, b), self.range(key, b), self.range(dst, b)],
                );
                for blk in 0..b * h {
                    let qb = &qs[blk * s * dk..(blk + 1) * s * dk];
                    let kbk = &ks[blk * s * dk..(blk + 1) * s * dk];
                    let ob = &mut out[blk * s * s..(blk + 1) * s * s];
                    if is_sparse(qb) {
                        // Zero-skipping dot, ascending k — the same
                        // per-element term sequence as the dense dot.
                        for i in 0..s {
                            let q_row = &qb[i * dk..(i + 1) * dk];
                            for (j, o) in ob[i * s..(i + 1) * s].iter_mut().enumerate() {
                                let k_row = &kbk[j * dk..(j + 1) * dk];
                                let mut acc = 0.0;
                                for (&qv, &kv) in q_row.iter().zip(k_row) {
                                    if qv == 0.0 {
                                        continue;
                                    }
                                    acc += qv * kv;
                                }
                                *o = acc;
                            }
                        }
                    } else {
                        // The K block already stores the contraction
                        // axis contiguously — it is its own packed
                        // panel.
                        for i in 0..s {
                            kb.dot_block(
                                &qb[i * dk..(i + 1) * dk],
                                kbk,
                                dk,
                                &mut ob[i * s..(i + 1) * s],
                            );
                        }
                    }
                    match &self.mask {
                        Some(m) => {
                            // mul_scalar then the suffix-broadcast mask
                            // add: two roundings per element, exactly
                            // the tensor op pair.
                            for (o, &mv) in ob.iter_mut().zip(m.iter()) {
                                *o = *o * self.scale + mv;
                            }
                        }
                        None => {
                            for o in ob.iter_mut() {
                                *o *= self.scale;
                            }
                        }
                    }
                }
            }
            // The fused trailing-axis softmax row kernel: running max,
            // exponentials, backend-sum denominator (sequential for
            // tiny rows), divide. The compiler emits `src == dst` —
            // each element is read before it is overwritten at the
            // same index, so running in place reproduces the
            // two-buffer kernel's bits while skipping a whole
            // `[b, h, s, s]` materialization.
            Op::Softmax { src, dst } => {
                let xs = if src == dst {
                    let [xs] = views_mut(slab, [self.range(src, b)]);
                    xs
                } else {
                    let [sx, out] = views_mut(slab, [self.range(src, b), self.range(dst, b)]);
                    out[..sx.len()].copy_from_slice(sx);
                    out
                };
                let rows = xs.len() / s;
                for r in 0..rows {
                    let row = &mut xs[r * s..(r + 1) * s];
                    let mut maxv = Elem::NEG_INFINITY;
                    for &v in row.iter() {
                        if v > maxv {
                            maxv = v;
                        }
                    }
                    let denom = if s > prims::SEQ_EQUIV_MAX {
                        for v in row.iter_mut() {
                            *v = (*v - maxv).exp();
                        }
                        kb.sum(row)
                    } else {
                        let mut acc = 0.0;
                        for v in row.iter_mut() {
                            let e = (*v - maxv).exp();
                            *v = e;
                            acc += e;
                        }
                        acc
                    };
                    for v in row.iter_mut() {
                        *v /= denom;
                    }
                }
            }
            // Per (b, h) block: probs · v via the batched matmul
            // kernel — sparse axpy into a zeroed block, or the packed
            // transposed panel (packed into plan scratch, the
            // compile-time home of the kernel's per-forward pack).
            Op::AttnContext {
                probs,
                v,
                dst,
                pack,
            } => {
                let [ps, vs, out, panel] = views_mut(
                    slab,
                    [
                        self.range(probs, b),
                        self.range(v, b),
                        self.range(dst, b),
                        self.range(pack, b),
                    ],
                );
                for blk in 0..b * h {
                    let pb = &ps[blk * s * s..(blk + 1) * s * s];
                    let vb = &vs[blk * s * dk..(blk + 1) * s * dk];
                    let ob = &mut out[blk * s * dk..(blk + 1) * s * dk];
                    if is_sparse(pb) {
                        ob.fill(0.0);
                        for i in 0..s {
                            for kk in 0..s {
                                let p = pb[i * s + kk];
                                if p == 0.0 {
                                    continue;
                                }
                                kb.axpy(
                                    p,
                                    &vb[kk * dk..(kk + 1) * dk],
                                    &mut ob[i * dk..(i + 1) * dk],
                                );
                            }
                        }
                    } else {
                        for kk in 0..s {
                            for j in 0..dk {
                                panel[j * s + kk] = vb[kk * dk + j];
                            }
                        }
                        for i in 0..s {
                            kb.dot_block(
                                &pb[i * s..(i + 1) * s],
                                &panel[..dk * s],
                                s,
                                &mut ob[i * dk..(i + 1) * dk],
                            );
                        }
                    }
                }
            }
            // mean over the sequence axis: ascending-row accumulation
            // per feature (both the strided walker and the fold_rows
            // fast path add in this order), then the 1/seq multiply.
            Op::MeanPool { src, dst } => {
                let [sx, out] = views_mut(slab, [self.range(src, b), self.range(dst, b)]);
                for bi in 0..b {
                    for j in 0..d {
                        let mut acc = 0.0;
                        for si in 0..s {
                            acc += sx[(bi * s + si) * d + j];
                        }
                        out[bi * d + j] = acc * self.inv_seq;
                    }
                }
            }
        }
    }
}

/// `out[i, :] = src[i, :] · W` with the matmul kernel's data-dependent
/// path choice over the whole activation block (linears are a single
/// "batch", so the decision covers all rows — exactly the tensor
/// kernel's granularity for a 2-D matmul).
/// Decision-equivalent replay of the matmul kernel's sparsity test,
/// `count(zeros) as f64 >= SPARSE_ZERO_FRACTION * len as f64`, scanned
/// in chunks with two early exits: once enough zeros are seen the
/// verdict is sparse, and once enough nonzeros are seen the threshold
/// is unreachable. The verdict is bit-for-bit the kernel's — only the
/// scan cost changes (the graph path re-counts the full buffer every
/// call; this is one of the per-request costs compilation removes).
fn is_sparse(xs: &[Elem]) -> bool {
    let len = xs.len();
    // Smallest integer count satisfying the kernel's f64 comparison.
    let need = (SPARSE_ZERO_FRACTION * len as f64).ceil() as usize;
    if need == 0 {
        return true;
    }
    let budget = len - need; // nonzeros that rule sparse out
    let (mut zeros, mut nonzeros) = (0usize, 0usize);
    for chunk in xs.chunks(512) {
        let z = chunk.iter().filter(|v| **v == 0.0).count();
        zeros += z;
        nonzeros += chunk.len() - z;
        if zeros >= need {
            return true;
        }
        if nonzeros > budget {
            return false;
        }
    }
    zeros >= need
}

fn matmul_rows(
    kb: Kernels,
    lw: &crate::plan::LinearW,
    src: &[Elem],
    out: &mut [Elem],
    rows: usize,
) {
    let (k, n) = (lw.k, lw.n);
    if is_sparse(src) {
        out.fill(0.0);
        for i in 0..rows {
            for kk in 0..k {
                let a = src[i * k + kk];
                if a == 0.0 {
                    continue;
                }
                kb.axpy(a, &lw.w[kk * n..(kk + 1) * n], &mut out[i * n..(i + 1) * n]);
            }
        }
    } else {
        for i in 0..rows {
            kb.dot_block(
                &src[i * k..(i + 1) * k],
                &lw.wt,
                k,
                &mut out[i * n..(i + 1) * n],
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metadse::predictor::{PredictorConfig, TransformerPredictor};
    use metadse::ServablePredictor;
    use metadse_nn::autograd;

    fn servable(seed: u64) -> ServablePredictor {
        let model = TransformerPredictor::new(
            PredictorConfig {
                num_params: 6,
                d_model: 8,
                heads: 2,
                depth: 2,
                d_hidden: 12,
                head_hidden: 8,
            },
            seed,
        );
        ServablePredictor::capture(&model, None, "ipc")
    }

    fn rows(n: usize, arity: usize, seed: u64) -> Vec<Vec<Elem>> {
        (0..n)
            .map(|i| {
                (0..arity)
                    .map(|j| {
                        let v = ((i * 31 + j * 7) as Elem + seed as Elem).sin();
                        (v * 8.0).round() / 8.0
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn plan_matches_predict_bitwise() {
        let sv = servable(11);
        let plan = Plan::compile(&sv, 8).unwrap();
        let model = sv.instantiate().unwrap();
        let inputs = rows(8, 6, 3);
        let expected = autograd::no_grad(|| model.predict(&inputs));
        let mut arena = PlanArena::new();
        let got = plan.run(&inputs, &mut arena);
        assert_eq!(got.len(), expected.len());
        for (g, e) in got.iter().zip(&expected) {
            assert_eq!(
                g.to_bits(),
                e.to_bits(),
                "plan output must be bit-identical"
            );
        }
    }

    #[test]
    fn partial_batches_match_full_capacity_prefix() {
        let sv = servable(5);
        let plan = Plan::compile(&sv, 8).unwrap();
        let model = sv.instantiate().unwrap();
        let mut arena = PlanArena::new();
        for b in [1usize, 3, 8] {
            let inputs = rows(b, 6, 9);
            let expected = autograd::no_grad(|| model.predict(&inputs));
            let got = plan.run(&inputs, &mut arena);
            for (g, e) in got.iter().zip(&expected) {
                assert_eq!(g.to_bits(), e.to_bits(), "batch {b} must be bit-identical");
            }
        }
    }

    #[test]
    fn arena_reuse_does_not_leak_state_between_runs() {
        let sv = servable(2);
        let plan = Plan::compile(&sv, 4).unwrap();
        let mut arena = PlanArena::new();
        let a = rows(4, 6, 1);
        let first = plan.run(&a, &mut arena);
        // Poison the slab indirectly by running different inputs, then
        // re-run the originals: results must not depend on residue.
        let _ = plan.run(&rows(2, 6, 77), &mut arena);
        let again = plan.run(&a, &mut arena);
        for (x, y) in first.iter().zip(&again) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn profiled_run_matches_and_attributes() {
        let sv = servable(4);
        let plan = Plan::compile(&sv, 4).unwrap();
        let mut arena = PlanArena::new();
        let inputs = rows(4, 6, 2);
        let plain = plan.run(&inputs, &mut arena);
        let mut profile = PlanProfile::default();
        let profiled = plan.run_profiled(&inputs, &mut arena, &mut profile);
        for (x, y) in plain.iter().zip(&profiled) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        // Rows only name known kinds; totals are ≥ 0 by type.
        for (name, _) in profile.rows() {
            assert!(OP_KIND_NAMES.contains(&name));
        }
    }

    #[test]
    #[should_panic(expected = "exceeds plan capacity")]
    fn over_capacity_batch_panics() {
        let sv = servable(3);
        let plan = Plan::compile(&sv, 2).unwrap();
        let mut arena = PlanArena::new();
        let _ = plan.run(&rows(3, 6, 0), &mut arena);
    }

    #[test]
    #[should_panic(expected = "must be disjoint")]
    fn views_mut_rejects_overlap() {
        let mut slab = vec![0.0; 16];
        let _ = views_mut(&mut slab, [0..8, 4..12]);
    }
}
