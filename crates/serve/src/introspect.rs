//! The serving side of the introspection endpoint: command semantics
//! over the obs crate's transport ([`metadse_obs::introspect`]).
//!
//! Commands (one per request frame):
//!
//! * `health` — watchdog verdict over the trailing window:
//!   `ok` / `degraded` / `unhealthy`, plus the sample it was judged on.
//! * `ready` — `ready` once at least one workload is published and the
//!   queue is accepting; `err` otherwise (CI polls this until Ok).
//! * `metrics` — plain-text exposition: health line, lifetime totals,
//!   trailing-window histograms (`window <name> count … p50 … p99 …`),
//!   window rates, queue gauge, per-tenant phase attribution, and —
//!   when the `obs` feature is compiled in — the lifetime obs registry.
//! * `trace?id=N` — one request's phase breakdown from the trace table.
//!
//! The responder reads only atomics, the trace ring, and one brief
//! queue-lock probe; it never touches the inference path, so polling it
//! cannot perturb served results (the soak test asserts bit-identity
//! with a concurrent poller attached).

use std::sync::Arc;

use metadse_obs as obs;
use metadse_obs::introspect::{Respond, Response};
use metadse_obs::window::{Health, WatchdogSample, WindowSnapshot};

use crate::server::Shared;

/// Command handler bound to one server's shared state.
pub(crate) struct ServeResponder {
    pub(crate) shared: Arc<Shared>,
}

impl Respond for ServeResponder {
    fn respond(&self, command: &str) -> Response {
        match command {
            "health" => self.health(),
            "ready" => self.ready(),
            "metrics" => Response::ok(self.metrics()),
            _ => match command.strip_prefix("trace?id=") {
                Some(id) => self.trace(id),
                None => Response::err(format!(
                    "unknown command {command:?} (try health, ready, metrics, trace?id=N)"
                )),
            },
        }
    }
}

impl ServeResponder {
    fn health(&self) -> Response {
        let now = self.shared.now_us();
        let (verdict, sample) = self.shared.health_at(now);
        Response::ok(format!(
            "{}\nwindow_admitted {} window_misses {} window_sheds {} oldest_wait_us {}\n",
            verdict.name(),
            sample.admitted,
            sample.misses,
            sample.sheds,
            sample.oldest_queued_wait_us.unwrap_or(0),
        ))
    }

    fn ready(&self) -> Response {
        let workloads = self.shared.registry.workloads();
        if workloads.is_empty() {
            return Response::err("not ready: no workloads published");
        }
        if self.shared.core.lock().expect("queue poisoned").is_closed() {
            return Response::err("not ready: server closed");
        }
        Response::ok(format!("ready\nworkloads {}\n", workloads.len()))
    }

    fn metrics(&self) -> String {
        let now = self.shared.now_us();
        let stats = &self.shared.stats;
        let (verdict, _) = self.shared.health_at(now);
        let (admitted, completed, shed, misses) = stats.totals();
        let queue_depth = self.shared.core.lock().expect("queue poisoned").len();
        let window_us = stats.window_config().window_us();

        let mut out = String::new();
        out.push_str(&format!("health {}\n", verdict.name()));
        out.push_str(&format!("now_us {now}\nwindow_us {window_us}\n"));
        out.push_str(&format!("gauge serve/queue_depth {queue_depth}\n"));
        out.push_str(&format!("counter serve/admitted_total {admitted}\n"));
        out.push_str(&format!("counter serve/completed_total {completed}\n"));
        out.push_str(&format!("counter serve/shed_total {shed}\n"));
        out.push_str(&format!("counter serve/deadline_miss_total {misses}\n"));
        window_line(
            &mut out,
            "serve/e2e_latency_us",
            &stats.e2e_us.snapshot(now),
        );
        window_line(
            &mut out,
            "serve/queue_wait_us",
            &stats.queue_wait_us.snapshot(now),
        );
        window_line(
            &mut out,
            "serve/forward_us",
            &stats.forward_us.snapshot(now),
        );
        window_line(
            &mut out,
            "serve/batch_size",
            &stats.batch_size.snapshot(now),
        );
        // Plan-cache counters come straight off the registry atomics so
        // they are visible even in builds without the `obs` feature
        // (the CI introspection smoke asserts on these lines).
        let plan_stats = self.shared.registry.plan_cache_stats();
        out.push_str(&format!(
            "counter serve/plan_cache_hits {}\n",
            plan_stats.hits
        ));
        out.push_str(&format!(
            "counter serve/plan_cache_misses {}\n",
            plan_stats.misses
        ));
        out.push_str(&format!(
            "counter serve/plan_compile_us {}\n",
            plan_stats.compile_us
        ));
        for (name, counter) in [
            ("serve/admitted", &stats.admitted),
            ("serve/completed", &stats.completed),
            ("serve/shed", &stats.shed),
            ("serve/deadline_miss", &stats.misses),
        ] {
            out.push_str(&format!(
                "rate {name}_per_s {:.3}\n",
                counter.rate_per_sec(now)
            ));
        }
        for (fingerprint, tenant) in stats.tenants() {
            use std::sync::atomic::Ordering::Relaxed;
            out.push_str(&format!(
                "tenant {fingerprint:016x} workload {} generation {} requests {} misses {} \
                 queue_wait_us {} assembly_us {} forward_us {} reply_us {} e2e_us {}\n",
                tenant.workload,
                tenant.generation.load(Relaxed),
                tenant.requests.load(Relaxed),
                tenant.misses.load(Relaxed),
                tenant.queue_wait_us.load(Relaxed),
                tenant.assembly_us.load(Relaxed),
                tenant.forward_us.load(Relaxed),
                tenant.reply_us.load(Relaxed),
                tenant.e2e_us.load(Relaxed),
            ));
        }
        // Lifetime obs registry (empty string when the feature is off).
        out.push_str(&obs::exposition());
        out
    }

    fn trace(&self, id: &str) -> Response {
        let Ok(id) = id.trim().parse::<u64>() else {
            return Response::err(format!("bad trace id {id:?}"));
        };
        match self.shared.stats.traces.lookup(id) {
            Some(trace) => Response::ok(trace.render()),
            None => Response::err(format!("trace {id} not retained")),
        }
    }
}

/// Appends one `window <name> …` exposition line.
fn window_line(out: &mut String, name: &str, snap: &WindowSnapshot) {
    out.push_str(&format!(
        "window {name} count {} mean {:.3} p50 {:.3} p99 {:.3} min {:.3} max {:.3}\n",
        snap.count,
        snap.mean(),
        snap.quantile(0.5),
        snap.quantile(0.99),
        snap.min(),
        snap.max(),
    ));
}

/// Re-exported verdict type so embedders match on `server.health()`
/// without importing from `metadse-obs` directly.
pub use metadse_obs::window::Health as ServeHealth;

/// The watchdog evaluation used by both `health` and `Server::health`.
pub(crate) fn evaluate(shared: &Shared, now_us: u64) -> (Health, WatchdogSample) {
    let oldest = shared
        .core
        .lock()
        .expect("queue poisoned")
        .oldest_enqueued_us()
        .map(|t| now_us.saturating_sub(t));
    let sample = WatchdogSample {
        admitted: shared.stats.admitted.total(now_us),
        misses: shared.stats.misses.total(now_us),
        sheds: shared.stats.shed.total(now_us),
        oldest_queued_wait_us: oldest,
    };
    (shared.watchdog.evaluate(&sample), sample)
}
