//! Deterministic task-parallel execution for the MetaDSE workspace.
//!
//! The MetaDSE pipeline is full of *task-level* independence — per-task MAML
//! inner loops, per-design-point simulations, per-tree forest fitting — but
//! the `metadse-nn` autograd graph is `Rc`/`RefCell`-based and therefore
//! thread-bound. This crate provides the execution pattern every parallel
//! hot path uses instead of making the graph `Send`:
//!
//! 1. **snapshot** — the caller captures plain `Vec<f64>` inputs on the main
//!    thread (parameter buffers, sampled tasks, design points),
//! 2. **fan-out** — [`ParallelConfig::run_indexed`] evaluates a pure
//!    function of the task index on `std::thread::scope` workers, each of
//!    which may rebuild thread-local state (e.g. a model) from the snapshot,
//! 3. **deterministic reduce** — results come back ordered by task index,
//!    so the caller reduces them in exactly the serial order and the final
//!    floats are bit-identical to a serial run.
//!
//! Thread count resolution: explicit `threads: Some(n)` wins, otherwise the
//! `METADSE_THREADS` environment variable, otherwise
//! [`std::thread::available_parallelism`].

use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread;

/// Thread-count knob plumbed through the pipeline's configuration structs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ParallelConfig {
    /// Worker threads. `Some(1)` forces the exact serial code path;
    /// `None` defers to `METADSE_THREADS`, then to the machine.
    pub threads: Option<usize>,
}

impl ParallelConfig {
    /// A configuration pinned to `n` threads.
    pub fn with_threads(n: usize) -> ParallelConfig {
        ParallelConfig {
            threads: Some(n.max(1)),
        }
    }

    /// A configuration pinned to one thread (exact serial execution).
    pub fn serial() -> ParallelConfig {
        ParallelConfig::with_threads(1)
    }

    /// The resolved worker-thread count: explicit setting, else
    /// `METADSE_THREADS`, else available parallelism (at least 1).
    pub fn effective_threads(&self) -> usize {
        if let Some(n) = self.threads {
            return n.max(1);
        }
        if let Ok(v) = std::env::var("METADSE_THREADS") {
            if let Ok(n) = v.trim().parse::<usize>() {
                return n.max(1);
            }
        }
        thread::available_parallelism().map_or(1, |n| n.get())
    }

    /// Evaluates `f(0..n)` and returns the results **in index order**.
    ///
    /// With one effective thread (or `n <= 1`) this runs `f` inline on the
    /// caller's thread, serially, in index order — no threads are spawned.
    /// Otherwise workers pull indices from a shared counter, so `f` must be
    /// a pure function of its index for results to be deterministic; index
    /// ordering of the output makes any subsequent reduction independent of
    /// scheduling.
    pub fn run_indexed<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let threads = self.effective_threads().min(n.max(1));
        if threads <= 1 {
            return (0..n).map(f).collect();
        }

        let next = AtomicUsize::new(0);
        let per_worker: Vec<Vec<(usize, T)>> = thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    scope.spawn(|| {
                        let mut local = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= n {
                                break;
                            }
                            local.push((i, f(i)));
                        }
                        local
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("parallel worker panicked"))
                .collect()
        });

        let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
        for (i, value) in per_worker.into_iter().flatten() {
            debug_assert!(slots[i].is_none(), "index {i} produced twice");
            slots[i] = Some(value);
        }
        slots
            .into_iter()
            .enumerate()
            .map(|(i, v)| v.unwrap_or_else(|| panic!("index {i} never produced")))
            .collect()
    }

    /// Maps `f` over `items` in parallel, preserving item order.
    pub fn map_slice<T, U, F>(&self, items: &[T], f: F) -> Vec<U>
    where
        T: Sync,
        U: Send,
        F: Fn(&T) -> U + Sync,
    {
        self.run_indexed(items.len(), |i| f(&items[i]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_index_order() {
        let cfg = ParallelConfig::with_threads(4);
        let out = cfg.run_indexed(100, |i| i * i);
        assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn serial_and_parallel_agree() {
        let f = |i: usize| (i as f64).sqrt().sin();
        let serial = ParallelConfig::serial().run_indexed(257, f);
        let parallel = ParallelConfig::with_threads(8).run_indexed(257, f);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn zero_tasks_is_fine() {
        let out: Vec<usize> = ParallelConfig::with_threads(4).run_indexed(0, |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn map_slice_preserves_order() {
        let items = vec![3, 1, 4, 1, 5, 9, 2, 6];
        let out = ParallelConfig::with_threads(3).map_slice(&items, |v| v * 10);
        assert_eq!(out, vec![30, 10, 40, 10, 50, 90, 20, 60]);
    }

    #[test]
    fn explicit_threads_beat_the_env_var() {
        // `Some(n)` must win regardless of METADSE_THREADS.
        assert_eq!(ParallelConfig::with_threads(3).effective_threads(), 3);
        assert_eq!(ParallelConfig::serial().effective_threads(), 1);
    }

    #[test]
    fn more_threads_than_tasks_still_covers_everything() {
        let out = ParallelConfig::with_threads(16).run_indexed(3, |i| i + 1);
        assert_eq!(out, vec![1, 2, 3]);
    }
}
