//! Deterministic task-parallel execution for the MetaDSE workspace.
//!
//! The MetaDSE pipeline is full of *task-level* independence — per-task MAML
//! inner loops, per-design-point simulations, per-tree forest fitting — but
//! the `metadse-nn` autograd graph is `Rc`/`RefCell`-based and therefore
//! thread-bound. This crate provides the execution pattern every parallel
//! hot path uses instead of making the graph `Send`:
//!
//! 1. **snapshot** — the caller captures plain `Vec<f64>` inputs on the main
//!    thread (parameter buffers, sampled tasks, design points),
//! 2. **fan-out** — [`ParallelConfig::run_indexed`] evaluates a pure
//!    function of the task index on `std::thread::scope` workers, each of
//!    which may rebuild thread-local state (e.g. a model) from the snapshot,
//! 3. **deterministic reduce** — results come back ordered by task index,
//!    so the caller reduces them in exactly the serial order and the final
//!    floats are bit-identical to a serial run.
//!
//! Thread count resolution: explicit `threads: Some(n)` wins, otherwise the
//! `METADSE_THREADS` environment variable, otherwise
//! [`std::thread::available_parallelism`].
//!
//! For always-on services (the serving layer's batch workers) that consume
//! from a queue rather than fanning out over a known task count, the crate
//! also provides [`WorkerPool`]: long-lived named threads with the same
//! observability worker tagging as fan-out workers.
//!
//! # Work-size threshold and oversubscription
//!
//! Spawning scoped workers costs tens of microseconds; a fan-out of a
//! handful of tasks (or any fan-out on a machine with fewer cores than
//! requested workers) loses more to scheduling than it gains. Two guards
//! keep the parallel path honest — both only change *where* work runs, never
//! its results, which stay bit-identical by construction:
//!
//! * fan-outs with fewer than [`ParallelConfig::serial_cutoff`] tasks
//!   (default [`DEFAULT_SERIAL_CUTOFF`], overridable per-config or via
//!   `METADSE_SERIAL_CUTOFF`) take the inline serial path;
//! * the worker count is clamped to the machine's available parallelism
//!   unless [`ParallelConfig::oversubscribe`] is set (measurement and
//!   determinism tests set it to force real thread interleaving even on a
//!   single-core host).
//!
//! When the `obs` feature of the workspace is enabled, every fan-out
//! records its decision (`parallel/fanouts_serial`,
//! `parallel/fanouts_parallel`, `parallel/spawned_workers` counters and the
//! `parallel/serial_cutoff` gauge), workers tag their spans with a worker
//! id, and spans opened inside workers nest under the caller's span.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread;

use metadse_obs as obs;

/// Fan-outs smaller than this run serially unless a config or the
/// `METADSE_SERIAL_CUTOFF` environment variable overrides it. Sixteen
/// covers the pipeline's small sweeps (e.g. 8-task WAM adaptation), whose
/// spawn overhead exceeded the win even on multi-core hosts.
pub const DEFAULT_SERIAL_CUTOFF: usize = 16;

/// Thread-count knob plumbed through the pipeline's configuration structs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ParallelConfig {
    /// Worker threads. `Some(1)` forces the exact serial code path;
    /// `None` defers to `METADSE_THREADS`, then to the machine.
    pub threads: Option<usize>,
    /// Minimum fan-out size that uses threads; smaller fan-outs run the
    /// serial path. `None` defers to `METADSE_SERIAL_CUTOFF`, then to
    /// [`DEFAULT_SERIAL_CUTOFF`].
    pub serial_cutoff: Option<usize>,
    /// Allow more workers than the machine has hardware threads.
    /// Off by default (oversubscribing CPU-bound pure work only adds
    /// scheduling overhead); determinism tests and overhead measurements
    /// turn it on to force real cross-thread interleaving anywhere.
    pub oversubscribe: bool,
}

impl ParallelConfig {
    /// A configuration pinned to `n` threads.
    pub fn with_threads(n: usize) -> ParallelConfig {
        ParallelConfig {
            threads: Some(n.max(1)),
            ..ParallelConfig::default()
        }
    }

    /// A configuration pinned to one thread (exact serial execution).
    pub fn serial() -> ParallelConfig {
        ParallelConfig::with_threads(1)
    }

    /// This configuration with the work-size threshold set to `n` tasks.
    pub fn with_serial_cutoff(mut self, n: usize) -> ParallelConfig {
        self.serial_cutoff = Some(n);
        self
    }

    /// This configuration with the hardware-parallelism clamp disabled,
    /// so the full requested worker count spawns even on a smaller
    /// machine. Used by determinism tests (real interleaving on any host)
    /// and overhead measurements.
    pub fn oversubscribed(mut self) -> ParallelConfig {
        self.oversubscribe = true;
        self
    }

    /// The resolved worker-thread count: explicit setting, else
    /// `METADSE_THREADS`, else available parallelism (at least 1).
    pub fn effective_threads(&self) -> usize {
        if let Some(n) = self.threads {
            return n.max(1);
        }
        if let Ok(v) = std::env::var("METADSE_THREADS") {
            if let Ok(n) = v.trim().parse::<usize>() {
                return n.max(1);
            }
        }
        available_parallelism()
    }

    /// The resolved work-size threshold: explicit setting, else
    /// `METADSE_SERIAL_CUTOFF`, else [`DEFAULT_SERIAL_CUTOFF`].
    pub fn effective_serial_cutoff(&self) -> usize {
        if let Some(n) = self.serial_cutoff {
            return n;
        }
        if let Ok(v) = std::env::var("METADSE_SERIAL_CUTOFF") {
            if let Ok(n) = v.trim().parse::<usize>() {
                return n;
            }
        }
        DEFAULT_SERIAL_CUTOFF
    }

    /// The number of workers a fan-out of `n` tasks will actually use:
    /// 1 (the serial path) when `n` is below the work-size threshold,
    /// otherwise the thread count clamped to `n` and — unless
    /// [`oversubscribed`](ParallelConfig::oversubscribed) — to the
    /// machine's available parallelism.
    pub fn workers_for(&self, n: usize) -> usize {
        if n <= 1 || n < self.effective_serial_cutoff() {
            return 1;
        }
        let mut workers = self.effective_threads();
        if !self.oversubscribe {
            workers = workers.min(available_parallelism());
        }
        workers.min(n)
    }

    /// Evaluates `f(0..n)` and returns the results **in index order**.
    ///
    /// With one effective worker (see [`ParallelConfig::workers_for`])
    /// this runs `f` inline on the caller's thread, serially, in index
    /// order — no threads are spawned. Otherwise workers pull indices from
    /// a shared counter, so `f` must be a pure function of its index for
    /// results to be deterministic; index ordering of the output makes any
    /// subsequent reduction independent of scheduling.
    pub fn run_indexed<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        obs::gauge(
            "parallel/serial_cutoff",
            self.effective_serial_cutoff() as f64,
        );
        let threads = self.workers_for(n);
        if threads <= 1 {
            obs::counter("parallel/fanouts_serial", 1);
            return (0..n).map(f).collect();
        }
        obs::counter("parallel/fanouts_parallel", 1);
        obs::counter("parallel/spawned_workers", threads as u64);
        let parent_span = obs::current_span();

        let next = AtomicUsize::new(0);
        let per_worker: Vec<Vec<(usize, T)>> = thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|w| {
                    let next = &next;
                    let f = &f;
                    scope.spawn(move || {
                        obs::set_worker(Some(w));
                        obs::adopt_span(parent_span);
                        let mut local = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= n {
                                break;
                            }
                            local.push((i, f(i)));
                        }
                        local
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("parallel worker panicked"))
                .collect()
        });

        let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
        for (i, value) in per_worker.into_iter().flatten() {
            debug_assert!(slots[i].is_none(), "index {i} produced twice");
            slots[i] = Some(value);
        }
        slots
            .into_iter()
            .enumerate()
            .map(|(i, v)| v.unwrap_or_else(|| panic!("index {i} never produced")))
            .collect()
    }

    /// Maps `f` over `items` in parallel, preserving item order.
    pub fn map_slice<T, U, F>(&self, items: &[T], f: F) -> Vec<U>
    where
        T: Sync,
        U: Send,
        F: Fn(&T) -> U + Sync,
    {
        self.run_indexed(items.len(), |i| f(&items[i]))
    }
}

/// The machine's available hardware parallelism (at least 1).
pub fn available_parallelism() -> usize {
    thread::available_parallelism().map_or(1, |n| n.get())
}

/// A set of long-lived named worker threads.
///
/// [`ParallelConfig::run_indexed`] is a fork-join primitive: it spawns
/// scoped workers per call, which is right for bounded fan-outs but wrong
/// for always-on services that consume work from a queue for the life of
/// the process. `WorkerPool` covers that shape: `count` threads are
/// spawned once, each running `body(worker_index)` to completion, and
/// [`WorkerPool::join`] waits for all of them (the body is responsible
/// for observing its own shutdown signal — typically a closed queue).
///
/// Workers are tagged for observability exactly like fan-out workers
/// ([`metadse_obs::set_worker`]), so spans opened inside pool threads
/// carry worker attribution in traces.
#[derive(Debug)]
pub struct WorkerPool {
    handles: Vec<thread::JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns `count` threads named `<name>-<index>`, each running
    /// `body(index)`. The body is shared: it must be `Send + Sync` and is
    /// called once per worker with that worker's index.
    ///
    /// # Panics
    ///
    /// Panics if a thread cannot be spawned.
    pub fn spawn<F>(name: &str, count: usize, body: F) -> WorkerPool
    where
        F: Fn(usize) + Send + Sync + 'static,
    {
        let body = std::sync::Arc::new(body);
        let handles = (0..count.max(1))
            .map(|i| {
                let body = std::sync::Arc::clone(&body);
                thread::Builder::new()
                    .name(format!("{name}-{i}"))
                    .spawn(move || {
                        obs::set_worker(Some(i));
                        body(i);
                    })
                    .expect("spawn pool worker")
            })
            .collect();
        WorkerPool { handles }
    }

    /// Number of worker threads in the pool.
    pub fn len(&self) -> usize {
        self.handles.len()
    }

    /// Whether the pool has no workers (never true: spawn clamps to 1).
    pub fn is_empty(&self) -> bool {
        self.handles.is_empty()
    }

    /// Waits for every worker to finish.
    ///
    /// # Panics
    ///
    /// Propagates a worker panic.
    pub fn join(self) {
        for h in self.handles {
            h.join().expect("pool worker panicked");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A config that genuinely spawns `n` workers on any host: cutoff 1,
    /// hardware clamp off — what the determinism tests use.
    fn forced(n: usize) -> ParallelConfig {
        ParallelConfig::with_threads(n)
            .with_serial_cutoff(1)
            .oversubscribed()
    }

    #[test]
    fn results_come_back_in_index_order() {
        let out = forced(4).run_indexed(100, |i| i * i);
        assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn serial_and_parallel_agree() {
        let f = |i: usize| (i as f64).sqrt().sin();
        let serial = ParallelConfig::serial().run_indexed(257, f);
        let parallel = forced(8).run_indexed(257, f);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn zero_tasks_is_fine() {
        let out: Vec<usize> = forced(4).run_indexed(0, |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn map_slice_preserves_order() {
        let items = vec![3, 1, 4, 1, 5, 9, 2, 6];
        let out = forced(3).map_slice(&items, |v| v * 10);
        assert_eq!(out, vec![30, 10, 40, 10, 50, 90, 20, 60]);
    }

    #[test]
    fn explicit_threads_beat_the_env_var() {
        // `Some(n)` must win regardless of METADSE_THREADS.
        assert_eq!(ParallelConfig::with_threads(3).effective_threads(), 3);
        assert_eq!(ParallelConfig::serial().effective_threads(), 1);
    }

    #[test]
    fn more_threads_than_tasks_still_covers_everything() {
        let out = forced(16).run_indexed(3, |i| i + 1);
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn small_fanouts_take_the_serial_path() {
        let cfg = ParallelConfig::with_threads(8).oversubscribed();
        // Below the default cutoff: serial regardless of thread count.
        assert_eq!(cfg.workers_for(DEFAULT_SERIAL_CUTOFF - 1), 1);
        // At the cutoff: parallel.
        assert_eq!(cfg.workers_for(DEFAULT_SERIAL_CUTOFF), 8);
        // Explicit cutoff wins (workers also clamp to the task count).
        assert_eq!(cfg.with_serial_cutoff(4).workers_for(5), 5);
        assert_eq!(cfg.with_serial_cutoff(4).workers_for(3), 1);
    }

    #[test]
    fn hardware_clamp_applies_unless_oversubscribed() {
        let machine = available_parallelism();
        let clamped = ParallelConfig::with_threads(machine + 7).with_serial_cutoff(1);
        assert_eq!(clamped.workers_for(1000), machine);
        assert_eq!(clamped.oversubscribed().workers_for(1000), machine + 7);
    }

    #[test]
    fn worker_pool_runs_every_body_and_joins() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        let seen = Arc::new(AtomicUsize::new(0));
        let pool = {
            let seen = Arc::clone(&seen);
            WorkerPool::spawn("test-pool", 4, move |i| {
                // Accumulate 2^i so the final value proves each index ran
                // exactly once.
                seen.fetch_add(1 << i, Ordering::SeqCst);
            })
        };
        assert_eq!(pool.len(), 4);
        pool.join();
        assert_eq!(seen.load(Ordering::SeqCst), 0b1111);
    }

    #[test]
    fn worker_pool_clamps_to_at_least_one_worker() {
        let pool = WorkerPool::spawn("lonely", 0, |_| {});
        assert_eq!(pool.len(), 1);
        assert!(!pool.is_empty());
        pool.join();
    }

    #[test]
    fn serial_cutoff_never_splits_tiny_fanouts() {
        // n <= 1 is always serial, even with cutoff 0.
        let cfg = ParallelConfig::with_threads(4)
            .with_serial_cutoff(0)
            .oversubscribed();
        assert_eq!(cfg.workers_for(1), 1);
        assert_eq!(cfg.workers_for(0), 1);
    }
}
