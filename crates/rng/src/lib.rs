//! Deterministic random-number generation for the MetaDSE workspace.
//!
//! This crate re-implements, from scratch, the small slice of the `rand`
//! crate API the workspace uses (`Rng::gen_range`, `SeedableRng::
//! seed_from_u64`, `rngs::StdRng`, `rngs::mock::StepRng`) so the workspace
//! builds hermetically with no external dependencies. The library target is
//! named `rand`, so `use rand::Rng;` works unchanged across the workspace.
//!
//! [`rngs::StdRng`] is xoshiro256++ seeded through SplitMix64 — a different
//! stream than upstream `rand`'s ChaCha-based `StdRng`, but every consumer
//! in this workspace only relies on *seed determinism*, never on a specific
//! stream.
//!
//! # Example
//!
//! ```
//! use rand::rngs::StdRng;
//! use rand::{Rng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let x: f64 = rng.gen_range(0.0..1.0);
//! assert!((0.0..1.0).contains(&x));
//! let i = rng.gen_range(0..10usize);
//! assert!(i < 10);
//! ```

use std::ops::{Range, RangeInclusive};

/// A source of uniformly distributed 64-bit values.
///
/// The single required method is [`Rng::next_u64`]; everything else is
/// provided. The trait is usable through `&mut R` and unsized bounds
/// (`R: Rng + ?Sized`) like upstream `rand`.
pub trait Rng {
    /// The next 64 uniformly distributed bits of the stream.
    fn next_u64(&mut self) -> u64;

    /// A uniform sample from `range`.
    ///
    /// Supports half-open (`lo..hi`) and inclusive (`lo..=hi`) ranges over
    /// the integer types used in the workspace, and half-open ranges over
    /// `f64`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator constructible from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A range that knows how to draw a uniform sample of `T` from an [`Rng`].
pub trait SampleRange<T> {
    /// Draws one sample.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// Converts 64 random bits to a `f64` in `[0, 1)` using the top 53 bits.
#[inline]
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(
            self.start < self.end,
            "cannot sample empty range {:?}..{:?}",
            self.start,
            self.end
        );
        let u = unit_f64(rng.next_u64());
        let v = self.start + (self.end - self.start) * u;
        // Guard the (rounding-only) case v == end so the half-open contract
        // holds exactly.
        if v < self.end {
            v
        } else {
            self.start
        }
    }
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(
                    self.start < self.end,
                    "cannot sample empty range {}..{}",
                    self.start,
                    self.end
                );
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range {lo}..={hi}");
                let span = hi.wrapping_sub(lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % (span + 1)) as $t)
            }
        }
    )*};
}

impl_int_sample_range!(usize, u64, u32, i64, i32);

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard seeded generator: xoshiro256++ with
    /// SplitMix64 seed expansion.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut state = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut state);
            }
            // xoshiro256++ requires a non-zero state; splitmix64 never maps
            // four consecutive outputs to all-zero, but guard anyway.
            if s == [0; 4] {
                s[0] = 0x9E3779B97F4A7C15;
            }
            StdRng { s }
        }
    }

    impl StdRng {
        /// The generator's full internal state, for checkpointing. The
        /// four words, fed back through [`StdRng::from_state`], continue
        /// the stream exactly where this generator left off.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from a [`StdRng::state`] snapshot.
        ///
        /// # Panics
        ///
        /// Panics on the all-zero state, which is not a valid
        /// xoshiro256++ state and cannot have come from `state()`.
        pub fn from_state(state: [u64; 4]) -> StdRng {
            assert!(
                state != [0; 4],
                "the all-zero state is not a valid xoshiro256++ state"
            );
            StdRng { s: state }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    /// Trivial generators for tests.
    pub mod mock {
        use super::super::Rng;

        /// Arithmetic-progression generator: yields `initial`,
        /// `initial + increment`, ... (wrapping). Mirrors
        /// `rand::rngs::mock::StepRng`.
        #[derive(Debug, Clone, PartialEq, Eq)]
        pub struct StepRng {
            value: u64,
            increment: u64,
        }

        impl StepRng {
            /// Creates a generator starting at `initial`, advancing by
            /// `increment` per draw.
            pub fn new(initial: u64, increment: u64) -> StepRng {
                StepRng {
                    value: initial,
                    increment,
                }
            }
        }

        impl Rng for StepRng {
            fn next_u64(&mut self) -> u64 {
                let out = self.value;
                self.value = self.value.wrapping_add(self.increment);
                out
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::mock::StepRng;
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn float_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&v));
        }
    }

    #[test]
    fn float_range_covers_the_interval() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 10_000;
        let mean = (0..n).map(|_| rng.gen_range(0.0..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn int_ranges_respect_bounds_and_hit_every_value() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[rng.gen_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..200 {
            let v = rng.gen_range(2..=4usize);
            assert!((2..=4).contains(&v));
        }
        let v: i32 = rng.gen_range(-3..3);
        assert!((-3..3).contains(&v));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_int_range_panics() {
        let mut rng = StdRng::seed_from_u64(4);
        let _ = rng.gen_range(5..5usize);
    }

    #[test]
    fn works_through_unsized_and_reborrowed_receivers() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen_range(0.0..1.0)
        }
        let mut rng = StdRng::seed_from_u64(5);
        let a = draw(&mut rng);
        let b = draw(&mut &mut rng);
        assert_ne!(a, b);
    }

    #[test]
    fn state_roundtrip_continues_the_stream() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..17 {
            rng.next_u64();
        }
        let mut resumed = StdRng::from_state(rng.state());
        for _ in 0..100 {
            assert_eq!(rng.next_u64(), resumed.next_u64());
        }
    }

    #[test]
    #[should_panic(expected = "all-zero state")]
    fn all_zero_state_is_rejected() {
        let _ = StdRng::from_state([0; 4]);
    }

    #[test]
    fn step_rng_is_an_arithmetic_progression() {
        let mut rng = StepRng::new(3, 10);
        assert_eq!(rng.next_u64(), 3);
        assert_eq!(rng.next_u64(), 13);
        assert_eq!(rng.next_u64(), 23);
    }
}
