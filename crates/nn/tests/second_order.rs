//! Second-order (double-backward) verification against numerical second
//! derivatives — the machinery full second-order MAML depends on.

use metadse_nn::autograd::grad;
use metadse_nn::Tensor;

/// Numerical second derivative of a scalar map f at x (central stencil).
fn numeric_second(f: impl Fn(f64) -> f64, x: f64, h: f64) -> f64 {
    (f(x + h) - 2.0 * f(x) + f(x - h)) / (h * h)
}

/// Analytic second derivative via double backward of a tensor-expressed
/// scalar function.
fn analytic_second(build: impl Fn(&Tensor) -> Tensor, x: f64) -> f64 {
    let t = Tensor::param_from_vec(vec![x], &[1]);
    let y = build(&t).sum_all();
    let d1 = grad(&y, std::slice::from_ref(&t), true);
    let d2 = grad(&d1[0].sum_all(), &[t], false);
    d2[0].to_vec()[0]
}

fn check(
    name: &str,
    build: impl Fn(&Tensor) -> Tensor + Copy,
    scalar: impl Fn(f64) -> f64,
    xs: &[f64],
) {
    for &x in xs {
        let analytic = analytic_second(build, x);
        let numeric = numeric_second(&scalar, x, 1e-4);
        let tol = 1e-4 * numeric.abs().max(1.0);
        assert!(
            (analytic - numeric).abs() < tol,
            "{name} at x={x}: analytic {analytic} vs numeric {numeric}"
        );
    }
}

#[test]
fn second_derivative_of_exp() {
    check("exp", |t| t.exp(), f64::exp, &[-1.0, 0.3, 1.5]);
}

#[test]
fn second_derivative_of_tanh() {
    check("tanh", |t| t.tanh(), f64::tanh, &[-0.8, 0.2, 1.1]);
}

#[test]
fn second_derivative_of_sigmoid() {
    let s = |x: f64| 1.0 / (1.0 + (-x).exp());
    check("sigmoid", |t| t.sigmoid(), s, &[-1.2, 0.0, 0.9]);
}

#[test]
fn second_derivative_of_ln() {
    check("ln", |t| t.ln(), f64::ln, &[0.4, 1.0, 2.7]);
}

#[test]
fn second_derivative_of_sqrt() {
    check("sqrt", |t| t.sqrt(), f64::sqrt, &[0.5, 1.3, 4.0]);
}

#[test]
fn second_derivative_of_gelu() {
    let gelu = |x: f64| {
        let c = (2.0 / std::f64::consts::PI).sqrt();
        0.5 * x * (1.0 + (c * (x + 0.044715 * x.powi(3))).tanh())
    };
    check("gelu", |t| t.gelu(), gelu, &[-1.5, -0.2, 0.7, 2.0]);
}

#[test]
fn second_derivative_of_softmax_entropy_like() {
    // f(x) = softmax([x, 0]) first component; f = sigmoid(x), so
    // f'' = sigmoid''(x) — exercises softmax's composite double backward.
    let build = |t: &Tensor| {
        let padded = t.reshape(&[1, 1]).pad_axis_zeros(1, 0, 1); // [x, 0]
        padded.softmax(1).slice_axis(1, 0, 1)
    };
    let s = |x: f64| 1.0 / (1.0 + (-x).exp());
    check("softmax2", build, s, &[-1.0, 0.4, 1.7]);
}

#[test]
fn second_derivative_of_division_composite() {
    // f(x) = x / (1 + x^2)
    let build = |t: &Tensor| t.div(&t.mul(t).add_scalar(1.0));
    let s = |x: f64| x / (1.0 + x * x);
    check("rational", build, s, &[-1.3, 0.1, 0.8]);
}

#[test]
fn hessian_vector_structure_through_matmul() {
    // f(w) = ||X w||^2 has Hessian 2 XᵀX; check the diagonal via double
    // backward, against the closed form.
    let x = Tensor::from_vec(vec![1.0, 2.0, 0.5, -1.0], &[2, 2]);
    let w = Tensor::param_from_vec(vec![0.3, -0.7], &[2, 1]);
    let y = x.matmul(&w).squared_norm();
    let d1 = grad(&y, std::slice::from_ref(&w), true);
    // d1 = 2 XᵀX w; differentiate each component wrt w.
    let g0 = grad(
        &d1[0].slice_axis(0, 0, 1).sum_all(),
        std::slice::from_ref(&w),
        false,
    );
    let g1 = grad(
        &d1[0].slice_axis(0, 1, 1).sum_all(),
        std::slice::from_ref(&w),
        false,
    );
    // 2 XᵀX = 2 * [[1.25, 1.5], [1.5, 5.0]]
    let h = [g0[0].to_vec(), g1[0].to_vec()];
    assert!((h[0][0] - 2.5).abs() < 1e-9, "H00 {}", h[0][0]);
    assert!((h[0][1] - 3.0).abs() < 1e-9, "H01 {}", h[0][1]);
    assert!((h[1][0] - 3.0).abs() < 1e-9, "H10 {}", h[1][0]);
    assert!((h[1][1] - 10.0).abs() < 1e-9, "H11 {}", h[1][1]);
}

#[test]
fn maml_style_second_order_matches_manual_unroll() {
    // One inner SGD step on f(w) = (w - 3)^2, then outer loss g(ŵ) = ŵ^2.
    // ŵ = w - α·2(w-3); dg/dw = 2ŵ·(1 - 2α) — the second-order term
    // (1 - 2α) is exactly what FOMAML drops.
    let alpha = 0.1;
    let w = Tensor::param_from_vec(vec![1.0], &[1]);
    let inner = w.sub_scalar(3.0).powf(2.0).sum_all();
    let gi = grad(&inner, std::slice::from_ref(&w), true);
    let w_fast = w.sub(&gi[0].mul_scalar(alpha));
    let outer = w_fast.powf(2.0).sum_all();
    let meta = grad(&outer, std::slice::from_ref(&w), false);
    let w_fast_val = 1.0 - alpha * 2.0 * (1.0 - 3.0);
    let expected = 2.0 * w_fast_val * (1.0 - 2.0 * alpha);
    assert!(
        (meta[0].to_vec()[0] - expected).abs() < 1e-12,
        "meta-gradient {} vs manual {expected}",
        meta[0].to_vec()[0]
    );

    // First-order version: compute the inner gradient with
    // create_graph = false (a constant) — the derivative loses the
    // (1 - 2α) factor.
    let inner2 = w.sub_scalar(3.0).powf(2.0).sum_all();
    let gi_detached = grad(&inner2, std::slice::from_ref(&w), false);
    assert!(!gi_detached[0].requires_grad());
    let w_fast_fo = w.sub(&gi_detached[0].mul_scalar(alpha));
    let outer_fo = w_fast_fo.powf(2.0).sum_all();
    let meta_fo = grad(&outer_fo, std::slice::from_ref(&w), false);
    let expected_fo = 2.0 * w_fast_val;
    assert!(
        (meta_fo[0].to_vec()[0] - expected_fo).abs() < 1e-12,
        "FOMAML gradient {} vs manual {expected_fo}",
        meta_fo[0].to_vec()[0]
    );
}
