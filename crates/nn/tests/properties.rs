//! Property-style tests of the tensor/autodiff core.
//!
//! Each test draws many random cases from a seeded [`StdRng`] (the hermetic
//! build has no proptest), so failures are reproducible from the fixed seed.

use metadse_nn::autograd::grad;
use metadse_nn::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CASES: usize = 64;

/// A small random 3-D shape and matching data in `[-10, 10)`.
fn random_case(rng: &mut StdRng) -> (Vec<usize>, Vec<f64>) {
    let shape = vec![
        rng.gen_range(1..4usize),
        rng.gen_range(1..4usize),
        rng.gen_range(1..4usize),
    ];
    let n: usize = shape.iter().product();
    let data = (0..n).map(|_| rng.gen_range(-10.0..10.0)).collect();
    (shape, data)
}

#[test]
fn add_commutes() {
    let mut rng = StdRng::seed_from_u64(0x6e01);
    for _ in 0..CASES {
        let (shape, data) = random_case(&mut rng);
        let scale = rng.gen_range(-3.0..3.0);
        let a = Tensor::from_vec(data.clone(), &shape);
        let b = Tensor::from_vec(data.iter().map(|v| v * scale).collect(), &shape);
        assert_eq!(a.add(&b).to_vec(), b.add(&a).to_vec());
    }
}

#[test]
fn mul_distributes_over_add() {
    let mut rng = StdRng::seed_from_u64(0x6e02);
    for _ in 0..CASES {
        let (shape, data) = random_case(&mut rng);
        let a = Tensor::from_vec(data.clone(), &shape);
        let b = Tensor::from_vec(data.iter().map(|v| v + 1.0).collect(), &shape);
        let c = Tensor::from_vec(data.iter().map(|v| v - 2.0).collect(), &shape);
        let lhs = a.mul(&b.add(&c)).to_vec();
        let rhs = a.mul(&b).add(&a.mul(&c)).to_vec();
        for (l, r) in lhs.iter().zip(&rhs) {
            assert!((l - r).abs() < 1e-9, "{l} vs {r}");
        }
    }
}

#[test]
fn reshape_roundtrip_preserves_data() {
    let mut rng = StdRng::seed_from_u64(0x6e03);
    for _ in 0..CASES {
        let (shape, data) = random_case(&mut rng);
        let t = Tensor::from_vec(data.clone(), &shape);
        let n = t.numel();
        let flat = t.reshape(&[n]);
        let back = flat.reshape(&shape);
        assert_eq!(back.to_vec(), data);
    }
}

#[test]
fn transpose_is_involutive() {
    let mut rng = StdRng::seed_from_u64(0x6e04);
    for _ in 0..CASES {
        let (shape, data) = random_case(&mut rng);
        let t = Tensor::from_vec(data.clone(), &shape);
        let back = t.transpose(0, 2).transpose(0, 2);
        assert_eq!(back.to_vec(), data);
    }
}

#[test]
fn softmax_rows_are_distributions() {
    let mut rng = StdRng::seed_from_u64(0x6e05);
    for _ in 0..CASES {
        let (shape, data) = random_case(&mut rng);
        let t = Tensor::from_vec(data, &shape);
        let s = t.softmax(2);
        let v = s.to_vec();
        let inner = shape[2];
        for row in v.chunks(inner) {
            let total: f64 = row.iter().sum();
            assert!((total - 1.0).abs() < 1e-9, "row sums to {total}");
            assert!(row.iter().all(|&p| p >= 0.0));
        }
    }
}

#[test]
fn sum_to_then_broadcast_preserves_total() {
    let mut rng = StdRng::seed_from_u64(0x6e06);
    for _ in 0..CASES {
        let (shape, data) = random_case(&mut rng);
        let t = Tensor::from_vec(data, &shape);
        let reduced = t.sum_to(&[shape[2]]);
        let total_before: f64 = t.to_vec().iter().sum();
        let total_after: f64 = reduced.to_vec().iter().sum();
        assert!((total_before - total_after).abs() < 1e-8);
    }
}

#[test]
fn gradient_of_sum_is_ones() {
    let mut rng = StdRng::seed_from_u64(0x6e07);
    for _ in 0..CASES {
        let (shape, data) = random_case(&mut rng);
        let t = Tensor::param_from_vec(data, &shape);
        let g = grad(&t.sum_all(), std::slice::from_ref(&t), false);
        assert!(g[0].to_vec().iter().all(|&v| v == 1.0));
    }
}

#[test]
fn gradient_is_linear_in_scaling() {
    let mut rng = StdRng::seed_from_u64(0x6e08);
    for _ in 0..CASES {
        let (shape, data) = random_case(&mut rng);
        let c = rng.gen_range(-4.0..4.0);
        // d(c * f)/dx = c * df/dx for f = sum of squares.
        let x = Tensor::param_from_vec(data, &shape);
        let f = x.mul(&x).sum_all();
        let gf = grad(&f, std::slice::from_ref(&x), false);
        let cf = x.mul(&x).sum_all().mul_scalar(c);
        let gcf = grad(&cf, std::slice::from_ref(&x), false);
        for (a, b) in gcf[0].to_vec().iter().zip(gf[0].to_vec()) {
            assert!((a - c * b).abs() < 1e-8, "{a} vs {}", c * b);
        }
    }
}

#[test]
fn matmul_matches_manual_2x2() {
    let mut rng = StdRng::seed_from_u64(0x6e09);
    for _ in 0..CASES {
        let a: Vec<f64> = (0..4).map(|_| rng.gen_range(-5.0..5.0)).collect();
        let b: Vec<f64> = (0..4).map(|_| rng.gen_range(-5.0..5.0)).collect();
        let ta = Tensor::from_vec(a.clone(), &[2, 2]);
        let tb = Tensor::from_vec(b.clone(), &[2, 2]);
        let c = ta.matmul(&tb).to_vec();
        let manual = [
            a[0] * b[0] + a[1] * b[2],
            a[0] * b[1] + a[1] * b[3],
            a[2] * b[0] + a[3] * b[2],
            a[2] * b[1] + a[3] * b[3],
        ];
        for (x, y) in c.iter().zip(&manual) {
            assert!((x - y).abs() < 1e-9);
        }
    }
}

#[test]
fn relu_output_nonnegative_and_idempotent() {
    let mut rng = StdRng::seed_from_u64(0x6e0a);
    for _ in 0..CASES {
        let (shape, data) = random_case(&mut rng);
        let t = Tensor::from_vec(data, &shape);
        let r = t.relu();
        assert!(r.to_vec().iter().all(|&v| v >= 0.0));
        assert_eq!(r.relu().to_vec(), r.to_vec());
    }
}

#[test]
fn exp_ln_roundtrip_for_positive() {
    let mut rng = StdRng::seed_from_u64(0x6e0b);
    for _ in 0..CASES {
        let (shape, data) = random_case(&mut rng);
        let t = Tensor::from_vec(data.iter().map(|v| v.abs() + 0.1).collect(), &shape);
        let back = t.ln().exp().to_vec();
        for (a, b) in back.iter().zip(t.to_vec()) {
            assert!((a - b).abs() < 1e-9 * b.max(1.0));
        }
    }
}

#[test]
fn concat_slice_roundtrip() {
    let mut rng = StdRng::seed_from_u64(0x6e0c);
    for _ in 0..CASES {
        let (shape, data) = random_case(&mut rng);
        let t = Tensor::from_vec(data.clone(), &shape);
        let c = Tensor::concat(&[t.clone(), t.clone()], 1);
        let first = c.slice_axis(1, 0, shape[1]);
        assert_eq!(first.to_vec(), data);
    }
}
