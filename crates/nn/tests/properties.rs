//! Property-based tests of the tensor/autodiff core.

use proptest::prelude::*;

use metadse_nn::autograd::grad;
use metadse_nn::Tensor;

/// Strategy: a small shape and matching data.
fn tensor_strategy() -> impl Strategy<Value = (Vec<usize>, Vec<f64>)> {
    (1usize..4, 1usize..4, 1usize..4).prop_flat_map(|(a, b, c)| {
        let shape = vec![a, b, c];
        let n = a * b * c;
        (
            Just(shape),
            proptest::collection::vec(-10.0..10.0f64, n..=n),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn add_commutes((shape, data) in tensor_strategy(), scale in -3.0..3.0f64) {
        let a = Tensor::from_vec(data.clone(), &shape);
        let b = Tensor::from_vec(data.iter().map(|v| v * scale).collect(), &shape);
        prop_assert_eq!(a.add(&b).to_vec(), b.add(&a).to_vec());
    }

    #[test]
    fn mul_distributes_over_add((shape, data) in tensor_strategy()) {
        let a = Tensor::from_vec(data.clone(), &shape);
        let b = Tensor::from_vec(data.iter().map(|v| v + 1.0).collect(), &shape);
        let c = Tensor::from_vec(data.iter().map(|v| v - 2.0).collect(), &shape);
        let lhs = a.mul(&b.add(&c)).to_vec();
        let rhs = a.mul(&b).add(&a.mul(&c)).to_vec();
        for (l, r) in lhs.iter().zip(&rhs) {
            prop_assert!((l - r).abs() < 1e-9, "{l} vs {r}");
        }
    }

    #[test]
    fn reshape_roundtrip_preserves_data((shape, data) in tensor_strategy()) {
        let t = Tensor::from_vec(data.clone(), &shape);
        let n = t.numel();
        let flat = t.reshape(&[n]);
        let back = flat.reshape(&shape);
        prop_assert_eq!(back.to_vec(), data);
    }

    #[test]
    fn transpose_is_involutive((shape, data) in tensor_strategy()) {
        let t = Tensor::from_vec(data.clone(), &shape);
        let back = t.transpose(0, 2).transpose(0, 2);
        prop_assert_eq!(back.to_vec(), data);
    }

    #[test]
    fn softmax_rows_are_distributions((shape, data) in tensor_strategy()) {
        let t = Tensor::from_vec(data, &shape);
        let s = t.softmax(2);
        let v = s.to_vec();
        let inner = shape[2];
        for row in v.chunks(inner) {
            let total: f64 = row.iter().sum();
            prop_assert!((total - 1.0).abs() < 1e-9, "row sums to {total}");
            prop_assert!(row.iter().all(|&p| p >= 0.0));
        }
    }

    #[test]
    fn sum_to_then_broadcast_preserves_total((shape, data) in tensor_strategy()) {
        let t = Tensor::from_vec(data, &shape);
        let reduced = t.sum_to(&[shape[2]]);
        let total_before: f64 = t.to_vec().iter().sum();
        let total_after: f64 = reduced.to_vec().iter().sum();
        prop_assert!((total_before - total_after).abs() < 1e-8);
    }

    #[test]
    fn gradient_of_sum_is_ones((shape, data) in tensor_strategy()) {
        let t = Tensor::param_from_vec(data, &shape);
        let g = grad(&t.sum_all(), &[t.clone()], false);
        prop_assert!(g[0].to_vec().iter().all(|&v| v == 1.0));
    }

    #[test]
    fn gradient_is_linear_in_scaling((shape, data) in tensor_strategy(), c in -4.0..4.0f64) {
        // d(c * f)/dx = c * df/dx for f = sum of squares.
        let x = Tensor::param_from_vec(data, &shape);
        let f = x.mul(&x).sum_all();
        let gf = grad(&f, &[x.clone()], false);
        let cf = x.mul(&x).sum_all().mul_scalar(c);
        let gcf = grad(&cf, &[x.clone()], false);
        for (a, b) in gcf[0].to_vec().iter().zip(gf[0].to_vec()) {
            prop_assert!((a - c * b).abs() < 1e-8, "{a} vs {}", c * b);
        }
    }

    #[test]
    fn matmul_matches_manual_2x2(
        a in proptest::collection::vec(-5.0..5.0f64, 4..=4),
        b in proptest::collection::vec(-5.0..5.0f64, 4..=4),
    ) {
        let ta = Tensor::from_vec(a.clone(), &[2, 2]);
        let tb = Tensor::from_vec(b.clone(), &[2, 2]);
        let c = ta.matmul(&tb).to_vec();
        let manual = [
            a[0] * b[0] + a[1] * b[2],
            a[0] * b[1] + a[1] * b[3],
            a[2] * b[0] + a[3] * b[2],
            a[2] * b[1] + a[3] * b[3],
        ];
        for (x, y) in c.iter().zip(&manual) {
            prop_assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn relu_output_nonnegative_and_idempotent((shape, data) in tensor_strategy()) {
        let t = Tensor::from_vec(data, &shape);
        let r = t.relu();
        prop_assert!(r.to_vec().iter().all(|&v| v >= 0.0));
        prop_assert_eq!(r.relu().to_vec(), r.to_vec());
    }

    #[test]
    fn exp_ln_roundtrip_for_positive((shape, data) in tensor_strategy()) {
        let t = Tensor::from_vec(data.iter().map(|v| v.abs() + 0.1).collect(), &shape);
        let back = t.ln().exp().to_vec();
        for (a, b) in back.iter().zip(t.to_vec()) {
            prop_assert!((a - b).abs() < 1e-9 * b.max(1.0));
        }
    }

    #[test]
    fn concat_slice_roundtrip((shape, data) in tensor_strategy()) {
        let t = Tensor::from_vec(data.clone(), &shape);
        let c = Tensor::concat(&[t.clone(), t.clone()], 1);
        let first = c.slice_axis(1, 0, shape[1]);
        prop_assert_eq!(first.to_vec(), data);
    }
}
