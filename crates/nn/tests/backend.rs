//! Per-backend numerics verification.
//!
//! Three layers of guarantees, mirroring DESIGN.md §3.6:
//!
//! 1. **Pinned digests** — each backend's exact bit patterns over a
//!    libm-free op battery are pinned to a literal FNV-1a digest, so an
//!    unintended numerics change in *either* backend fails loudly. The
//!    battery deliberately excludes `exp`/`tanh`-based ops (their libm
//!    implementations vary across platforms); `sqrt` and division are
//!    IEEE-754 correctly rounded and therefore portable.
//! 2. **Cross-backend tolerance** — SIMD reduces in 8-lane chunks, so
//!    its sums reassociate relative to the scalar backend. Every
//!    reduction is bounded by the standard recursive-summation error
//!    model: `|simd − scalar| ≤ (n/8 + 3)·ε·Σ|terms|`. The suite
//!    asserts that bound on remainder-heavy sizes (n % 8 ≠ 0), and
//!    checks NaN and subnormal propagation parity.
//! 3. **Gradient correctness under SIMD** — numerical gradient checks
//!    and the fused-vs-composite bit-equality invariant re-run with the
//!    SIMD backend forced, proving the backward paths route through the
//!    same primitives as the forwards.

use metadse_nn::autograd::grad;
use metadse_nn::gradcheck::check_gradients;
use metadse_nn::{Activation, BackendKind, BackendModeGuard, Elem, Tensor};

// ---------------------------------------------------------------------
// Deterministic inputs
// ---------------------------------------------------------------------

/// Minimal LCG (Knuth MMIX constants); avoids any RNG dependency so the
/// digest battery is self-contained and identical on every platform.
fn lcg(seed: &mut u64) -> Elem {
    *seed = seed
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    ((*seed >> 11) as Elem / (1u64 << 53) as Elem) * 2.0 - 1.0
}

fn lcg_vec(n: usize, seed: &mut u64) -> Vec<Elem> {
    (0..n).map(|_| lcg(seed)).collect()
}

fn lcg_param(shape: &[usize], seed: &mut u64) -> Tensor {
    Tensor::param_from_vec(lcg_vec(shape.iter().product(), seed), shape)
}

// ---------------------------------------------------------------------
// 1. Pinned per-backend digests
// ---------------------------------------------------------------------

/// FNV-1a over the exact bit patterns of every tensor fed to it — the
/// same construction the core determinism tests pin their run digests
/// with.
struct Digest(u64);

impl Digest {
    fn new() -> Digest {
        Digest(0xcbf29ce484222325)
    }

    fn eat(&mut self, t: &Tensor) {
        for v in t.to_vec() {
            for b in v.to_bits().to_le_bytes() {
                self.0 ^= u64::from(b);
                self.0 = self.0.wrapping_mul(0x100000001b3);
            }
        }
    }

    fn hex(&self) -> String {
        format!("{:016x}", self.0)
    }
}

/// Runs the libm-free op battery under the active backend and digests
/// every forward value and gradient. Shapes are chosen so reductions
/// hit remainder lanes (k = 13, 11, 9) as well as full chunks (8, 16).
fn battery_digest() -> String {
    let mut d = Digest::new();
    let mut seed = 0x5eed_cafe;

    // matmul forward + both gradients (k = 13: five remainder lanes).
    let a = lcg_param(&[5, 13], &mut seed);
    let b = lcg_param(&[13, 9], &mut seed);
    let y = a.matmul(&b);
    let loss = y.mul(&y).sum_all();
    let gs = grad(&loss, &[a, b], false);
    d.eat(&y);
    d.eat(&gs[0]);
    d.eat(&gs[1]);

    // matmul_nt (shared-k layout) forward + gradients.
    let c = lcg_param(&[6, 11], &mut seed);
    let e = lcg_param(&[7, 11], &mut seed);
    let y = c.matmul_nt(&e);
    let loss = y.mul(&y).sum_all();
    let gs = grad(&loss, &[c, e], false);
    d.eat(&y);
    d.eat(&gs[0]);
    d.eat(&gs[1]);

    // layernorm_affine: mean/variance reductions plus sqrt (exact).
    let x = lcg_param(&[4, 9], &mut seed);
    let gamma = lcg_param(&[9], &mut seed);
    let beta = lcg_param(&[9], &mut seed);
    let y = x.layernorm_affine(&gamma, &beta, 1e-5);
    let loss = y.mul(&y).sum_all();
    let gs = grad(&loss, &[x, gamma, beta], false);
    d.eat(&y);
    d.eat(&gs[0]);
    d.eat(&gs[1]);
    d.eat(&gs[2]);

    // sum_to: trailing reduce, leading reduce, and the strided walker
    // fallback, each with gradients (broadcast backward).
    let x = lcg_param(&[3, 5, 7], &mut seed);
    for target in [&[3, 5, 1][..], &[7][..], &[1, 5, 1][..]] {
        let s = x.sum_to(target);
        let loss = s.mul(&s).sum_all();
        let gs = grad(&loss, std::slice::from_ref(&x), false);
        d.eat(&s);
        d.eat(&gs[0]);
    }

    // sq_err_mean: the fused loss reduction.
    let p = lcg_param(&[3, 8], &mut seed);
    let t = Tensor::from_vec(lcg_vec(24, &mut seed), &[3, 8]);
    let loss = p.sq_err_mean(&t);
    let gs = grad(&loss, std::slice::from_ref(&p), false);
    d.eat(&loss);
    d.eat(&gs[0]);

    // bias_add_activation with ReLU (max is exact; GELU's tanh is
    // covered by the tolerance suite instead).
    let x = lcg_param(&[3, 5], &mut seed);
    let bias = lcg_param(&[5], &mut seed);
    let y = x.bias_add_activation(&bias, Activation::Relu);
    let loss = y.mul(&y).sum_all();
    let gs = grad(&loss, &[x, bias], false);
    d.eat(&y);
    d.eat(&gs[0]);
    d.eat(&gs[1]);

    d.hex()
}

/// The scalar backend must keep reproducing the exact bit patterns of
/// the historical (pre-backend-abstraction) implementation.
#[test]
fn scalar_backend_digest_is_pinned() {
    let _g = BackendModeGuard::set(BackendKind::Scalar);
    assert_eq!(
        battery_digest(),
        "623d037a5fe32266",
        "scalar backend numerics changed — this breaks bit-compatibility \
         with previously recorded runs and checkpoints"
    );
}

/// The SIMD backend has its own pin: its chunked reductions reassociate
/// relative to scalar, but must do so *identically* on every machine
/// (the AVX2 and portable kernel paths are bit-equal by construction —
/// no FMA contraction, fixed reduction tree).
#[test]
fn simd_backend_digest_is_pinned() {
    let _g = BackendModeGuard::set(BackendKind::Simd);
    assert_eq!(
        battery_digest(),
        "f1b1f1d7e3701f7f",
        "SIMD backend numerics changed — update the pin only for an \
         intentional kernel change, and re-record the .simd run digests"
    );
}

// ---------------------------------------------------------------------
// 2. Cross-backend tolerance
// ---------------------------------------------------------------------

/// Evaluates `f` under both backends and returns (scalar, simd) values.
fn both_backends(f: impl Fn() -> Tensor) -> (Vec<Elem>, Vec<Elem>) {
    let s = {
        let _g = BackendModeGuard::set(BackendKind::Scalar);
        f().to_vec()
    };
    let v = {
        let _g = BackendModeGuard::set(BackendKind::Simd);
        f().to_vec()
    };
    assert_eq!(s.len(), v.len());
    (s, v)
}

/// Asserts the recursive-summation bound `|simd − scalar| ≤
/// (n/8 + 3)·ε·magnitude` element-wise, where `magnitude` is the sum of
/// absolute term magnitudes of the reduction that produced the element.
fn assert_within_reduction_bound(s: &[Elem], v: &[Elem], n: usize, magnitude: &[Elem]) {
    let factor = (n as Elem / 8.0 + 3.0) * Elem::EPSILON;
    for (i, (a, b)) in s.iter().zip(v).enumerate() {
        let bound = factor * magnitude[i].max(1e-300);
        assert!(
            (a - b).abs() <= bound,
            "element {i}: scalar {a:e} vs simd {b:e} differ by {:e} \
             (bound {bound:e}, n = {n})",
            (a - b).abs()
        );
    }
}

/// Dot-product reassociation stays inside the error model at every
/// remainder size, including n < 8 (pure tail) and n = 0 adjacent
/// shapes.
#[test]
fn matmul_cross_backend_error_is_bounded() {
    for k in [1usize, 5, 7, 8, 9, 15, 16, 23, 64, 101] {
        let mut seed = k as u64 + 7;
        let a_data = lcg_vec(3 * k, &mut seed);
        let b_data = lcg_vec(k * 2, &mut seed);
        let a = Tensor::from_vec(a_data.clone(), &[3, k]);
        let b = Tensor::from_vec(b_data.clone(), &[k, 2]);
        let (s, v) = both_backends(|| a.matmul(&b));
        // Magnitude of each output element's reduction terms.
        let mut mag = vec![0.0; 6];
        for i in 0..3 {
            for j in 0..2 {
                mag[i * 2 + j] = (0..k)
                    .map(|kk| (a_data[i * k + kk] * b_data[kk * 2 + j]).abs())
                    .sum();
            }
        }
        assert_within_reduction_bound(&s, &v, k, &mag);
    }
}

/// The libm-bearing fused ops (softmax's exp, GELU's tanh) call the
/// *same* scalar libm functions in both backends — only the surrounding
/// reductions differ — so their cross-backend error obeys the same
/// reduction bound scaled by the row magnitude.
#[test]
fn fused_ops_cross_backend_error_is_bounded() {
    let mut seed = 99;
    let x = Tensor::from_vec(lcg_vec(4 * 11, &mut seed), &[4, 11]);
    let bias = Tensor::from_vec(lcg_vec(11, &mut seed), &[11]);
    let gamma = Tensor::from_vec(lcg_vec(11, &mut seed), &[11]);
    let beta = Tensor::from_vec(lcg_vec(11, &mut seed), &[11]);

    for (name, f) in [
        (
            "softmax",
            Box::new(|| x.softmax_fused(1)) as Box<dyn Fn() -> Tensor>,
        ),
        (
            "layernorm",
            Box::new(|| x.layernorm_affine(&gamma, &beta, 1e-5)),
        ),
        (
            "gelu",
            Box::new(|| x.bias_add_activation(&bias, Activation::Gelu)),
        ),
    ] {
        let (s, v) = both_backends(&f);
        // Row-level softmax/layernorm reductions are length 11; outputs
        // are O(1), so a conservative magnitude of Σ|row| per element.
        let factor = (11.0 / 8.0 + 3.0) * Elem::EPSILON;
        for (i, (a, b)) in s.iter().zip(&v).enumerate() {
            let scale = s.iter().map(|e| e.abs()).fold(1.0, Elem::max) * 11.0;
            assert!(
                (a - b).abs() <= factor * scale * 4.0,
                "{name} element {i}: scalar {a:e} vs simd {b:e}"
            );
        }
    }
}

/// A NaN planted in one input poisons exactly the outputs it reaches,
/// under both backends alike (SIMD lane shuffles must not drop it).
#[test]
fn nan_propagation_matches_across_backends() {
    let mut seed = 3;
    let mut a_data = lcg_vec(3 * 13, &mut seed);
    a_data[17] = Elem::NAN; // row 1, k-index 4: inside a SIMD tail.
    let a = Tensor::from_vec(a_data, &[3, 13]);
    let b = Tensor::from_vec(lcg_vec(13 * 2, &mut seed), &[13, 2]);
    let (s, v) = both_backends(|| a.matmul(&b));
    let nan_pattern: Vec<bool> = s.iter().map(|e| e.is_nan()).collect();
    assert_eq!(
        nan_pattern,
        v.iter().map(|e| e.is_nan()).collect::<Vec<_>>(),
        "NaN must reach the same outputs under both backends"
    );
    // Row 1 (both columns) is poisoned, rows 0 and 2 are clean.
    assert_eq!(nan_pattern, [false, false, true, true, false, false]);
}

/// Sums of subnormals are exact in both association orders (every
/// partial sum is representable), so the backends must agree bitwise —
/// a backend that flushes subnormals to zero would fail here.
#[test]
fn subnormal_sums_are_bit_equal_across_backends() {
    let tiny = Elem::from_bits(3); // 3 × 2⁻¹⁰⁷⁴, deeply subnormal
    let data: Vec<Elem> = (0..27).map(|i| tiny * (i % 5) as Elem).collect();
    let x = Tensor::from_vec(data.clone(), &[27]);
    let (s, v) = both_backends(|| x.sum_all());
    assert_eq!(s[0].to_bits(), v[0].to_bits());
    assert!(s[0] > 0.0, "sum of subnormals must not flush to zero");
}

// ---------------------------------------------------------------------
// 3. Gradients and fused-vs-composite equality under SIMD
// ---------------------------------------------------------------------

/// Numerical gradient checks with the SIMD backend forced: the backward
/// kernels (dot_block accumulation, axpy, fold_rows) must implement the
/// true adjoints of the SIMD forwards.
#[test]
fn simd_backward_paths_pass_gradcheck() {
    let _g = BackendModeGuard::set(BackendKind::Simd);
    let mut seed = 41;

    let a = lcg_param(&[3, 13], &mut seed);
    let b = lcg_param(&[13, 2], &mut seed);
    let r = check_gradients(
        |t| t[0].matmul(&t[1]).mul(&t[0].matmul(&t[1])).sum_all(),
        &[a, b],
        1e-5,
    );
    assert!(r.iter().all(|r| r.passes(1e-5)), "{r:?}");

    let c = lcg_param(&[3, 11], &mut seed);
    let e = lcg_param(&[4, 11], &mut seed);
    let r = check_gradients(
        |t| t[0].matmul_nt(&t[1]).mul(&t[0].matmul_nt(&t[1])).sum_all(),
        &[c, e],
        1e-5,
    );
    assert!(r.iter().all(|r| r.passes(1e-5)), "{r:?}");

    let x = lcg_param(&[2, 9], &mut seed);
    let gamma = lcg_param(&[9], &mut seed);
    let beta = lcg_param(&[9], &mut seed);
    let r = check_gradients(
        |t| {
            t[0].layernorm_affine(&t[1], &t[2], 1e-5)
                .mul(&t[0].layernorm_affine(&t[1], &t[2], 1e-5))
                .sum_all()
        },
        &[x, gamma, beta],
        1e-5,
    );
    assert!(r.iter().all(|r| r.passes(1e-4)), "{r:?}");

    let x = lcg_param(&[2, 11], &mut seed);
    let bias = lcg_param(&[11], &mut seed);
    let r = check_gradients(
        |t| {
            t[0].bias_add_activation(&t[1], Activation::Gelu)
                .mul(&t[0].bias_add_activation(&t[1], Activation::Gelu))
                .sum_all()
        },
        &[x, bias],
        1e-5,
    );
    assert!(r.iter().all(|r| r.passes(1e-5)), "{r:?}");

    let x = lcg_param(&[3, 7], &mut seed);
    let r = check_gradients(
        |t| t[0].softmax_fused(1).squared_norm(),
        std::slice::from_ref(&x),
        1e-5,
    );
    assert!(r.iter().all(|r| r.passes(1e-5)), "{r:?}");

    let r = check_gradients(|t| t[0].sum_to(&[7]).squared_norm(), &[x], 1e-5);
    assert!(r.iter().all(|r| r.passes(1e-6)), "{r:?}");
}

/// The canonical-primitive invariant, per backend: a fused kernel and
/// its composite expansion route through the same backend primitives,
/// so forward values and gradients agree bit-for-bit *within* each
/// backend (the fused-mode toggle is tested in tests/fused.rs; here we
/// pin that the property survives the backend dimension).
#[test]
fn fused_matches_composite_bitwise_under_each_backend() {
    use metadse_nn::tensor::fused::FusedModeGuard;

    // The trailing dims straddle both row-kernel thresholds: 2–3 take the
    // fused sequential-accumulation path (`SEQ_EQUIV_MAX`), 4–5 the
    // backend reduction below one lane-width, 8–9 the chunked kernels.
    for kind in [BackendKind::Scalar, BackendKind::Simd] {
        let _b = BackendModeGuard::set(kind);
        for dim in [2usize, 3, 4, 5, 8, 9] {
            let mut seed = 77 + dim as u64;
            let x = lcg_param(&[3, dim], &mut seed);
            let gamma = lcg_param(&[dim], &mut seed);
            let beta = lcg_param(&[dim], &mut seed);
            let f = |t: &[Tensor]| {
                t[0].layernorm_affine(&t[1], &t[2], 1e-5)
                    .softmax_fused(1)
                    .squared_norm()
            };
            let inputs = [x, gamma, beta];
            let (fused_loss, fused_grads) = {
                let _f = FusedModeGuard::set(true);
                let loss = f(&inputs);
                let g = grad(&loss, &inputs, false);
                (
                    loss.to_vec(),
                    g.iter().map(Tensor::to_vec).collect::<Vec<_>>(),
                )
            };
            let (plain_loss, plain_grads) = {
                let _f = FusedModeGuard::set(false);
                let loss = f(&inputs);
                let g = grad(&loss, &inputs, false);
                (
                    loss.to_vec(),
                    g.iter().map(Tensor::to_vec).collect::<Vec<_>>(),
                )
            };
            assert_eq!(
                fused_loss, plain_loss,
                "forward bit-equality under {kind:?}, dim {dim}"
            );
            assert_eq!(
                fused_grads, plain_grads,
                "gradient bit-equality under {kind:?}, dim {dim}"
            );
        }
    }
}

/// `METADSE_BACKEND` unset defaults to SIMD; the guard restores the
/// surrounding mode on drop (exercised here because every other test in
/// this file leans on that contract).
#[test]
fn backend_guard_nests_and_restores() {
    let outer = metadse_nn::backend::kind();
    {
        let _g = BackendModeGuard::set(BackendKind::Scalar);
        assert_eq!(metadse_nn::backend::kind(), BackendKind::Scalar);
        {
            let _h = BackendModeGuard::set(BackendKind::Simd);
            assert_eq!(metadse_nn::backend::kind(), BackendKind::Simd);
        }
        assert_eq!(metadse_nn::backend::kind(), BackendKind::Scalar);
    }
    assert_eq!(metadse_nn::backend::kind(), outer);
}
