//! Property-style serialization tests: every layer type and the
//! optimizer state must round-trip through the checkpoint wire format
//! bit-exactly — including hostile payloads (NaN with payload bits,
//! signed zeros, infinities, subnormals) — and every truncated input
//! must be rejected with an error, never a panic or a silent partial
//! load. Random cases come from a seeded [`StdRng`] (the hermetic build
//! has no proptest), so failures are reproducible from the fixed seed.

use metadse_nn::layers::{
    Embedding, FeedForward, LayerNorm, Linear, Mlp, Module, MultiHeadAttention, TransformerEncoder,
};
use metadse_nn::optim::AdamState;
use metadse_nn::serialize::{
    adam_state_from_bytes, adam_state_to_bytes, load_params, load_params_from_bytes,
    params_to_bytes, save_params, CheckpointError,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CASES: usize = 16;

/// Values chosen to break sloppy float serialization: NaNs with payload
/// bits, both zeros, both infinities, subnormals, and large magnitudes.
fn adversarial(rng: &mut StdRng) -> f64 {
    match rng.gen_range(0..9u32) {
        0 => f64::NAN,
        1 => f64::from_bits(0x7ff8_0000_dead_beef), // NaN, distinctive payload
        2 => f64::from_bits(0xfff0_0000_0000_0001), // signalling-style NaN
        3 => -0.0,
        4 => 0.0,
        5 => f64::MIN_POSITIVE / 4.0, // subnormal
        6 => f64::INFINITY,
        7 => f64::NEG_INFINITY,
        _ => rng.gen_range(-1e12..1e12),
    }
}

/// Overwrites every parameter of `module` with adversarial payloads and
/// returns the exact bit patterns written.
fn poison(module: &dyn Module, rng: &mut StdRng) -> Vec<Vec<u64>> {
    module
        .params()
        .iter()
        .map(|p| {
            let values: Vec<f64> = (0..p.numel()).map(|_| adversarial(rng)).collect();
            p.get().assign_vec(&values);
            values.iter().map(|v| v.to_bits()).collect()
        })
        .collect()
}

fn assert_bits(module: &dyn Module, expected: &[Vec<u64>], what: &str) {
    for (p, bits) in module.params().iter().zip(expected) {
        let loaded: Vec<u64> = p.get().to_vec().iter().map(|v| v.to_bits()).collect();
        assert_eq!(
            &loaded,
            bits,
            "{what}: parameter {:?} not bit-exact",
            p.name()
        );
    }
}

/// One constructor per layer family the predictor is built from.
fn layer_zoo(rng: &mut StdRng) -> Vec<(&'static str, Box<dyn Module>)> {
    vec![
        ("linear", Box::new(Linear::new("lin", 5, 3, true, rng))),
        (
            "linear-nobias",
            Box::new(Linear::new("lnb", 4, 4, false, rng)),
        ),
        ("layernorm", Box::new(LayerNorm::new("ln", 6))),
        ("embedding", Box::new(Embedding::new("emb", 7, 4, rng))),
        (
            "attention",
            Box::new(MultiHeadAttention::new("mha", 8, 2, rng)),
        ),
        ("feedforward", Box::new(FeedForward::new("ffn", 6, 12, rng))),
        ("mlp", Box::new(Mlp::new("mlp", &[4, 8, 1], rng))),
        (
            "transformer",
            Box::new(TransformerEncoder::new("enc", 2, 8, 2, 16, rng)),
        ),
    ]
}

#[test]
fn every_layer_type_roundtrips_bit_exactly() {
    let mut rng = StdRng::seed_from_u64(0x5e01);
    for case in 0..CASES {
        for (kind, module) in layer_zoo(&mut rng) {
            let expected = poison(module.as_ref(), &mut rng);
            let bytes = params_to_bytes(&module.params());
            // Wreck every value, then restore from the buffer.
            for p in &module.params() {
                p.get().assign_vec(&vec![7.0; p.numel()]);
            }
            load_params_from_bytes(&module.params(), &bytes).unwrap();
            assert_bits(module.as_ref(), &expected, kind);
            let _ = case;
        }
    }
}

#[test]
fn file_roundtrip_matches_buffer_roundtrip() {
    let mut rng = StdRng::seed_from_u64(0x5e02);
    let layer = Linear::new("file", 6, 4, true, &mut rng);
    let expected = poison(&layer, &mut rng);
    let path = std::env::temp_dir().join(format!(
        "metadse-serialize-roundtrip-{}.ckpt",
        std::process::id()
    ));
    save_params(&layer.params(), &path).unwrap();
    for p in &layer.params() {
        p.get().assign_vec(&vec![0.0; p.numel()]);
    }
    load_params(&layer.params(), &path).unwrap();
    assert_bits(&layer, &expected, "file");
    std::fs::remove_file(path).ok();
}

#[test]
fn optimizer_state_roundtrips_bit_exactly() {
    let mut rng = StdRng::seed_from_u64(0x5e03);
    for _ in 0..CASES {
        let shapes = [
            rng.gen_range(1..20usize),
            rng.gen_range(1..20usize),
            rng.gen_range(1..20usize),
        ];
        let buffers = |rng: &mut StdRng| -> Vec<Vec<f64>> {
            shapes
                .iter()
                .map(|&n| (0..n).map(|_| adversarial(rng)).collect())
                .collect()
        };
        let state = AdamState {
            t: rng.gen_range(0.0..1e18) as u64,
            m: buffers(&mut rng),
            v: buffers(&mut rng),
        };
        let decoded = adam_state_from_bytes(&adam_state_to_bytes(&state)).unwrap();
        assert_eq!(decoded.t, state.t);
        for (field, (a, b)) in [("m", (&decoded.m, &state.m)), ("v", (&decoded.v, &state.v))] {
            for (da, sa) in a.iter().zip(b.iter()) {
                let da: Vec<u64> = da.iter().map(|v| v.to_bits()).collect();
                let sa: Vec<u64> = sa.iter().map(|v| v.to_bits()).collect();
                assert_eq!(da, sa, "optimizer {field} buffer not bit-exact");
            }
        }
    }
}

#[test]
fn every_truncation_of_params_is_rejected() {
    let mut rng = StdRng::seed_from_u64(0x5e04);
    let layer = Linear::new("trunc", 3, 2, true, &mut rng);
    let probe = Linear::new("trunc", 3, 2, true, &mut rng);
    let bytes = params_to_bytes(&layer.params());
    for len in 0..bytes.len() {
        let err = load_params_from_bytes(&probe.params(), &bytes[..len])
            .expect_err("every strict prefix must be rejected");
        assert!(
            matches!(err, CheckpointError::Format(_)),
            "prefix of {len} bytes: wrong error kind {err}"
        );
    }
    load_params_from_bytes(&probe.params(), &bytes).unwrap();
}

#[test]
fn every_truncation_of_optimizer_state_is_rejected() {
    let state = AdamState {
        t: 42,
        m: vec![vec![1.5, -0.0, f64::NAN], vec![2.0]],
        v: vec![vec![0.1, 0.2, 0.3], vec![0.4]],
    };
    let bytes = adam_state_to_bytes(&state);
    for len in 0..bytes.len() {
        let err =
            adam_state_from_bytes(&bytes[..len]).expect_err("every strict prefix must be rejected");
        assert!(matches!(err, CheckpointError::Format(_)));
    }
    adam_state_from_bytes(&bytes).unwrap();
    // Trailing garbage is rejected too — no silent over-read.
    let mut padded = bytes;
    padded.push(0);
    assert!(matches!(
        adam_state_from_bytes(&padded),
        Err(CheckpointError::Format(_))
    ));
}

#[test]
fn absurd_length_prefixes_fail_without_allocating() {
    let mut rng = StdRng::seed_from_u64(0x5e05);
    let layer = Linear::new("bomb", 2, 2, false, &mut rng);
    let mut bytes = params_to_bytes(&layer.params());
    // Param count lives at offset 8 (magic 4 + version 4). Claiming
    // u32::MAX parameters must fail on truncation, not allocate.
    bytes[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
    assert!(matches!(
        load_params_from_bytes(&layer.params(), &bytes),
        Err(CheckpointError::Format(_))
    ));
}
