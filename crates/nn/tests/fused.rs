//! Fused-kernel verification: bit-exact agreement with the primitive
//! compositions, numerical gradient checks, and second-order (double
//! backward) behaviour through every fused node.

use metadse_nn::autograd::grad;
use metadse_nn::gradcheck::check_gradients;
use metadse_nn::tensor::fused::FusedModeGuard;
use metadse_nn::tensor::pool::PoolModeGuard;
use metadse_nn::{Activation, Elem, Tensor};

fn param(data: &[Elem], shape: &[usize]) -> Tensor {
    Tensor::param_from_vec(data.to_vec(), shape)
}

const X23: [Elem; 6] = [0.31, -1.2, 0.77, 2.05, -0.44, 0.9];
const X24: [Elem; 8] = [0.5, -0.25, 1.3, -1.7, 0.12, 0.88, -0.6, 2.1];

/// Runs `f` twice — fused on and fused off — and asserts that the scalar
/// loss and every input gradient agree bit-for-bit.
fn assert_paths_bitwise_equal(f: impl Fn(&[Tensor]) -> Tensor, inputs: &[Tensor]) {
    let (fused_loss, fused_grads) = {
        let _fuse = FusedModeGuard::set(true);
        let loss = f(inputs);
        let grads = grad(&loss, inputs, false);
        (loss.to_vec(), grads)
    };
    let (plain_loss, plain_grads) = {
        let _fuse = FusedModeGuard::set(false);
        let loss = f(inputs);
        let grads = grad(&loss, inputs, false);
        (loss.to_vec(), grads)
    };
    assert_eq!(fused_loss, plain_loss, "forward values must be bit-equal");
    for (i, (fg, pg)) in fused_grads.iter().zip(&plain_grads).enumerate() {
        assert_eq!(
            fg.to_vec(),
            pg.to_vec(),
            "gradient {i} must be bit-equal between fused and composite"
        );
    }
}

// ---------------------------------------------------------------------
// Fused vs composite: bit-exact forward and first-order gradients
// ---------------------------------------------------------------------

#[test]
fn softmax_fused_matches_composite_bitwise() {
    let x = param(&X23, &[2, 3]);
    let w = Tensor::from_vec(vec![3.0, -1.0, 2.0, 0.5, 1.5, -2.0], &[2, 3]);
    assert_paths_bitwise_equal(|t| t[0].softmax_fused(1).mul(&w).sum_all(), &[x]);
}

#[test]
fn softmax_fused_middle_axis_matches_composite_bitwise() {
    let x = param(&X24, &[2, 2, 2]);
    assert_paths_bitwise_equal(|t| t[0].softmax_fused(1).squared_norm(), &[x]);
}

#[test]
fn layernorm_affine_matches_composite_bitwise() {
    let x = param(&X24, &[2, 4]);
    let gamma = param(&[1.1, 0.9, 1.3, 0.7], &[4]);
    let beta = param(&[0.05, -0.1, 0.2, 0.0], &[4]);
    assert_paths_bitwise_equal(
        |t| t[0].layernorm_affine(&t[1], &t[2], 1e-5).squared_norm(),
        &[x, gamma, beta],
    );
}

#[test]
fn bias_add_activation_matches_composite_bitwise() {
    for act in [Activation::Relu, Activation::Sigmoid, Activation::Gelu] {
        let x = param(&X24, &[2, 4]);
        let b = param(&[0.3, -0.2, 0.15, -0.5], &[4]);
        assert_paths_bitwise_equal(
            move |t| t[0].bias_add_activation(&t[1], act).squared_norm(),
            &[x, b],
        );
    }
}

#[test]
fn sq_err_mean_matches_composite_bitwise() {
    let pred = param(&X23, &[2, 3]);
    let target = param(&[0.1, -0.9, 1.1, 1.8, 0.0, 0.4], &[2, 3]);
    assert_paths_bitwise_equal(|t| t[0].sq_err_mean(&t[1]), &[pred, target]);
}

#[test]
fn matmul_nt_matches_composite_bitwise() {
    // Batched operands with equal batch dims — the fused fast path.
    let a = param(&[X23.as_slice(), &X24[..6]].concat(), &[2, 2, 3]);
    let b = param(
        &[
            0.2, -0.7, 1.4, 0.9, -0.3, 0.6, 1.1, -1.5, 0.05, 0.8, -0.9, 2.2, 0.4, -0.1, 1.7, -2.0,
            0.33, 0.66,
        ],
        &[2, 3, 3],
    );
    assert_paths_bitwise_equal(|t| t[0].matmul_nt(&t[1]).squared_norm(), &[a, b]);
}

#[test]
fn matmul_nt_sparse_lhs_matches_composite_bitwise() {
    // A zero-heavy LHS takes the sparse per-batch path on both sides.
    let a = param(&[0.0, 1.2, 0.0, 0.0, -0.8, 0.0, 0.0, 0.5, 0.0], &[1, 3, 3]);
    let b = param(&X23, &[1, 2, 3]);
    assert_paths_bitwise_equal(|t| t[0].matmul_nt(&t[1]).squared_norm(), &[a, b]);
}

/// The pool never changes values: a small forward/backward is bit-equal
/// with recycling on and off (the in-process half of the cross-build
/// determinism digest requirement).
#[test]
fn pool_on_off_is_bitwise_identical() {
    let run = || {
        let x = param(&X24, &[2, 4]);
        let w = param(&X24, &[4, 2]);
        let y = x.matmul(&w).softmax_fused(1).squared_norm();
        let g = grad(&y, &[x, w], false);
        (y.to_vec(), g[0].to_vec(), g[1].to_vec())
    };
    let pooled = {
        let _p = PoolModeGuard::set(true);
        run()
    };
    let unpooled = {
        let _p = PoolModeGuard::set(false);
        run()
    };
    assert_eq!(pooled, unpooled);
}

// ---------------------------------------------------------------------
// Numerical gradient checks (fused kernels active)
// ---------------------------------------------------------------------

#[test]
fn gradcheck_softmax_fused() {
    let _fuse = FusedModeGuard::set(true);
    let x = param(&X23, &[2, 3]);
    let reports = check_gradients(|t| t[0].softmax_fused(1).squared_norm(), &[x], 1e-5);
    assert!(reports[0].passes(1e-6), "{:?}", reports[0]);
}

#[test]
fn gradcheck_layernorm_affine() {
    let _fuse = FusedModeGuard::set(true);
    let x = param(&X24, &[2, 4]);
    let gamma = param(&[1.1, 0.9, 1.3, 0.7], &[4]);
    let beta = param(&[0.05, -0.1, 0.2, 0.0], &[4]);
    let reports = check_gradients(
        |t| t[0].layernorm_affine(&t[1], &t[2], 1e-5).squared_norm(),
        &[x, gamma, beta],
        1e-5,
    );
    for r in &reports {
        assert!(r.passes(1e-6), "{r:?}");
    }
}

#[test]
fn gradcheck_bias_add_activation() {
    let _fuse = FusedModeGuard::set(true);
    for act in [Activation::Relu, Activation::Sigmoid, Activation::Gelu] {
        // Values chosen away from the ReLU kink so central differences are
        // valid for every activation.
        let x = param(&X24, &[2, 4]);
        let b = param(&[0.3, -0.2, 0.15, -0.5], &[4]);
        let reports = check_gradients(
            move |t| t[0].bias_add_activation(&t[1], act).squared_norm(),
            &[x, b],
            1e-5,
        );
        for r in &reports {
            assert!(r.passes(1e-6), "{act:?}: {r:?}");
        }
    }
}

#[test]
fn gradcheck_matmul_nt() {
    let _fuse = FusedModeGuard::set(true);
    let a = param(&[X23.as_slice(), &X24[..6]].concat(), &[2, 2, 3]);
    let b = param(
        &[
            0.2, -0.7, 1.4, 0.9, -0.3, 0.6, 1.1, -1.5, 0.05, 0.8, -0.9, 2.2, 0.4, -0.1, 1.7, -2.0,
            0.33, 0.66,
        ],
        &[2, 3, 3],
    );
    let reports = check_gradients(|t| t[0].matmul_nt(&t[1]).squared_norm(), &[a, b], 1e-5);
    assert!(reports[0].passes(1e-6), "{:?}", reports[0]);
    assert!(reports[1].passes(1e-6), "{:?}", reports[1]);
}

#[test]
fn second_order_through_matmul_nt() {
    // f(x) = (x ·ᵀ x).sum() for 1x1 x is x^2; second derivative is 2.
    let _fuse = FusedModeGuard::set(true);
    let x = param(&[3.0], &[1, 1]);
    let y = x.matmul_nt(&x).sum_all();
    let d1 = grad(&y, std::slice::from_ref(&x), true);
    assert!((d1[0].to_vec()[0] - 6.0).abs() < 1e-12);
    let d2 = grad(&d1[0].sum_all(), std::slice::from_ref(&x), false);
    assert!((d2[0].to_vec()[0] - 2.0).abs() < 1e-12);
}

#[test]
fn gradcheck_sq_err_mean() {
    let _fuse = FusedModeGuard::set(true);
    let pred = param(&X23, &[2, 3]);
    let target = param(&[0.1, -0.9, 1.1, 1.8, 0.0, 0.4], &[2, 3]);
    let reports = check_gradients(|t| t[0].sq_err_mean(&t[1]), &[pred, target], 1e-5);
    assert!(reports[0].passes(1e-6), "{:?}", reports[0]);
    assert!(reports[1].passes(1e-6), "{:?}", reports[1]);
}

// ---------------------------------------------------------------------
// Second order: double backward through the fused kernels
// ---------------------------------------------------------------------

/// One attention-style step: logits through a fused softmax, context
/// matmul, fused squared-error loss.
fn attention_step_loss(w: &Tensor, x: &Tensor, target: &Tensor) -> Tensor {
    let logits = x.matmul(w);
    let probs = logits.softmax_fused(1);
    probs.matmul(x).sq_err_mean(target)
}

/// Mirrors `second_order_gradient_of_cubic`: gradients created with
/// `create_graph = true` through a fused-softmax attention step must
/// themselves be differentiable, and the resulting second-order gradient
/// must match a central-difference estimate of the first-order gradient.
#[test]
fn second_order_through_fused_softmax_attention_step() {
    let _fuse = FusedModeGuard::set(true);
    let wv: [Elem; 9] = [0.4, -0.3, 0.8, 0.1, 0.9, -0.6, -0.2, 0.5, 0.3];
    let xv: [Elem; 9] = [1.0, 0.2, -0.5, 0.7, -1.1, 0.4, 0.3, 0.6, -0.8];
    let tv: [Elem; 9] = [0.2, 0.1, -0.3, 0.5, -0.4, 0.0, 0.1, 0.3, -0.2];
    let x = Tensor::from_vec(xv.to_vec(), &[3, 3]);
    let target = Tensor::from_vec(tv.to_vec(), &[3, 3]);

    let w = param(&wv, &[3, 3]);
    let l1 = attention_step_loss(&w, &x, &target);
    let g1 = grad(&l1, std::slice::from_ref(&w), true);
    assert!(
        g1[0].requires_grad(),
        "create_graph must keep fused-kernel gradients differentiable"
    );
    // h_i = d/dw_i sum_j(dl/dw_j): one Hessian row-sum per parameter.
    let h = grad(&g1[0].sum_all(), std::slice::from_ref(&w), false);
    let hv = h[0].to_vec();
    assert!(hv.iter().any(|&v| v != 0.0), "Hessian must not vanish");

    // Central-difference check of the same quantity via the first-order path.
    let grad_sum = |values: &[Elem]| -> Elem {
        let wp = param(values, &[3, 3]);
        let l = attention_step_loss(&wp, &x, &target);
        let g = grad(&l, std::slice::from_ref(&wp), false);
        g[0].to_vec().iter().sum()
    };
    let eps = 1e-5;
    for i in 0..wv.len() {
        let mut plus = wv;
        plus[i] += eps;
        let mut minus = wv;
        minus[i] -= eps;
        let numeric = (grad_sum(&plus) - grad_sum(&minus)) / (2.0 * eps);
        let abs = (hv[i] - numeric).abs();
        let rel = abs / numeric.abs().max(hv[i].abs()).max(1.0);
        assert!(
            rel < 1e-6,
            "w[{i}]: analytic {} vs numeric {numeric}",
            hv[i]
        );
    }
}

/// The fused second-order gradients must agree with the composite ones
/// (the differentiable backward re-emits the composite op sequence, so the
/// agreement is exact up to rounding).
#[test]
fn second_order_fused_matches_composite() {
    let wv: [Elem; 9] = [0.4, -0.3, 0.8, 0.1, 0.9, -0.6, -0.2, 0.5, 0.3];
    let xv: [Elem; 9] = [1.0, 0.2, -0.5, 0.7, -1.1, 0.4, 0.3, 0.6, -0.8];
    let tv: [Elem; 9] = [0.2, 0.1, -0.3, 0.5, -0.4, 0.0, 0.1, 0.3, -0.2];
    let x = Tensor::from_vec(xv.to_vec(), &[3, 3]);
    let target = Tensor::from_vec(tv.to_vec(), &[3, 3]);
    let meta = |fused: bool| -> Vec<Elem> {
        let _fuse = FusedModeGuard::set(fused);
        let w = param(&wv, &[3, 3]);
        let l1 = attention_step_loss(&w, &x, &target);
        let g1 = grad(&l1, std::slice::from_ref(&w), true);
        let h = grad(&g1[0].sum_all(), std::slice::from_ref(&w), false);
        h[0].to_vec()
    };
    for (i, (f, c)) in meta(true).iter().zip(meta(false)).enumerate() {
        assert!((f - c).abs() < 1e-9, "w[{i}]: fused {f} vs composite {c}");
    }
}

/// Second-order through the remaining fused kernels (layernorm and
/// bias+GELU) composed into one loss.
#[test]
fn second_order_through_layernorm_and_gelu() {
    let _fuse = FusedModeGuard::set(true);
    let x = Tensor::from_vec(X24.to_vec(), &[2, 4]);
    let gamma = param(&[1.1, 0.9, 1.3, 0.7], &[4]);
    let b = param(&[0.3, -0.2, 0.15, -0.5], &[4]);
    let beta = Tensor::from_vec(vec![0.0; 4], &[4]);
    let loss = x
        .bias_add_activation(&b, Activation::Gelu)
        .layernorm_affine(&gamma, &beta, 1e-5)
        .squared_norm();
    let g1 = grad(&loss, &[gamma.clone(), b.clone()], true);
    assert!(g1.iter().all(Tensor::requires_grad));
    let joint = g1[0].sum_all().add(&g1[1].sum_all());
    let h = grad(&joint, &[gamma, b], false);
    assert!(h[0].to_vec().iter().any(|&v| v != 0.0));
    assert!(h[1].to_vec().iter().any(|&v| v != 0.0));
}
