//! # metadse-nn
//!
//! A small, self-contained tensor and neural-network library built for the
//! [MetaDSE](https://doi.org/10.1145/nnnnnnn) reproduction. It provides the
//! deep-learning substrate the paper obtains from PyTorch:
//!
//! * an n-dimensional [`Tensor`] of `f64` values with NumPy-style
//!   broadcasting,
//! * reverse-mode automatic differentiation in which **every backward pass is
//!   itself expressed with differentiable tensor operations**, so gradients
//!   of gradients ("double backward") work out of the box — this is what
//!   makes full second-order MAML possible,
//! * the layers needed by the transformer-based surrogate predictor
//!   ([`layers::Linear`], [`layers::LayerNorm`],
//!   [`layers::MultiHeadAttention`] with additive masking and attention
//!   capture, [`layers::TransformerEncoder`]),
//! * optimizers ([`optim::Sgd`], [`optim::Adam`]) and a cosine-annealing
//!   learning-rate schedule ([`optim::CosineAnnealing`]),
//! * losses, initializers, parameter and optimizer-state (de)serialization
//!   over a versioned, checksummed container with atomic writes
//!   ([`format`]), and a numerical gradient checker used extensively by
//!   the test-suite.
//!
//! # Example
//!
//! Fit a tiny linear model by gradient descent:
//!
//! ```
//! use metadse_nn::{Tensor, autograd};
//!
//! // y = 2x, learn w starting from 0.
//! let x = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3, 1]);
//! let y = Tensor::from_vec(vec![2.0, 4.0, 6.0], &[3, 1]);
//! let w = Tensor::param_from_vec(vec![0.0], &[1, 1]);
//! for _ in 0..200 {
//!     let pred = x.matmul(&w);
//!     let loss = pred.sub(&y).powf(2.0).mean_all();
//!     let g = autograd::grad(&loss, std::slice::from_ref(&w), false);
//!     w.sub_assign_scaled(&g[0], 0.05);
//! }
//! assert!((w.to_vec()[0] - 2.0).abs() < 1e-6);
//! ```

pub mod autograd;
pub mod fasthash;
pub mod format;
pub mod gradcheck;
pub mod init;
pub mod layers;
pub mod loss;
pub mod optim;
pub mod serialize;
pub mod tensor;

pub use tensor::backend::{self, BackendKind, BackendModeGuard};
pub use tensor::fused::Activation;
pub use tensor::prims;
pub use tensor::Tensor;

/// Scalar element type used throughout the crate.
///
/// `f64` is chosen over `f32` because the models in MetaDSE are tiny (a few
/// thousand parameters) while meta-gradients compose many chained operations;
/// double precision keeps the numerical gradient checks tight.
pub type Elem = f64;
