//! Weight initialization schemes.

use rand::Rng;

use crate::{Elem, Tensor};

/// Xavier/Glorot uniform initialization for a `[fan_in, fan_out]` weight.
///
/// Samples from `U(-a, a)` with `a = sqrt(6 / (fan_in + fan_out))`; keeps
/// activation variance stable through linear layers with tanh-like
/// nonlinearities.
pub fn xavier_uniform<R: Rng + ?Sized>(fan_in: usize, fan_out: usize, rng: &mut R) -> Tensor {
    let a = (6.0 / (fan_in + fan_out) as Elem).sqrt();
    Tensor::rand_uniform(&[fan_in, fan_out], -a, a, rng)
}

/// Kaiming/He normal initialization for ReLU-family networks.
///
/// Samples from `N(0, 2 / fan_in)`.
pub fn kaiming_normal<R: Rng + ?Sized>(fan_in: usize, fan_out: usize, rng: &mut R) -> Tensor {
    let std = (2.0 / fan_in as Elem).sqrt();
    Tensor::randn(&[fan_in, fan_out], rng).mul_scalar(std)
}

/// Small-scale normal initialization, `N(0, std^2)`.
pub fn normal<R: Rng + ?Sized>(shape: &[usize], std: Elem, rng: &mut R) -> Tensor {
    Tensor::randn(shape, rng).mul_scalar(std)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn xavier_respects_bound() {
        let mut rng = StdRng::seed_from_u64(1);
        let w = xavier_uniform(64, 64, &mut rng);
        let a = (6.0 / 128.0_f64).sqrt();
        assert!(w.to_vec().iter().all(|&x| x > -a && x < a));
        assert_eq!(w.shape(), &[64, 64]);
    }

    #[test]
    fn kaiming_variance_close_to_two_over_fan_in() {
        let mut rng = StdRng::seed_from_u64(2);
        let w = kaiming_normal(100, 100, &mut rng);
        let v = w.to_vec();
        let var: f64 = v.iter().map(|x| x * x).sum::<f64>() / v.len() as f64;
        assert!((var - 0.02).abs() < 0.005, "variance {var}");
    }

    #[test]
    fn normal_scales_std() {
        let mut rng = StdRng::seed_from_u64(3);
        let w = normal(&[10_000], 0.01, &mut rng);
        let v = w.to_vec();
        let var: f64 = v.iter().map(|x| x * x).sum::<f64>() / v.len() as f64;
        assert!((var.sqrt() - 0.01).abs() < 0.002);
    }
}
