//! Multi-head self-attention with additive masking and attention capture.
//!
//! This layer is the heart of the MetaDSE surrogate predictor:
//!
//! * its attention probabilities can be recorded during pre-training, which
//!   is the statistic the workload-adaptive architectural mask (WAM) is
//!   built from, and
//! * an additive logit mask can be installed as a **learnable parameter**,
//!   which is exactly how WAM adaptation fine-tunes the model on a new
//!   workload.

use std::cell::{Cell, RefCell};

use rand::Rng;

use super::{Linear, Module, Param};
use crate::{Elem, Tensor};

/// Multi-head scaled-dot-product self-attention.
#[derive(Debug, Clone)]
pub struct MultiHeadAttention {
    wq: Linear,
    wk: Linear,
    wv: Linear,
    wo: Linear,
    heads: usize,
    d_model: usize,
    mask: RefCell<Option<Param>>,
    record_attention: Cell<bool>,
    last_attention: RefCell<Option<Tensor>>,
}

impl MultiHeadAttention {
    /// Creates an attention layer with `heads` heads over `d_model`
    /// features.
    ///
    /// # Panics
    ///
    /// Panics if `d_model` is not divisible by `heads`.
    pub fn new<R: Rng + ?Sized>(
        name: &str,
        d_model: usize,
        heads: usize,
        rng: &mut R,
    ) -> MultiHeadAttention {
        assert!(
            heads > 0 && d_model.is_multiple_of(heads),
            "d_model {d_model} must divide into {heads} heads"
        );
        MultiHeadAttention {
            wq: Linear::new(&format!("{name}.wq"), d_model, d_model, true, rng),
            wk: Linear::new(&format!("{name}.wk"), d_model, d_model, true, rng),
            wv: Linear::new(&format!("{name}.wv"), d_model, d_model, true, rng),
            wo: Linear::new(&format!("{name}.wo"), d_model, d_model, true, rng),
            heads,
            d_model,
            mask: RefCell::new(None),
            record_attention: Cell::new(false),
            last_attention: RefCell::new(None),
        }
    }

    /// Number of attention heads.
    pub fn heads(&self) -> usize {
        self.heads
    }

    /// Model (feature) dimension.
    pub fn d_model(&self) -> usize {
        self.d_model
    }

    /// Installs an additive logit mask of shape `[seq, seq]`.
    ///
    /// When the held tensor requires gradients (a WAM mask set "learnable"),
    /// it is reported by [`Module::params`] and trains with the rest of the
    /// model.
    pub fn set_mask(&self, mask: Param) {
        assert_eq!(mask.shape().len(), 2, "attention mask must be 2-D");
        *self.mask.borrow_mut() = Some(mask);
    }

    /// Removes any installed mask.
    pub fn clear_mask(&self) {
        *self.mask.borrow_mut() = None;
    }

    /// The currently installed mask, if any.
    pub fn mask(&self) -> Option<Param> {
        self.mask.borrow().clone()
    }

    /// Enables/disables recording of attention probabilities on forward.
    pub fn set_record_attention(&self, record: bool) {
        self.record_attention.set(record);
    }

    /// Detached attention probabilities `[batch, heads, seq, seq]` from the
    /// most recent forward pass with recording enabled.
    pub fn last_attention(&self) -> Option<Tensor> {
        self.last_attention.borrow().clone()
    }

    /// Applies self-attention to `x` of shape `[batch, seq, d_model]`.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not rank 3 with trailing dimension `d_model`, or if
    /// an installed mask does not match `[seq, seq]`.
    pub fn forward(&self, x: &Tensor) -> Tensor {
        assert_eq!(x.ndim(), 3, "attention input must be [batch, seq, d_model]");
        let (batch, seq, d) = (x.shape()[0], x.shape()[1], x.shape()[2]);
        assert_eq!(d, self.d_model, "feature dim mismatch");
        let dk = self.d_model / self.heads;

        let split = |t: Tensor| -> Tensor {
            // [b, s, d] -> [b, s, h, dk] -> [b, h, s, dk]
            t.reshape(&[batch, seq, self.heads, dk]).transpose(1, 2)
        };
        let q = split(self.wq.forward(x));
        let k = split(self.wk.forward(x));
        let v = split(self.wv.forward(x));

        let scale = 1.0 / (dk as Elem).sqrt();
        let mut logits = q.matmul_nt(&k).mul_scalar(scale);
        if let Some(mask) = self.mask.borrow().as_ref() {
            let m = mask.get();
            assert_eq!(
                m.shape(),
                &[seq, seq],
                "attention mask shape must be [{seq}, {seq}]"
            );
            // [s, s] broadcasts over [b, h, s, s].
            logits = logits.add(&m);
        }
        let probs = logits.softmax_fused(3);
        if self.record_attention.get() {
            *self.last_attention.borrow_mut() = Some(probs.detach());
        }
        let ctx = probs.matmul(&v); // [b, h, s, dk]
        let merged = ctx.transpose(1, 2).reshape(&[batch, seq, self.d_model]);
        self.wo.forward(&merged)
    }
}

impl Module for MultiHeadAttention {
    fn params(&self) -> Vec<Param> {
        let mut ps = Vec::new();
        ps.extend(self.wq.params());
        ps.extend(self.wk.params());
        ps.extend(self.wv.params());
        ps.extend(self.wo.params());
        if let Some(mask) = self.mask.borrow().as_ref() {
            if mask.get().requires_grad() {
                ps.push(mask.clone());
            }
        }
        ps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::autograd::grad;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn layer(seed: u64) -> MultiHeadAttention {
        let mut rng = StdRng::seed_from_u64(seed);
        MultiHeadAttention::new("attn", 8, 2, &mut rng)
    }

    #[test]
    fn forward_preserves_shape() {
        let attn = layer(1);
        let x = Tensor::ones(&[2, 5, 8]);
        assert_eq!(attn.forward(&x).shape(), &[2, 5, 8]);
    }

    #[test]
    fn attention_recording_is_opt_in() {
        let attn = layer(2);
        let mut rng = StdRng::seed_from_u64(9);
        let x = Tensor::randn(&[1, 4, 8], &mut rng);
        attn.forward(&x);
        assert!(attn.last_attention().is_none());
        attn.set_record_attention(true);
        attn.forward(&x);
        let a = attn.last_attention().expect("recorded");
        assert_eq!(a.shape(), &[1, 2, 4, 4]);
        assert!(!a.requires_grad());
        // Rows are probability distributions.
        let v = a.to_vec();
        for row in v.chunks(4) {
            let s: f64 = row.iter().sum();
            assert!((s - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn strong_negative_mask_blocks_attention() {
        let attn = layer(3);
        attn.set_record_attention(true);
        // Mask out everything except the diagonal.
        let mut m = vec![-1e9; 16];
        for i in 0..4 {
            m[i * 4 + i] = 0.0;
        }
        attn.set_mask(Param::new("mask", Tensor::from_vec(m, &[4, 4])));
        let mut rng = StdRng::seed_from_u64(10);
        let x = Tensor::randn(&[1, 4, 8], &mut rng);
        attn.forward(&x);
        let a = attn.last_attention().unwrap().to_vec();
        for (i, row) in a.chunks(4).enumerate() {
            let head_row = i % 4;
            assert!(
                (row[head_row] - 1.0).abs() < 1e-6,
                "diagonal should dominate"
            );
        }
    }

    #[test]
    fn learnable_mask_joins_params_and_gets_gradients() {
        let attn = layer(4);
        let mask = Param::new("mask", Tensor::param_from_vec(vec![0.0; 9], &[3, 3]));
        attn.set_mask(mask.clone());
        assert_eq!(attn.params().len(), 9, "8 linear params + mask");
        let mut rng = StdRng::seed_from_u64(11);
        let x = Tensor::randn(&[1, 3, 8], &mut rng);
        let loss = attn.forward(&x).squared_norm();
        let g = grad(&loss, &[mask.get()], false);
        assert!(g[0].to_vec().iter().any(|&v| v != 0.0));
    }

    #[test]
    fn frozen_mask_stays_out_of_params() {
        let attn = layer(5);
        attn.set_mask(Param::new("mask", Tensor::zeros(&[3, 3])));
        assert_eq!(attn.params().len(), 8);
        attn.clear_mask();
        assert!(attn.mask().is_none());
    }
}
