//! Simple multi-layer perceptron.

use rand::Rng;

use super::{Linear, Module, Param};
use crate::{Activation, Tensor};

/// A stack of [`Linear`] layers with GELU between them (none after the
/// last), used e.g. as the regression head of the MetaDSE predictor.
#[derive(Debug, Clone)]
pub struct Mlp {
    layers: Vec<Linear>,
}

impl Mlp {
    /// Creates an MLP from a list of layer widths, e.g. `[32, 64, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two widths are given.
    pub fn new<R: Rng + ?Sized>(name: &str, widths: &[usize], rng: &mut R) -> Mlp {
        assert!(
            widths.len() >= 2,
            "an MLP needs at least input and output widths"
        );
        let layers = widths
            .windows(2)
            .enumerate()
            .map(|(i, w)| Linear::new(&format!("{name}.{i}"), w[0], w[1], true, rng))
            .collect();
        Mlp { layers }
    }

    /// Number of linear layers.
    pub fn depth(&self) -> usize {
        self.layers.len()
    }

    /// Applies the MLP over the trailing feature axis.
    pub fn forward(&self, x: &Tensor) -> Tensor {
        let mut h = x.clone();
        for (i, layer) in self.layers.iter().enumerate() {
            h = if i + 1 < self.layers.len() {
                layer.forward_act(&h, Activation::Gelu)
            } else {
                layer.forward(&h)
            };
        }
        h
    }
}

impl Module for Mlp {
    fn params(&self) -> Vec<Param> {
        self.layers.iter().flat_map(Linear::params).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::autograd::grad;
    use crate::loss::mse;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn widths_define_shapes() {
        let mut rng = StdRng::seed_from_u64(1);
        let mlp = Mlp::new("head", &[8, 16, 2], &mut rng);
        assert_eq!(mlp.depth(), 2);
        let y = mlp.forward(&Tensor::ones(&[5, 8]));
        assert_eq!(y.shape(), &[5, 2]);
    }

    #[test]
    fn can_fit_a_linear_function() {
        let mut rng = StdRng::seed_from_u64(2);
        let mlp = Mlp::new("m", &[1, 8, 1], &mut rng);
        let x = Tensor::from_vec((0..16).map(|i| i as f64 / 8.0 - 1.0).collect(), &[16, 1]);
        let y = x.mul_scalar(3.0).add_scalar(-0.5);
        let params = mlp.params();
        let mut last = f64::INFINITY;
        for _ in 0..1000 {
            let loss = mse(&mlp.forward(&x), &y);
            last = loss.value();
            let tensors: Vec<_> = params.iter().map(|p| p.get()).collect();
            let grads = grad(&loss, &tensors, false);
            for (t, g) in tensors.iter().zip(&grads) {
                t.sub_assign_scaled(g, 0.05);
            }
        }
        assert!(last < 1e-2, "final loss {last} should be small");
    }
}
