//! Inverted dropout.

use std::cell::{Cell, RefCell};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{Elem, Tensor};

/// Inverted dropout: zeroes activations with probability `p` during
/// training and rescales survivors by `1/(1-p)`, so evaluation needs no
/// correction.
///
/// The layer owns its RNG so forward passes stay reproducible given the
/// construction seed.
#[derive(Debug)]
pub struct Dropout {
    p: Elem,
    training: Cell<bool>,
    rng: RefCell<StdRng>,
}

impl Dropout {
    /// Creates a dropout layer with drop probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= p < 1`.
    pub fn new(p: Elem, seed: u64) -> Dropout {
        assert!(
            (0.0..1.0).contains(&p),
            "drop probability must be in [0, 1)"
        );
        Dropout {
            p,
            training: Cell::new(true),
            rng: RefCell::new(StdRng::seed_from_u64(seed)),
        }
    }

    /// Switches between training (dropping) and evaluation (identity).
    pub fn set_training(&self, training: bool) {
        self.training.set(training);
    }

    /// Drop probability.
    pub fn p(&self) -> Elem {
        self.p
    }

    /// Applies dropout to `x`.
    pub fn forward(&self, x: &Tensor) -> Tensor {
        if !self.training.get() || self.p == 0.0 {
            return x.clone();
        }
        let keep = 1.0 - self.p;
        let mut rng = self.rng.borrow_mut();
        let mask: Vec<Elem> = (0..x.numel())
            .map(|_| {
                if rng.gen_range(0.0..1.0) < self.p {
                    0.0
                } else {
                    1.0 / keep
                }
            })
            .collect();
        x.mul(&Tensor::from_vec(mask, x.shape()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_mode_is_identity() {
        let d = Dropout::new(0.5, 1);
        d.set_training(false);
        let x = Tensor::ones(&[4]);
        assert_eq!(d.forward(&x).to_vec(), vec![1.0; 4]);
    }

    #[test]
    fn zero_probability_is_identity_even_in_training() {
        let d = Dropout::new(0.0, 1);
        let x = Tensor::ones(&[4]);
        assert_eq!(d.forward(&x).to_vec(), vec![1.0; 4]);
    }

    #[test]
    fn training_mode_preserves_expectation() {
        let d = Dropout::new(0.3, 42);
        let x = Tensor::ones(&[20_000]);
        let y = d.forward(&x).to_vec();
        let mean: f64 = y.iter().sum::<f64>() / y.len() as f64;
        assert!((mean - 1.0).abs() < 0.05, "mean {mean} should stay near 1");
        // Survivors are scaled by 1/keep.
        assert!(y.iter().all(|&v| v == 0.0 || (v - 1.0 / 0.7).abs() < 1e-12));
    }
}
