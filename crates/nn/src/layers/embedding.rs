//! Lookup-table embedding.

use rand::Rng;

use super::{Module, Param};
use crate::{init, Tensor};

/// Learnable lookup table mapping discrete indices to dense vectors.
///
/// Used by the MetaDSE predictor to give each architectural parameter its
/// own identity embedding.
///
/// # Example
///
/// ```
/// use metadse_nn::layers::{Embedding, Module};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(0);
/// let emb = Embedding::new("tok", 10, 4, &mut rng);
/// let out = emb.forward(&[3, 1, 3]);
/// assert_eq!(out.shape(), &[3, 4]);
/// // Identical indices produce identical rows.
/// assert_eq!(out.to_vec()[0..4], out.to_vec()[8..12]);
/// ```
#[derive(Debug, Clone)]
pub struct Embedding {
    table: Param,
    vocab: usize,
    dim: usize,
}

impl Embedding {
    /// Creates a `[vocab, dim]` table initialized from `N(0, 0.02²)`.
    pub fn new<R: Rng + ?Sized>(name: &str, vocab: usize, dim: usize, rng: &mut R) -> Embedding {
        let w = init::normal(&[vocab, dim], 0.02, rng);
        Embedding {
            table: Param::new(
                format!("{name}.table"),
                Tensor::param_from_vec(w.to_vec(), &[vocab, dim]),
            ),
            vocab,
            dim,
        }
    }

    /// Vocabulary size.
    pub fn vocab(&self) -> usize {
        self.vocab
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Looks up `indices`, returning shape `[indices.len(), dim]`.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn forward(&self, indices: &[usize]) -> Tensor {
        self.table.get().index_select_rows(indices)
    }
}

impl Module for Embedding {
    fn params(&self) -> Vec<Param> {
        vec![self.table.clone()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::autograd::grad;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn lookup_shapes_and_determinism() {
        let mut rng = StdRng::seed_from_u64(5);
        let emb = Embedding::new("e", 6, 3, &mut rng);
        let a = emb.forward(&[0, 5]);
        assert_eq!(a.shape(), &[2, 3]);
        let b = emb.forward(&[0, 5]);
        assert_eq!(a.to_vec(), b.to_vec());
    }

    #[test]
    fn gradient_accumulates_on_repeated_indices() {
        let mut rng = StdRng::seed_from_u64(6);
        let emb = Embedding::new("e", 4, 2, &mut rng);
        let out = emb.forward(&[1, 1, 2]);
        let loss = out.sum_all();
        let g = grad(&loss, &[emb.params()[0].get()], false);
        let gv = g[0].to_vec();
        // Row 1 selected twice, row 2 once, rows 0/3 untouched.
        assert_eq!(&gv[0..2], &[0.0, 0.0]);
        assert_eq!(&gv[2..4], &[2.0, 2.0]);
        assert_eq!(&gv[4..6], &[1.0, 1.0]);
        assert_eq!(&gv[6..8], &[0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_range_index_panics() {
        let mut rng = StdRng::seed_from_u64(7);
        let emb = Embedding::new("e", 4, 2, &mut rng);
        let _ = emb.forward(&[4]);
    }
}
