//! Neural-network layers.
//!
//! Layers hold their weights in [`Param`] slots: a `Param` is a named,
//! shared, *swappable* handle to a tensor. Optimizers update the tensor in
//! place; MAML's inner loop instead **swaps** the handle for "fast weights"
//! computed by gradient descent, leaving the original meta-parameters intact
//! and connected to the graph (see `metadse::maml`).

mod attention;
mod dropout;
mod embedding;
mod feedforward;
mod layernorm;
mod linear;
mod mlp;
mod transformer;

pub use attention::MultiHeadAttention;
pub use dropout::Dropout;
pub use embedding::Embedding;
pub use feedforward::FeedForward;
pub use layernorm::LayerNorm;
pub use linear::Linear;
pub use mlp::Mlp;
pub use transformer::{TransformerEncoder, TransformerEncoderLayer};

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

use crate::Tensor;

/// A named, shared, swappable parameter slot.
///
/// Cloning a `Param` clones the handle: all clones observe swaps and
/// in-place updates.
///
/// # Example
///
/// ```
/// use metadse_nn::layers::Param;
/// use metadse_nn::Tensor;
///
/// let p = Param::new("w", Tensor::param_from_vec(vec![1.0], &[1]));
/// let fast = p.get().mul_scalar(0.5); // derived "fast weight"
/// p.set(fast);
/// assert_eq!(p.get().to_vec(), vec![0.5]);
/// ```
#[derive(Clone)]
pub struct Param {
    name: String,
    slot: Rc<RefCell<Tensor>>,
}

impl Param {
    /// Creates a parameter slot holding `tensor`.
    pub fn new(name: impl Into<String>, tensor: Tensor) -> Param {
        Param {
            name: name.into(),
            slot: Rc::new(RefCell::new(tensor)),
        }
    }

    /// The parameter's name (used by serialization and debugging).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The tensor currently held by the slot (cheap handle clone).
    pub fn get(&self) -> Tensor {
        self.slot.borrow().clone()
    }

    /// Swaps in a new tensor (e.g. MAML fast weights).
    ///
    /// # Panics
    ///
    /// Panics if the new tensor's shape differs from the current one.
    pub fn set(&self, tensor: Tensor) {
        let mut slot = self.slot.borrow_mut();
        assert_eq!(
            slot.shape(),
            tensor.shape(),
            "parameter {:?} cannot change shape",
            self.name
        );
        *slot = tensor;
    }

    /// Shape of the held tensor.
    pub fn shape(&self) -> Vec<usize> {
        self.slot.borrow().shape().to_vec()
    }

    /// Number of scalar weights in the parameter.
    pub fn numel(&self) -> usize {
        self.slot.borrow().numel()
    }
}

impl fmt::Debug for Param {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Param({:?}, shape={:?})", self.name, self.shape())
    }
}

/// Anything that exposes trainable parameters.
pub trait Module {
    /// All parameter slots, in a deterministic order.
    fn params(&self) -> Vec<Param>;

    /// Total number of scalar weights.
    fn num_weights(&self) -> usize {
        self.params().iter().map(Param::numel).sum()
    }
}

/// Snapshots the tensors currently held by `params` (handles, not copies).
pub fn snapshot(params: &[Param]) -> Vec<Tensor> {
    params.iter().map(Param::get).collect()
}

/// Restores tensors previously captured with [`snapshot`].
///
/// # Panics
///
/// Panics if lengths or shapes disagree.
pub fn restore(params: &[Param], tensors: &[Tensor]) {
    assert_eq!(params.len(), tensors.len(), "snapshot length mismatch");
    for (p, t) in params.iter().zip(tensors) {
        p.set(t.clone());
    }
}

/// Deep-copies the current parameter values into fresh trainable leaves.
pub fn clone_values(params: &[Param]) -> Vec<Tensor> {
    params
        .iter()
        .map(|p| {
            let t = p.get();
            Tensor::param_from_vec(t.to_vec(), t.shape())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn param_swap_is_visible_through_clones() {
        let p = Param::new("w", Tensor::param_from_vec(vec![1.0, 2.0], &[2]));
        let alias = p.clone();
        p.set(Tensor::param_from_vec(vec![3.0, 4.0], &[2]));
        assert_eq!(alias.get().to_vec(), vec![3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "cannot change shape")]
    fn param_rejects_shape_changes() {
        let p = Param::new("w", Tensor::param_from_vec(vec![1.0], &[1]));
        p.set(Tensor::param_from_vec(vec![1.0, 2.0], &[2]));
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let p = Param::new("w", Tensor::param_from_vec(vec![1.0], &[1]));
        let saved = snapshot(std::slice::from_ref(&p));
        p.set(Tensor::param_from_vec(vec![9.0], &[1]));
        restore(std::slice::from_ref(&p), &saved);
        assert_eq!(p.get().to_vec(), vec![1.0]);
    }

    #[test]
    fn clone_values_creates_independent_leaves() {
        let p = Param::new("w", Tensor::param_from_vec(vec![1.0], &[1]));
        let copies = clone_values(std::slice::from_ref(&p));
        p.get().assign_vec(&[5.0]);
        assert_eq!(copies[0].to_vec(), vec![1.0]);
        assert!(copies[0].requires_grad());
    }
}
