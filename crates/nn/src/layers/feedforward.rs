//! Position-wise feed-forward block.

use rand::Rng;

use super::{Linear, Module, Param};
use crate::{Activation, Tensor};

/// Two-layer MLP with GELU, applied position-wise (the transformer FFN).
#[derive(Debug, Clone)]
pub struct FeedForward {
    lift: Linear,
    project: Linear,
}

impl FeedForward {
    /// Creates a `d_model → d_hidden → d_model` block.
    pub fn new<R: Rng + ?Sized>(
        name: &str,
        d_model: usize,
        d_hidden: usize,
        rng: &mut R,
    ) -> FeedForward {
        FeedForward {
            lift: Linear::new(&format!("{name}.lift"), d_model, d_hidden, true, rng),
            project: Linear::new(&format!("{name}.project"), d_hidden, d_model, true, rng),
        }
    }

    /// Applies the block over the trailing feature axis.
    pub fn forward(&self, x: &Tensor) -> Tensor {
        self.project
            .forward(&self.lift.forward_act(x, Activation::Gelu))
    }
}

impl Module for FeedForward {
    fn params(&self) -> Vec<Param> {
        let mut ps = self.lift.params();
        ps.extend(self.project.params());
        ps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn shape_is_preserved() {
        let mut rng = StdRng::seed_from_u64(1);
        let ffn = FeedForward::new("ffn", 8, 32, &mut rng);
        let x = Tensor::ones(&[2, 3, 8]);
        assert_eq!(ffn.forward(&x).shape(), &[2, 3, 8]);
        assert_eq!(ffn.num_weights(), 8 * 32 + 32 + 32 * 8 + 8);
    }

    #[test]
    fn nonlinearity_present() {
        let mut rng = StdRng::seed_from_u64(2);
        let ffn = FeedForward::new("ffn", 4, 8, &mut rng);
        let x = Tensor::ones(&[1, 1, 4]);
        let y1 = ffn.forward(&x);
        let y2 = ffn.forward(&x.mul_scalar(2.0));
        // A linear map would give y2 = 2*y1 exactly; GELU breaks that.
        let linear_residual: f64 = y2
            .to_vec()
            .iter()
            .zip(y1.to_vec().iter())
            .map(|(a, b)| (a - 2.0 * b).abs())
            .sum();
        assert!(linear_residual > 1e-6);
    }
}
