//! Transformer encoder (pre-LayerNorm variant).

use rand::Rng;

use super::{FeedForward, LayerNorm, Module, MultiHeadAttention, Param};
use crate::Tensor;

/// One pre-LN transformer encoder layer:
/// `x + Attn(LN(x))` followed by `x + FFN(LN(x))`.
#[derive(Debug, Clone)]
pub struct TransformerEncoderLayer {
    ln1: LayerNorm,
    attention: MultiHeadAttention,
    ln2: LayerNorm,
    ffn: FeedForward,
}

impl TransformerEncoderLayer {
    /// Creates a layer with the given model width, head count, and FFN
    /// hidden width.
    pub fn new<R: Rng + ?Sized>(
        name: &str,
        d_model: usize,
        heads: usize,
        d_hidden: usize,
        rng: &mut R,
    ) -> TransformerEncoderLayer {
        TransformerEncoderLayer {
            ln1: LayerNorm::new(&format!("{name}.ln1"), d_model),
            attention: MultiHeadAttention::new(&format!("{name}.attn"), d_model, heads, rng),
            ln2: LayerNorm::new(&format!("{name}.ln2"), d_model),
            ffn: FeedForward::new(&format!("{name}.ffn"), d_model, d_hidden, rng),
        }
    }

    /// The layer's attention sublayer (for masking / attention capture).
    pub fn attention(&self) -> &MultiHeadAttention {
        &self.attention
    }

    /// Applies the layer to `[batch, seq, d_model]`.
    pub fn forward(&self, x: &Tensor) -> Tensor {
        let x = x.add(&self.attention.forward(&self.ln1.forward(x)));
        x.add(&self.ffn.forward(&self.ln2.forward(&x)))
    }
}

impl Module for TransformerEncoderLayer {
    fn params(&self) -> Vec<Param> {
        let mut ps = self.ln1.params();
        ps.extend(self.attention.params());
        ps.extend(self.ln2.params());
        ps.extend(self.ffn.params());
        ps
    }
}

/// A stack of encoder layers with a final LayerNorm.
#[derive(Debug, Clone)]
pub struct TransformerEncoder {
    layers: Vec<TransformerEncoderLayer>,
    final_ln: LayerNorm,
}

impl TransformerEncoder {
    /// Creates `depth` encoder layers of the given geometry.
    pub fn new<R: Rng + ?Sized>(
        name: &str,
        depth: usize,
        d_model: usize,
        heads: usize,
        d_hidden: usize,
        rng: &mut R,
    ) -> TransformerEncoder {
        let layers = (0..depth)
            .map(|i| {
                TransformerEncoderLayer::new(
                    &format!("{name}.layer{i}"),
                    d_model,
                    heads,
                    d_hidden,
                    rng,
                )
            })
            .collect();
        TransformerEncoder {
            layers,
            final_ln: LayerNorm::new(&format!("{name}.final_ln"), d_model),
        }
    }

    /// The encoder layers, in order.
    pub fn layers(&self) -> &[TransformerEncoderLayer] {
        &self.layers
    }

    /// The last layer's attention sublayer — the one WAM statistics are
    /// extracted from.
    ///
    /// # Panics
    ///
    /// Panics if the encoder has zero layers.
    pub fn last_attention(&self) -> &MultiHeadAttention {
        self.layers
            .last()
            .expect("encoder has at least one layer")
            .attention()
    }

    /// Applies all layers and the final normalization.
    pub fn forward(&self, x: &Tensor) -> Tensor {
        let mut h = x.clone();
        for layer in &self.layers {
            h = layer.forward(&h);
        }
        self.final_ln.forward(&h)
    }
}

impl Module for TransformerEncoder {
    fn params(&self) -> Vec<Param> {
        let mut ps: Vec<Param> = self
            .layers
            .iter()
            .flat_map(TransformerEncoderLayer::params)
            .collect();
        ps.extend(self.final_ln.params());
        ps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::autograd::grad;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn encoder_preserves_shape() {
        let mut rng = StdRng::seed_from_u64(1);
        let enc = TransformerEncoder::new("enc", 2, 8, 2, 16, &mut rng);
        let x = Tensor::ones(&[3, 5, 8]);
        assert_eq!(enc.forward(&x).shape(), &[3, 5, 8]);
        assert_eq!(enc.layers().len(), 2);
    }

    #[test]
    fn all_params_receive_gradients() {
        let mut rng = StdRng::seed_from_u64(2);
        let enc = TransformerEncoder::new("enc", 1, 4, 2, 8, &mut rng);
        let x = Tensor::randn(&[2, 3, 4], &mut rng);
        let loss = enc.forward(&x).squared_norm();
        let tensors: Vec<_> = enc.params().iter().map(|p| p.get()).collect();
        let grads = grad(&loss, &tensors, false);
        for (p, g) in enc.params().iter().zip(&grads) {
            let nonzero = g.to_vec().iter().any(|&v| v != 0.0);
            assert!(
                nonzero,
                "parameter {} received an all-zero gradient",
                p.name()
            );
        }
    }

    #[test]
    fn residual_path_keeps_input_influence() {
        let mut rng = StdRng::seed_from_u64(3);
        let enc = TransformerEncoder::new("enc", 2, 8, 2, 16, &mut rng);
        let a = Tensor::randn(&[1, 4, 8], &mut rng);
        let b = Tensor::randn(&[1, 4, 8], &mut rng);
        let ya = enc.forward(&a).to_vec();
        let yb = enc.forward(&b).to_vec();
        assert!(ya.iter().zip(&yb).any(|(u, v)| (u - v).abs() > 1e-9));
    }
}
