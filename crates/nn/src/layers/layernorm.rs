//! Layer normalization.

use super::{Module, Param};
use crate::{Elem, Tensor};

/// Layer normalization over the trailing feature axis with learnable scale
/// and shift.
///
/// # Example
///
/// ```
/// use metadse_nn::layers::LayerNorm;
/// use metadse_nn::Tensor;
///
/// let ln = LayerNorm::new("ln", 4);
/// let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 4]);
/// let y = ln.forward(&x);
/// let mean: f64 = y.to_vec().iter().sum::<f64>() / 4.0;
/// assert!(mean.abs() < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct LayerNorm {
    gamma: Param,
    beta: Param,
    dim: usize,
    eps: Elem,
}

impl LayerNorm {
    /// Creates a layer normalizing over a trailing axis of size `dim`
    /// (γ = 1, β = 0, ε = 1e-5).
    pub fn new(name: &str, dim: usize) -> LayerNorm {
        LayerNorm {
            gamma: Param::new(
                format!("{name}.gamma"),
                Tensor::param_from_vec(vec![1.0; dim], &[dim]),
            ),
            beta: Param::new(
                format!("{name}.beta"),
                Tensor::param_from_vec(vec![0.0; dim], &[dim]),
            ),
            dim,
            eps: 1e-5,
        }
    }

    /// Normalized feature dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Applies normalization to `x` of shape `[.., dim]`.
    ///
    /// # Panics
    ///
    /// Panics if the trailing axis is not `dim`.
    pub fn forward(&self, x: &Tensor) -> Tensor {
        assert_eq!(
            x.shape().last().copied(),
            Some(self.dim),
            "LayerNorm expects trailing dim {}, got {:?}",
            self.dim,
            x.shape()
        );
        x.layernorm_affine(&self.gamma.get(), &self.beta.get(), self.eps)
    }
}

impl Module for LayerNorm {
    fn params(&self) -> Vec<Param> {
        vec![self.gamma.clone(), self.beta.clone()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::autograd::grad;

    #[test]
    fn output_rows_are_standardized() {
        let ln = LayerNorm::new("ln", 3);
        let x = Tensor::from_vec(vec![10.0, 20.0, 30.0, -1.0, 0.0, 1.0], &[2, 3]);
        let y = ln.forward(&x).to_vec();
        for row in y.chunks(3) {
            let mean: f64 = row.iter().sum::<f64>() / 3.0;
            let var: f64 = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / 3.0;
            assert!(mean.abs() < 1e-9);
            assert!((var - 1.0).abs() < 1e-3);
        }
    }

    #[test]
    fn gamma_beta_affect_output() {
        let ln = LayerNorm::new("ln", 2);
        ln.params()[0].get().assign_vec(&[2.0, 2.0]);
        ln.params()[1].get().assign_vec(&[1.0, 1.0]);
        let x = Tensor::from_vec(vec![0.0, 2.0], &[1, 2]);
        let y = ln.forward(&x).to_vec();
        // Normalized row is (-1, 1) up to eps; scaled by 2 and shifted by 1.
        assert!((y[0] + 1.0).abs() < 1e-2);
        assert!((y[1] - 3.0).abs() < 1e-2);
    }

    #[test]
    fn gradients_reach_gamma_and_beta() {
        let ln = LayerNorm::new("ln", 3);
        let x = Tensor::from_vec(vec![1.0, 5.0, -2.0], &[1, 3]);
        let loss = ln.forward(&x).squared_norm();
        let tensors: Vec<_> = ln.params().iter().map(|p| p.get()).collect();
        let g = grad(&loss, &tensors, false);
        assert!(g[0].to_vec().iter().any(|&v| v != 0.0));
        // beta gradient = 2 * output, nonzero in general.
        assert!(g[1].to_vec().iter().any(|&v| v != 0.0));
    }

    #[test]
    fn constant_rows_do_not_blow_up() {
        let ln = LayerNorm::new("ln", 4);
        let x = Tensor::full(&[1, 4], 3.0);
        let y = ln.forward(&x).to_vec();
        assert!(y.iter().all(|v| v.is_finite()));
        assert!(y.iter().all(|&v| v.abs() < 1e-6));
    }
}
