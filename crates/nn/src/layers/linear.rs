//! Fully connected layer.

use rand::Rng;

use super::{Module, Param};
use crate::{init, Activation, Tensor};

/// Affine transformation `y = x W + b` applied over the last axis.
///
/// # Example
///
/// ```
/// use metadse_nn::layers::{Linear, Module};
/// use rand::{rngs::StdRng, SeedableRng};
/// use metadse_nn::Tensor;
///
/// let mut rng = StdRng::seed_from_u64(0);
/// let layer = Linear::new("proj", 4, 2, true, &mut rng);
/// let x = Tensor::ones(&[3, 4]);
/// assert_eq!(layer.forward(&x).shape(), &[3, 2]);
/// assert_eq!(layer.num_weights(), 4 * 2 + 2);
/// ```
#[derive(Debug, Clone)]
pub struct Linear {
    weight: Param,
    bias: Option<Param>,
    in_dim: usize,
    out_dim: usize,
}

impl Linear {
    /// Creates a layer with Xavier-uniform weights and zero bias.
    pub fn new<R: Rng + ?Sized>(
        name: &str,
        in_dim: usize,
        out_dim: usize,
        bias: bool,
        rng: &mut R,
    ) -> Linear {
        let w = init::xavier_uniform(in_dim, out_dim, rng);
        let weight = Param::new(
            format!("{name}.weight"),
            Tensor::param_from_vec(w.to_vec(), &[in_dim, out_dim]),
        );
        let bias = bias.then(|| {
            Param::new(
                format!("{name}.bias"),
                Tensor::param_from_vec(vec![0.0; out_dim], &[out_dim]),
            )
        });
        Linear {
            weight,
            bias,
            in_dim,
            out_dim,
        }
    }

    /// Input feature dimension.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output feature dimension.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Applies the layer to `x` of shape `[.., in_dim]`.
    ///
    /// # Panics
    ///
    /// Panics if the last axis of `x` is not `in_dim`.
    pub fn forward(&self, x: &Tensor) -> Tensor {
        self.forward_act(x, Activation::Identity)
    }

    /// Applies the layer followed by an elementwise activation, fusing the
    /// bias add and the nonlinearity into a single graph node when the fused
    /// kernels are enabled. Activating before the trailing reshape is
    /// elementwise, so values match the `forward(...).act()` composition.
    ///
    /// # Panics
    ///
    /// Panics if the last axis of `x` is not `in_dim`.
    pub fn forward_act(&self, x: &Tensor, act: Activation) -> Tensor {
        assert_eq!(
            x.shape().last().copied(),
            Some(self.in_dim),
            "Linear expects trailing dim {}, got {:?}",
            self.in_dim,
            x.shape()
        );
        // Collapse leading dims so a rank-N input works with a 2-D weight.
        let lead: Vec<usize> = x.shape()[..x.ndim() - 1].to_vec();
        let flat = x.reshape(&[lead.iter().product::<usize>(), self.in_dim]);
        let y = match &self.bias {
            Some(bias) => flat
                .matmul(&self.weight.get())
                .bias_add_activation(&bias.get(), act),
            None => act.apply(&flat.matmul(&self.weight.get())),
        };
        let mut out_shape = lead;
        out_shape.push(self.out_dim);
        y.reshape(&out_shape)
    }
}

impl Module for Linear {
    fn params(&self) -> Vec<Param> {
        let mut ps = vec![self.weight.clone()];
        if let Some(b) = &self.bias {
            ps.push(b.clone());
        }
        ps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::autograd::grad;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn forward_matches_manual_matmul() {
        let mut rng = StdRng::seed_from_u64(1);
        let layer = Linear::new("l", 2, 2, true, &mut rng);
        layer.params()[0].get().assign_vec(&[1.0, 2.0, 3.0, 4.0]);
        layer.params()[1].get().assign_vec(&[0.5, -0.5]);
        let x = Tensor::from_vec(vec![1.0, 1.0], &[1, 2]);
        let y = layer.forward(&x);
        assert_eq!(y.to_vec(), vec![4.5, 5.5]);
    }

    #[test]
    fn forward_handles_3d_batches() {
        let mut rng = StdRng::seed_from_u64(2);
        let layer = Linear::new("l", 4, 3, true, &mut rng);
        let x = Tensor::ones(&[2, 5, 4]);
        assert_eq!(layer.forward(&x).shape(), &[2, 5, 3]);
    }

    #[test]
    fn gradients_flow_to_weight_and_bias() {
        let mut rng = StdRng::seed_from_u64(3);
        let layer = Linear::new("l", 3, 1, true, &mut rng);
        let x = Tensor::ones(&[4, 3]);
        let loss = layer.forward(&x).sum_all();
        let params = layer.params();
        let tensors: Vec<_> = params.iter().map(|p| p.get()).collect();
        let g = grad(&loss, &tensors, false);
        assert_eq!(g[0].shape(), &[3, 1]);
        assert_eq!(g[0].to_vec(), vec![4.0, 4.0, 4.0]);
        assert_eq!(g[1].to_vec(), vec![4.0]);
    }

    #[test]
    fn no_bias_variant() {
        let mut rng = StdRng::seed_from_u64(4);
        let layer = Linear::new("l", 2, 2, false, &mut rng);
        assert_eq!(layer.params().len(), 1);
        assert_eq!(layer.num_weights(), 4);
    }
}
