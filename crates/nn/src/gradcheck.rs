//! Numerical gradient checking.
//!
//! Central-difference verification of analytic gradients; used throughout
//! the test-suite and exposed publicly so downstream crates can validate
//! custom compositions.

use crate::autograd::{grad, no_grad};
use crate::{Elem, Tensor};

/// Result of a gradient check for a single input tensor.
#[derive(Debug, Clone, PartialEq)]
pub struct GradCheckReport {
    /// Largest absolute difference between analytic and numeric entries.
    pub max_abs_diff: Elem,
    /// Largest relative difference (normalized by magnitude, floored at 1).
    pub max_rel_diff: Elem,
}

impl GradCheckReport {
    /// Whether the check passed under tolerance `tol`.
    pub fn passes(&self, tol: Elem) -> bool {
        self.max_rel_diff <= tol
    }
}

/// Verifies the analytic gradient of `f` with central differences.
///
/// `f` must be a deterministic scalar-valued function of its inputs (it is
/// re-evaluated many times). Returns one report per input.
///
/// # Panics
///
/// Panics if `f` returns a non-scalar tensor.
///
/// # Example
///
/// ```
/// use metadse_nn::{Tensor, gradcheck::check_gradients};
///
/// let x = Tensor::param_from_vec(vec![0.3, -0.8], &[2]);
/// let reports = check_gradients(|xs| xs[0].tanh().squared_norm(), &[x], 1e-5);
/// assert!(reports[0].passes(1e-6));
/// ```
pub fn check_gradients(
    f: impl Fn(&[Tensor]) -> Tensor,
    inputs: &[Tensor],
    epsilon: Elem,
) -> Vec<GradCheckReport> {
    let output = f(inputs);
    assert_eq!(output.numel(), 1, "gradient check requires a scalar output");
    let analytic = grad(&output, inputs, false);

    inputs
        .iter()
        .enumerate()
        .map(|(which, input)| {
            let base = input.to_vec();
            let mut max_abs: Elem = 0.0;
            let mut max_rel: Elem = 0.0;
            let a = analytic[which].to_vec();
            for j in 0..base.len() {
                let mut plus = base.clone();
                plus[j] += epsilon;
                let mut minus = base.clone();
                minus[j] -= epsilon;
                let f_plus = eval_perturbed(&f, inputs, which, &plus);
                let f_minus = eval_perturbed(&f, inputs, which, &minus);
                let numeric = (f_plus - f_minus) / (2.0 * epsilon);
                let abs = (a[j] - numeric).abs();
                let rel = abs / numeric.abs().max(a[j].abs()).max(1.0);
                max_abs = max_abs.max(abs);
                max_rel = max_rel.max(rel);
            }
            GradCheckReport {
                max_abs_diff: max_abs,
                max_rel_diff: max_rel,
            }
        })
        .collect()
}

fn eval_perturbed(
    f: &impl Fn(&[Tensor]) -> Tensor,
    inputs: &[Tensor],
    which: usize,
    values: &[Elem],
) -> Elem {
    let perturbed: Vec<Tensor> = inputs
        .iter()
        .enumerate()
        .map(|(i, t)| {
            if i == which {
                Tensor::param_from_vec(values.to_vec(), t.shape())
            } else {
                t.clone()
            }
        })
        .collect();
    no_grad(|| f(&perturbed).value())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn params(shape: &[usize], seed: u64) -> Tensor {
        let mut rng = StdRng::seed_from_u64(seed);
        let t = Tensor::randn(shape, &mut rng);
        Tensor::param_from_vec(t.to_vec(), shape)
    }

    #[test]
    fn elementwise_chain_checks() {
        let x = params(&[2, 3], 1);
        let r = check_gradients(
            |xs| xs[0].tanh().mul_scalar(2.0).add_scalar(0.5).squared_norm(),
            &[x],
            1e-5,
        );
        assert!(r[0].passes(1e-6), "report {:?}", r[0]);
    }

    #[test]
    fn exp_ln_sqrt_chain_checks() {
        let x0 = params(&[4], 2);
        // Keep inputs positive for ln/sqrt.
        let x = Tensor::param_from_vec(x0.to_vec().iter().map(|v| v.abs() + 0.5).collect(), &[4]);
        let r = check_gradients(|xs| xs[0].ln().exp().sqrt().sum_all(), &[x], 1e-6);
        assert!(r[0].passes(1e-5), "report {:?}", r[0]);
    }

    #[test]
    fn matmul_and_softmax_check() {
        let a = params(&[3, 4], 3);
        let b = params(&[4, 2], 4);
        let r = check_gradients(
            |xs| xs[0].matmul(&xs[1]).softmax(1).squared_norm(),
            &[a, b],
            1e-5,
        );
        assert!(r[0].passes(1e-6), "A report {:?}", r[0]);
        assert!(r[1].passes(1e-6), "B report {:?}", r[1]);
    }

    #[test]
    fn broadcast_div_check() {
        let a = params(&[2, 3], 5);
        let mut rng = StdRng::seed_from_u64(6);
        let b0 = Tensor::rand_uniform(&[3], 0.5, 2.0, &mut rng);
        let b = Tensor::param_from_vec(b0.to_vec(), &[3]);
        let r = check_gradients(|xs| xs[0].div(&xs[1]).squared_norm(), &[a, b], 1e-6);
        assert!(r[0].passes(1e-5), "A report {:?}", r[0]);
        assert!(r[1].passes(1e-5), "B report {:?}", r[1]);
    }

    #[test]
    fn gelu_and_sigmoid_check() {
        let x = params(&[5], 7);
        let r = check_gradients(|xs| xs[0].gelu().sigmoid().sum_all(), &[x], 1e-5);
        assert!(r[0].passes(1e-6), "report {:?}", r[0]);
    }

    #[test]
    fn layernorm_style_composition_check() {
        let x = params(&[2, 4], 8);
        let r = check_gradients(
            |xs| {
                let mean = xs[0].mean_axis(1, true);
                let var = xs[0].var_axis(1, true);
                let normalized = xs[0].sub(&mean).div(&var.add_scalar(1e-5).sqrt());
                normalized.squared_norm()
            },
            &[x],
            1e-5,
        );
        assert!(r[0].passes(1e-5), "report {:?}", r[0]);
    }
}
