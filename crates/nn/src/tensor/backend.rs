//! The numeric backend abstraction: one place where every dense kernel's
//! contractions and reductions are implemented, in two interchangeable
//! flavours.
//!
//! ## Why a backend trait
//!
//! The packed matmul, the fused transformer kernels, and the `sum_to`
//! reductions all bottom out in a handful of primitive loops: dot products,
//! row-block dot products, plain/squared sums, and a few fusable
//! elementwise passes. Routing those primitives through a [`Backend`]
//! object gives two properties at once:
//!
//! * **per-backend bit-determinism** — each backend fixes its accumulation
//!   orders once, and both the fused kernels *and* the composite tensor-op
//!   paths call the same primitives, so the fused-vs-composite and
//!   thread-count bit-identity contracts hold under either backend;
//! * **a real SIMD speed path** — [`SimdBackend`] evaluates every
//!   reduction in 8 independent lanes (element `i` feeds lane `i % 8`)
//!   with a fixed horizontal combine tree, written as plain per-lane
//!   array arithmetic that LLVM lowers to vector instructions. On x86-64
//!   the same bodies are additionally compiled under
//!   `#[target_feature(enable = "avx2")]` and selected by runtime CPU
//!   detection — AVX2 widens the registers but computes the *same*
//!   per-lane `mul`+`add` sequences (Rust never contracts them to FMA),
//!   so the SIMD backend's bits are identical on every machine, with or
//!   without AVX2.
//!
//! ## Selection
//!
//! The process-wide backend is chosen on first use from `METADSE_BACKEND`
//! (`simd`, the default, or `scalar`; unrecognised values fall back to
//! `scalar`). [`set_process_kind`] overrides it for a whole process —
//! worker threads spawned afterwards inherit the choice, which is what the
//! bench binaries use to measure both backends in one run.
//! [`BackendModeGuard`] overrides it on the current thread only, for
//! single-threaded tests.
//!
//! ## Numerics policy
//!
//! [`ScalarBackend`] reproduces the historical kernels exactly: every
//! reduction is one accumulator filled in ascending index order, so the
//! scalar backend is bit-for-bit the pre-backend implementation and keeps
//! its original pinned digest. [`SimdBackend`] changes only the
//! *association* of sums (8 partial accumulators + a fixed combine tree),
//! never the set of rounded operations per term, so scalar-vs-SIMD
//! differences obey the standard reassociation bound
//! `|Δ| ≤ (n/8 + 3) · ε · Σ|terms|` — asserted per-op by the
//! cross-backend tolerance suite in `crates/nn/tests/backend.rs` and
//! reported in EXPERIMENTS.md. NaNs propagate identically (every input
//! element still enters exactly one accumulator).

use std::cell::Cell;
use std::sync::atomic::{AtomicU8, Ordering};

use crate::Elem;

/// Lanes in the SIMD backend's virtual vector: 8 × f64 (two AVX2
/// registers), chosen so the remainder handling is exercised by every
/// odd-sized layer in the test models.
pub const SIMD_LANES: usize = 8;

/// Largest reduction length for which the 8-lane chunked sum and a plain
/// sequential left-fold produce identical bits. Below [`SIMD_LANES`] every
/// element occupies its own lane, so the fixed combine tree
/// `((l0+l1)+(l2+l3)) + …` only pads with `+0.0` until a fourth term
/// participates — at four terms it reassociates `(t0+t1)+(t2+t3)` against
/// the fold's `((t0+t1)+t2)+t3`. Row kernels may fuse a sequential
/// accumulation into another pass for rows at most this long without
/// changing any backend's bits.
pub const SEQ_EQUIV_MAX: usize = 3;

/// Which backend implementation is active.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BackendKind {
    /// Single-accumulator ascending-order kernels (the historical bits).
    Scalar,
    /// 8-lane chunked kernels with a fixed horizontal combine tree.
    Simd,
}

impl BackendKind {
    /// Stable lowercase name, used for digest-file suffixes and bench row
    /// labels.
    pub fn name(self) -> &'static str {
        match self {
            BackendKind::Scalar => "scalar",
            BackendKind::Simd => "simd",
        }
    }
}

/// The primitive kernels every dense op routes through.
///
/// Order-sensitive reductions (`dot*`, `sum*`) define each backend's
/// numeric identity. The remaining methods (`axpy`, `fold_rows`, the GELU
/// passes) are elementwise or independent-accumulator loops whose bits
/// cannot depend on vectorization — they are on the trait so the SIMD
/// implementations compile under the widest available instruction set.
pub(crate) trait Backend: Sync {
    /// `dot(a, b) = Σ a[i]·b[i]` over `min` of the lengths (callers pass
    /// equal-length rows).
    fn dot(&self, a: &[Elem], b: &[Elem]) -> Elem;

    /// `out[j] = dot(a, bt[j·k .. (j+1)·k])` for every `j`: one output row
    /// of a packed matmul, `bt` holding `out.len()` rows of length `k`.
    fn dot_block(&self, a: &[Elem], bt: &[Elem], k: usize, out: &mut [Elem]);

    /// As [`Backend::dot_block`] but accumulating: `out[j] += dot(…)`.
    fn dot_block_acc(&self, a: &[Elem], bt: &[Elem], k: usize, out: &mut [Elem]);

    /// `dst[i] += scale · src[i]` (independent slots; bit-identical across
    /// backends).
    fn axpy(&self, scale: Elem, src: &[Elem], dst: &mut [Elem]);

    /// Row-fold: `out[j] += src[r·d + j]` for every full row `r`, rows
    /// ascending (independent per-`j` accumulators; bit-identical across
    /// backends). `d = out.len()`.
    fn fold_rows(&self, src: &[Elem], out: &mut [Elem]);

    /// `Σ xs[i]`.
    fn sum(&self, xs: &[Elem]) -> Elem;

    /// `Σ xs[i]²`, each square rounded once before accumulation (the same
    /// bits as materialising `x·x` and summing).
    fn sum_sq(&self, xs: &[Elem]) -> Elem;

    /// `Σ (a[i] − b[i])²`, difference and square each rounded once.
    fn sum_sq_diff(&self, a: &[Elem], b: &[Elem]) -> Elem;

    /// Fused `gelu(x + bias)` forward: writes the activation to `out` and
    /// the inner `tanh` values to `tanh_cache` (both length `sx.len()`,
    /// with `sb.len()` dividing it). Elementwise — bit-identical across
    /// backends.
    fn bias_gelu_forward(&self, sx: &[Elem], sb: &[Elem], out: &mut [Elem], tanh: &mut [Elem]);

    /// Backward of [`Backend::bias_gelu_forward`] w.r.t. the sum `x + bias`,
    /// reusing the cached `tanh` values. Elementwise — bit-identical across
    /// backends.
    fn bias_gelu_backward(
        &self,
        sg: &[Elem],
        sx: &[Elem],
        sb: &[Elem],
        tanh: &[Elem],
        gsum: &mut [Elem],
    );
}

// ---------------------------------------------------------------------
// Scalar backend: the historical kernels, verbatim.
// ---------------------------------------------------------------------

/// The pre-backend kernels: one accumulator per output, ascending index
/// order. Bit-for-bit the implementation every pinned digest was recorded
/// against.
pub(crate) struct ScalarBackend;

impl Backend for ScalarBackend {
    fn dot(&self, a: &[Elem], b: &[Elem]) -> Elem {
        let mut s = 0.0;
        for (&av, &bv) in a.iter().zip(b) {
            s += av * bv;
        }
        s
    }

    fn dot_block(&self, a: &[Elem], bt: &[Elem], k: usize, out: &mut [Elem]) {
        // Four outputs per pass over `a` (the historical packed-matmul
        // microkernel). Each accumulator is independent and ascending, so
        // the bits match the one-column dot exactly.
        let n = out.len();
        let mut j = 0;
        while j + 4 <= n {
            let b0 = &bt[j * k..(j + 1) * k];
            let b1 = &bt[(j + 1) * k..(j + 2) * k];
            let b2 = &bt[(j + 2) * k..(j + 3) * k];
            let b3 = &bt[(j + 3) * k..(j + 4) * k];
            let (mut s0, mut s1, mut s2, mut s3) = (0.0, 0.0, 0.0, 0.0);
            for (kk, &av) in a.iter().enumerate() {
                s0 += av * b0[kk];
                s1 += av * b1[kk];
                s2 += av * b2[kk];
                s3 += av * b3[kk];
            }
            out[j] = s0;
            out[j + 1] = s1;
            out[j + 2] = s2;
            out[j + 3] = s3;
            j += 4;
        }
        while j < n {
            out[j] = self.dot(a, &bt[j * k..(j + 1) * k]);
            j += 1;
        }
    }

    fn dot_block_acc(&self, a: &[Elem], bt: &[Elem], k: usize, out: &mut [Elem]) {
        for (j, o) in out.iter_mut().enumerate() {
            *o += self.dot(a, &bt[j * k..(j + 1) * k]);
        }
    }

    fn axpy(&self, scale: Elem, src: &[Elem], dst: &mut [Elem]) {
        for (o, &v) in dst.iter_mut().zip(src) {
            *o += scale * v;
        }
    }

    fn fold_rows(&self, src: &[Elem], out: &mut [Elem]) {
        let d = out.len();
        for row in src.chunks_exact(d) {
            for (o, &v) in out.iter_mut().zip(row) {
                *o += v;
            }
        }
    }

    fn sum(&self, xs: &[Elem]) -> Elem {
        let mut s = 0.0;
        for &v in xs {
            s += v;
        }
        s
    }

    fn sum_sq(&self, xs: &[Elem]) -> Elem {
        let mut s = 0.0;
        for &v in xs {
            s += v * v;
        }
        s
    }

    fn sum_sq_diff(&self, a: &[Elem], b: &[Elem]) -> Elem {
        let mut s = 0.0;
        for (&av, &bv) in a.iter().zip(b) {
            let d = av - bv;
            s += d * d;
        }
        s
    }

    fn bias_gelu_forward(&self, sx: &[Elem], sb: &[Elem], out: &mut [Elem], tanh: &mut [Elem]) {
        // The historical single loop, expression tree per element exactly
        // as `Tensor::gelu`'s op-by-op composition.
        let nb = sb.len();
        let c = (2.0 / std::f64::consts::PI).sqrt();
        for (i, &x) in sx.iter().enumerate() {
            let s = x + sb[i % nb];
            let p = (s * s) * s;
            let pm = p * 0.044715;
            let i1 = s + pm;
            let i2 = i1 * c;
            let t = i2.tanh();
            tanh[i] = t;
            let t1 = t + 1.0;
            let m = s * t1;
            out[i] = m * 0.5;
        }
    }

    fn bias_gelu_backward(
        &self,
        sg: &[Elem],
        sx: &[Elem],
        sb: &[Elem],
        tanh: &[Elem],
        gsum: &mut [Elem],
    ) {
        let nb = sb.len();
        let c = (2.0 / std::f64::consts::PI).sqrt();
        for (i, &gv) in sg.iter().enumerate() {
            let s = sx[i] + sb[i % nb];
            let t = tanh[i];
            let gm = gv * 0.5;
            let gs1 = gm * (t + 1.0);
            let gi2 = (gm * s) * (-(t * t) + 1.0);
            let gi1 = gi2 * c;
            let gs3 = (gi1 * 0.044715) * ((s * s) * 3.0);
            gsum[i] = gs1 + gi1 + gs3;
        }
    }
}

// ---------------------------------------------------------------------
// SIMD kernel bodies (shared by the portable and AVX2 instantiations).
// ---------------------------------------------------------------------

/// The chunked kernel bodies. Everything here is `#[inline(always)]` so the
/// wrappers in [`portable`] and [`avx2`] compile the same source under
/// different target features; because no operation is ever contracted to an
/// FMA, both instantiations produce identical bits.
mod kernels {
    use super::{Elem, SEQ_EQUIV_MAX, SIMD_LANES as W};

    /// Fixed combine tree for the 8 partial accumulators:
    /// `((l0+l1)+(l2+l3)) + ((l4+l5)+(l6+l7))`.
    #[inline(always)]
    fn hadd(acc: [Elem; W]) -> Elem {
        ((acc[0] + acc[1]) + (acc[2] + acc[3])) + ((acc[4] + acc[5]) + (acc[6] + acc[7]))
    }

    /// Folds the tail (fewer than `W` elements starting at `base`) into the
    /// low lanes: element `base + l` enters lane `l`, preserving the
    /// "element `i` feeds lane `i % W`" scheme.
    #[inline(always)]
    fn tail<const SQ: bool>(acc: &mut [Elem; W], a: &[Elem], b: &[Elem], base: usize) {
        for l in 0..(a.len() - base) {
            let (av, bv) = (a[base + l], b[base + l]);
            if SQ {
                let d = av - bv;
                acc[l] += d * d;
            } else {
                acc[l] += av * bv;
            }
        }
    }

    #[inline(always)]
    pub(super) fn dot(a: &[Elem], b: &[Elem]) -> Elem {
        let n = a.len().min(b.len());
        if n <= SEQ_EQUIV_MAX {
            // Sequential fold — identical bits to the lane/tree form for
            // at most `SEQ_EQUIV_MAX` terms (see the constant's docs), at
            // a fraction of the accumulator traffic.
            let mut s = 0.0;
            for i in 0..n {
                s += a[i] * b[i];
            }
            return s;
        }
        let n8 = n - n % W;
        let mut acc = [0.0; W];
        let mut i = 0;
        while i < n8 {
            let xa: &[Elem; W] = a[i..i + W].try_into().unwrap();
            let xb: &[Elem; W] = b[i..i + W].try_into().unwrap();
            for l in 0..W {
                acc[l] += xa[l] * xb[l];
            }
            i += W;
        }
        tail::<false>(&mut acc, &a[..n], &b[..n], n8);
        hadd(acc)
    }

    /// `ACC = false` writes `out[j] = dot`, `ACC = true` does `out[j] +=`.
    /// Four columns per pass share each loaded `a` chunk (4 × 8 lanes of
    /// accumulator state = 8 AVX2 registers).
    #[inline(always)]
    pub(super) fn dot_block<const ACC: bool>(a: &[Elem], bt: &[Elem], k: usize, out: &mut [Elem]) {
        let n = out.len();
        if k <= SEQ_EQUIV_MAX {
            // Per-column sequential dots: the 4-wide unroll is a pure
            // scheduling change, so skipping it for sub-`SEQ_EQUIV_MAX`
            // contractions keeps the bits while dropping the 4 × 8-lane
            // accumulator state the unroll would zero and fold per pass.
            for (j, o) in out.iter_mut().enumerate() {
                let d = dot(a, &bt[j * k..(j + 1) * k]);
                if ACC {
                    *o += d;
                } else {
                    *o = d;
                }
            }
            return;
        }
        let k8 = k - k % W;
        let mut j = 0;
        while j + 4 <= n {
            let b0 = &bt[j * k..(j + 1) * k];
            let b1 = &bt[(j + 1) * k..(j + 2) * k];
            let b2 = &bt[(j + 2) * k..(j + 3) * k];
            let b3 = &bt[(j + 3) * k..(j + 4) * k];
            let mut acc0 = [0.0; W];
            let mut acc1 = [0.0; W];
            let mut acc2 = [0.0; W];
            let mut acc3 = [0.0; W];
            let mut i = 0;
            while i < k8 {
                let xa: &[Elem; W] = a[i..i + W].try_into().unwrap();
                let x0: &[Elem; W] = b0[i..i + W].try_into().unwrap();
                let x1: &[Elem; W] = b1[i..i + W].try_into().unwrap();
                let x2: &[Elem; W] = b2[i..i + W].try_into().unwrap();
                let x3: &[Elem; W] = b3[i..i + W].try_into().unwrap();
                for l in 0..W {
                    let av = xa[l];
                    acc0[l] += av * x0[l];
                    acc1[l] += av * x1[l];
                    acc2[l] += av * x2[l];
                    acc3[l] += av * x3[l];
                }
                i += W;
            }
            tail::<false>(&mut acc0, a, b0, k8);
            tail::<false>(&mut acc1, a, b1, k8);
            tail::<false>(&mut acc2, a, b2, k8);
            tail::<false>(&mut acc3, a, b3, k8);
            if ACC {
                out[j] += hadd(acc0);
                out[j + 1] += hadd(acc1);
                out[j + 2] += hadd(acc2);
                out[j + 3] += hadd(acc3);
            } else {
                out[j] = hadd(acc0);
                out[j + 1] = hadd(acc1);
                out[j + 2] = hadd(acc2);
                out[j + 3] = hadd(acc3);
            }
            j += 4;
        }
        while j < n {
            let d = dot(a, &bt[j * k..(j + 1) * k]);
            if ACC {
                out[j] += d;
            } else {
                out[j] = d;
            }
            j += 1;
        }
    }

    #[inline(always)]
    pub(super) fn axpy(scale: Elem, src: &[Elem], dst: &mut [Elem]) {
        for (o, &v) in dst.iter_mut().zip(src) {
            *o += scale * v;
        }
    }

    #[inline(always)]
    pub(super) fn fold_rows(src: &[Elem], out: &mut [Elem]) {
        let d = out.len();
        for row in src.chunks_exact(d) {
            for (o, &v) in out.iter_mut().zip(row) {
                *o += v;
            }
        }
    }

    #[inline(always)]
    pub(super) fn sum(xs: &[Elem]) -> Elem {
        if xs.len() <= SEQ_EQUIV_MAX {
            let mut s = 0.0;
            for &v in xs {
                s += v;
            }
            return s;
        }
        let n8 = xs.len() - xs.len() % W;
        let mut acc = [0.0; W];
        let mut i = 0;
        while i < n8 {
            let x: &[Elem; W] = xs[i..i + W].try_into().unwrap();
            for l in 0..W {
                acc[l] += x[l];
            }
            i += W;
        }
        for l in 0..(xs.len() - n8) {
            acc[l] += xs[n8 + l];
        }
        hadd(acc)
    }

    #[inline(always)]
    pub(super) fn sum_sq(xs: &[Elem]) -> Elem {
        if xs.len() <= SEQ_EQUIV_MAX {
            let mut s = 0.0;
            for &v in xs {
                s += v * v;
            }
            return s;
        }
        let n8 = xs.len() - xs.len() % W;
        let mut acc = [0.0; W];
        let mut i = 0;
        while i < n8 {
            let x: &[Elem; W] = xs[i..i + W].try_into().unwrap();
            for l in 0..W {
                acc[l] += x[l] * x[l];
            }
            i += W;
        }
        for l in 0..(xs.len() - n8) {
            let v = xs[n8 + l];
            acc[l] += v * v;
        }
        hadd(acc)
    }

    #[inline(always)]
    pub(super) fn sum_sq_diff(a: &[Elem], b: &[Elem]) -> Elem {
        let n = a.len().min(b.len());
        if n <= SEQ_EQUIV_MAX {
            let mut s = 0.0;
            for i in 0..n {
                let d = a[i] - b[i];
                s += d * d;
            }
            return s;
        }
        let n8 = n - n % W;
        let mut acc = [0.0; W];
        let mut i = 0;
        while i < n8 {
            let xa: &[Elem; W] = a[i..i + W].try_into().unwrap();
            let xb: &[Elem; W] = b[i..i + W].try_into().unwrap();
            for l in 0..W {
                let d = xa[l] - xb[l];
                acc[l] += d * d;
            }
            i += W;
        }
        tail::<true>(&mut acc, &a[..n], &b[..n], n8);
        hadd(acc)
    }

    /// Pass-split GELU forward: the polynomial passes are row-tiled
    /// (vectorizable), the libm `tanh` stays a scalar pass in between.
    /// Expression tree per element is identical to the scalar backend's
    /// single loop, so the bits agree exactly.
    #[inline(always)]
    pub(super) fn bias_gelu_forward(sx: &[Elem], sb: &[Elem], out: &mut [Elem], tanh: &mut [Elem]) {
        let nb = sb.len();
        let c = (2.0 / std::f64::consts::PI).sqrt();
        for (row_x, row_t) in sx.chunks_exact(nb).zip(tanh.chunks_exact_mut(nb)) {
            for ((&x, &b), t) in row_x.iter().zip(sb).zip(row_t.iter_mut()) {
                let s = x + b;
                let p = (s * s) * s;
                let pm = p * 0.044715;
                let i1 = s + pm;
                *t = i1 * c;
            }
        }
        for t in tanh.iter_mut() {
            *t = t.tanh();
        }
        for ((row_x, row_t), row_o) in sx
            .chunks_exact(nb)
            .zip(tanh.chunks_exact(nb))
            .zip(out.chunks_exact_mut(nb))
        {
            for (((&x, &b), &t), o) in row_x.iter().zip(sb).zip(row_t).zip(row_o.iter_mut()) {
                let s = x + b;
                let t1 = t + 1.0;
                let m = s * t1;
                *o = m * 0.5;
            }
        }
    }

    #[inline(always)]
    pub(super) fn bias_gelu_backward(
        sg: &[Elem],
        sx: &[Elem],
        sb: &[Elem],
        tanh: &[Elem],
        gsum: &mut [Elem],
    ) {
        let nb = sb.len();
        let c = (2.0 / std::f64::consts::PI).sqrt();
        for (((row_g, row_x), row_t), row_o) in sg
            .chunks_exact(nb)
            .zip(sx.chunks_exact(nb))
            .zip(tanh.chunks_exact(nb))
            .zip(gsum.chunks_exact_mut(nb))
        {
            for ((((&gv, &x), &b), &t), o) in row_g
                .iter()
                .zip(row_x)
                .zip(sb)
                .zip(row_t)
                .zip(row_o.iter_mut())
            {
                let s = x + b;
                let gm = gv * 0.5;
                let gs1 = gm * (t + 1.0);
                let gi2 = (gm * s) * (-(t * t) + 1.0);
                let gi1 = gi2 * c;
                let gs3 = (gi1 * 0.044715) * ((s * s) * 3.0);
                *o = gs1 + gi1 + gs3;
            }
        }
    }
}

/// Baseline-ISA instantiation of the SIMD kernels (whatever vector width
/// the default target provides — SSE2 on x86-64).
mod portable {
    use super::Elem;

    pub(super) fn dot(a: &[Elem], b: &[Elem]) -> Elem {
        super::kernels::dot(a, b)
    }
    pub(super) fn dot_block<const ACC: bool>(a: &[Elem], bt: &[Elem], k: usize, out: &mut [Elem]) {
        super::kernels::dot_block::<ACC>(a, bt, k, out)
    }
    pub(super) fn axpy(scale: Elem, src: &[Elem], dst: &mut [Elem]) {
        super::kernels::axpy(scale, src, dst)
    }
    pub(super) fn fold_rows(src: &[Elem], out: &mut [Elem]) {
        super::kernels::fold_rows(src, out)
    }
    pub(super) fn sum(xs: &[Elem]) -> Elem {
        super::kernels::sum(xs)
    }
    pub(super) fn sum_sq(xs: &[Elem]) -> Elem {
        super::kernels::sum_sq(xs)
    }
    pub(super) fn sum_sq_diff(a: &[Elem], b: &[Elem]) -> Elem {
        super::kernels::sum_sq_diff(a, b)
    }
    pub(super) fn bias_gelu_forward(sx: &[Elem], sb: &[Elem], out: &mut [Elem], tanh: &mut [Elem]) {
        super::kernels::bias_gelu_forward(sx, sb, out, tanh)
    }
    pub(super) fn bias_gelu_backward(
        sg: &[Elem],
        sx: &[Elem],
        sb: &[Elem],
        tanh: &[Elem],
        gsum: &mut [Elem],
    ) {
        super::kernels::bias_gelu_backward(sg, sx, sb, tanh, gsum)
    }
}

/// AVX2 instantiation: the same `#[inline(always)]` bodies compiled with
/// 256-bit registers. Same rounded operations in the same order — AVX2
/// only changes how many lanes execute per instruction — so the bits are
/// identical to [`portable`].
#[cfg(target_arch = "x86_64")]
mod avx2 {
    use super::Elem;

    #[target_feature(enable = "avx2")]
    pub(super) fn dot(a: &[Elem], b: &[Elem]) -> Elem {
        super::kernels::dot(a, b)
    }
    #[target_feature(enable = "avx2")]
    pub(super) fn dot_block<const ACC: bool>(a: &[Elem], bt: &[Elem], k: usize, out: &mut [Elem]) {
        super::kernels::dot_block::<ACC>(a, bt, k, out)
    }
    #[target_feature(enable = "avx2")]
    pub(super) fn axpy(scale: Elem, src: &[Elem], dst: &mut [Elem]) {
        super::kernels::axpy(scale, src, dst)
    }
    #[target_feature(enable = "avx2")]
    pub(super) fn fold_rows(src: &[Elem], out: &mut [Elem]) {
        super::kernels::fold_rows(src, out)
    }
    #[target_feature(enable = "avx2")]
    pub(super) fn sum(xs: &[Elem]) -> Elem {
        super::kernels::sum(xs)
    }
    #[target_feature(enable = "avx2")]
    pub(super) fn sum_sq(xs: &[Elem]) -> Elem {
        super::kernels::sum_sq(xs)
    }
    #[target_feature(enable = "avx2")]
    pub(super) fn sum_sq_diff(a: &[Elem], b: &[Elem]) -> Elem {
        super::kernels::sum_sq_diff(a, b)
    }
    #[target_feature(enable = "avx2")]
    pub(super) fn bias_gelu_forward(sx: &[Elem], sb: &[Elem], out: &mut [Elem], tanh: &mut [Elem]) {
        super::kernels::bias_gelu_forward(sx, sb, out, tanh)
    }
    #[target_feature(enable = "avx2")]
    pub(super) fn bias_gelu_backward(
        sg: &[Elem],
        sx: &[Elem],
        sb: &[Elem],
        tanh: &[Elem],
        gsum: &mut [Elem],
    ) {
        super::kernels::bias_gelu_backward(sg, sx, sb, tanh, gsum)
    }
}

/// The 8-lane chunked backend. `avx2 = true` dispatches to the
/// `#[target_feature(enable = "avx2")]` instantiation (requires runtime
/// detection — see [`active`]); both instantiations produce the same bits.
#[derive(Clone, Copy)]
pub(crate) struct SimdBackend {
    avx2: bool,
}

/// `#[target_feature]` functions cannot be inlined into callers compiled
/// without the feature, so every `avx2::` call is a genuine function
/// call. Below two lane-widths along the vectorised axis that call
/// overhead outweighs any vector win, and the portable instantiation —
/// bit-identical and fully inlinable — is used instead.
const AVX2_MIN_LEN: usize = 2 * SIMD_LANES;

macro_rules! simd_dispatch {
    ($self:ident, $len:expr, $name:ident :: < $acc:literal > ( $($arg:expr),* )) => {{
        #[cfg(target_arch = "x86_64")]
        if $self.avx2 && $len >= AVX2_MIN_LEN {
            // SAFETY: `avx2` is only ever set by `active()` after
            // `is_x86_feature_detected!("avx2")` returned true.
            return unsafe { avx2::$name::<$acc>($($arg),*) };
        }
        portable::$name::<$acc>($($arg),*)
    }};
    ($self:ident, $len:expr, $name:ident ( $($arg:expr),* )) => {{
        #[cfg(target_arch = "x86_64")]
        if $self.avx2 && $len >= AVX2_MIN_LEN {
            // SAFETY: `avx2` is only ever set by `active()` after
            // `is_x86_feature_detected!("avx2")` returned true.
            return unsafe { avx2::$name($($arg),*) };
        }
        portable::$name($($arg),*)
    }};
}

impl Backend for SimdBackend {
    fn dot(&self, a: &[Elem], b: &[Elem]) -> Elem {
        simd_dispatch!(self, a.len(), dot(a, b))
    }
    fn dot_block(&self, a: &[Elem], bt: &[Elem], k: usize, out: &mut [Elem]) {
        simd_dispatch!(self, k, dot_block::<false>(a, bt, k, out))
    }
    fn dot_block_acc(&self, a: &[Elem], bt: &[Elem], k: usize, out: &mut [Elem]) {
        simd_dispatch!(self, k, dot_block::<true>(a, bt, k, out))
    }
    fn axpy(&self, scale: Elem, src: &[Elem], dst: &mut [Elem]) {
        simd_dispatch!(self, src.len(), axpy(scale, src, dst))
    }
    fn fold_rows(&self, src: &[Elem], out: &mut [Elem]) {
        simd_dispatch!(self, out.len(), fold_rows(src, out))
    }
    fn sum(&self, xs: &[Elem]) -> Elem {
        simd_dispatch!(self, xs.len(), sum(xs))
    }
    fn sum_sq(&self, xs: &[Elem]) -> Elem {
        simd_dispatch!(self, xs.len(), sum_sq(xs))
    }
    fn sum_sq_diff(&self, a: &[Elem], b: &[Elem]) -> Elem {
        simd_dispatch!(self, a.len(), sum_sq_diff(a, b))
    }
    fn bias_gelu_forward(&self, sx: &[Elem], sb: &[Elem], out: &mut [Elem], tanh: &mut [Elem]) {
        simd_dispatch!(self, sx.len(), bias_gelu_forward(sx, sb, out, tanh))
    }
    fn bias_gelu_backward(
        &self,
        sg: &[Elem],
        sx: &[Elem],
        sb: &[Elem],
        tanh: &[Elem],
        gsum: &mut [Elem],
    ) {
        simd_dispatch!(self, sg.len(), bias_gelu_backward(sg, sx, sb, tanh, gsum))
    }
}

// ---------------------------------------------------------------------
// Selection
// ---------------------------------------------------------------------

/// Process-wide backend choice: 0 = undecided, 1 = scalar, 2 = simd.
static PROCESS_KIND: AtomicU8 = AtomicU8::new(0);

thread_local! {
    /// Per-thread override installed by [`BackendModeGuard`].
    static OVERRIDE: Cell<Option<BackendKind>> = const { Cell::new(None) };
}

fn kind_code(kind: BackendKind) -> u8 {
    match kind {
        BackendKind::Scalar => 1,
        BackendKind::Simd => 2,
    }
}

/// The `METADSE_BACKEND` policy: `simd` unless the variable selects
/// `scalar` (unrecognised values also fall back to `scalar`, the
/// conservative choice).
fn detect() -> BackendKind {
    match std::env::var("METADSE_BACKEND") {
        Ok(v) if v == "simd" => BackendKind::Simd,
        Ok(_) => BackendKind::Scalar,
        Err(_) => BackendKind::Simd,
    }
}

fn process_kind() -> BackendKind {
    loop {
        match PROCESS_KIND.load(Ordering::Relaxed) {
            1 => return BackendKind::Scalar,
            2 => return BackendKind::Simd,
            _ => {
                let detected = detect();
                let _ = PROCESS_KIND.compare_exchange(
                    0,
                    kind_code(detected),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                );
                // Re-read: if another thread won the race, honour its
                // choice so the whole process agrees.
            }
        }
    }
}

/// Overrides the process-wide backend (bench binaries measuring both
/// backends in one process; threads spawned afterwards inherit it). Tests
/// that need a scoped, single-thread override should use
/// [`BackendModeGuard`] instead.
pub fn set_process_kind(kind: BackendKind) {
    PROCESS_KIND.store(kind_code(kind), Ordering::Relaxed);
}

/// The backend kind active on the current thread.
pub fn kind() -> BackendKind {
    OVERRIDE.with(|c| c.get()).unwrap_or_else(process_kind)
}

#[cfg(target_arch = "x86_64")]
fn avx2_available() -> bool {
    static AVX2: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *AVX2.get_or_init(|| std::arch::is_x86_feature_detected!("avx2"))
}

/// The resolved kernel set for the current thread, as a `Copy` value.
///
/// Deliberately an enum rather than a `&dyn Backend`: the hot callers
/// (packed matmul, fused kernels) invoke a primitive *per output row*,
/// and on the dispatch-bound geometries (rows of 2–8 elements) a
/// virtual call costs more than the row's arithmetic. An inlinable
/// match lets LLVM hoist the branch out of the row loops and inline
/// the kernel bodies, restoring the pre-abstraction code shape.
#[derive(Clone, Copy)]
pub(crate) enum ActiveBackend {
    Scalar,
    Simd(SimdBackend),
}

macro_rules! active_dispatch {
    ($self:ident . $method:ident ( $($arg:expr),* )) => {
        match $self {
            ActiveBackend::Scalar => Backend::$method(&ScalarBackend, $($arg),*),
            ActiveBackend::Simd(s) => Backend::$method(&s, $($arg),*),
        }
    };
}

impl ActiveBackend {
    #[inline(always)]
    pub(crate) fn dot_block(self, a: &[Elem], bt: &[Elem], k: usize, out: &mut [Elem]) {
        active_dispatch!(self.dot_block(a, bt, k, out))
    }
    #[inline(always)]
    pub(crate) fn dot_block_acc(self, a: &[Elem], bt: &[Elem], k: usize, out: &mut [Elem]) {
        active_dispatch!(self.dot_block_acc(a, bt, k, out))
    }
    #[inline(always)]
    pub(crate) fn axpy(self, scale: Elem, src: &[Elem], dst: &mut [Elem]) {
        active_dispatch!(self.axpy(scale, src, dst))
    }
    #[inline(always)]
    pub(crate) fn fold_rows(self, src: &[Elem], out: &mut [Elem]) {
        active_dispatch!(self.fold_rows(src, out))
    }
    #[inline(always)]
    pub(crate) fn sum(self, xs: &[Elem]) -> Elem {
        active_dispatch!(self.sum(xs))
    }
    #[inline(always)]
    pub(crate) fn sum_sq(self, xs: &[Elem]) -> Elem {
        active_dispatch!(self.sum_sq(xs))
    }
    #[inline(always)]
    pub(crate) fn sum_sq_diff(self, a: &[Elem], b: &[Elem]) -> Elem {
        active_dispatch!(self.sum_sq_diff(a, b))
    }
    #[inline(always)]
    pub(crate) fn bias_gelu_forward(
        self,
        sx: &[Elem],
        sb: &[Elem],
        out: &mut [Elem],
        tanh: &mut [Elem],
    ) {
        active_dispatch!(self.bias_gelu_forward(sx, sb, out, tanh))
    }
    #[inline(always)]
    pub(crate) fn bias_gelu_backward(
        self,
        sg: &[Elem],
        sx: &[Elem],
        sb: &[Elem],
        tanh: &[Elem],
        gsum: &mut [Elem],
    ) {
        active_dispatch!(self.bias_gelu_backward(sg, sx, sb, tanh, gsum))
    }
}

/// The active backend kernels for the current thread.
pub(crate) fn active() -> ActiveBackend {
    match kind() {
        BackendKind::Scalar => ActiveBackend::Scalar,
        BackendKind::Simd => {
            #[cfg(target_arch = "x86_64")]
            let avx2 = avx2_available();
            #[cfg(not(target_arch = "x86_64"))]
            let avx2 = false;
            ActiveBackend::Simd(SimdBackend { avx2 })
        }
    }
}

/// RAII override of the backend on the current thread; restores the
/// previous state on drop. Does **not** propagate to worker threads — use
/// [`set_process_kind`] when spawned work must follow.
pub struct BackendModeGuard {
    prev: Option<BackendKind>,
}

impl BackendModeGuard {
    pub fn set(kind: BackendKind) -> Self {
        let prev = OVERRIDE.with(|c| c.replace(Some(kind)));
        BackendModeGuard { prev }
    }
}

impl Drop for BackendModeGuard {
    fn drop(&mut self) {
        let prev = self.prev;
        let _ = OVERRIDE.try_with(|c| c.set(prev));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reassociation bound for an n-term reduction split into 8 lanes:
    /// each lane does ≤ n/8 sequential adds, the combine tree adds 3
    /// levels, and every partial is bounded by Σ|terms|.
    fn tolerance(terms: &[Elem]) -> Elem {
        let mag: Elem = terms.iter().map(|t| t.abs()).sum();
        (terms.len() as Elem / 8.0 + 3.0) * Elem::EPSILON * mag
    }

    /// The lane/tree evaluation the chunked kernels perform: element `i`
    /// feeds lane `i % W`, partials combine through the fixed `hadd` tree.
    fn lane_tree(terms: &[Elem]) -> Elem {
        let mut acc = [0.0; SIMD_LANES];
        for (i, &t) in terms.iter().enumerate() {
            acc[i % SIMD_LANES] += t;
        }
        ((acc[0] + acc[1]) + (acc[2] + acc[3])) + ((acc[4] + acc[5]) + (acc[6] + acc[7]))
    }

    /// The kernels' small-`n` fast paths replace the lane/tree form with a
    /// sequential fold for `n <= SEQ_EQUIV_MAX`. Exhaustively verify the
    /// bit-equivalence over adversarial values (signed zeros, subnormals,
    /// infinities, cancellation) — and that it genuinely stops at 4 terms,
    /// so the threshold cannot be raised.
    #[test]
    fn seq_equiv_threshold_is_exact_and_tight() {
        let vals: [Elem; 8] = [0.0, -0.0, 1.0, -1.0, 0.1, 1e308, 5e-324, -0.1];
        for n in 0..=SEQ_EQUIV_MAX {
            for combo in 0..vals.len().pow(n as u32) {
                let mut c = combo;
                let terms: Vec<Elem> = (0..n)
                    .map(|_| {
                        let v = vals[c % vals.len()];
                        c /= vals.len();
                        v
                    })
                    .collect();
                let fold: Elem = terms.iter().fold(0.0, |s, &t| s + t);
                assert_eq!(
                    fold.to_bits(),
                    lane_tree(&terms).to_bits(),
                    "terms {terms:?}"
                );
            }
        }
        // At 4 terms the tree computes `(t0+t1)+(t2+t3)` against the
        // fold's `((t0+t1)+t2)+t3`: three below-half-ulp increments are
        // each absorbed sequentially but pair up inside the tree.
        let t4 = [1.0, 1e-16, 1e-16, 1e-16];
        let fold: Elem = t4.iter().fold(0.0, |s, &t| s + t);
        assert_ne!(fold.to_bits(), lane_tree(&t4).to_bits());
    }

    #[test]
    fn simd_dot_matches_scalar_within_bound_all_remainders() {
        for n in [0, 1, 5, 7, 8, 9, 15, 16, 23, 64, 101] {
            let a: Vec<Elem> = (0..n).map(|i| ((i * 37 + 11) % 19) as Elem - 9.0).collect();
            let b: Vec<Elem> = (0..n)
                .map(|i| ((i * 53 + 3) % 17) as Elem * 0.25 - 2.0)
                .collect();
            let terms: Vec<Elem> = a.iter().zip(&b).map(|(x, y)| x * y).collect();
            let s = ScalarBackend.dot(&a, &b);
            let v = SimdBackend { avx2: false }.dot(&a, &b);
            assert!(
                (s - v).abs() <= tolerance(&terms),
                "n={n}: scalar {s} vs simd {v}"
            );
        }
    }

    #[test]
    fn avx2_and_portable_simd_agree_bitwise() {
        #[cfg(target_arch = "x86_64")]
        {
            if !avx2_available() {
                return;
            }
            let a: Vec<Elem> = (0..77).map(|i| (i as Elem).sin()).collect();
            let b: Vec<Elem> = (0..77).map(|i| (i as Elem * 0.7).cos()).collect();
            let portable = SimdBackend { avx2: false };
            let wide = SimdBackend { avx2: true };
            assert_eq!(portable.dot(&a, &b).to_bits(), wide.dot(&a, &b).to_bits());
            assert_eq!(portable.sum(&a).to_bits(), wide.sum(&a).to_bits());
            assert_eq!(portable.sum_sq(&a).to_bits(), wide.sum_sq(&a).to_bits());
            assert_eq!(
                portable.sum_sq_diff(&a, &b).to_bits(),
                wide.sum_sq_diff(&a, &b).to_bits()
            );
            // k must clear AVX2_MIN_LEN or `wide` silently takes the
            // portable path and the comparison is vacuous.
            let mut o1 = vec![0.0; 4];
            let mut o2 = vec![0.0; 4];
            portable.dot_block(&a[..19], &b[..76], 19, &mut o1);
            wide.dot_block(&a[..19], &b[..76], 19, &mut o2);
            for (x, y) in o1.iter().zip(&o2) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    #[test]
    fn dot_block_matches_per_column_dot_exactly() {
        // The 4-wide column unroll must be a pure scheduling change.
        for be in [&SimdBackend { avx2: false } as &dyn Backend, &ScalarBackend] {
            let k = 13;
            let cols = 9;
            let a: Vec<Elem> = (0..k).map(|i| (i as Elem) * 0.5 - 3.0).collect();
            let bt: Vec<Elem> = (0..cols * k).map(|i| ((i % 7) as Elem) - 3.0).collect();
            let mut block = vec![0.0; cols];
            be.dot_block(&a, &bt, k, &mut block);
            for j in 0..cols {
                let want = be.dot(&a, &bt[j * k..(j + 1) * k]);
                assert_eq!(block[j].to_bits(), want.to_bits(), "col {j}");
            }
            // The accumulating variant adds on top.
            let mut acc = block.clone();
            be.dot_block_acc(&a, &bt, k, &mut acc);
            for j in 0..cols {
                assert_eq!(acc[j], block[j] + block[j]);
            }
        }
    }

    #[test]
    fn nan_propagates_through_both_backends() {
        let mut xs = vec![1.0; 20];
        xs[13] = Elem::NAN;
        for be in [&ScalarBackend as &dyn Backend, &SimdBackend { avx2: false }] {
            assert!(be.sum(&xs).is_nan());
            assert!(be.sum_sq(&xs).is_nan());
            assert!(be.dot(&xs, &xs).is_nan());
        }
    }

    #[test]
    fn selection_guard_overrides_and_restores() {
        let ambient = kind();
        {
            let _g = BackendModeGuard::set(BackendKind::Scalar);
            assert_eq!(kind(), BackendKind::Scalar);
            assert_eq!(active().sum(&[2.0, 4.0]), 6.0);
            {
                let _inner = BackendModeGuard::set(BackendKind::Simd);
                assert_eq!(kind(), BackendKind::Simd);
            }
            assert_eq!(kind(), BackendKind::Scalar);
        }
        assert_eq!(kind(), ambient);
    }
}
