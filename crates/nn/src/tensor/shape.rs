//! Shape and broadcasting arithmetic shared by all tensor operations.
//!
//! Tensors in this crate are always dense, row-major and contiguous; shape
//! logic therefore reduces to a handful of index computations collected here.

/// Number of elements implied by a shape.
///
/// The empty shape `[]` denotes a scalar and has one element.
pub fn numel(shape: &[usize]) -> usize {
    shape.iter().product()
}

/// Row-major strides for a contiguous tensor of the given shape.
pub fn contiguous_strides(shape: &[usize]) -> Vec<usize> {
    let mut strides = vec![0; shape.len()];
    let mut acc = 1;
    for i in (0..shape.len()).rev() {
        strides[i] = acc;
        acc *= shape[i];
    }
    strides
}

/// Computes the NumPy-style broadcast of two shapes.
///
/// Shapes are aligned at the trailing dimension; a dimension of size 1 (or a
/// missing leading dimension) stretches to match the other operand.
///
/// Returns `None` when the shapes are incompatible.
pub fn broadcast_shapes(a: &[usize], b: &[usize]) -> Option<Vec<usize>> {
    let ndim = a.len().max(b.len());
    let mut out = vec![0; ndim];
    for (i, slot) in out.iter_mut().enumerate() {
        let da = dim_from_end(a, ndim - 1 - i);
        let db = dim_from_end(b, ndim - 1 - i);
        *slot = if da == db {
            da
        } else if da == 1 {
            db
        } else if db == 1 {
            da
        } else {
            return None;
        };
    }
    Some(out)
}

/// Dimension of `shape` at distance `k` from its last axis, padding missing
/// leading axes with 1.
fn dim_from_end(shape: &[usize], k: usize) -> usize {
    if k < shape.len() {
        shape[shape.len() - 1 - k]
    } else {
        1
    }
}

/// Whether `from` can be broadcast to `to` without reshaping.
pub fn broadcastable_to(from: &[usize], to: &[usize]) -> bool {
    if from.len() > to.len() {
        return false;
    }
    for k in 0..to.len() {
        let df = dim_from_end(from, k);
        let dt = dim_from_end(to, k);
        if df != dt && df != 1 {
            return false;
        }
    }
    true
}

/// Strides for reading a tensor of shape `from` as if it had shape `to`
/// (broadcast dimensions get stride 0).
///
/// # Panics
///
/// Panics if `from` is not broadcastable to `to`.
pub fn broadcast_strides(from: &[usize], to: &[usize]) -> Vec<usize> {
    assert!(
        broadcastable_to(from, to),
        "shape {from:?} is not broadcastable to {to:?}"
    );
    let base = contiguous_strides(from);
    let mut out = vec![0; to.len()];
    for k in 0..to.len() {
        let df = dim_from_end(from, k);
        if df != 1 && k < from.len() {
            out[to.len() - 1 - k] = base[from.len() - 1 - k];
        }
    }
    out
}

/// Iterator-free index mapper: walks the flat indices of an output shape and
/// yields the corresponding flat offset in a (possibly broadcast) input.
#[derive(Debug, Clone)]
pub struct OffsetWalker {
    shape: Vec<usize>,
    strides: Vec<usize>,
    coords: Vec<usize>,
    offset: usize,
    remaining: usize,
}

impl OffsetWalker {
    /// Creates a walker over `out_shape` reading an operand whose broadcast
    /// strides are `strides` (as produced by [`broadcast_strides`]).
    pub fn new(out_shape: &[usize], strides: Vec<usize>) -> Self {
        assert_eq!(out_shape.len(), strides.len());
        OffsetWalker {
            shape: out_shape.to_vec(),
            strides,
            coords: vec![0; out_shape.len()],
            offset: 0,
            remaining: numel(out_shape),
        }
    }
}

impl Iterator for OffsetWalker {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        if self.remaining == 0 {
            return None;
        }
        let current = self.offset;
        self.remaining -= 1;
        // Advance the multi-index (row-major order).
        for axis in (0..self.shape.len()).rev() {
            self.coords[axis] += 1;
            self.offset += self.strides[axis];
            if self.coords[axis] < self.shape[axis] {
                break;
            }
            self.offset -= self.strides[axis] * self.shape[axis];
            self.coords[axis] = 0;
        }
        Some(current)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numel_handles_scalars_and_zeros() {
        assert_eq!(numel(&[]), 1);
        assert_eq!(numel(&[3, 4]), 12);
        assert_eq!(numel(&[3, 0, 4]), 0);
    }

    #[test]
    fn contiguous_strides_row_major() {
        assert_eq!(contiguous_strides(&[2, 3, 4]), vec![12, 4, 1]);
        assert_eq!(contiguous_strides(&[5]), vec![1]);
        assert!(contiguous_strides(&[]).is_empty());
    }

    #[test]
    fn broadcast_shapes_basic() {
        assert_eq!(broadcast_shapes(&[3, 1], &[1, 4]), Some(vec![3, 4]));
        assert_eq!(broadcast_shapes(&[2, 3], &[3]), Some(vec![2, 3]));
        assert_eq!(broadcast_shapes(&[2, 3], &[2, 3]), Some(vec![2, 3]));
        assert_eq!(broadcast_shapes(&[], &[2, 2]), Some(vec![2, 2]));
        assert_eq!(broadcast_shapes(&[2, 3], &[4]), None);
    }

    #[test]
    fn broadcastable_to_rules() {
        assert!(broadcastable_to(&[1, 4], &[3, 4]));
        assert!(broadcastable_to(&[4], &[3, 4]));
        assert!(broadcastable_to(&[], &[3, 4]));
        assert!(!broadcastable_to(&[3, 4], &[4]));
        assert!(!broadcastable_to(&[2, 4], &[3, 4]));
    }

    #[test]
    fn broadcast_strides_zeroes_stretched_axes() {
        assert_eq!(broadcast_strides(&[1, 4], &[3, 4]), vec![0, 1]);
        assert_eq!(broadcast_strides(&[4], &[3, 4]), vec![0, 1]);
        assert_eq!(broadcast_strides(&[3, 1], &[3, 4]), vec![1, 0]);
    }

    #[test]
    fn offset_walker_matches_manual_broadcast() {
        // Input [2,1] broadcast over output [2,3].
        let strides = broadcast_strides(&[2, 1], &[2, 3]);
        let offsets: Vec<usize> = OffsetWalker::new(&[2, 3], strides).collect();
        assert_eq!(offsets, vec![0, 0, 0, 1, 1, 1]);
    }

    #[test]
    fn offset_walker_identity() {
        let strides = contiguous_strides(&[2, 2]);
        let offsets: Vec<usize> = OffsetWalker::new(&[2, 2], strides).collect();
        assert_eq!(offsets, vec![0, 1, 2, 3]);
    }
}
