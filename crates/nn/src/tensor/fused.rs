//! Fused graph nodes for the transformer hot path.
//!
//! Each kernel here replaces a chain of primitive nodes (softmax is five,
//! layernorm is ten, gelu is eight) with a *single* graph node whose forward
//! is one or two tight loops over pooled buffers. The hand-written backward
//! is expressed with ordinary tensor operations, so `create_graph = true`
//! still yields differentiable gradients — double-backward (full
//! second-order MAML) keeps working through every fused kernel.
//!
//! Bit-identity contract: with fusion enabled, forward values **and**
//! gradient values are bit-for-bit identical to the unfused composite that
//! runs when fusion is disabled (`METADSE_FUSED=0` or [`FusedModeGuard`]).
//! That holds because
//!
//! 1. the fused forward loops replicate the composite's per-element
//!    floating-point expression trees in the same order (Rust never
//!    contracts `a * b + c` into an FMA, so `h * gamma + beta` in a loop is
//!    the same two rounding steps as separate `mul`/`add` nodes), and
//! 2. the fused backward emits exactly the tensor-op sequence the autograd
//!    engine would have produced for the composite, including the left-
//!    associated accumulation order of reused parents; when gradients are
//!    *not* being recorded (`create_graph = false`, the first-order MAML
//!    hot path), an equivalent raw loop computes the same per-element
//!    expression trees without materialising the intermediate tensors.
//!
//! The cross-build determinism digest and the fused-vs-composite equality
//! tests in `crates/nn/tests/fused.rs` enforce this contract.

use std::cell::Cell;
use std::rc::Rc;

use super::backend;
use super::ops::{axis_blocks, is_suffix_shape, pow_elem};
use super::pool;
use crate::autograd;
use crate::tensor::{BackwardFn, Tensor};
use crate::Elem;
use metadse_obs as obs;

thread_local! {
    static FUSED: Cell<bool> =
        Cell::new(std::env::var("METADSE_FUSED").map_or(true, |v| v != "0"));
}

/// Whether fused kernels are active on this thread (default yes; set
/// `METADSE_FUSED=0` to fall back to the primitive compositions).
pub fn is_enabled() -> bool {
    FUSED.with(|c| c.get())
}

/// RAII toggle for kernel fusion on the current thread; restores the
/// previous mode on drop. Used by the equality tests that assert fused and
/// composite paths agree bit-for-bit.
pub struct FusedModeGuard {
    prev: bool,
}

impl FusedModeGuard {
    pub fn set(enabled: bool) -> Self {
        let prev = FUSED.with(|c| c.replace(enabled));
        FusedModeGuard { prev }
    }
}

impl Drop for FusedModeGuard {
    fn drop(&mut self) {
        FUSED.with(|c| c.set(self.prev));
    }
}

/// Activation applied by [`Tensor::bias_add_activation`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Activation {
    Identity,
    Relu,
    Sigmoid,
    Gelu,
}

impl Activation {
    /// Applies the activation as (composed) primitive tensor ops.
    pub fn apply(self, t: &Tensor) -> Tensor {
        match self {
            Activation::Identity => t.clone(),
            Activation::Relu => t.relu(),
            Activation::Sigmoid => t.sigmoid(),
            Activation::Gelu => t.gelu(),
        }
    }

    /// Scalar forward, replicating the corresponding tensor op's
    /// per-element expression tree exactly.
    #[inline]
    fn eval(self, s: Elem) -> Elem {
        match self {
            Activation::Identity => s,
            Activation::Relu => {
                if s > 0.0 {
                    s
                } else {
                    0.0
                }
            }
            Activation::Sigmoid => {
                // Same stable two-branch form as `Tensor::sigmoid`.
                if s >= 0.0 {
                    1.0 / (1.0 + (-s).exp())
                } else {
                    let e = s.exp();
                    e / (1.0 + e)
                }
            }
            Activation::Gelu => {
                // Mirrors `Tensor::gelu` op by op (the cube through the
                // same `pow_elem` form the `powf` op uses).
                let c = (2.0 / std::f64::consts::PI).sqrt();
                let p = pow_elem(s, 3.0);
                let pm = p * 0.044715;
                let i1 = s + pm;
                let i2 = i1 * c;
                let t = i2.tanh();
                let t1 = t + 1.0;
                let m = s * t1;
                m * 0.5
            }
        }
    }
}

impl Tensor {
    /// Numerically stable softmax along `axis` as a single graph node.
    ///
    /// Values and gradients are bit-identical to [`Tensor::softmax`], which
    /// is used as the fallback when fusion is disabled.
    ///
    /// # Panics
    ///
    /// Panics if `axis` is out of range.
    pub fn softmax_fused(&self, axis: usize) -> Tensor {
        if !is_enabled() {
            return self.softmax(axis);
        }
        obs::counter("nn/fused_calls", 1);
        let shape = self.shape().to_vec();
        let (outer, dim, inner) = axis_blocks(&shape, axis);
        let lanes = outer * inner;
        let n = self.numel();
        let src = self.data();
        let mut maxv = pool::take_filled(lanes, Elem::NEG_INFINITY);
        for o in 0..outer {
            for d in 0..dim {
                for i in 0..inner {
                    let v = src[(o * dim + d) * inner + i];
                    let slot = &mut maxv[o * inner + i];
                    if v > *slot {
                        *slot = v;
                    }
                }
            }
        }
        let mut out = pool::take_zeroed(n);
        // The backward needs the raw exponentials and lane denominators;
        // keeping the forward's values (instead of recomputing them from
        // `x`) changes no bits and skips a libm `exp` per element.
        let mut exp_cache: Vec<Elem> = Vec::with_capacity(n);
        let mut denom: Vec<Elem> = vec![0.0; lanes];
        if inner == 1 && dim > backend::SEQ_EQUIV_MAX {
            // Trailing-axis softmax (the attention pattern): each lane's
            // exponentials are a contiguous row, so the denominator is one
            // backend `sum` — the same reduction the composite's `sum_to`
            // fast path performs on the materialized exponentials. Rows of
            // at most `SEQ_EQUIV_MAX` elements skip this: there the chunked
            // sum degenerates to the sequential accumulation the plain loop
            // below already performs, with identical bits on every backend.
            let be = backend::active();
            for o in 0..outer {
                let row = &mut out[o * dim..(o + 1) * dim];
                for (d, slot) in row.iter_mut().enumerate() {
                    *slot = (src[o * dim + d] - maxv[o]).exp();
                }
                denom[o] = be.sum(row);
            }
        } else {
            for o in 0..outer {
                for d in 0..dim {
                    for i in 0..inner {
                        let idx = (o * dim + d) * inner + i;
                        let lane = o * inner + i;
                        let e = (src[idx] - maxv[lane]).exp();
                        out[idx] = e;
                        denom[lane] += e;
                    }
                }
            }
        }
        exp_cache.extend_from_slice(&out);
        for o in 0..outer {
            for d in 0..dim {
                for i in 0..inner {
                    out[(o * dim + d) * inner + i] /= denom[o * inner + i];
                }
            }
        }
        drop(src);
        pool::recycle(maxv);

        let keep = {
            let mut k = shape.clone();
            k[axis] = 1;
            k
        };
        let backward: BackwardFn = Rc::new(move |g, ps, _out| {
            let x = &ps[0];
            if autograd::is_grad_enabled() {
                // Differentiable path: re-emit the composite's backward op
                // sequence (the shift constant is detached, exactly as in
                // the composite, because softmax is shift-invariant).
                let ev = x.sub(&x.max_axis_detached(axis)).exp();
                let dv = ev.sum_to(&keep);
                let ge1 = g.div(&dv);
                let gd = g.mul(&ev).neg().div(&dv.mul(&dv)).sum_to(&keep);
                let gx = ge1.add(&gd.broadcast_to(x.shape())).mul(&ev);
                return vec![Some(gx)];
            }
            // First-order fast path: same per-element expression trees as
            // the composite, reusing the forward's exponentials and lane
            // denominators instead of recomputing them.
            let (outer, dim, inner) = axis_blocks(x.shape(), axis);
            let lanes = outer * inner;
            let sg = g.data();
            let n = exp_cache.len();
            let (ev, dv) = (&exp_cache, &denom);
            let mut gd = pool::take_zeroed(lanes);
            if inner == 1 && dim > backend::SEQ_EQUIV_MAX {
                let be = backend::active();
                let mut terms = pool::take_zeroed(dim);
                for (o, gd) in gd.iter_mut().enumerate() {
                    let dvsq = dv[o] * dv[o];
                    for (d, slot) in terms.iter_mut().enumerate() {
                        let idx = o * dim + d;
                        let t = sg[idx] * ev[idx];
                        *slot = -t / dvsq;
                    }
                    *gd = be.sum(&terms);
                }
                pool::recycle(terms);
            } else {
                for o in 0..outer {
                    for d in 0..dim {
                        for i in 0..inner {
                            let idx = (o * dim + d) * inner + i;
                            let lane = o * inner + i;
                            let t = sg[idx] * ev[idx];
                            gd[lane] += -t / (dv[lane] * dv[lane]);
                        }
                    }
                }
            }
            let mut gx = pool::take_zeroed(n);
            for o in 0..outer {
                for d in 0..dim {
                    for i in 0..inner {
                        let idx = (o * dim + d) * inner + i;
                        let lane = o * inner + i;
                        gx[idx] = (sg[idx] / dv[lane] + gd[lane]) * ev[idx];
                    }
                }
            }
            drop(sg);
            pool::recycle(gd);
            vec![Some(Tensor::from_buf(gx, x.shape()))]
        });
        Tensor::from_op(out, shape, vec![self.clone()], backward)
    }

    /// Layer normalisation over the trailing axis with an affine transform,
    /// `gamma * (x - mean) / sqrt(var + eps) + beta`, as one graph node.
    ///
    /// # Panics
    ///
    /// Panics if `gamma`/`beta` do not have shape `[last_dim]`.
    pub fn layernorm_affine(&self, gamma: &Tensor, beta: &Tensor, eps: Elem) -> Tensor {
        let dim = *self
            .shape()
            .last()
            .expect("layernorm_affine requires at least one axis");
        assert_eq!(gamma.shape(), [dim], "gamma must have shape [{dim}]");
        assert_eq!(beta.shape(), [dim], "beta must have shape [{dim}]");
        let inv = 1.0 / dim as Elem;
        if !is_enabled() {
            return layernorm_affine_composite(self, gamma, beta, eps, inv);
        }
        obs::counter("nn/fused_calls", 1);
        let be = backend::active();
        let n = self.numel();
        let rows = n / dim;
        let src = self.data();
        let gm = gamma.data();
        let bt = beta.data();
        let mut out = pool::take_zeroed(n);
        for r in 0..rows {
            let base = r * dim;
            let mean = be.sum(&src[base..base + dim]) * inv;
            // One rounded square per element, then the backend's sum order:
            // the same bits as the composite's materialized `c * c` row fed
            // through `sum_to`. For rows of at most `SEQ_EQUIV_MAX` elements
            // the chunked sum degenerates to sequential accumulation on
            // every backend, so the square-accumulate fuses into the
            // centering pass with identical bits and one fewer row pass.
            let s2 = if dim <= backend::SEQ_EQUIV_MAX {
                let mut s2 = 0.0;
                for j in 0..dim {
                    let c = src[base + j] - mean;
                    out[base + j] = c;
                    s2 += c * c;
                }
                s2
            } else {
                for j in 0..dim {
                    out[base + j] = src[base + j] - mean;
                }
                be.sum_sq(&out[base..base + dim])
            };
            let sd = (s2 * inv + eps).sqrt();
            for j in 0..dim {
                let h = out[base + j] / sd;
                out[base + j] = h * gm[j] + bt[j];
            }
        }
        drop(src);
        drop(gm);
        drop(bt);

        let keep = {
            let mut k = self.shape().to_vec();
            *k.last_mut().unwrap() = 1;
            k
        };
        let backward: BackwardFn = Rc::new(move |g, ps, _out| {
            let (x, gamma, beta) = (&ps[0], &ps[1], &ps[2]);
            if autograd::is_grad_enabled() {
                // Re-emit the composite decomposition and its exact
                // gradient sequence (including the two separately computed
                // `gq * c` terms from the reused `c` parent of `c * c`).
                let s1 = x.sum_to(&keep);
                let mean = s1.mul_scalar(inv);
                let c = x.sub(&mean);
                let q = c.mul(&c);
                let v = q.sum_to(&keep).mul_scalar(inv);
                let sd = v.add_scalar(eps).sqrt();
                let h = c.div(&sd);
                let gbeta = g.sum_to(beta.shape());
                let gh = g.mul(gamma);
                let ggamma = g.mul(&h).sum_to(gamma.shape());
                let gc1 = gh.div(&sd);
                let gsd = gh.mul(&c).neg().div(&sd.mul(&sd)).sum_to(&keep);
                let ga = gsd.mul_scalar(0.5).div(&sd);
                let gs2 = ga.mul_scalar(inv);
                let gq = gs2.broadcast_to(x.shape());
                let gc = gc1.add(&gq.mul(&c)).add(&gq.mul(&c));
                let gmean = gc.neg().sum_to(&keep);
                let gs1 = gmean.mul_scalar(inv);
                let gx = gc.add(&gs1.broadcast_to(x.shape()));
                return vec![Some(gx), Some(ggamma), Some(gbeta)];
            }
            let be = backend::active();
            let dim = *x.shape().last().unwrap();
            let sx = x.data();
            let sgm = gamma.data();
            let sg = g.data();
            let n = sx.len();
            let rows = n / dim;
            let mut ggamma = pool::take_zeroed(dim);
            let mut gbeta = pool::take_zeroed(dim);
            let mut gx = pool::take_zeroed(n);
            let mut cbuf = pool::take_zeroed(dim);
            let mut ghbuf = pool::take_zeroed(dim);
            let mut terms = pool::take_zeroed(dim);
            // Rows of at most `SEQ_EQUIV_MAX` elements: same bit-preserving
            // fusion as the forward — chunked reductions degenerate to the
            // sequential accumulation the inline loops perform, on every
            // backend.
            let small = dim <= backend::SEQ_EQUIV_MAX;
            for r in 0..rows {
                let base = r * dim;
                let mean = be.sum(&sx[base..base + dim]) * inv;
                let s2 = if small {
                    let mut s2 = 0.0;
                    for j in 0..dim {
                        let c = sx[base + j] - mean;
                        cbuf[j] = c;
                        s2 += c * c;
                    }
                    s2
                } else {
                    for j in 0..dim {
                        cbuf[j] = sx[base + j] - mean;
                    }
                    be.sum_sq(&cbuf)
                };
                let sd = (s2 * inv + eps).sqrt();
                for j in 0..dim {
                    let gj = sg[base + j];
                    let h = cbuf[j] / sd;
                    ggamma[j] += gj * h;
                    gbeta[j] += gj;
                    ghbuf[j] = gj * sgm[j];
                }
                let sd2 = sd * sd;
                let gsd = if small {
                    let mut gsd = 0.0;
                    for j in 0..dim {
                        gsd += -(ghbuf[j] * cbuf[j]) / sd2;
                    }
                    gsd
                } else {
                    for j in 0..dim {
                        terms[j] = -(ghbuf[j] * cbuf[j]) / sd2;
                    }
                    be.sum(&terms)
                };
                let ga = gsd * 0.5 / sd;
                let gs2 = ga * inv;
                let gmean = if small {
                    let mut gmean = 0.0;
                    for j in 0..dim {
                        let t = gs2 * cbuf[j];
                        let gc = ghbuf[j] / sd + t + t;
                        gx[base + j] = gc;
                        gmean += -gc;
                    }
                    gmean
                } else {
                    for j in 0..dim {
                        let t = gs2 * cbuf[j];
                        let gc = ghbuf[j] / sd + t + t;
                        gx[base + j] = gc;
                        terms[j] = -gc;
                    }
                    be.sum(&terms)
                };
                let gs1 = gmean * inv;
                for j in 0..dim {
                    gx[base + j] += gs1;
                }
            }
            drop(sx);
            drop(sgm);
            drop(sg);
            pool::recycle(cbuf);
            pool::recycle(ghbuf);
            pool::recycle(terms);
            vec![
                Some(Tensor::from_buf(gx, x.shape())),
                Some(Tensor::from_buf(ggamma, &[dim])),
                Some(Tensor::from_buf(gbeta, &[dim])),
            ]
        });
        Tensor::from_op(
            out,
            self.shape().to_vec(),
            vec![self.clone(), gamma.clone(), beta.clone()],
            backward,
        )
    }

    /// `activation(self + bias)` as a single graph node, for the common
    /// case where `bias` is a trailing-suffix shape of `self` (the linear
    /// layer bias pattern). Falls back to the primitive composition when
    /// fusion is off, the shapes don't fit the pattern, or the activation
    /// is [`Activation::Identity`] (a plain `add` is already one node).
    ///
    /// # Panics
    ///
    /// Panics if the shapes are not broadcast-compatible (from the
    /// fallback `add`).
    pub fn bias_add_activation(&self, bias: &Tensor, act: Activation) -> Tensor {
        let fusable = is_enabled()
            && !matches!(act, Activation::Identity)
            && bias.numel() > 0
            && is_suffix_shape(bias.shape(), self.shape());
        if !fusable {
            return act.apply(&self.add(bias));
        }
        obs::counter("nn/fused_calls", 1);
        let sx = self.data();
        let sb = bias.data();
        let mut out = pool::take(sx.len());
        // GELU keeps its per-element tanh for the backward (the composite's
        // tanh node does the same through its stored output, so reusing it
        // here changes no bits — it just skips the libm recompute).
        let mut tanh_cache: Vec<Elem> = Vec::new();
        if matches!(act, Activation::Gelu) {
            let n = sx.len();
            tanh_cache.resize(n, 0.0);
            out.resize(n, 0.0);
            backend::active().bias_gelu_forward(&sx, &sb, &mut out, &mut tanh_cache);
        } else {
            let nb = sb.len();
            out.extend(
                sx.iter()
                    .enumerate()
                    .map(|(i, &x)| act.eval(x + sb[i % nb])),
            );
        }
        drop(sx);
        drop(sb);

        let bshape = bias.shape().to_vec();
        let backward: BackwardFn = Rc::new(move |g, ps, out| {
            if autograd::is_grad_enabled() {
                let gsum = match act {
                    Activation::Identity => unreachable!("identity is never fused"),
                    // `out > 0` iff the pre-activation is > 0, so the mask
                    // matches `relu`'s backward on the composite sum.
                    Activation::Relu => g.mul(&out.step_mask()),
                    Activation::Sigmoid => {
                        let d = out.mul(&out.neg().add_scalar(1.0));
                        g.mul(&d)
                    }
                    Activation::Gelu => {
                        let c = (2.0 / std::f64::consts::PI).sqrt();
                        let sv = ps[0].add(&ps[1]);
                        let tv = sv
                            .add(&sv.powf(3.0).mul_scalar(0.044715))
                            .mul_scalar(c)
                            .tanh();
                        let gm = g.mul_scalar(0.5);
                        let gs1 = gm.mul(&tv.add_scalar(1.0));
                        let gi2 = gm.mul(&sv).mul(&tv.mul(&tv).neg().add_scalar(1.0));
                        let gi1 = gi2.mul_scalar(c);
                        let gs3 = gi1.mul_scalar(0.044715).mul(&sv.powf(2.0).mul_scalar(3.0));
                        gs1.add(&gi1).add(&gs3)
                    }
                };
                let gb = gsum.sum_to(&bshape);
                return vec![Some(gsum), Some(gb)];
            }
            let sg = g.data();
            let so = out.data();
            let n = sg.len();
            let mut gsum = pool::take(n);
            match act {
                Activation::Identity => unreachable!("identity is never fused"),
                Activation::Relu => {
                    gsum.extend(sg.iter().zip(so.iter()).map(|(&gv, &ov)| {
                        let mask = if ov > 0.0 { 1.0 } else { 0.0 };
                        gv * mask
                    }));
                }
                Activation::Sigmoid => {
                    gsum.extend(sg.iter().zip(so.iter()).map(|(&gv, &ov)| {
                        let d = ov * (-ov + 1.0);
                        gv * d
                    }));
                }
                Activation::Gelu => {
                    let sx = ps[0].data();
                    let sb = ps[1].data();
                    gsum.resize(n, 0.0);
                    backend::active().bias_gelu_backward(&sg, &sx, &sb, &tanh_cache, &mut gsum);
                }
            }
            drop(sg);
            drop(so);
            let nb = ps[1].numel();
            let mut gb = pool::take_zeroed(nb);
            backend::active().fold_rows(&gsum, &mut gb);
            vec![
                Some(Tensor::from_buf(gsum, ps[0].shape())),
                Some(Tensor::from_buf(gb, ps[1].shape())),
            ]
        });
        Tensor::from_op(
            out,
            self.shape().to_vec(),
            vec![self.clone(), bias.clone()],
            backward,
        )
    }

    /// Mean squared error `mean((self - target)^2)` as one graph node
    /// (scalar output). Falls back to the primitive composition when fusion
    /// is off or the shapes differ (broadcasting case).
    pub fn sq_err_mean(&self, target: &Tensor) -> Tensor {
        if !is_enabled() || self.shape() != target.shape() {
            let diff = self.sub(target);
            return diff.mul(&diff).mean_all();
        }
        obs::counter("nn/fused_calls", 1);
        let inv = 1.0 / self.numel() as Elem;
        let sp = self.data();
        let st = target.data();
        let acc = backend::active().sum_sq_diff(&sp, &st);
        drop(sp);
        drop(st);

        let backward: BackwardFn = Rc::new(move |g, ps, _out| {
            let (pred, target) = (&ps[0], &ps[1]);
            if autograd::is_grad_enabled() {
                let diffv = pred.sub(target);
                let gsq = g.mul_scalar(inv).broadcast_to(pred.shape());
                // Two separately computed equal terms: `sq = diff * diff`
                // feeds `diff` twice, so the engine adds `gsq * diff` to
                // itself rather than scaling by two.
                let gdiff = gsq.mul(&diffv).add(&gsq.mul(&diffv));
                let gt = gdiff.neg();
                return vec![Some(gdiff), Some(gt)];
            }
            let sp = pred.data();
            let st = target.data();
            let gq = g.data()[0] * inv;
            let n = sp.len();
            let mut gpred = pool::take(n);
            let mut gtarget = pool::take(n);
            for (&p, &t) in sp.iter().zip(st.iter()) {
                let d = p - t;
                let term = gq * d;
                let gd = term + term;
                gpred.push(gd);
                gtarget.push(-gd);
            }
            drop(sp);
            drop(st);
            vec![
                Some(Tensor::from_buf(gpred, pred.shape())),
                Some(Tensor::from_buf(gtarget, target.shape())),
            ]
        });
        Tensor::from_op(
            vec![acc * inv],
            Vec::new(),
            vec![self.clone(), target.clone()],
            backward,
        )
    }
}

/// The unfused layernorm decomposition: shares one `mean`/`centered`
/// subgraph between the variance and the normaliser, so the fused backward
/// can mirror its gradient op sequence exactly. Forward values match the
/// textbook `mean_axis`/`var_axis` formulation bit-for-bit.
fn layernorm_affine_composite(
    x: &Tensor,
    gamma: &Tensor,
    beta: &Tensor,
    eps: Elem,
    inv: Elem,
) -> Tensor {
    let mut keep = x.shape().to_vec();
    *keep.last_mut().unwrap() = 1;
    // Pass-through barrier: `x` is read by both the mean and the centering,
    // which would hand its gradient slot two separate contributions. The
    // fused node hands it exactly one (`gc + broadcast(gs1)`), and when `x`
    // has other consumers (a residual connection) the accumulation
    // association would differ by an ulp. Funnelling both reads through a
    // same-shape reshape makes the composite contribute once too.
    let x = &x.reshape(x.shape());
    let mean = x.sum_to(&keep).mul_scalar(inv);
    let centered = x.sub(&mean);
    let var = centered.mul(&centered).sum_to(&keep).mul_scalar(inv);
    let sd = var.add_scalar(eps).sqrt();
    centered.div(&sd).mul(gamma).add(beta)
}
