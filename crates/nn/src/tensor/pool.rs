//! Thread-local recycled storage for tensor element buffers.
//!
//! Every tensor op allocates a fresh `Vec<Elem>` for its output; in the MAML
//! inner loop those buffers are dropped within microseconds, so the global
//! allocator sees a high-frequency churn of identically sized blocks. The
//! pool intercepts that churn: buffers are handed out by [`take`] /
//! [`take_filled`], and [`Tensor`](super::Tensor) returns its storage here
//! when the last handle drops.
//!
//! Buffers are keyed by bucketed length (next power of two), so a request
//! for 45·21 elements reuses any previous 1024-capacity buffer. The pool is
//! transparent to values: [`take`] returns an *empty* vec (length 0) that the
//! caller fully writes, and [`take_filled`] overwrites every element, so no
//! stale data can leak into results — enabling or disabling the pool is
//! bit-identical (asserted by the cross-build determinism digest).
//!
//! Lifetime policy: between meta-iterations the training loop calls
//! [`reclaim`], which trims each bucket to a small retained set and flushes
//! the hit/miss counters to `metadse-obs` (`nn/pool_hits` / `nn/pool_misses`).
//! Set `METADSE_POOL=0` to disable recycling entirely, or use
//! [`PoolModeGuard`] to toggle it from tests.

use std::cell::RefCell;

use crate::Elem;
use metadse_obs as obs;

/// Largest pooled buffer: 2^20 elements (8 MiB of `f64`).
const MAX_LOG2: usize = 20;
/// Buffers retained per bucket while the pool is live.
const BUCKET_DEPTH: usize = 64;
/// Buffers retained per bucket after a [`reclaim`] trim.
const RETAIN_AFTER_RECLAIM: usize = 8;

struct Pool {
    /// `buckets[b]` holds free buffers of capacity exactly `1 << b`.
    buckets: Vec<Vec<Vec<Elem>>>,
    enabled: bool,
    hits: u64,
    misses: u64,
}

impl Pool {
    fn new() -> Self {
        let enabled = std::env::var("METADSE_POOL").map_or(true, |v| v != "0");
        Pool {
            buckets: (0..=MAX_LOG2).map(|_| Vec::new()).collect(),
            enabled,
            hits: 0,
            misses: 0,
        }
    }
}

thread_local! {
    static POOL: RefCell<Pool> = RefCell::new(Pool::new());
}

#[inline]
fn bucket_of(len: usize) -> Option<usize> {
    let b = len.next_power_of_two().trailing_zeros() as usize;
    (b <= MAX_LOG2).then_some(b)
}

/// Hands out an empty buffer with capacity for at least `len` elements.
///
/// The returned vec has length 0; the caller is responsible for writing
/// every element (via `extend`/`resize`/`push`) before wrapping it in a
/// tensor. Capacity is rounded up to a power of two so the buffer can be
/// recycled on drop.
pub fn take(len: usize) -> Vec<Elem> {
    if len == 0 {
        return Vec::new();
    }
    POOL.try_with(|cell| {
        let mut pool = cell.borrow_mut();
        if !pool.enabled {
            return Vec::with_capacity(len);
        }
        match bucket_of(len) {
            Some(b) => {
                if let Some(mut buf) = pool.buckets[b].pop() {
                    pool.hits += 1;
                    buf.clear();
                    buf
                } else {
                    pool.misses += 1;
                    Vec::with_capacity(1 << b)
                }
            }
            None => Vec::with_capacity(len),
        }
    })
    .unwrap_or_else(|_| Vec::with_capacity(len))
}

/// Hands out a buffer of length `len` with every element set to `value`.
pub fn take_filled(len: usize, value: Elem) -> Vec<Elem> {
    let mut buf = take(len);
    buf.resize(len, value);
    buf
}

/// Hands out a zero-initialised buffer of length `len`.
pub fn take_zeroed(len: usize) -> Vec<Elem> {
    take_filled(len, 0.0)
}

/// Returns a buffer to the pool. Called from the `Tensor` storage drop and
/// from ops with transient scratch buffers.
///
/// Only power-of-two capacities are accepted (everything [`take`] hands out
/// qualifies); externally built vecs with odd capacities are simply freed.
pub fn recycle(buf: Vec<Elem>) {
    let cap = buf.capacity();
    if cap == 0 || !cap.is_power_of_two() {
        return;
    }
    let b = cap.trailing_zeros() as usize;
    if b > MAX_LOG2 {
        return;
    }
    let _ = POOL.try_with(|cell| {
        let mut pool = cell.borrow_mut();
        if pool.enabled && pool.buckets[b].len() < BUCKET_DEPTH {
            pool.buckets[b].push(buf);
        }
    });
}

/// Epoch reclaim point: trims each bucket to a small retained set and
/// flushes the hit/miss counters to `metadse-obs`.
///
/// The training loop calls this between meta-iterations (and the WAM sweep
/// after each task adaptation), so peak retained memory is bounded by one
/// iteration's working set rather than the whole run's high-water mark.
pub fn reclaim() {
    let _ = POOL.try_with(|cell| {
        let mut pool = cell.borrow_mut();
        for bucket in &mut pool.buckets {
            bucket.truncate(RETAIN_AFTER_RECLAIM);
            bucket.shrink_to(RETAIN_AFTER_RECLAIM);
        }
        if pool.hits > 0 {
            obs::counter("nn/pool_hits", pool.hits);
            pool.hits = 0;
        }
        if pool.misses > 0 {
            obs::counter("nn/pool_misses", pool.misses);
            pool.misses = 0;
        }
    });
}

/// RAII toggle for the pool on the current thread; restores the previous
/// mode on drop. Disabling drains already-pooled buffers lazily (they are
/// never handed out while disabled) — values are unaffected either way.
pub struct PoolModeGuard {
    prev: bool,
}

impl PoolModeGuard {
    pub fn set(enabled: bool) -> Self {
        let prev = POOL.with(|cell| {
            let mut pool = cell.borrow_mut();
            let prev = pool.enabled;
            pool.enabled = enabled;
            prev
        });
        PoolModeGuard { prev }
    }
}

impl Drop for PoolModeGuard {
    fn drop(&mut self) {
        let _ = POOL.try_with(|cell| cell.borrow_mut().enabled = self.prev);
    }
}

/// True when recycling is active on this thread (used by tests).
pub fn is_enabled() -> bool {
    POOL.try_with(|cell| cell.borrow().enabled).unwrap_or(false)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_recycle_roundtrip_hits_the_pool() {
        let _guard = PoolModeGuard::set(true);
        reclaim(); // flush counters so the assertions below are local
        let buf = take(100);
        assert!(buf.capacity() >= 100);
        assert!(buf.capacity().is_power_of_two());
        let cap = buf.capacity();
        recycle(buf);
        let again = take(100);
        assert_eq!(again.capacity(), cap);
        assert!(again.is_empty());
    }

    #[test]
    fn disabled_pool_does_not_retain() {
        let _guard = PoolModeGuard::set(false);
        let buf = take(64);
        let ptr = buf.as_ptr();
        recycle(buf);
        let again = take(64);
        // With recycling off a fresh allocation is made; contents are empty
        // either way, which is all callers rely on.
        assert!(again.is_empty());
        let _ = ptr;
    }

    #[test]
    fn filled_buffers_are_fully_initialised() {
        let _guard = PoolModeGuard::set(true);
        let mut buf = take_filled(10, 3.5);
        assert_eq!(buf.len(), 10);
        assert!(buf.iter().all(|&x| x == 3.5));
        // Dirty the buffer, recycle, and confirm the next take sees no residue.
        buf.iter_mut().for_each(|x| *x = f64::NAN);
        recycle(buf);
        let clean = take_zeroed(10);
        assert!(clean.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn oversized_buffers_bypass_the_pool() {
        let _guard = PoolModeGuard::set(true);
        let buf = take((1 << MAX_LOG2) + 1);
        assert!(buf.capacity() > (1 << MAX_LOG2));
        recycle(buf); // silently freed, must not panic
    }
}
