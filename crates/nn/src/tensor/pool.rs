//! Thread-local recycled storage for tensor element buffers, built on a
//! 32-byte-aligned growable buffer type ([`Buf`]).
//!
//! Every tensor op allocates a fresh buffer for its output; in the MAML
//! inner loop those buffers are dropped within microseconds, so the global
//! allocator sees a high-frequency churn of identically sized blocks. The
//! pool intercepts that churn: buffers are handed out by [`take`] /
//! [`take_filled`], and [`Tensor`](super::Tensor) returns its storage here
//! when the last handle drops.
//!
//! Storage is a [`Buf`], not a `Vec<f64>`: `Buf` keeps its elements in
//! 32-byte-aligned chunks so the SIMD backend's vector loads always start
//! on a full-width boundary (see `tensor/backend.rs`). `Buf` dereferences
//! to `[f64]`, so everything downstream of an op treats it as an ordinary
//! slice.
//!
//! Buffers are keyed by bucketed length (next power of two), so a request
//! for 45·21 elements reuses any previous 1024-capacity buffer. The pool is
//! transparent to values: [`take`] returns an *empty* buffer (length 0) that
//! the caller fully writes, and [`take_filled`] overwrites every element, so
//! no stale data can leak into results — enabling or disabling the pool is
//! bit-identical (asserted by the cross-build determinism digest).
//!
//! Lifetime policy: between meta-iterations the training loop calls
//! [`reclaim`], which trims each bucket to a small retained set and flushes
//! the hit/miss counters to `metadse-obs` (`nn/pool_hits` / `nn/pool_misses`).
//! Set `METADSE_POOL=0` to disable recycling entirely, or use
//! [`PoolModeGuard`] to toggle it from tests.

use std::cell::RefCell;

use crate::Elem;
use metadse_obs as obs;

/// Largest pooled buffer: 2^20 elements (8 MiB of `f64`).
const MAX_LOG2: usize = 20;
/// Buffers retained per bucket while the pool is live.
const BUCKET_DEPTH: usize = 64;
/// Buffers retained per bucket after a [`reclaim`] trim.
const RETAIN_AFTER_RECLAIM: usize = 8;

/// Alignment of every [`Buf`] allocation, in bytes: one AVX2 vector.
pub const BUF_ALIGN: usize = 32;

/// Elements per alignment chunk.
const CHUNK: usize = BUF_ALIGN / std::mem::size_of::<Elem>();

/// One 32-byte-aligned group of four `f64`s. A `Vec<Chunk>` allocation is
/// therefore always 32-byte aligned, which is what gives [`Buf`] its
/// alignment guarantee without any unsafe allocator tricks.
#[repr(C, align(32))]
#[derive(Clone, Copy)]
struct Chunk([Elem; CHUNK]);

impl Chunk {
    const ZERO: Chunk = Chunk([0.0; CHUNK]);
}

/// A growable `f64` buffer whose storage is always 32-byte aligned.
///
/// `Buf` behaves like a `Vec<f64>` for the operations the tensor layer
/// needs (`push`, `extend`, `resize`, slicing via `Deref`/`DerefMut`) and
/// maintains two extra invariants:
///
/// * the first element sits on a [`BUF_ALIGN`]-byte boundary, so SIMD
///   kernels can assume full-width aligned rows for contiguous buffers;
/// * a non-empty `Buf`'s element capacity is a power of two (≥ [`CHUNK`]),
///   so the recycling pool can bucket it without inspection.
#[derive(Default)]
pub struct Buf {
    chunks: Vec<Chunk>,
    len: usize,
}

impl Buf {
    /// An empty buffer with no allocation.
    pub fn new() -> Buf {
        Buf {
            chunks: Vec::new(),
            len: 0,
        }
    }

    /// An empty buffer with capacity for at least `n` elements (rounded up
    /// to the pool's power-of-two sizing).
    pub fn with_capacity(n: usize) -> Buf {
        let mut buf = Buf::new();
        buf.reserve_total(n);
        buf
    }

    /// Number of initialised elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no elements are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Element capacity (always a power of two when non-zero).
    #[inline]
    pub fn capacity(&self) -> usize {
        self.chunks.len() * CHUNK
    }

    /// Drops all elements, keeping the allocation.
    #[inline]
    pub fn clear(&mut self) {
        self.len = 0;
    }

    /// Ensures capacity for at least `total` elements.
    fn reserve_total(&mut self, total: usize) {
        if total <= self.capacity() {
            return;
        }
        let elems = total.next_power_of_two().max(CHUNK);
        self.chunks.resize(elems / CHUNK, Chunk::ZERO);
    }

    /// Ensures room for `additional` more elements.
    #[inline]
    pub fn reserve(&mut self, additional: usize) {
        self.reserve_total(self.len + additional);
    }

    /// Appends one element.
    #[inline]
    pub fn push(&mut self, v: Elem) {
        if self.len == self.capacity() {
            self.reserve_total(self.len + 1);
        }
        // SAFETY: `len < capacity` after the reserve; the slot is inside
        // the chunk allocation and `f64` has no invalid bit patterns.
        unsafe {
            *self.chunks.as_mut_ptr().cast::<Elem>().add(self.len) = v;
        }
        self.len += 1;
    }

    /// Appends every element of `values`.
    pub fn extend_from_slice(&mut self, values: &[Elem]) {
        self.reserve(values.len());
        // SAFETY: capacity was just reserved; source and destination are
        // distinct allocations.
        unsafe {
            let dst = self.chunks.as_mut_ptr().cast::<Elem>().add(self.len);
            std::ptr::copy_nonoverlapping(values.as_ptr(), dst, values.len());
        }
        self.len += values.len();
    }

    /// Resizes to `new_len`, filling any new slots with `value`.
    pub fn resize(&mut self, new_len: usize, value: Elem) {
        if new_len > self.len {
            self.reserve_total(new_len);
            // SAFETY: capacity covers `new_len`; every slot written is in
            // bounds of the chunk allocation.
            unsafe {
                let base = self.chunks.as_mut_ptr().cast::<Elem>();
                for i in self.len..new_len {
                    *base.add(i) = value;
                }
            }
        }
        self.len = new_len;
    }

    /// The elements as an owned `Vec` (copies).
    pub fn to_vec(&self) -> Vec<Elem> {
        self[..].to_vec()
    }
}

impl std::ops::Deref for Buf {
    type Target = [Elem];

    #[inline]
    fn deref(&self) -> &[Elem] {
        // SAFETY: the first `len` elements of the chunk storage are
        // initialised (`f64` has no invalid bit patterns and chunks are
        // zero-filled on growth), contiguous, and in bounds.
        unsafe { std::slice::from_raw_parts(self.chunks.as_ptr().cast(), self.len) }
    }
}

impl std::ops::DerefMut for Buf {
    #[inline]
    fn deref_mut(&mut self) -> &mut [Elem] {
        // SAFETY: as in `deref`; exclusivity comes from `&mut self`.
        unsafe { std::slice::from_raw_parts_mut(self.chunks.as_mut_ptr().cast(), self.len) }
    }
}

impl Clone for Buf {
    fn clone(&self) -> Buf {
        let mut out = Buf::with_capacity(self.len);
        out.extend_from_slice(self);
        out
    }
}

impl From<Vec<Elem>> for Buf {
    fn from(values: Vec<Elem>) -> Buf {
        let mut out = Buf::with_capacity(values.len());
        out.extend_from_slice(&values);
        out
    }
}

impl Extend<Elem> for Buf {
    fn extend<I: IntoIterator<Item = Elem>>(&mut self, iter: I) {
        let it = iter.into_iter();
        let (lower, _) = it.size_hint();
        self.reserve(lower);
        for v in it {
            self.push(v);
        }
    }
}

impl PartialEq for Buf {
    fn eq(&self, other: &Buf) -> bool {
        self[..] == other[..]
    }
}

impl std::fmt::Debug for Buf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Debug::fmt(&self[..], f)
    }
}

struct Pool {
    /// `buckets[b]` holds free buffers of capacity exactly `1 << b`.
    buckets: Vec<Vec<Buf>>,
    enabled: bool,
    hits: u64,
    misses: u64,
}

impl Pool {
    fn new() -> Self {
        let enabled = std::env::var("METADSE_POOL").map_or(true, |v| v != "0");
        Pool {
            buckets: (0..=MAX_LOG2).map(|_| Vec::new()).collect(),
            enabled,
            hits: 0,
            misses: 0,
        }
    }
}

thread_local! {
    static POOL: RefCell<Pool> = RefCell::new(Pool::new());
}

#[inline]
fn bucket_of(len: usize) -> Option<usize> {
    let b = len.next_power_of_two().max(CHUNK).trailing_zeros() as usize;
    (b <= MAX_LOG2).then_some(b)
}

/// Hands out an empty buffer with capacity for at least `len` elements.
///
/// The returned buffer has length 0; the caller is responsible for writing
/// every element (via `extend`/`resize`/`push`) before wrapping it in a
/// tensor. Capacity is rounded up to a power of two so the buffer can be
/// recycled on drop, and the allocation is [`BUF_ALIGN`]-byte aligned.
pub fn take(len: usize) -> Buf {
    if len == 0 {
        return Buf::new();
    }
    POOL.try_with(|cell| {
        let mut pool = cell.borrow_mut();
        if !pool.enabled {
            return Buf::with_capacity(len);
        }
        match bucket_of(len) {
            Some(b) => {
                if let Some(mut buf) = pool.buckets[b].pop() {
                    pool.hits += 1;
                    buf.clear();
                    buf
                } else {
                    pool.misses += 1;
                    Buf::with_capacity(1 << b)
                }
            }
            None => Buf::with_capacity(len),
        }
    })
    .unwrap_or_else(|_| Buf::with_capacity(len))
}

/// Hands out a buffer of length `len` with every element set to `value`.
pub fn take_filled(len: usize, value: Elem) -> Buf {
    let mut buf = take(len);
    buf.resize(len, value);
    buf
}

/// Hands out a zero-initialised buffer of length `len`.
pub fn take_zeroed(len: usize) -> Buf {
    take_filled(len, 0.0)
}

/// Returns a buffer to the pool. Called from the `Tensor` storage drop and
/// from ops with transient scratch buffers.
///
/// Only power-of-two capacities are accepted (everything [`take`] hands out
/// qualifies); oversize buffers are simply freed.
pub fn recycle(buf: Buf) {
    let cap = buf.capacity();
    if cap == 0 || !cap.is_power_of_two() {
        return;
    }
    let b = cap.trailing_zeros() as usize;
    if b > MAX_LOG2 {
        return;
    }
    let _ = POOL.try_with(|cell| {
        let mut pool = cell.borrow_mut();
        if pool.enabled && pool.buckets[b].len() < BUCKET_DEPTH {
            pool.buckets[b].push(buf);
        }
    });
}

/// Epoch reclaim point: trims each bucket to a small retained set and
/// flushes the hit/miss counters to `metadse-obs`.
///
/// The training loop calls this between meta-iterations (and the WAM sweep
/// after each task adaptation), so peak retained memory is bounded by one
/// iteration's working set rather than the whole run's high-water mark.
pub fn reclaim() {
    let _ = POOL.try_with(|cell| {
        let mut pool = cell.borrow_mut();
        for bucket in &mut pool.buckets {
            bucket.truncate(RETAIN_AFTER_RECLAIM);
            bucket.shrink_to(RETAIN_AFTER_RECLAIM);
        }
        if pool.hits > 0 {
            obs::counter("nn/pool_hits", pool.hits);
            pool.hits = 0;
        }
        if pool.misses > 0 {
            obs::counter("nn/pool_misses", pool.misses);
            pool.misses = 0;
        }
    });
}

/// RAII toggle for the pool on the current thread; restores the previous
/// mode on drop. Disabling drains already-pooled buffers lazily (they are
/// never handed out while disabled) — values are unaffected either way.
pub struct PoolModeGuard {
    prev: bool,
}

impl PoolModeGuard {
    pub fn set(enabled: bool) -> Self {
        let prev = POOL.with(|cell| {
            let mut pool = cell.borrow_mut();
            let prev = pool.enabled;
            pool.enabled = enabled;
            prev
        });
        PoolModeGuard { prev }
    }
}

impl Drop for PoolModeGuard {
    fn drop(&mut self) {
        let _ = POOL.try_with(|cell| cell.borrow_mut().enabled = self.prev);
    }
}

/// True when recycling is active on this thread (used by tests).
pub fn is_enabled() -> bool {
    POOL.try_with(|cell| cell.borrow().enabled).unwrap_or(false)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_recycle_roundtrip_hits_the_pool() {
        let _guard = PoolModeGuard::set(true);
        reclaim(); // flush counters so the assertions below are local
        let buf = take(100);
        assert!(buf.capacity() >= 100);
        assert!(buf.capacity().is_power_of_two());
        let cap = buf.capacity();
        recycle(buf);
        let again = take(100);
        assert_eq!(again.capacity(), cap);
        assert!(again.is_empty());
    }

    #[test]
    fn disabled_pool_does_not_retain() {
        let _guard = PoolModeGuard::set(false);
        let buf = take(64);
        let ptr = buf.as_ptr();
        recycle(buf);
        let again = take(64);
        // With recycling off a fresh allocation is made; contents are empty
        // either way, which is all callers rely on.
        assert!(again.is_empty());
        let _ = ptr;
    }

    #[test]
    fn filled_buffers_are_fully_initialised() {
        let _guard = PoolModeGuard::set(true);
        let mut buf = take_filled(10, 3.5);
        assert_eq!(buf.len(), 10);
        assert!(buf.iter().all(|&x| x == 3.5));
        // Dirty the buffer, recycle, and confirm the next take sees no residue.
        buf.iter_mut().for_each(|x| *x = f64::NAN);
        recycle(buf);
        let clean = take_zeroed(10);
        assert!(clean.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn oversized_buffers_bypass_the_pool() {
        let _guard = PoolModeGuard::set(true);
        let buf = take((1 << MAX_LOG2) + 1);
        assert!(buf.capacity() > (1 << MAX_LOG2));
        recycle(buf); // silently freed, must not panic
    }

    /// The SIMD backend relies on every pooled allocation starting on a
    /// 32-byte boundary. This is guaranteed structurally (storage is a
    /// `Vec` of 32-byte-aligned chunks), so the assertion is deterministic,
    /// not a lucky-allocator flake.
    #[test]
    fn pooled_buffers_are_32_byte_aligned() {
        let _guard = PoolModeGuard::set(true);
        for len in [1, 3, 7, 100, 1024, 4097] {
            let buf = take_filled(len, 1.0);
            assert_eq!(
                buf.as_ptr() as usize % BUF_ALIGN,
                0,
                "take({len}) not {BUF_ALIGN}-byte aligned"
            );
            recycle(buf);
            // Recycled buffers stay aligned on reuse.
            let again = take(len);
            assert_eq!(again.as_ptr() as usize % BUF_ALIGN, 0);
        }
        // Buffers built from plain vecs (the `From<Vec>` path used by
        // `Tensor::from_vec`) are aligned too.
        let from_vec = Buf::from(vec![1.0; 37]);
        assert_eq!(from_vec.as_ptr() as usize % BUF_ALIGN, 0);
        // Growth re-aligns: push past the initial capacity.
        let mut grown = Buf::with_capacity(4);
        for i in 0..1000 {
            grown.push(i as f64);
        }
        assert_eq!(grown.as_ptr() as usize % BUF_ALIGN, 0);
        assert_eq!(grown.len(), 1000);
        assert!((0..1000).all(|i| grown[i] == i as f64));
    }

    #[test]
    fn buf_behaves_like_a_vec() {
        let mut b = Buf::new();
        assert!(b.is_empty());
        b.extend_from_slice(&[1.0, 2.0]);
        b.push(3.0);
        b.extend([4.0, 5.0]);
        assert_eq!(&b[..], &[1.0, 2.0, 3.0, 4.0, 5.0]);
        b.resize(7, 9.0);
        assert_eq!(&b[5..], &[9.0, 9.0]);
        b.resize(2, 0.0);
        assert_eq!(&b[..], &[1.0, 2.0]);
        assert!(b.capacity().is_power_of_two());
        let c = b.clone();
        assert_eq!(b, c);
        assert_eq!(b.to_vec(), vec![1.0, 2.0]);
        b.clear();
        assert!(b.is_empty());
        assert_ne!(b, c);
    }
}
