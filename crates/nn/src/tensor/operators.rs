//! Operator overloads: `&a + &b`, `&a - &b`, `&a * &b`, `&a / &b`, `-&a`.
//!
//! These delegate to the broadcasting methods ([`Tensor::add`] etc.) and
//! participate in the autodiff graph exactly the same way.

use std::ops::{Add, Div, Mul, Neg, Sub};

use crate::Tensor;

impl Add for &Tensor {
    type Output = Tensor;

    fn add(self, rhs: &Tensor) -> Tensor {
        Tensor::add(self, rhs)
    }
}

impl Sub for &Tensor {
    type Output = Tensor;

    fn sub(self, rhs: &Tensor) -> Tensor {
        Tensor::sub(self, rhs)
    }
}

impl Mul for &Tensor {
    type Output = Tensor;

    fn mul(self, rhs: &Tensor) -> Tensor {
        Tensor::mul(self, rhs)
    }
}

impl Div for &Tensor {
    type Output = Tensor;

    fn div(self, rhs: &Tensor) -> Tensor {
        Tensor::div(self, rhs)
    }
}

impl Neg for &Tensor {
    type Output = Tensor;

    fn neg(self) -> Tensor {
        Tensor::neg(self)
    }
}

#[cfg(test)]
mod tests {
    use crate::autograd::grad;
    use crate::Tensor;

    #[test]
    fn operators_match_methods() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        let b = Tensor::from_vec(vec![3.0, 5.0], &[2]);
        assert_eq!((&a + &b).to_vec(), a.add(&b).to_vec());
        assert_eq!((&a - &b).to_vec(), a.sub(&b).to_vec());
        assert_eq!((&a * &b).to_vec(), a.mul(&b).to_vec());
        assert_eq!((&a / &b).to_vec(), a.div(&b).to_vec());
        assert_eq!((-&a).to_vec(), a.neg().to_vec());
    }

    #[test]
    fn operators_build_the_graph() {
        let x = Tensor::param_from_vec(vec![3.0], &[1]);
        let y = (&(&x * &x) + &x).sum_all(); // x^2 + x
        let g = grad(&y, &[x], false);
        assert!((g[0].to_vec()[0] - 7.0).abs() < 1e-12);
    }
}
