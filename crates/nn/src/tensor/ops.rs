//! Primitive differentiable tensor operations.
//!
//! Every backward pass here is written with the same public operations, so
//! the gradients produced by [`crate::autograd::grad`] are themselves part of
//! the computation graph when `create_graph` is requested.

use std::rc::Rc;

use crate::tensor::backend;
use crate::tensor::pool::{self, Buf};
use crate::tensor::shape::{
    broadcast_shapes, broadcast_strides, broadcastable_to, contiguous_strides, numel, OffsetWalker,
};
use crate::tensor::{BackwardFn, Tensor};
use crate::Elem;

/// `f64::powf` behind an inlining barrier.
///
/// With a literal exponent visible to LLVM, `x.powf(2.0)` is folded to
/// `x * x`, which rounds differently from the libm call (1 ulp on some
/// inputs). Generic powers go through this barrier so every call site
/// produces the same bits at every opt level.
#[inline(never)]
pub(crate) fn powf_libm(x: Elem, p: Elem) -> Elem {
    x.powf(p)
}

/// Elementwise power used by the `powf` op and the fused kernels' scalar
/// loops. Exponents 2 and 3 — the GELU hot path, where a libm `pow` call
/// is ~30x the cost of a multiply — are computed by explicit
/// multiplication; everything else stays a true libm call behind
/// [`powf_libm`]. The checks are on the *runtime* exponent, so the fused
/// and composite paths always agree bit-for-bit on which form they use.
#[inline]
pub(crate) fn pow_elem(x: Elem, p: Elem) -> Elem {
    if p == 2.0 {
        x * x
    } else if p == 3.0 {
        (x * x) * x
    } else {
        powf_libm(x, p)
    }
}

/// Splits a shape at `axis` into `(outer, dim, inner)` block sizes.
pub(crate) fn axis_blocks(shape: &[usize], axis: usize) -> (usize, usize, usize) {
    assert!(axis < shape.len(), "axis {axis} out of range for {shape:?}");
    let outer: usize = shape[..axis].iter().product();
    let dim = shape[axis];
    let inner: usize = shape[axis + 1..].iter().product();
    (outer, dim, inner)
}

fn unary(input: &Tensor, f: impl Fn(Elem) -> Elem, backward: BackwardFn) -> Tensor {
    let src = input.data();
    let mut data = pool::take(src.len());
    data.extend(src.iter().map(|&x| f(x)));
    drop(src);
    Tensor::from_op(data, input.shape().to_vec(), vec![input.clone()], backward)
}

/// Whether `small` is a trailing-suffix shape of `big` (every axis matches
/// the corresponding trailing axis of `big`), so broadcasting tiles it.
pub(crate) fn is_suffix_shape(small: &[usize], big: &[usize]) -> bool {
    small.len() <= big.len() && big[big.len() - small.len()..] == *small
}

/// Reduction fast paths for [`Tensor::sum_to`], routed through the active
/// backend so the composite graph and the fused kernels share one
/// accumulation order per backend.
///
/// Covers the two layouts every backward pass in the crate produces:
/// a *trailing* reduce (kept leading axes, reduced trailing axes — `sum_all`
/// and the keepdim row reductions), where each output is one contiguous-row
/// backend `sum`, and a *leading* reduce (reduced leading axes, kept
/// trailing axes — bias gradients, broadcast-batch reductions), which is a
/// row fold into independent per-slot accumulators. Anything else (reduced
/// axes on both sides, or interior) falls back to the stride walker, which
/// the caller runs when this returns `false`.
fn sum_to_fast(src: &[Elem], shape: &[usize], target: &[usize], data: &mut [Elem]) -> bool {
    let pad = shape.len() - target.len();
    let padded = |i: usize| if i < pad { 1 } else { target[i - pad] };
    let mut s = 0;
    while s < shape.len() && padded(s) == shape[s] {
        s += 1;
    }
    if (s..shape.len()).all(|i| padded(i) == 1) {
        let d: usize = shape[s..].iter().product();
        if d > 0 {
            let be = backend::active();
            for (slot, row) in data.iter_mut().zip(src.chunks_exact(d)) {
                *slot = be.sum(row);
            }
            return true;
        }
    }
    let mut t = 0;
    while t < shape.len() && padded(t) == 1 {
        t += 1;
    }
    if (t..shape.len()).all(|i| padded(i) == shape[i]) && !data.is_empty() {
        backend::active().fold_rows(src, data);
        return true;
    }
    false
}

fn binary_values(a: &Tensor, b: &Tensor, f: impl Fn(Elem, Elem) -> Elem) -> (Buf, Vec<usize>) {
    let out_shape = broadcast_shapes(a.shape(), b.shape()).unwrap_or_else(|| {
        panic!(
            "shapes {:?} and {:?} are not broadcast-compatible",
            a.shape(),
            b.shape()
        )
    });
    let da = a.data();
    let db = b.data();
    let mut out = pool::take(numel(&out_shape));
    if a.shape() == b.shape() {
        out.extend(da.iter().zip(db.iter()).map(|(&x, &y)| f(x, y)));
        return (out, out_shape);
    }
    // Fast path: one operand is a trailing-suffix of the other (the common
    // bias-add / per-row-scale pattern) — tile it without index math.
    if out_shape == a.shape() && is_suffix_shape(b.shape(), a.shape()) && !db.is_empty() {
        let n = db.len();
        out.extend(da.iter().enumerate().map(|(i, &x)| f(x, db[i % n])));
        return (out, out_shape);
    }
    if out_shape == b.shape() && is_suffix_shape(a.shape(), b.shape()) && !da.is_empty() {
        let n = da.len();
        out.extend(db.iter().enumerate().map(|(i, &y)| f(da[i % n], y)));
        return (out, out_shape);
    }
    let wa = OffsetWalker::new(&out_shape, broadcast_strides(a.shape(), &out_shape));
    let wb = OffsetWalker::new(&out_shape, broadcast_strides(b.shape(), &out_shape));
    out.extend(wa.zip(wb).map(|(ia, ib)| f(da[ia], db[ib])));
    (out, out_shape)
}

impl Tensor {
    // ------------------------------------------------------------------
    // Binary elementwise (broadcasting)
    // ------------------------------------------------------------------

    /// Elementwise sum with NumPy-style broadcasting.
    ///
    /// # Panics
    ///
    /// Panics if the shapes are not broadcast-compatible.
    pub fn add(&self, other: &Tensor) -> Tensor {
        let (data, shape) = binary_values(self, other, |x, y| x + y);
        let backward: BackwardFn = Rc::new(|g, ps, _out| {
            vec![Some(g.sum_to(ps[0].shape())), Some(g.sum_to(ps[1].shape()))]
        });
        Tensor::from_op(data, shape, vec![self.clone(), other.clone()], backward)
    }

    /// Elementwise difference with broadcasting.
    ///
    /// # Panics
    ///
    /// Panics if the shapes are not broadcast-compatible.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        let (data, shape) = binary_values(self, other, |x, y| x - y);
        let backward: BackwardFn = Rc::new(|g, ps, _out| {
            vec![
                Some(g.sum_to(ps[0].shape())),
                Some(g.neg().sum_to(ps[1].shape())),
            ]
        });
        Tensor::from_op(data, shape, vec![self.clone(), other.clone()], backward)
    }

    /// Elementwise product with broadcasting.
    ///
    /// # Panics
    ///
    /// Panics if the shapes are not broadcast-compatible.
    pub fn mul(&self, other: &Tensor) -> Tensor {
        let (data, shape) = binary_values(self, other, |x, y| x * y);
        let backward: BackwardFn = Rc::new(|g, ps, _out| {
            vec![
                Some(g.mul(&ps[1]).sum_to(ps[0].shape())),
                Some(g.mul(&ps[0]).sum_to(ps[1].shape())),
            ]
        });
        Tensor::from_op(data, shape, vec![self.clone(), other.clone()], backward)
    }

    /// Elementwise quotient with broadcasting.
    ///
    /// # Panics
    ///
    /// Panics if the shapes are not broadcast-compatible.
    pub fn div(&self, other: &Tensor) -> Tensor {
        let (data, shape) = binary_values(self, other, |x, y| x / y);
        let backward: BackwardFn = Rc::new(|g, ps, _out| {
            let ga = g.div(&ps[1]).sum_to(ps[0].shape());
            let gb = g
                .mul(&ps[0])
                .neg()
                .div(&ps[1].mul(&ps[1]))
                .sum_to(ps[1].shape());
            vec![Some(ga), Some(gb)]
        });
        Tensor::from_op(data, shape, vec![self.clone(), other.clone()], backward)
    }

    // ------------------------------------------------------------------
    // Scalar elementwise
    // ------------------------------------------------------------------

    /// Adds a scalar to every element.
    pub fn add_scalar(&self, c: Elem) -> Tensor {
        let backward: BackwardFn = Rc::new(|g, _ps, _out| vec![Some(g.clone())]);
        unary(self, |x| x + c, backward)
    }

    /// Subtracts a scalar from every element.
    pub fn sub_scalar(&self, c: Elem) -> Tensor {
        self.add_scalar(-c)
    }

    /// Multiplies every element by a scalar.
    pub fn mul_scalar(&self, c: Elem) -> Tensor {
        let backward: BackwardFn = Rc::new(move |g, _ps, _out| vec![Some(g.mul_scalar(c))]);
        unary(self, |x| x * c, backward)
    }

    /// Divides every element by a scalar.
    pub fn div_scalar(&self, c: Elem) -> Tensor {
        self.mul_scalar(1.0 / c)
    }

    // ------------------------------------------------------------------
    // Unary elementwise
    // ------------------------------------------------------------------

    /// Elementwise negation.
    pub fn neg(&self) -> Tensor {
        let backward: BackwardFn = Rc::new(|g, _ps, _out| vec![Some(g.neg())]);
        unary(self, |x| -x, backward)
    }

    /// Elementwise exponential.
    pub fn exp(&self) -> Tensor {
        let backward: BackwardFn = Rc::new(|g, _ps, out| vec![Some(g.mul(out))]);
        unary(self, Elem::exp, backward)
    }

    /// Elementwise natural logarithm.
    ///
    /// Produces `NaN`/`-inf` for non-positive inputs, mirroring `f64::ln`.
    pub fn ln(&self) -> Tensor {
        let backward: BackwardFn = Rc::new(|g, ps, _out| vec![Some(g.div(&ps[0]))]);
        unary(self, Elem::ln, backward)
    }

    /// Elementwise square root.
    pub fn sqrt(&self) -> Tensor {
        let backward: BackwardFn = Rc::new(|g, _ps, out| vec![Some(g.mul_scalar(0.5).div(out))]);
        unary(self, Elem::sqrt, backward)
    }

    /// Elementwise hyperbolic tangent.
    pub fn tanh(&self) -> Tensor {
        let backward: BackwardFn = Rc::new(|g, _ps, out| {
            let one_minus_sq = out.mul(out).neg().add_scalar(1.0);
            vec![Some(g.mul(&one_minus_sq))]
        });
        unary(self, Elem::tanh, backward)
    }

    /// Elementwise logistic sigmoid, computed in a numerically stable way.
    pub fn sigmoid(&self) -> Tensor {
        let backward: BackwardFn = Rc::new(|g, _ps, out| {
            let d = out.mul(&out.neg().add_scalar(1.0));
            vec![Some(g.mul(&d))]
        });
        unary(
            self,
            |x| {
                if x >= 0.0 {
                    1.0 / (1.0 + (-x).exp())
                } else {
                    let e = x.exp();
                    e / (1.0 + e)
                }
            },
            backward,
        )
    }

    /// Elementwise rectified linear unit, `max(x, 0)`.
    pub fn relu(&self) -> Tensor {
        let backward: BackwardFn = Rc::new(|g, ps, _out| vec![Some(g.mul(&ps[0].step_mask()))]);
        unary(self, |x| if x > 0.0 { x } else { 0.0 }, backward)
    }

    /// Elementwise absolute value.
    ///
    /// The gradient at zero is taken to be zero.
    pub fn abs(&self) -> Tensor {
        let backward: BackwardFn = Rc::new(|g, ps, _out| vec![Some(g.mul(&ps[0].sign_detached()))]);
        unary(self, Elem::abs, backward)
    }

    /// Elementwise power with a constant exponent.
    ///
    /// Negative bases with fractional exponents produce `NaN`, mirroring
    /// `f64::powf`.
    pub fn powf(&self, p: Elem) -> Tensor {
        let backward: BackwardFn =
            Rc::new(move |g, ps, _out| vec![Some(g.mul(&ps[0].powf(p - 1.0).mul_scalar(p)))]);
        unary(self, |x| pow_elem(x, p), backward)
    }

    // ------------------------------------------------------------------
    // Broadcast / reduce
    // ------------------------------------------------------------------

    /// Broadcasts to a larger shape (gradient sums back over stretched
    /// axes).
    ///
    /// # Panics
    ///
    /// Panics if the current shape cannot broadcast to `target`.
    pub fn broadcast_to(&self, target: &[usize]) -> Tensor {
        assert!(
            broadcastable_to(self.shape(), target),
            "cannot broadcast {:?} to {:?}",
            self.shape(),
            target
        );
        let strides = broadcast_strides(self.shape(), target);
        let src = self.data();
        let mut data = pool::take(numel(target));
        data.extend(OffsetWalker::new(target, strides).map(|off| src[off]));
        drop(src);
        let backward: BackwardFn = Rc::new(|g, ps, _out| vec![Some(g.sum_to(ps[0].shape()))]);
        Tensor::from_op(data, target.to_vec(), vec![self.clone()], backward)
    }

    /// Sums over axes so the result has shape `target` (the inverse of a
    /// broadcast; used pervasively by backward passes).
    ///
    /// # Panics
    ///
    /// Panics if `target` cannot broadcast back to the current shape.
    pub fn sum_to(&self, target: &[usize]) -> Tensor {
        if self.shape() == target {
            return self.clone();
        }
        assert!(
            broadcastable_to(target, self.shape()),
            "cannot reduce {:?} to {:?}",
            self.shape(),
            target
        );
        let src = self.data();
        let mut data = pool::take_zeroed(numel(target));
        if !sum_to_fast(&src, self.shape(), target, &mut data) {
            let strides = broadcast_strides(target, self.shape());
            for (i, off) in OffsetWalker::new(self.shape(), strides).enumerate() {
                data[off] += src[i];
            }
        }
        drop(src);
        let backward: BackwardFn = Rc::new(|g, ps, _out| vec![Some(g.broadcast_to(ps[0].shape()))]);
        Tensor::from_op(data, target.to_vec(), vec![self.clone()], backward)
    }

    /// Sum of all elements (scalar of shape `[]`).
    pub fn sum_all(&self) -> Tensor {
        self.sum_to(&[])
    }

    /// Mean of all elements (scalar of shape `[]`).
    pub fn mean_all(&self) -> Tensor {
        self.sum_all().div_scalar(self.numel() as Elem)
    }

    /// Sum along one axis.
    ///
    /// With `keepdim` the reduced axis is retained with size 1.
    ///
    /// # Panics
    ///
    /// Panics if `axis` is out of range.
    pub fn sum_axis(&self, axis: usize, keepdim: bool) -> Tensor {
        assert!(axis < self.ndim(), "axis {axis} out of range");
        let mut keep: Vec<usize> = self.shape().to_vec();
        keep[axis] = 1;
        let summed = self.sum_to(&keep);
        if keepdim {
            summed
        } else {
            let mut squeezed = keep;
            squeezed.remove(axis);
            summed.reshape(&squeezed)
        }
    }

    /// Mean along one axis.
    ///
    /// # Panics
    ///
    /// Panics if `axis` is out of range.
    pub fn mean_axis(&self, axis: usize, keepdim: bool) -> Tensor {
        let n = self.shape()[axis] as Elem;
        self.sum_axis(axis, keepdim).div_scalar(n)
    }

    /// Maximum along `axis` (keepdim), detached from the graph.
    ///
    /// Used as the shift constant in numerically stable softmax; since
    /// softmax is invariant to constant shifts, detaching is exact.
    ///
    /// # Panics
    ///
    /// Panics if `axis` is out of range.
    pub fn max_axis_detached(&self, axis: usize) -> Tensor {
        let (outer, dim, inner) = axis_blocks(self.shape(), axis);
        let src = self.data();
        let mut out = pool::take_filled(outer * inner, Elem::NEG_INFINITY);
        for o in 0..outer {
            for d in 0..dim {
                for i in 0..inner {
                    let v = src[(o * dim + d) * inner + i];
                    let slot = &mut out[o * inner + i];
                    if v > *slot {
                        *slot = v;
                    }
                }
            }
        }
        drop(src);
        let mut shape = self.shape().to_vec();
        shape[axis] = 1;
        Tensor::from_buf(out, &shape)
    }

    // ------------------------------------------------------------------
    // Shape manipulation
    // ------------------------------------------------------------------

    /// Returns a tensor with the same data and a new shape.
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ.
    pub fn reshape(&self, new_shape: &[usize]) -> Tensor {
        assert_eq!(
            self.numel(),
            numel(new_shape),
            "cannot reshape {:?} ({} elems) to {:?} ({} elems)",
            self.shape(),
            self.numel(),
            new_shape,
            numel(new_shape)
        );
        let original: Vec<usize> = self.shape().to_vec();
        let backward: BackwardFn = Rc::new(move |g, _ps, _out| vec![Some(g.reshape(&original))]);
        let src = self.data();
        let mut data = pool::take(src.len());
        data.extend_from_slice(&src[..]);
        drop(src);
        Tensor::from_op(data, new_shape.to_vec(), vec![self.clone()], backward)
    }

    /// Swaps two axes (materializing the result).
    ///
    /// # Panics
    ///
    /// Panics if either axis is out of range.
    pub fn transpose(&self, a: usize, b: usize) -> Tensor {
        assert!(
            a < self.ndim() && b < self.ndim(),
            "transpose axes out of range"
        );
        if a == b {
            return self.clone();
        }
        let mut out_shape: Vec<usize> = self.shape().to_vec();
        out_shape.swap(a, b);
        let out_strides = contiguous_strides(&out_shape);
        let src = self.data();
        let mut data = pool::take_zeroed(self.numel());
        let ndim = self.ndim();
        let mut coords = vec![0usize; ndim];
        for &v in src.iter() {
            // Map input coordinates to output coordinates (swap a and b).
            let mut off = 0;
            for (axis, &c) in coords.iter().enumerate() {
                let out_axis = if axis == a {
                    b
                } else if axis == b {
                    a
                } else {
                    axis
                };
                off += c * out_strides[out_axis];
            }
            data[off] = v;
            // Advance input coordinates.
            for axis in (0..ndim).rev() {
                coords[axis] += 1;
                if coords[axis] < self.shape()[axis] {
                    break;
                }
                coords[axis] = 0;
            }
        }
        drop(src);
        let backward: BackwardFn = Rc::new(move |g, _ps, _out| vec![Some(g.transpose(a, b))]);
        Tensor::from_op(data, out_shape, vec![self.clone()], backward)
    }

    /// Slices `len` entries starting at `start` along `axis`.
    ///
    /// # Panics
    ///
    /// Panics if the slice exceeds the axis bounds.
    pub fn slice_axis(&self, axis: usize, start: usize, len: usize) -> Tensor {
        let (outer, dim, inner) = axis_blocks(self.shape(), axis);
        assert!(
            start + len <= dim,
            "slice [{start}, {}) exceeds axis size {dim}",
            start + len
        );
        let src = self.data();
        let mut data = pool::take(outer * len * inner);
        for o in 0..outer {
            for d in start..start + len {
                let base = (o * dim + d) * inner;
                data.extend_from_slice(&src[base..base + inner]);
            }
        }
        drop(src);
        let mut out_shape: Vec<usize> = self.shape().to_vec();
        out_shape[axis] = len;
        let after = dim - start - len;
        let backward: BackwardFn =
            Rc::new(move |g, _ps, _out| vec![Some(g.pad_axis_zeros(axis, start, after))]);
        Tensor::from_op(data, out_shape, vec![self.clone()], backward)
    }

    /// Pads with zeros along `axis`: `before` entries in front, `after`
    /// behind.
    pub fn pad_axis_zeros(&self, axis: usize, before: usize, after: usize) -> Tensor {
        let (outer, dim, inner) = axis_blocks(self.shape(), axis);
        let new_dim = before + dim + after;
        let src = self.data();
        let mut data = pool::take_zeroed(outer * new_dim * inner);
        for o in 0..outer {
            for d in 0..dim {
                let src_base = (o * dim + d) * inner;
                let dst_base = (o * new_dim + before + d) * inner;
                data[dst_base..dst_base + inner].copy_from_slice(&src[src_base..src_base + inner]);
            }
        }
        drop(src);
        let mut out_shape: Vec<usize> = self.shape().to_vec();
        out_shape[axis] = new_dim;
        let backward: BackwardFn =
            Rc::new(move |g, _ps, _out| vec![Some(g.slice_axis(axis, before, dim))]);
        Tensor::from_op(data, out_shape, vec![self.clone()], backward)
    }

    /// Concatenates tensors along `axis`.
    ///
    /// # Panics
    ///
    /// Panics if `tensors` is empty or shapes disagree outside `axis`.
    pub fn concat(tensors: &[Tensor], axis: usize) -> Tensor {
        assert!(!tensors.is_empty(), "concat of zero tensors");
        let first = &tensors[0];
        let ndim = first.ndim();
        assert!(axis < ndim, "axis {axis} out of range");
        let mut total = 0;
        for t in tensors {
            assert_eq!(t.ndim(), ndim, "concat rank mismatch");
            for d in 0..ndim {
                if d != axis {
                    assert_eq!(
                        t.shape()[d],
                        first.shape()[d],
                        "concat shape mismatch on axis {d}"
                    );
                }
            }
            total += t.shape()[axis];
        }
        let mut out_shape: Vec<usize> = first.shape().to_vec();
        out_shape[axis] = total;
        let (outer, _dim, inner) = axis_blocks(&out_shape, axis);
        let mut data = pool::take_zeroed(numel(&out_shape));
        let mut offset = 0;
        for t in tensors {
            let td = t.shape()[axis];
            let src = t.data();
            for o in 0..outer {
                for d in 0..td {
                    let src_base = (o * td + d) * inner;
                    let dst_base = (o * total + offset + d) * inner;
                    data[dst_base..dst_base + inner]
                        .copy_from_slice(&src[src_base..src_base + inner]);
                }
            }
            offset += td;
        }
        let sizes: Vec<usize> = tensors.iter().map(|t| t.shape()[axis]).collect();
        let backward: BackwardFn = Rc::new(move |g, _ps, _out| {
            let mut start = 0;
            sizes
                .iter()
                .map(|&len| {
                    let piece = g.slice_axis(axis, start, len);
                    start += len;
                    Some(piece)
                })
                .collect()
        });
        Tensor::from_op(data, out_shape, tensors.to_vec(), backward)
    }

    /// Stacks same-shaped tensors along a new leading axis.
    ///
    /// # Panics
    ///
    /// Panics if `tensors` is empty or the shapes disagree.
    pub fn stack(tensors: &[Tensor]) -> Tensor {
        assert!(!tensors.is_empty(), "stack of zero tensors");
        let mut unsqueezed = Vec::with_capacity(tensors.len());
        let mut shape = vec![1];
        shape.extend_from_slice(tensors[0].shape());
        for t in tensors {
            unsqueezed.push(t.reshape(&shape));
        }
        Tensor::concat(&unsqueezed, 0)
    }

    // ------------------------------------------------------------------
    // Gather / scatter (embedding support)
    // ------------------------------------------------------------------

    /// Selects rows of a 2-D tensor: `self[indices, :]`.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not 2-D or an index is out of bounds.
    pub fn index_select_rows(&self, indices: &[usize]) -> Tensor {
        assert_eq!(self.ndim(), 2, "index_select_rows requires a 2-D tensor");
        let (rows, cols) = (self.shape()[0], self.shape()[1]);
        let src = self.data();
        let mut data = pool::take(indices.len() * cols);
        for &i in indices {
            assert!(i < rows, "row index {i} out of bounds ({rows} rows)");
            data.extend_from_slice(&src[i * cols..(i + 1) * cols]);
        }
        drop(src);
        let idx: Vec<usize> = indices.to_vec();
        let backward: BackwardFn =
            Rc::new(move |g, _ps, _out| vec![Some(g.scatter_add_rows(&idx, rows))]);
        Tensor::from_op(
            data,
            vec![indices.len(), cols],
            vec![self.clone()],
            backward,
        )
    }

    /// Scatter-adds the rows of a 2-D tensor into a `[rows, cols]` result:
    /// `out[indices[i], :] += self[i, :]`.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not 2-D, `indices.len()` differs from the row
    /// count, or an index is out of bounds.
    pub fn scatter_add_rows(&self, indices: &[usize], rows: usize) -> Tensor {
        assert_eq!(self.ndim(), 2, "scatter_add_rows requires a 2-D tensor");
        assert_eq!(indices.len(), self.shape()[0], "one index per row required");
        let cols = self.shape()[1];
        let src = self.data();
        let mut data = pool::take_zeroed(rows * cols);
        for (r, &i) in indices.iter().enumerate() {
            assert!(i < rows, "row index {i} out of bounds ({rows} rows)");
            for c in 0..cols {
                data[i * cols + c] += src[r * cols + c];
            }
        }
        drop(src);
        let idx: Vec<usize> = indices.to_vec();
        let backward: BackwardFn =
            Rc::new(move |g, _ps, _out| vec![Some(g.index_select_rows(&idx))]);
        Tensor::from_op(data, vec![rows, cols], vec![self.clone()], backward)
    }

    // ------------------------------------------------------------------
    // Detached helpers
    // ------------------------------------------------------------------

    /// Constant 0/1 mask of strictly positive elements (detached).
    pub fn step_mask(&self) -> Tensor {
        let src = self.data();
        let mut data = pool::take(src.len());
        data.extend(src.iter().map(|&x| if x > 0.0 { 1.0 } else { 0.0 }));
        drop(src);
        Tensor::from_buf(data, self.shape())
    }

    /// Constant sign tensor (-1, 0, +1; detached).
    pub fn sign_detached(&self) -> Tensor {
        let src = self.data();
        let mut data = pool::take(src.len());
        data.extend(src.iter().map(|&x| {
            if x > 0.0 {
                1.0
            } else if x < 0.0 {
                -1.0
            } else {
                0.0
            }
        }));
        drop(src);
        Tensor::from_buf(data, self.shape())
    }
}

#[cfg(test)]
mod tests {
    use crate::autograd::grad;
    use crate::Tensor;

    fn t(data: &[f64], shape: &[usize]) -> Tensor {
        Tensor::from_vec(data.to_vec(), shape)
    }

    fn p(data: &[f64], shape: &[usize]) -> Tensor {
        Tensor::param_from_vec(data.to_vec(), shape)
    }

    #[test]
    fn add_broadcasts_rows() {
        let a = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let b = t(&[10.0, 20.0, 30.0], &[3]);
        let c = a.add(&b);
        assert_eq!(c.to_vec(), vec![11.0, 22.0, 33.0, 14.0, 25.0, 36.0]);
    }

    #[test]
    fn add_gradient_sums_over_broadcast() {
        let a = p(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let b = p(&[10.0, 20.0, 30.0], &[3]);
        let loss = a.add(&b).sum_all();
        let g = grad(&loss, &[a, b], false);
        assert_eq!(g[0].to_vec(), vec![1.0; 6]);
        assert_eq!(g[1].to_vec(), vec![2.0, 2.0, 2.0]);
    }

    #[test]
    fn mul_gradient_is_other_operand() {
        let a = p(&[2.0, 3.0], &[2]);
        let b = p(&[5.0, 7.0], &[2]);
        let loss = a.mul(&b).sum_all();
        let g = grad(&loss, &[a, b], false);
        assert_eq!(g[0].to_vec(), vec![5.0, 7.0]);
        assert_eq!(g[1].to_vec(), vec![2.0, 3.0]);
    }

    #[test]
    fn div_values_and_gradient() {
        let a = p(&[6.0], &[1]);
        let b = p(&[3.0], &[1]);
        let y = a.div(&b);
        assert_eq!(y.to_vec(), vec![2.0]);
        let g = grad(&y.sum_all(), &[a, b], false);
        assert!((g[0].to_vec()[0] - 1.0 / 3.0).abs() < 1e-12);
        assert!((g[1].to_vec()[0] + 6.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    fn scalar_ops() {
        let a = t(&[1.0, -2.0], &[2]);
        assert_eq!(a.add_scalar(1.0).to_vec(), vec![2.0, -1.0]);
        assert_eq!(a.sub_scalar(1.0).to_vec(), vec![0.0, -3.0]);
        assert_eq!(a.mul_scalar(3.0).to_vec(), vec![3.0, -6.0]);
        assert_eq!(a.div_scalar(2.0).to_vec(), vec![0.5, -1.0]);
    }

    #[test]
    fn unary_values() {
        let a = t(&[1.0, -1.0, 0.5], &[3]);
        assert_eq!(a.neg().to_vec(), vec![-1.0, 1.0, -0.5]);
        assert_eq!(a.relu().to_vec(), vec![1.0, 0.0, 0.5]);
        assert_eq!(a.abs().to_vec(), vec![1.0, 1.0, 0.5]);
        let e = a.exp().to_vec();
        assert!((e[0] - 1.0_f64.exp()).abs() < 1e-12);
        let s = a.sigmoid().to_vec();
        assert!((s[0] - 1.0 / (1.0 + (-1.0_f64).exp())).abs() < 1e-12);
    }

    #[test]
    fn sigmoid_is_stable_for_large_inputs() {
        let a = t(&[800.0, -800.0], &[2]);
        let s = a.sigmoid().to_vec();
        assert!((s[0] - 1.0).abs() < 1e-12);
        assert!(s[1].abs() < 1e-12);
        assert!(s.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn relu_gradient_masks_negatives() {
        let a = p(&[2.0, -3.0, 0.0], &[3]);
        let g = grad(&a.relu().sum_all(), &[a], false);
        assert_eq!(g[0].to_vec(), vec![1.0, 0.0, 0.0]);
    }

    #[test]
    fn sum_to_and_broadcast_to_roundtrip() {
        let a = t(&[1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let s = a.sum_to(&[2]);
        assert_eq!(s.to_vec(), vec![4.0, 6.0]);
        let b = s.broadcast_to(&[2, 2]);
        assert_eq!(b.to_vec(), vec![4.0, 6.0, 4.0, 6.0]);
    }

    #[test]
    fn sum_and_mean_axis() {
        let a = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        assert_eq!(a.sum_axis(1, false).shape(), &[2]);
        assert_eq!(a.sum_axis(1, false).to_vec(), vec![6.0, 15.0]);
        assert_eq!(a.sum_axis(0, true).shape(), &[1, 3]);
        assert_eq!(a.mean_axis(1, false).to_vec(), vec![2.0, 5.0]);
        assert_eq!(a.mean_all().value(), 3.5);
    }

    #[test]
    fn max_axis_detached_values() {
        let a = t(&[1.0, 9.0, 3.0, 4.0, -5.0, 6.0], &[2, 3]);
        let m = a.max_axis_detached(1);
        assert_eq!(m.shape(), &[2, 1]);
        assert_eq!(m.to_vec(), vec![9.0, 6.0]);
        assert!(!m.requires_grad());
    }

    #[test]
    fn reshape_and_gradient() {
        let a = p(&[1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let y = a.reshape(&[4]).mul_scalar(2.0).sum_all();
        let g = grad(&y, std::slice::from_ref(&a), false);
        assert_eq!(g[0].shape(), &[2, 2]);
        assert_eq!(g[0].to_vec(), vec![2.0; 4]);
    }

    #[test]
    fn transpose_2d() {
        let a = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let at = a.transpose(0, 1);
        assert_eq!(at.shape(), &[3, 2]);
        assert_eq!(at.to_vec(), vec![1.0, 4.0, 2.0, 5.0, 3.0, 6.0]);
    }

    #[test]
    fn transpose_inner_axes_of_4d() {
        // [1, 2, 2, 2] swap axes 1 and 2.
        let a = t(&[0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0], &[1, 2, 2, 2]);
        let s = a.transpose(1, 2);
        assert_eq!(s.shape(), &[1, 2, 2, 2]);
        assert_eq!(s.to_vec(), vec![0.0, 1.0, 4.0, 5.0, 2.0, 3.0, 6.0, 7.0]);
    }

    #[test]
    fn slice_and_pad_roundtrip() {
        let a = p(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let s = a.slice_axis(1, 1, 2);
        assert_eq!(s.shape(), &[2, 2]);
        assert_eq!(s.to_vec(), vec![2.0, 3.0, 5.0, 6.0]);
        let g = grad(&s.sum_all(), &[a], false);
        assert_eq!(g[0].to_vec(), vec![0.0, 1.0, 1.0, 0.0, 1.0, 1.0]);
    }

    #[test]
    fn concat_values_and_gradients() {
        let a = p(&[1.0, 2.0], &[1, 2]);
        let b = p(&[3.0, 4.0], &[1, 2]);
        let c = Tensor::concat(&[a.clone(), b.clone()], 0);
        assert_eq!(c.shape(), &[2, 2]);
        assert_eq!(c.to_vec(), vec![1.0, 2.0, 3.0, 4.0]);
        let weights = t(&[1.0, 10.0, 100.0, 1000.0], &[2, 2]);
        let g = grad(&c.mul(&weights).sum_all(), &[a, b], false);
        assert_eq!(g[0].to_vec(), vec![1.0, 10.0]);
        assert_eq!(g[1].to_vec(), vec![100.0, 1000.0]);
    }

    #[test]
    fn stack_adds_leading_axis() {
        let a = t(&[1.0, 2.0], &[2]);
        let b = t(&[3.0, 4.0], &[2]);
        let s = Tensor::stack(&[a, b]);
        assert_eq!(s.shape(), &[2, 2]);
        assert_eq!(s.to_vec(), vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn index_select_and_scatter_gradients() {
        let table = p(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[3, 2]);
        let picked = table.index_select_rows(&[2, 0, 2]);
        assert_eq!(picked.to_vec(), vec![5.0, 6.0, 1.0, 2.0, 5.0, 6.0]);
        let g = grad(&picked.sum_all(), &[table], false);
        // Row 2 picked twice, row 0 once, row 1 never.
        assert_eq!(g[0].to_vec(), vec![1.0, 1.0, 0.0, 0.0, 2.0, 2.0]);
    }

    #[test]
    fn second_order_through_mul() {
        // y = (x*x) * x = x^3 via primitives; check d2y/dx2 = 6x.
        let x = p(&[2.5], &[1]);
        let y = x.mul(&x).mul(&x).sum_all();
        let d1 = grad(&y, std::slice::from_ref(&x), true);
        let d2 = grad(&d1[0].sum_all(), std::slice::from_ref(&x), false);
        assert!((d2[0].to_vec()[0] - 15.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "not broadcast-compatible")]
    fn incompatible_shapes_panic() {
        let a = t(&[1.0, 2.0], &[2]);
        let b = t(&[1.0, 2.0, 3.0], &[3]);
        let _ = a.add(&b);
    }
}
