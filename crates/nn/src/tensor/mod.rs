//! Dense n-dimensional tensors with reverse-mode automatic differentiation.
//!
//! Tensors are cheap-to-clone handles (`Rc`) to immutable-shaped, row-major
//! `f64` buffers. Operations build a computation graph whose backward passes
//! are themselves expressed with tensor operations, which is what enables
//! gradients of gradients (see [`crate::autograd::grad`]).

pub mod backend;
pub mod fused;
pub mod pool;
pub mod prims;
pub mod shape;

mod composite;
mod matmul;
mod operators;
mod ops;

use std::cell::{Ref, RefCell};
use std::fmt;
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::autograd;
use crate::Elem;

use pool::Buf;

static NEXT_ID: AtomicU64 = AtomicU64::new(1);

/// Gradient callback: maps (output gradient, parents, output) to the
/// gradients of each parent (`None` for parents that receive no gradient).
pub(crate) type BackwardFn = Rc<dyn Fn(&Tensor, &[Tensor], &Tensor) -> Vec<Option<Tensor>>>;

pub(crate) struct Node {
    pub(crate) parents: Vec<Tensor>,
    pub(crate) backward: BackwardFn,
}

pub(crate) struct Inner {
    id: u64,
    shape: Vec<usize>,
    data: RefCell<Buf>,
    node: Option<Node>,
    requires_grad: bool,
}

impl Drop for Inner {
    fn drop(&mut self) {
        // Return the element buffer to the thread-local pool so the next
        // op of a similar size skips the global allocator. `recycle`
        // ignores buffers the pool can't reuse (odd capacities, oversize).
        pool::recycle(std::mem::take(self.data.get_mut()));
    }
}

/// A dense, row-major tensor of `f64` values participating in an autodiff
/// graph.
///
/// Cloning a `Tensor` clones the *handle*, not the buffer: clones alias the
/// same storage and graph node.
///
/// # Example
///
/// ```
/// use metadse_nn::Tensor;
///
/// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
/// let b = a.add_scalar(1.0);
/// assert_eq!(b.to_vec(), vec![2.0, 3.0, 4.0, 5.0]);
/// ```
#[derive(Clone)]
pub struct Tensor {
    inner: Rc<Inner>,
}

impl Tensor {
    fn from_parts(data: Buf, shape: Vec<usize>, node: Option<Node>, requires_grad: bool) -> Tensor {
        debug_assert_eq!(data.len(), shape::numel(&shape), "data/shape mismatch");
        Tensor {
            inner: Rc::new(Inner {
                id: NEXT_ID.fetch_add(1, Ordering::Relaxed),
                shape,
                data: RefCell::new(data),
                node,
                requires_grad,
            }),
        }
    }

    /// Creates a constant (non-differentiable) tensor from a flat buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not match the number of elements implied
    /// by `shape`.
    pub fn from_vec(data: Vec<Elem>, shape: &[usize]) -> Tensor {
        assert_eq!(
            data.len(),
            shape::numel(shape),
            "buffer of {} elements cannot have shape {:?}",
            data.len(),
            shape
        );
        Tensor::from_parts(Buf::from(data), shape.to_vec(), None, false)
    }

    /// Constant tensor taking ownership of an aligned (usually pooled)
    /// buffer directly, skipping the `Vec` copy of [`Tensor::from_vec`].
    pub(crate) fn from_buf(data: Buf, shape: &[usize]) -> Tensor {
        assert_eq!(
            data.len(),
            shape::numel(shape),
            "buffer of {} elements cannot have shape {:?}",
            data.len(),
            shape
        );
        Tensor::from_parts(data, shape.to_vec(), None, false)
    }

    /// Creates a trainable leaf tensor (participates in gradients).
    pub fn param_from_vec(data: Vec<Elem>, shape: &[usize]) -> Tensor {
        assert_eq!(
            data.len(),
            shape::numel(shape),
            "buffer of {} elements cannot have shape {:?}",
            data.len(),
            shape
        );
        Tensor::from_parts(Buf::from(data), shape.to_vec(), None, true)
    }

    /// Creates a scalar (shape `[]`) constant.
    pub fn scalar(value: Elem) -> Tensor {
        Tensor::from_vec(vec![value], &[])
    }

    /// Tensor of zeros with the given shape.
    pub fn zeros(shape: &[usize]) -> Tensor {
        Tensor::from_buf(pool::take_zeroed(shape::numel(shape)), shape)
    }

    /// Tensor of ones with the given shape.
    pub fn ones(shape: &[usize]) -> Tensor {
        Tensor::from_buf(pool::take_filled(shape::numel(shape), 1.0), shape)
    }

    /// Tensor filled with `value`.
    pub fn full(shape: &[usize], value: Elem) -> Tensor {
        Tensor::from_buf(pool::take_filled(shape::numel(shape), value), shape)
    }

    /// Standard-normal random tensor drawn from `rng`.
    pub fn randn<R: rand::Rng + ?Sized>(shape: &[usize], rng: &mut R) -> Tensor {
        let n = shape::numel(shape);
        let mut data = Vec::with_capacity(n);
        // Box-Muller transform; avoids an extra dependency on rand_distr.
        while data.len() < n {
            let u1: Elem = rng.gen_range(Elem::EPSILON..1.0);
            let u2: Elem = rng.gen_range(0.0..1.0);
            let r = (-2.0 * u1.ln()).sqrt();
            let theta = 2.0 * std::f64::consts::PI * u2;
            data.push(r * theta.cos());
            if data.len() < n {
                data.push(r * theta.sin());
            }
        }
        Tensor::from_vec(data, shape)
    }

    /// Uniform random tensor in `[lo, hi)`.
    pub fn rand_uniform<R: rand::Rng + ?Sized>(
        shape: &[usize],
        lo: Elem,
        hi: Elem,
        rng: &mut R,
    ) -> Tensor {
        let n = shape::numel(shape);
        let data = (0..n).map(|_| rng.gen_range(lo..hi)).collect();
        Tensor::from_vec(data, shape)
    }

    /// Result of an operation; records graph edges when gradient mode is on
    /// and any parent requires gradients.
    pub(crate) fn from_op(
        data: impl Into<Buf>,
        shape: Vec<usize>,
        parents: Vec<Tensor>,
        backward: BackwardFn,
    ) -> Tensor {
        let track = autograd::is_grad_enabled() && parents.iter().any(|p| p.requires_grad());
        if track {
            Tensor::from_parts(data.into(), shape, Some(Node { parents, backward }), true)
        } else {
            Tensor::from_parts(data.into(), shape, None, false)
        }
    }

    /// Unique identity of this tensor's storage/graph node.
    pub fn id(&self) -> u64 {
        self.inner.id
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &[usize] {
        &self.inner.shape
    }

    /// Number of dimensions.
    pub fn ndim(&self) -> usize {
        self.inner.shape.len()
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        shape::numel(&self.inner.shape)
    }

    /// Whether this tensor participates in gradient computation.
    pub fn requires_grad(&self) -> bool {
        self.inner.requires_grad
    }

    pub(crate) fn node(&self) -> Option<&Node> {
        self.inner.node.as_ref()
    }

    /// Borrows the underlying buffer (derefs to `&[Elem]`).
    pub fn data(&self) -> Ref<'_, Buf> {
        self.inner.data.borrow()
    }

    /// Copies the underlying buffer out.
    pub fn to_vec(&self) -> Vec<Elem> {
        self.inner.data.borrow().to_vec()
    }

    /// The value of a single-element tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor has more than one element.
    pub fn value(&self) -> Elem {
        assert_eq!(self.numel(), 1, "value() requires a single-element tensor");
        self.inner.data.borrow()[0]
    }

    /// Element at a multi-index.
    ///
    /// # Panics
    ///
    /// Panics if `index` has the wrong rank or is out of bounds.
    pub fn at(&self, index: &[usize]) -> Elem {
        assert_eq!(index.len(), self.ndim(), "index rank mismatch");
        let strides = shape::contiguous_strides(self.shape());
        let mut off = 0;
        for (axis, (&i, &s)) in index.iter().zip(&strides).enumerate() {
            assert!(i < self.shape()[axis], "index out of bounds on axis {axis}");
            off += i * s;
        }
        self.inner.data.borrow()[off]
    }

    /// A new leaf tensor with the same values, severed from the graph.
    pub fn detach(&self) -> Tensor {
        let src = self.data();
        let mut data = pool::take(src.len());
        data.extend_from_slice(&src[..]);
        drop(src);
        Tensor::from_buf(data, self.shape())
    }

    /// True when this tensor's storage has exactly one live handle, carries
    /// no graph node, and does not require gradients — the conditions under
    /// which the autograd engine may mutate it in place.
    pub(crate) fn is_exclusive_constant(&self) -> bool {
        Rc::strong_count(&self.inner) == 1 && self.inner.node.is_none() && !self.inner.requires_grad
    }

    /// In-place `self += other` (same shape); bitwise identical to the
    /// functional `add` for equal shapes. Autograd internals only — callers
    /// must first establish exclusivity via [`Tensor::is_exclusive_constant`].
    pub(crate) fn accumulate(&self, other: &Tensor) {
        debug_assert_eq!(self.shape(), other.shape(), "accumulate shape mismatch");
        let mut data = self.inner.data.borrow_mut();
        let rhs = other.inner.data.borrow();
        for (d, r) in data.iter_mut().zip(rhs.iter()) {
            *d += *r;
        }
    }

    /// Overwrites this tensor's buffer with `values` (in-place; used by
    /// optimizers and parameter loading — never call on tensors still
    /// referenced by a live graph you intend to differentiate).
    ///
    /// # Panics
    ///
    /// Panics if the length differs from the tensor's element count.
    pub fn assign_vec(&self, values: &[Elem]) {
        let mut data = self.inner.data.borrow_mut();
        assert_eq!(values.len(), data.len(), "assign_vec length mismatch");
        data.copy_from_slice(values);
    }

    /// In-place `self -= scale * other` (used for plain gradient-descent
    /// loops; `other` must have the same shape).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn sub_assign_scaled(&self, other: &Tensor, scale: Elem) {
        assert_eq!(
            self.shape(),
            other.shape(),
            "sub_assign_scaled shape mismatch"
        );
        let mut data = self.inner.data.borrow_mut();
        let rhs = other.inner.data.borrow();
        for (d, r) in data.iter_mut().zip(rhs.iter()) {
            *d -= scale * r;
        }
    }

    /// Applies `f` to every element in place (optimizer internals).
    pub(crate) fn map_inplace(&self, mut f: impl FnMut(usize, Elem) -> Elem) {
        let mut data = self.inner.data.borrow_mut();
        for (i, v) in data.iter_mut().enumerate() {
            *v = f(i, *v);
        }
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let data = self.inner.data.borrow();
        let preview: Vec<Elem> = data.iter().take(8).copied().collect();
        let ellipsis = if data.len() > 8 { ", …" } else { "" };
        write!(
            f,
            "Tensor(shape={:?}, grad={}, data={:?}{})",
            self.inner.shape, self.inner.requires_grad, preview, ellipsis
        )
    }
}

impl PartialEq for Tensor {
    /// Value equality: same shape and identical buffer contents.
    fn eq(&self, other: &Self) -> bool {
        self.shape() == other.shape() && *self.data() == *other.data()
    }
}

impl From<Elem> for Tensor {
    fn from(value: Elem) -> Self {
        Tensor::scalar(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn creation_and_accessors() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        assert_eq!(t.shape(), &[2, 3]);
        assert_eq!(t.ndim(), 2);
        assert_eq!(t.numel(), 6);
        assert_eq!(t.at(&[1, 2]), 6.0);
        assert!(!t.requires_grad());
    }

    #[test]
    #[should_panic(expected = "cannot have shape")]
    fn from_vec_rejects_mismatched_shape() {
        let _ = Tensor::from_vec(vec![1.0, 2.0], &[3]);
    }

    #[test]
    fn scalar_has_empty_shape() {
        let s = Tensor::scalar(7.5);
        assert_eq!(s.shape(), &[] as &[usize]);
        assert_eq!(s.value(), 7.5);
    }

    #[test]
    fn zeros_ones_full() {
        assert_eq!(Tensor::zeros(&[2, 2]).to_vec(), vec![0.0; 4]);
        assert_eq!(Tensor::ones(&[3]).to_vec(), vec![1.0; 3]);
        assert_eq!(Tensor::full(&[2], 4.25).to_vec(), vec![4.25, 4.25]);
    }

    #[test]
    fn randn_moments_are_plausible() {
        let mut rng = StdRng::seed_from_u64(7);
        let t = Tensor::randn(&[10_000], &mut rng);
        let data = t.to_vec();
        let mean: f64 = data.iter().sum::<f64>() / data.len() as f64;
        let var: f64 =
            data.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / data.len() as f64;
        assert!(mean.abs() < 0.05, "mean {mean} too far from 0");
        assert!((var - 1.0).abs() < 0.1, "variance {var} too far from 1");
    }

    #[test]
    fn detach_copies_and_drops_grad() {
        let p = Tensor::param_from_vec(vec![1.0, 2.0], &[2]);
        let d = p.detach();
        assert!(!d.requires_grad());
        assert_eq!(d.to_vec(), p.to_vec());
        // Mutating the original does not affect the detached copy.
        p.assign_vec(&[9.0, 9.0]);
        assert_eq!(d.to_vec(), vec![1.0, 2.0]);
    }

    #[test]
    fn sub_assign_scaled_updates_in_place() {
        let p = Tensor::param_from_vec(vec![1.0, 2.0], &[2]);
        let g = Tensor::from_vec(vec![10.0, 20.0], &[2]);
        p.sub_assign_scaled(&g, 0.1);
        assert_eq!(p.to_vec(), vec![0.0, 0.0]);
    }

    #[test]
    fn clones_alias_storage() {
        let a = Tensor::from_vec(vec![1.0], &[1]);
        let b = a.clone();
        a.assign_vec(&[5.0]);
        assert_eq!(b.to_vec(), vec![5.0]);
        assert_eq!(a.id(), b.id());
    }

    #[test]
    fn value_equality() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        let b = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        let c = Tensor::from_vec(vec![1.0, 2.0], &[1, 2]);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
