//! Composite operations built from primitives.
//!
//! Because these are compositions of differentiable primitives, their
//! (double-)backward passes come for free.

use crate::Tensor;

impl Tensor {
    /// Numerically stable softmax along `axis`.
    ///
    /// The row maximum is subtracted as a detached constant — softmax is
    /// shift-invariant, so this does not change any derivative.
    ///
    /// # Panics
    ///
    /// Panics if `axis` is out of range.
    ///
    /// # Example
    ///
    /// ```
    /// use metadse_nn::Tensor;
    ///
    /// let x = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[1, 3]);
    /// let p = x.softmax(1);
    /// let row_sum: f64 = p.to_vec().iter().sum();
    /// assert!((row_sum - 1.0).abs() < 1e-12);
    /// ```
    pub fn softmax(&self, axis: usize) -> Tensor {
        let shifted = self.sub(&self.max_axis_detached(axis));
        let e = shifted.exp();
        let denom = e.sum_axis(axis, true);
        e.div(&denom)
    }

    /// Log-softmax along `axis` (stable).
    ///
    /// # Panics
    ///
    /// Panics if `axis` is out of range.
    pub fn log_softmax(&self, axis: usize) -> Tensor {
        let shifted = self.sub(&self.max_axis_detached(axis));
        let lse = shifted.exp().sum_axis(axis, true).ln();
        shifted.sub(&lse)
    }

    /// Gaussian error linear unit (tanh approximation, as used by GPT-style
    /// transformers).
    pub fn gelu(&self) -> Tensor {
        // 0.5 * x * (1 + tanh(sqrt(2/pi) * (x + 0.044715 x^3)))
        let c = (2.0 / std::f64::consts::PI).sqrt();
        let inner = self.add(&self.powf(3.0).mul_scalar(0.044715)).mul_scalar(c);
        self.mul(&inner.tanh().add_scalar(1.0)).mul_scalar(0.5)
    }

    /// Population variance along `axis` (keepdim).
    ///
    /// # Panics
    ///
    /// Panics if `axis` is out of range.
    pub fn var_axis(&self, axis: usize, keepdim: bool) -> Tensor {
        let mean = self.mean_axis(axis, true);
        let centered = self.sub(&mean);
        centered.mul(&centered).mean_axis(axis, keepdim)
    }

    /// Squared Frobenius norm (sum of squared elements, scalar).
    pub fn squared_norm(&self) -> Tensor {
        self.mul(self).sum_all()
    }
}

#[cfg(test)]
mod tests {
    use crate::autograd::grad;
    use crate::Tensor;

    #[test]
    fn softmax_rows_sum_to_one() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0], &[2, 3]);
        let p = x.softmax(1);
        let v = p.to_vec();
        assert!((v[0] + v[1] + v[2] - 1.0).abs() < 1e-12);
        assert!((v[3] + v[4] + v[5] - 1.0).abs() < 1e-12);
        assert!(v.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn softmax_is_shift_invariant_and_stable() {
        let x = Tensor::from_vec(vec![1000.0, 1001.0, 1002.0], &[1, 3]);
        let p = x.softmax(1).to_vec();
        let y = Tensor::from_vec(vec![0.0, 1.0, 2.0], &[1, 3]);
        let q = y.softmax(1).to_vec();
        for (a, b) in p.iter().zip(q.iter()) {
            assert!((a - b).abs() < 1e-12);
            assert!(a.is_finite());
        }
    }

    #[test]
    fn softmax_gradient_sums_to_zero_per_row() {
        // d(sum of softmax)/dx = 0 because rows always sum to 1... but take
        // a weighted sum to get a nontrivial gradient and check it sums to 0
        // per row (softmax gradient lies in the simplex tangent space).
        let x = Tensor::param_from_vec(vec![0.5, -0.2, 0.1], &[1, 3]);
        let w = Tensor::from_vec(vec![3.0, -1.0, 2.0], &[1, 3]);
        let loss = x.softmax(1).mul(&w).sum_all();
        let g = grad(&loss, &[x], false);
        let s: f64 = g[0].to_vec().iter().sum();
        assert!(s.abs() < 1e-12, "row gradient sum {s} should vanish");
    }

    #[test]
    fn log_softmax_matches_softmax_log() {
        let x = Tensor::from_vec(vec![0.3, -0.7, 1.2], &[1, 3]);
        let a = x.log_softmax(1).to_vec();
        let b: Vec<f64> = x.softmax(1).to_vec().iter().map(|v| v.ln()).collect();
        for (u, v) in a.iter().zip(b.iter()) {
            assert!((u - v).abs() < 1e-10);
        }
    }

    #[test]
    fn gelu_limits() {
        let x = Tensor::from_vec(vec![-10.0, 0.0, 10.0], &[3]);
        let y = x.gelu().to_vec();
        assert!(y[0].abs() < 1e-6, "gelu(-10) ~ 0");
        assert_eq!(y[1], 0.0);
        assert!((y[2] - 10.0).abs() < 1e-6, "gelu(10) ~ 10");
    }

    #[test]
    fn var_axis_matches_manual() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 4]);
        let v = x.var_axis(1, false);
        assert!((v.to_vec()[0] - 1.25).abs() < 1e-12);
    }

    #[test]
    fn squared_norm() {
        let x = Tensor::from_vec(vec![3.0, 4.0], &[2]);
        assert_eq!(x.squared_norm().value(), 25.0);
    }
}
