//! Public handles to the resolved kernel backend for out-of-graph
//! executors.
//!
//! The tensor graph keeps [`super::backend`]'s dispatch machinery
//! crate-private so in-graph ops can never observe a half-configured
//! backend. External executors that bypass the graph entirely — the
//! compiled inference plans in `metadse-serve` — still need the *same*
//! kernels, because the repository's bit-exactness contracts (scalar ≡
//! simd digests, fused ≡ composite) are stated per kernel: any executor
//! that reproduces an op's accumulation order on these primitives
//! inherits the guarantees for free.
//!
//! [`kernels`] resolves the calling thread's active backend once and
//! returns a [`Kernels`] handle — a `Copy` token that pins the choice
//! for a whole forward pass, exactly as `backend::active()` does inside
//! each tensor op. The handle exposes only forward-pass primitives;
//! gradient kernels stay internal because out-of-graph executors are
//! inference-only by construction.

use super::backend::{self, ActiveBackend};
use crate::Elem;

/// Fraction of exact zeros at which the in-graph matmul switches a
/// batch to the zero-skipping sparse kernel. Exported so out-of-graph
/// executors reproduce the *data-dependent* dense/sparse choice — the
/// path decision is part of the bit-exactness contract, not just the
/// arithmetic inside each path.
pub const SPARSE_ZERO_FRACTION: f64 = super::matmul::SPARSE_ZERO_FRACTION;

/// Row lengths at or below this bound make the backends' chunked
/// reductions degenerate to sequential accumulation (re-exported from
/// [`backend::SEQ_EQUIV_MAX`]).
pub use super::backend::SEQ_EQUIV_MAX;

/// The calling thread's resolved kernel set.
///
/// Copies of this handle all dispatch to the same backend; resolve one
/// per forward pass so a concurrent [`crate::BackendModeGuard`] on
/// another thread can never split a single pass across kernel sets.
#[derive(Clone, Copy)]
pub struct Kernels {
    be: ActiveBackend,
}

impl std::fmt::Debug for Kernels {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Kernels(..)")
    }
}

/// Resolves the active backend (`METADSE_BACKEND`, process override,
/// or thread-local guard) for the calling thread.
pub fn kernels() -> Kernels {
    Kernels {
        be: backend::active(),
    }
}

impl Kernels {
    /// `out[j] = dot(a, bt_row_j)` over a packed `[n, k]` panel `bt` —
    /// the dense matmul microkernel.
    #[inline(always)]
    pub fn dot_block(self, a: &[Elem], bt: &[Elem], k: usize, out: &mut [Elem]) {
        self.be.dot_block(a, bt, k, out)
    }

    /// `dst[i] += scale * src[i]` — the sparse matmul accumulation.
    #[inline(always)]
    pub fn axpy(self, scale: Elem, src: &[Elem], dst: &mut [Elem]) {
        self.be.axpy(scale, src, dst)
    }

    /// Chunked row sum — the reduction order `sum_to`'s trailing-axis
    /// fast path produces.
    #[inline(always)]
    pub fn sum(self, xs: &[Elem]) -> Elem {
        self.be.sum(xs)
    }

    /// Chunked sum of squares — the layernorm variance reduction.
    #[inline(always)]
    pub fn sum_sq(self, xs: &[Elem]) -> Elem {
        self.be.sum_sq(xs)
    }

    /// Folds `src`'s rows (row length `out.len()`) into `out` by
    /// addition, rows in ascending order.
    #[inline(always)]
    pub fn fold_rows(self, src: &[Elem], out: &mut [Elem]) {
        self.be.fold_rows(src, out)
    }

    /// Fused `gelu(x + bias)` over a flat buffer with a suffix-broadcast
    /// bias; `tanh` receives the per-element tanh values (`out.len()`
    /// scratch the caller provides).
    #[inline(always)]
    pub fn bias_gelu_forward(self, sx: &[Elem], sb: &[Elem], out: &mut [Elem], tanh: &mut [Elem]) {
        self.be.bias_gelu_forward(sx, sb, out, tanh)
    }
}
