//! Batched matrix multiplication.

use std::rc::Rc;

use crate::tensor::shape::{broadcast_shapes, broadcast_strides, numel, OffsetWalker};
use crate::tensor::{BackwardFn, Tensor};
use crate::Elem;

impl Tensor {
    /// Matrix product over the last two axes, broadcasting leading (batch)
    /// axes NumPy-style.
    ///
    /// For operands of shape `[.., m, k]` and `[.., k, n]`, the result has
    /// shape `[broadcast(..), m, n]`. A plain 2-D weight matrix therefore
    /// applies to every batch of a higher-rank input.
    ///
    /// # Panics
    ///
    /// Panics if either operand has fewer than two dimensions, if the inner
    /// dimensions disagree, or if the batch dimensions cannot broadcast.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        assert!(
            self.ndim() >= 2 && other.ndim() >= 2,
            "matmul requires rank >= 2 operands (got {:?} and {:?})",
            self.shape(),
            other.shape()
        );
        let (m, ka) = (
            self.shape()[self.ndim() - 2],
            self.shape()[self.ndim() - 1],
        );
        let (kb, n) = (
            other.shape()[other.ndim() - 2],
            other.shape()[other.ndim() - 1],
        );
        assert_eq!(
            ka, kb,
            "matmul inner dimensions disagree: {:?} x {:?}",
            self.shape(),
            other.shape()
        );
        let batch_a = &self.shape()[..self.ndim() - 2];
        let batch_b = &other.shape()[..other.ndim() - 2];
        let batch = broadcast_shapes(batch_a, batch_b).unwrap_or_else(|| {
            panic!(
                "matmul batch dimensions do not broadcast: {:?} x {:?}",
                self.shape(),
                other.shape()
            )
        });
        let batch_count = numel(&batch);

        // Offsets of each batch's matrix within the (possibly broadcast)
        // operand buffers.
        let offsets_a: Vec<usize> = if batch_a.is_empty() {
            vec![0; batch_count]
        } else {
            let strides = broadcast_strides(batch_a, &batch);
            OffsetWalker::new(&batch, strides)
                .map(|o| o * (m * ka))
                .collect()
        };
        let offsets_b: Vec<usize> = if batch_b.is_empty() {
            vec![0; batch_count]
        } else {
            let strides = broadcast_strides(batch_b, &batch);
            OffsetWalker::new(&batch, strides)
                .map(|o| o * (kb * n))
                .collect()
        };

        let da = self.data();
        let db = other.data();
        let mut out = vec![0.0 as Elem; batch_count * m * n];
        for bi in 0..batch_count {
            let a_base = offsets_a[bi];
            let b_base = offsets_b[bi];
            let o_base = bi * m * n;
            for i in 0..m {
                for kk in 0..ka {
                    let a_ik = da[a_base + i * ka + kk];
                    if a_ik == 0.0 {
                        continue;
                    }
                    let b_row = b_base + kk * n;
                    let o_row = o_base + i * n;
                    for j in 0..n {
                        out[o_row + j] += a_ik * db[b_row + j];
                    }
                }
            }
        }
        drop(da);
        drop(db);

        let mut out_shape = batch;
        out_shape.push(m);
        out_shape.push(n);
        let backward: BackwardFn = Rc::new(|g, ps, _out| {
            let a = &ps[0];
            let b = &ps[1];
            // dL/dA = g · Bᵀ, reduced back over broadcast batch dims.
            let ga = g.matmul(&b.transpose_last2()).sum_to(a.shape());
            // dL/dB = Aᵀ · g, reduced back over broadcast batch dims.
            let gb = a.transpose_last2().matmul(g).sum_to(b.shape());
            vec![Some(ga), Some(gb)]
        });
        Tensor::from_op(
            out,
            out_shape,
            vec![self.clone(), other.clone()],
            backward,
        )
    }

    /// Swaps the last two axes (`transpose(ndim-2, ndim-1)`).
    ///
    /// # Panics
    ///
    /// Panics if the tensor has fewer than two dimensions.
    pub fn transpose_last2(&self) -> Tensor {
        assert!(self.ndim() >= 2, "transpose_last2 requires rank >= 2");
        self.transpose(self.ndim() - 2, self.ndim() - 1)
    }
}

#[cfg(test)]
mod tests {
    use crate::autograd::grad;
    use crate::Tensor;

    #[test]
    fn matmul_2d() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let b = Tensor::from_vec(vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0], &[3, 2]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), &[2, 2]);
        assert_eq!(c.to_vec(), vec![58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_batched_equal_batches() {
        // Two independent 1x2 @ 2x1 products.
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 1, 2]);
        let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2, 1]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), &[2, 1, 1]);
        assert_eq!(c.to_vec(), vec![17.0, 53.0]);
    }

    #[test]
    fn matmul_broadcasts_2d_weight_over_batch() {
        let x = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0, 2.0, 2.0], &[3, 1, 2]);
        let w = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let y = x.matmul(&w);
        assert_eq!(y.shape(), &[3, 1, 2]);
        assert_eq!(y.to_vec(), vec![1.0, 2.0, 3.0, 4.0, 8.0, 12.0]);
    }

    #[test]
    fn matmul_gradients_2d() {
        let a = Tensor::param_from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = Tensor::param_from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]);
        let loss = a.matmul(&b).sum_all();
        let g = grad(&loss, &[a, b], false);
        // dL/dA = ones @ B^T
        assert_eq!(g[0].to_vec(), vec![11.0, 15.0, 11.0, 15.0]);
        // dL/dB = A^T @ ones
        assert_eq!(g[1].to_vec(), vec![4.0, 4.0, 6.0, 6.0]);
    }

    #[test]
    fn matmul_gradient_reduces_broadcast_weight() {
        // Shared 2-D weight across a batch: the weight gradient must sum
        // over the batch.
        let x = Tensor::param_from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 1, 2]);
        let w = Tensor::param_from_vec(vec![1.0, 0.0, 0.0, 1.0], &[2, 2]);
        let loss = x.matmul(&w).sum_all();
        let g = grad(&loss, &[x.clone(), w.clone()], false);
        assert_eq!(g[0].shape(), &[2, 1, 2]);
        assert_eq!(g[1].shape(), &[2, 2]);
        // dL/dW = sum over batch of x^T @ ones = [[1+3],[2+4]] per column.
        assert_eq!(g[1].to_vec(), vec![4.0, 4.0, 6.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "inner dimensions disagree")]
    fn matmul_rejects_bad_inner_dims() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[2, 2]);
        let _ = a.matmul(&b);
    }

    #[test]
    fn second_order_through_matmul() {
        // f(x) = (x @ x).sum() for 1x1 x is x^2; second derivative is 2.
        let x = Tensor::param_from_vec(vec![3.0], &[1, 1]);
        let y = x.matmul(&x).sum_all();
        let d1 = grad(&y, &[x.clone()], true);
        assert!((d1[0].to_vec()[0] - 6.0).abs() < 1e-12);
        let d2 = grad(&d1[0].sum_all(), &[x.clone()], false);
        assert!((d2[0].to_vec()[0] - 2.0).abs() < 1e-12);
    }
}
