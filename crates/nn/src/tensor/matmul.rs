//! Batched matrix multiplication.
//!
//! The forward kernel packs each distinct B block transposed once per call
//! (a broadcast 2-D weight is packed exactly once and reused by every
//! batch), then runs a dot-product microkernel with contiguous access to
//! both operands. Batches whose A block is mostly zeros — masked attention
//! rows — instead take an axpy path that skips zero multiplicands
//! entirely. The choice is data-dependent, so it is identical across
//! thread counts.
//!
//! The backward pass never materializes a transposed operand: when the
//! gradient itself needs no graph (`create_graph = false`, the common
//! first-order case), both parent gradients are accumulated directly into
//! buffers of the parents' shapes, with broadcast batch reduction folded
//! into the accumulation. Only double-backward (second-order MAML) falls
//! back to the tensor-op composition.

use std::rc::Rc;

use metadse_obs as obs;

use crate::autograd;
use crate::fasthash::IdHashMap;
use crate::tensor::backend::{self, ActiveBackend};
use crate::tensor::fused;
use crate::tensor::pool::{self, Buf};
use crate::tensor::shape::{broadcast_shapes, broadcast_strides, numel, OffsetWalker};
use crate::tensor::{BackwardFn, Tensor};
use crate::Elem;

/// A batch's A block is "sparse" when at least this fraction of it is
/// exactly zero; the axpy kernel then skips whole zero terms.
pub(crate) const SPARSE_ZERO_FRACTION: f64 = 0.25;

/// Packs the `k x n` block of `db` at `base` transposed (as `n x k`) onto
/// the end of `packed`, returning the block's start within `packed`.
fn pack_transposed(db: &[Elem], base: usize, k: usize, n: usize, packed: &mut Buf) -> usize {
    let start = packed.len();
    packed.resize(start + n * k, 0.0);
    let block = &mut packed[start..];
    for kk in 0..k {
        let row = &db[base + kk * n..base + (kk + 1) * n];
        for (j, &v) in row.iter().enumerate() {
            block[j * k + kk] = v;
        }
    }
    start
}

/// Dense microkernel: `out[i, j] = dot(a_row_i, bt_row_j)`, each output row
/// one `dot_block` call over the packed panel.
#[allow(clippy::too_many_arguments)] // raw kernel: slices + block geometry
fn dense_block(
    be: ActiveBackend,
    da: &[Elem],
    a_base: usize,
    bt: &[Elem],
    out: &mut [Elem],
    m: usize,
    k: usize,
    n: usize,
) {
    for i in 0..m {
        let a_row = &da[a_base + i * k..a_base + (i + 1) * k];
        let o_row = &mut out[i * n..(i + 1) * n];
        be.dot_block(a_row, bt, k, o_row);
    }
}

/// Sparse microkernel: row-major axpy accumulation that skips zero A
/// entries — each zero avoids an entire length-`n` pass.
#[allow(clippy::too_many_arguments)] // raw kernel: slices + block geometry
fn sparse_block(
    be: ActiveBackend,
    da: &[Elem],
    a_base: usize,
    db: &[Elem],
    b_base: usize,
    out: &mut [Elem],
    m: usize,
    k: usize,
    n: usize,
) {
    for i in 0..m {
        for kk in 0..k {
            let a_ik = da[a_base + i * k + kk];
            if a_ik == 0.0 {
                continue;
            }
            let b_row = &db[b_base + kk * n..b_base + (kk + 1) * n];
            let o_row = &mut out[i * n..(i + 1) * n];
            be.axpy(a_ik, b_row, o_row);
        }
    }
}

/// The full forward kernel over all (possibly broadcast) batches.
fn matmul_forward(
    da: &[Elem],
    db: &[Elem],
    offsets_a: &[usize],
    offsets_b: &[usize],
    m: usize,
    k: usize,
    n: usize,
) -> Buf {
    let be = backend::active();
    let batch_count = offsets_a.len();
    let mut out = pool::take_zeroed(batch_count * m * n);
    // Distinct B blocks packed transposed, keyed by their buffer offset. A
    // broadcast weight has one distinct offset: packed once, reused.
    let mut packed: Buf = pool::take(k * n);
    let mut slots: IdHashMap<usize, usize> = IdHashMap::default();
    // Path counts accumulate locally and flush as three counter bumps per
    // call, so instrumentation cost stays off the per-batch inner loop.
    let (mut sparse_batches, mut dense_batches, mut packs) = (0u64, 0u64, 0u64);
    for bi in 0..batch_count {
        let a_base = offsets_a[bi];
        let b_base = offsets_b[bi];
        let out_block = &mut out[bi * m * n..(bi + 1) * m * n];
        let zeros = da[a_base..a_base + m * k]
            .iter()
            .filter(|v| **v == 0.0)
            .count();
        if (zeros as f64) >= SPARSE_ZERO_FRACTION * (m * k) as f64 {
            sparse_batches += 1;
            sparse_block(be, da, a_base, db, b_base, out_block, m, k, n);
        } else {
            dense_batches += 1;
            let slot = *slots.entry(b_base).or_insert_with(|| {
                packs += 1;
                pack_transposed(db, b_base, k, n, &mut packed)
            });
            dense_block(
                be,
                da,
                a_base,
                &packed[slot..slot + n * k],
                out_block,
                m,
                k,
                n,
            );
        }
    }
    obs::counter("nn/matmul_sparse_batches", sparse_batches);
    obs::counter("nn/matmul_dense_batches", dense_batches);
    obs::counter("nn/matmul_packs", packs);
    pool::recycle(packed);
    out
}

/// Raw first-order gradients for both operands, with the broadcast batch
/// reduction folded into the accumulation (replacing `sum_to`).
///
/// `dL/dA[i, kk] = dot_j(g[i, ·], B[kk, ·])` — both rows contiguous in the
/// original layouts, so no transpose is ever materialized: B's `k` rows of
/// length `n` already form a `dot_block` panel for the gradient row.
/// `dL/dB` uses the axpy form with zero-skip on A (zero attention weights
/// contribute no gradient term). Batches accumulate in ascending order, so
/// broadcast parents see the same summation order as the serial tensor-op
/// path.
#[allow(clippy::too_many_arguments)] // raw kernel: slices + block geometry
fn matmul_backward_raw(
    dg: &[Elem],
    da: &[Elem],
    db: &[Elem],
    offsets_a: &[usize],
    offsets_b: &[usize],
    m: usize,
    k: usize,
    n: usize,
    want_ga: bool,
    want_gb: bool,
) -> (Option<Buf>, Option<Buf>) {
    let be = backend::active();
    let mut ga = want_ga.then(|| pool::take_zeroed(da.len()));
    let mut gb = want_gb.then(|| pool::take_zeroed(db.len()));
    for bi in 0..offsets_a.len() {
        let a_base = offsets_a[bi];
        let b_base = offsets_b[bi];
        let g_base = bi * m * n;
        if let Some(ga) = ga.as_mut() {
            let b_panel = &db[b_base..b_base + k * n];
            for i in 0..m {
                let g_row = &dg[g_base + i * n..g_base + (i + 1) * n];
                let ga_row = &mut ga[a_base + i * k..a_base + (i + 1) * k];
                be.dot_block_acc(g_row, b_panel, n, ga_row);
            }
        }
        if let Some(gb) = gb.as_mut() {
            for i in 0..m {
                let g_row = &dg[g_base + i * n..g_base + (i + 1) * n];
                for kk in 0..k {
                    let a_ik = da[a_base + i * k + kk];
                    if a_ik == 0.0 {
                        continue;
                    }
                    let gb_row = &mut gb[b_base + kk * n..b_base + (kk + 1) * n];
                    be.axpy(a_ik, g_row, gb_row);
                }
            }
        }
    }
    (ga, gb)
}

/// Forward kernel for `A · Bᵀ` over equal batch layouts: both operands
/// store the contraction axis contiguously, so every output element is one
/// dot product of two rows — no packing, no transpose.
///
/// Per-batch path choice mirrors [`matmul_forward`]: an A block at or above
/// [`SPARSE_ZERO_FRACTION`] zeros takes the zero-skipping dot. Either way
/// each output element sums its `a[i, kk] * b[j, kk]` terms in ascending
/// `kk` order — the same per-element sequence the packed dense kernel and
/// the sparse axpy kernel produce — so the bits match the composite
/// `a.matmul(&b.transpose_last2())` exactly.
fn matmul_nt_forward(
    da: &[Elem],
    db: &[Elem],
    batch_count: usize,
    m: usize,
    k: usize,
    n: usize,
) -> Buf {
    let be = backend::active();
    let mut out = pool::take_zeroed(batch_count * m * n);
    let (mut sparse_batches, mut dense_batches) = (0u64, 0u64);
    for bi in 0..batch_count {
        let a_block = &da[bi * m * k..(bi + 1) * m * k];
        let b_block = &db[bi * n * k..(bi + 1) * n * k];
        let out_block = &mut out[bi * m * n..(bi + 1) * m * n];
        let zeros = a_block.iter().filter(|v| **v == 0.0).count();
        let sparse = (zeros as f64) >= SPARSE_ZERO_FRACTION * (m * k) as f64;
        if sparse {
            sparse_batches += 1;
        } else {
            dense_batches += 1;
        }
        for i in 0..m {
            let a_row = &a_block[i * k..(i + 1) * k];
            let o_row = &mut out_block[i * n..(i + 1) * n];
            if sparse {
                // Zero-skipping dot: same ascending-k accumulation the
                // sparse axpy kernel produces per output element.
                for (j, o) in o_row.iter_mut().enumerate() {
                    let b_row = &b_block[j * k..(j + 1) * k];
                    let mut s = 0.0;
                    for (&av, &bv) in a_row.iter().zip(b_row) {
                        if av == 0.0 {
                            continue;
                        }
                        s += av * bv;
                    }
                    *o = s;
                }
            } else {
                // B's rows already store the contraction axis contiguously:
                // the block *is* a packed panel.
                be.dot_block(a_row, b_block, k, o_row);
            }
        }
    }
    obs::counter("nn/matmul_sparse_batches", sparse_batches);
    obs::counter("nn/matmul_dense_batches", dense_batches);
    out
}

/// Raw first-order gradients for `A · Bᵀ`. Mirrors the composite chain's
/// bits: `dL/dA[i, kk] = dot_j(g[i, ·], Bᵀ[kk, ·])` — B's contraction rows
/// are transposed into a pooled scratch panel once per batch so the dot
/// runs contiguously (products `g[i, j] * b[j, kk]` in ascending `j`,
/// exactly the strided order) — and `dL/dB` is the axpy form with the same
/// zero-skip on A, summed over `i` in ascending order — the order the
/// transpose node would have forwarded unchanged.
#[allow(clippy::too_many_arguments)] // raw kernel: slices + block geometry
fn matmul_nt_backward_raw(
    dg: &[Elem],
    da: &[Elem],
    db: &[Elem],
    batch_count: usize,
    m: usize,
    k: usize,
    n: usize,
    want_ga: bool,
    want_gb: bool,
) -> (Option<Buf>, Option<Buf>) {
    let be = backend::active();
    let mut ga = want_ga.then(|| pool::take_zeroed(da.len()));
    let mut gb = want_gb.then(|| pool::take_zeroed(db.len()));
    let mut btt = want_ga.then(|| pool::take(k * n));
    for bi in 0..batch_count {
        let a_base = bi * m * k;
        let b_base = bi * n * k;
        let g_base = bi * m * n;
        if let Some(ga) = ga.as_mut() {
            let btt = btt.as_mut().expect("scratch allocated with ga");
            btt.clear();
            pack_transposed(db, b_base, n, k, btt);
            for i in 0..m {
                let g_row = &dg[g_base + i * n..g_base + (i + 1) * n];
                let ga_row = &mut ga[a_base + i * k..a_base + (i + 1) * k];
                be.dot_block_acc(g_row, btt, n, ga_row);
            }
        }
        if let Some(gb) = gb.as_mut() {
            for i in 0..m {
                let g_row = &dg[g_base + i * n..g_base + (i + 1) * n];
                let a_row = &da[a_base + i * k..a_base + (i + 1) * k];
                for (j, &gv) in g_row.iter().enumerate() {
                    let gb_row = &mut gb[b_base + j * k..b_base + (j + 1) * k];
                    for (&av, o) in a_row.iter().zip(gb_row.iter_mut()) {
                        if av == 0.0 {
                            continue;
                        }
                        *o += av * gv;
                    }
                }
            }
        }
    }
    if let Some(btt) = btt {
        pool::recycle(btt);
    }
    (ga, gb)
}

impl Tensor {
    /// Matrix product over the last two axes, broadcasting leading (batch)
    /// axes NumPy-style.
    ///
    /// For operands of shape `[.., m, k]` and `[.., k, n]`, the result has
    /// shape `[broadcast(..), m, n]`. A plain 2-D weight matrix therefore
    /// applies to every batch of a higher-rank input.
    ///
    /// # Panics
    ///
    /// Panics if either operand has fewer than two dimensions, if the inner
    /// dimensions disagree, or if the batch dimensions cannot broadcast.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        assert!(
            self.ndim() >= 2 && other.ndim() >= 2,
            "matmul requires rank >= 2 operands (got {:?} and {:?})",
            self.shape(),
            other.shape()
        );
        let (m, ka) = (self.shape()[self.ndim() - 2], self.shape()[self.ndim() - 1]);
        let (kb, n) = (
            other.shape()[other.ndim() - 2],
            other.shape()[other.ndim() - 1],
        );
        assert_eq!(
            ka,
            kb,
            "matmul inner dimensions disagree: {:?} x {:?}",
            self.shape(),
            other.shape()
        );
        let batch_a = &self.shape()[..self.ndim() - 2];
        let batch_b = &other.shape()[..other.ndim() - 2];
        let batch = broadcast_shapes(batch_a, batch_b).unwrap_or_else(|| {
            panic!(
                "matmul batch dimensions do not broadcast: {:?} x {:?}",
                self.shape(),
                other.shape()
            )
        });
        let batch_count = numel(&batch);

        // Offsets of each batch's matrix within the (possibly broadcast)
        // operand buffers.
        let offsets_a: Vec<usize> = if batch_a.is_empty() {
            vec![0; batch_count]
        } else {
            let strides = broadcast_strides(batch_a, &batch);
            OffsetWalker::new(&batch, strides)
                .map(|o| o * (m * ka))
                .collect()
        };
        let offsets_b: Vec<usize> = if batch_b.is_empty() {
            vec![0; batch_count]
        } else {
            let strides = broadcast_strides(batch_b, &batch);
            OffsetWalker::new(&batch, strides)
                .map(|o| o * (kb * n))
                .collect()
        };

        obs::counter("nn/matmul_calls", 1);
        obs::counter("nn/matmul_flops", (2 * batch_count * m * ka * n) as u64);

        let da = self.data();
        let db = other.data();
        let out = matmul_forward(&da, &db, &offsets_a, &offsets_b, m, ka, n);
        drop(da);
        drop(db);

        let mut out_shape = batch;
        out_shape.push(m);
        out_shape.push(n);
        let backward: BackwardFn = Rc::new(move |g, ps, _out| {
            let a = &ps[0];
            let b = &ps[1];
            if autograd::is_grad_enabled() {
                // Double-backward (create_graph): stay on tensor ops so
                // the gradients remain differentiable.
                // dL/dA = g · Bᵀ, reduced back over broadcast batch dims.
                let ga = g.matmul(&b.transpose_last2()).sum_to(a.shape());
                // dL/dB = Aᵀ · g, reduced back over broadcast batch dims.
                let gb = a.transpose_last2().matmul(g).sum_to(b.shape());
                return vec![Some(ga), Some(gb)];
            }
            let (ga, gb) = matmul_backward_raw(
                &g.data(),
                &a.data(),
                &b.data(),
                &offsets_a,
                &offsets_b,
                m,
                ka,
                n,
                a.requires_grad(),
                b.requires_grad(),
            );
            vec![
                ga.map(|v| Tensor::from_buf(v, a.shape())),
                gb.map(|v| Tensor::from_buf(v, b.shape())),
            ]
        });
        Tensor::from_op(out, out_shape, vec![self.clone(), other.clone()], backward)
    }

    /// `self · otherᵀ` over the last two axes: `[.., m, k] x [.., n, k]`
    /// -> `[.., m, n]`, without materializing the transpose.
    ///
    /// For operands with identical batch dimensions (attention's
    /// `Q · Kᵀ`), this runs as a single fused graph node whose kernel dots
    /// contiguous rows of both operands — no transposed copy, no B-panel
    /// packing — and whose first-order backward accumulates both parent
    /// gradients directly. Results are bit-identical to the composite
    /// `self.matmul(&other.transpose_last2())`, which is also the fallback
    /// when fusion is disabled, the batch layouts differ, or the backward
    /// itself needs a graph (double backward).
    ///
    /// # Panics
    ///
    /// Panics as [`Tensor::matmul`] does on rank/shape mismatches.
    pub fn matmul_nt(&self, other: &Tensor) -> Tensor {
        if !fused::is_enabled()
            || self.ndim() != other.ndim()
            || self.shape()[..self.ndim() - 2] != other.shape()[..other.ndim() - 2]
        {
            return self.matmul(&other.transpose_last2());
        }
        let nd = self.ndim();
        let (m, ka) = (self.shape()[nd - 2], self.shape()[nd - 1]);
        let (n, kb) = (other.shape()[nd - 2], other.shape()[nd - 1]);
        assert_eq!(
            ka,
            kb,
            "matmul_nt contraction dimensions disagree: {:?} x {:?}ᵀ",
            self.shape(),
            other.shape()
        );
        let batch = &self.shape()[..nd - 2];
        let batch_count = numel(batch);

        obs::counter("nn/matmul_calls", 1);
        obs::counter("nn/matmul_flops", (2 * batch_count * m * ka * n) as u64);
        obs::counter("nn/fused_calls", 1);

        let out = matmul_nt_forward(&self.data(), &other.data(), batch_count, m, ka, n);
        let mut out_shape = batch.to_vec();
        out_shape.push(m);
        out_shape.push(n);
        let backward: BackwardFn = Rc::new(move |g, ps, _out| {
            let a = &ps[0];
            let b = &ps[1];
            if autograd::is_grad_enabled() {
                // Double-backward: stay on tensor ops. dL/dA = g · B,
                // dL/dB = gᵀ · A (batch dims are equal, so no reduction).
                let ga = g.matmul(b);
                let gb = g.transpose_last2().matmul(a);
                return vec![Some(ga), Some(gb)];
            }
            let (ga, gb) = matmul_nt_backward_raw(
                &g.data(),
                &a.data(),
                &b.data(),
                batch_count,
                m,
                ka,
                n,
                a.requires_grad(),
                b.requires_grad(),
            );
            vec![
                ga.map(|v| Tensor::from_buf(v, a.shape())),
                gb.map(|v| Tensor::from_buf(v, b.shape())),
            ]
        });
        Tensor::from_op(out, out_shape, vec![self.clone(), other.clone()], backward)
    }

    /// Swaps the last two axes (`transpose(ndim-2, ndim-1)`).
    ///
    /// # Panics
    ///
    /// Panics if the tensor has fewer than two dimensions.
    pub fn transpose_last2(&self) -> Tensor {
        assert!(self.ndim() >= 2, "transpose_last2 requires rank >= 2");
        self.transpose(self.ndim() - 2, self.ndim() - 1)
    }
}

#[cfg(test)]
mod tests {
    use crate::autograd::grad;
    use crate::gradcheck::check_gradients;
    use crate::Tensor;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn matmul_2d() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let b = Tensor::from_vec(vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0], &[3, 2]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), &[2, 2]);
        assert_eq!(c.to_vec(), vec![58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_batched_equal_batches() {
        // Two independent 1x2 @ 2x1 products.
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 1, 2]);
        let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2, 1]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), &[2, 1, 1]);
        assert_eq!(c.to_vec(), vec![17.0, 53.0]);
    }

    #[test]
    fn matmul_broadcasts_2d_weight_over_batch() {
        let x = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0, 2.0, 2.0], &[3, 1, 2]);
        let w = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let y = x.matmul(&w);
        assert_eq!(y.shape(), &[3, 1, 2]);
        assert_eq!(y.to_vec(), vec![1.0, 2.0, 3.0, 4.0, 8.0, 12.0]);
    }

    #[test]
    fn matmul_gradients_2d() {
        let a = Tensor::param_from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = Tensor::param_from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]);
        let loss = a.matmul(&b).sum_all();
        let g = grad(&loss, &[a, b], false);
        // dL/dA = ones @ B^T
        assert_eq!(g[0].to_vec(), vec![11.0, 15.0, 11.0, 15.0]);
        // dL/dB = A^T @ ones
        assert_eq!(g[1].to_vec(), vec![4.0, 4.0, 6.0, 6.0]);
    }

    #[test]
    fn matmul_gradient_reduces_broadcast_weight() {
        // Shared 2-D weight across a batch: the weight gradient must sum
        // over the batch.
        let x = Tensor::param_from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 1, 2]);
        let w = Tensor::param_from_vec(vec![1.0, 0.0, 0.0, 1.0], &[2, 2]);
        let loss = x.matmul(&w).sum_all();
        let g = grad(&loss, &[x.clone(), w.clone()], false);
        assert_eq!(g[0].shape(), &[2, 1, 2]);
        assert_eq!(g[1].shape(), &[2, 2]);
        // dL/dW = sum over batch of x^T @ ones = [[1+3],[2+4]] per column.
        assert_eq!(g[1].to_vec(), vec![4.0, 4.0, 6.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "inner dimensions disagree")]
    fn matmul_rejects_bad_inner_dims() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[2, 2]);
        let _ = a.matmul(&b);
    }

    #[test]
    fn second_order_through_matmul() {
        // f(x) = (x @ x).sum() for 1x1 x is x^2; second derivative is 2.
        let x = Tensor::param_from_vec(vec![3.0], &[1, 1]);
        let y = x.matmul(&x).sum_all();
        let d1 = grad(&y, std::slice::from_ref(&x), true);
        assert!((d1[0].to_vec()[0] - 6.0).abs() < 1e-12);
        let d2 = grad(&d1[0].sum_all(), std::slice::from_ref(&x), false);
        assert!((d2[0].to_vec()[0] - 2.0).abs() < 1e-12);
    }

    /// Dense wide-enough shapes to exercise both the unrolled and tail
    /// columns of the packed microkernel.
    #[test]
    fn dense_kernel_matches_naive_reference() {
        let mut rng = StdRng::seed_from_u64(11);
        for (m, k, n) in [(1, 1, 1), (3, 5, 7), (4, 8, 4), (5, 3, 6), (2, 16, 9)] {
            let a: Vec<f64> = (0..m * k).map(|_| rng.gen_range(-2.0..2.0)).collect();
            let b: Vec<f64> = (0..k * n).map(|_| rng.gen_range(-2.0..2.0)).collect();
            let out = Tensor::from_vec(a.clone(), &[m, k])
                .matmul(&Tensor::from_vec(b.clone(), &[k, n]))
                .to_vec();
            for i in 0..m {
                for j in 0..n {
                    let want: f64 = (0..k).map(|kk| a[i * k + kk] * b[kk * n + j]).sum();
                    assert!(
                        (out[i * n + j] - want).abs() < 1e-12,
                        "({m},{k},{n})[{i},{j}]: {} vs {want}",
                        out[i * n + j]
                    );
                }
            }
        }
    }

    /// Sparse (zero-heavy) A blocks take the axpy path; the result must be
    /// identical to the dense answer.
    #[test]
    fn sparse_path_matches_dense_answer() {
        let mut rng = StdRng::seed_from_u64(12);
        let (m, k, n) = (6, 8, 5);
        // ~60% zeros: safely above the sparse threshold.
        let a: Vec<f64> = (0..m * k)
            .map(|_| {
                if rng.gen_range(0.0..1.0) < 0.6 {
                    0.0
                } else {
                    rng.gen_range(-2.0..2.0)
                }
            })
            .collect();
        let b: Vec<f64> = (0..k * n).map(|_| rng.gen_range(-2.0..2.0)).collect();
        let out = Tensor::from_vec(a.clone(), &[m, k])
            .matmul(&Tensor::from_vec(b.clone(), &[k, n]))
            .to_vec();
        for i in 0..m {
            for j in 0..n {
                let want: f64 = (0..k).map(|kk| a[i * k + kk] * b[kk * n + j]).sum();
                assert!((out[i * n + j] - want).abs() < 1e-12);
            }
        }
    }

    /// Numerical gradient check of the fast (non-differentiable) backward
    /// over plain 2-D operands.
    #[test]
    fn gradcheck_matmul_2d() {
        let mut rng = StdRng::seed_from_u64(13);
        let a =
            Tensor::param_from_vec((0..12).map(|_| rng.gen_range(-1.0..1.0)).collect(), &[3, 4]);
        let b =
            Tensor::param_from_vec((0..20).map(|_| rng.gen_range(-1.0..1.0)).collect(), &[4, 5]);
        let reports = check_gradients(
            |t| t[0].matmul(&t[1]).mul(&t[0].matmul(&t[1])).sum_all(),
            &[a, b],
            1e-5,
        );
        assert!(reports[0].passes(1e-6), "{:?}", reports[0]);
        assert!(reports[1].passes(1e-6), "{:?}", reports[1]);
    }

    /// Gradient check across broadcast (non-contiguous) batch offsets: a
    /// batched LHS against a shared 2-D weight, and a 1-batch LHS
    /// broadcast against a batched RHS.
    #[test]
    fn gradcheck_matmul_broadcast_batches() {
        let mut rng = StdRng::seed_from_u64(14);
        // [2, 3, 2] @ [2, 4] — the weight gradient reduces over the batch.
        let x = Tensor::param_from_vec(
            (0..12).map(|_| rng.gen_range(-1.0..1.0)).collect(),
            &[2, 3, 2],
        );
        let w = Tensor::param_from_vec((0..8).map(|_| rng.gen_range(-1.0..1.0)).collect(), &[2, 4]);
        let reports = check_gradients(|t| t[0].matmul(&t[1]).squared_norm(), &[x, w], 1e-5);
        assert!(reports[0].passes(1e-6), "{:?}", reports[0]);
        assert!(reports[1].passes(1e-6), "{:?}", reports[1]);

        // [1, 2, 3] @ [4, 3, 2] — the LHS gradient reduces over the batch.
        let a = Tensor::param_from_vec(
            (0..6).map(|_| rng.gen_range(-1.0..1.0)).collect(),
            &[1, 2, 3],
        );
        let b = Tensor::param_from_vec(
            (0..24).map(|_| rng.gen_range(-1.0..1.0)).collect(),
            &[4, 3, 2],
        );
        let reports = check_gradients(|t| t[0].matmul(&t[1]).squared_norm(), &[a, b], 1e-5);
        assert!(reports[0].passes(1e-6), "{:?}", reports[0]);
        assert!(reports[1].passes(1e-6), "{:?}", reports[1]);
    }

    /// Gradient check through a zero-heavy (sparse-path) operand.
    #[test]
    fn gradcheck_matmul_sparse_path() {
        let mut rng = StdRng::seed_from_u64(15);
        let a = Tensor::param_from_vec(
            (0..24)
                .map(|i| {
                    if i % 2 == 0 {
                        0.0
                    } else {
                        rng.gen_range(-1.0..1.0)
                    }
                })
                .collect(),
            &[4, 6],
        );
        let b =
            Tensor::param_from_vec((0..18).map(|_| rng.gen_range(-1.0..1.0)).collect(), &[6, 3]);
        let reports = check_gradients(|t| t[0].matmul(&t[1]).squared_norm(), &[a, b], 1e-5);
        assert!(reports[0].passes(1e-6), "{:?}", reports[0]);
        assert!(reports[1].passes(1e-6), "{:?}", reports[1]);
    }

    /// The fast backward and the tensor-op (double-backward) composition
    /// must agree to rounding on identical inputs.
    #[test]
    fn fast_and_differentiable_backwards_agree() {
        let mut rng = StdRng::seed_from_u64(16);
        let x = Tensor::param_from_vec(
            (0..30).map(|_| rng.gen_range(-1.0..1.0)).collect(),
            &[2, 3, 5],
        );
        let w =
            Tensor::param_from_vec((0..20).map(|_| rng.gen_range(-1.0..1.0)).collect(), &[5, 4]);
        let loss = x.matmul(&w).sum_all();
        let fast = grad(&loss, &[x.clone(), w.clone()], false);
        let slow = grad(&loss, &[x.clone(), w.clone()], true);
        for (f, s) in fast.iter().zip(&slow) {
            for (fv, sv) in f.to_vec().iter().zip(s.to_vec()) {
                assert!((fv - sv).abs() < 1e-12, "{fv} vs {sv}");
            }
        }
    }
}
