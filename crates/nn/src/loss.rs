//! Regression losses.

use crate::{Elem, Tensor};

/// Mean-squared-error loss (scalar).
///
/// # Panics
///
/// Panics if the shapes are not broadcast-compatible.
///
/// # Example
///
/// ```
/// use metadse_nn::{Tensor, loss};
///
/// let pred = Tensor::from_vec(vec![1.0, 2.0], &[2]);
/// let target = Tensor::from_vec(vec![0.0, 4.0], &[2]);
/// assert_eq!(loss::mse(&pred, &target).value(), 2.5);
/// ```
pub fn mse(pred: &Tensor, target: &Tensor) -> Tensor {
    pred.sq_err_mean(target)
}

/// Mean-absolute-error loss (scalar).
pub fn mae(pred: &Tensor, target: &Tensor) -> Tensor {
    pred.sub(target).abs().mean_all()
}

/// Huber loss with threshold `delta` (scalar).
///
/// Quadratic within `|e| <= delta`, linear outside; smooth and robust to
/// outliers. The region selection uses detached masks, matching the usual
/// piecewise definition.
pub fn huber(pred: &Tensor, target: &Tensor, delta: Elem) -> Tensor {
    let err = pred.sub(target);
    let abs_err = err.abs();
    // mask = 1 where |e| <= delta.
    let inside = abs_err.sub_scalar(delta).neg().step_mask();
    let outside = inside.neg().add_scalar(1.0);
    let quad = err.mul(&err).mul_scalar(0.5);
    let lin = abs_err.mul_scalar(delta).sub_scalar(0.5 * delta * delta);
    quad.mul(&inside).add(&lin.mul(&outside)).mean_all()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::autograd::grad;

    #[test]
    fn mse_zero_on_identical() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]);
        assert_eq!(mse(&a, &a).value(), 0.0);
    }

    #[test]
    fn mae_matches_manual() {
        let a = Tensor::from_vec(vec![1.0, -1.0], &[2]);
        let b = Tensor::from_vec(vec![0.0, 1.0], &[2]);
        assert_eq!(mae(&a, &b).value(), 1.5);
    }

    #[test]
    fn huber_is_quadratic_inside_linear_outside() {
        let pred = Tensor::from_vec(vec![0.5, 3.0], &[2]);
        let target = Tensor::zeros(&[2]);
        // Elementwise: 0.5*0.25 = 0.125 (inside), 1*3 - 0.5 = 2.5 (outside).
        let l = huber(&pred, &target, 1.0).value();
        assert!((l - (0.125 + 2.5) / 2.0).abs() < 1e-12);
    }

    #[test]
    fn huber_gradient_is_clipped() {
        let pred = Tensor::param_from_vec(vec![10.0], &[1]);
        let target = Tensor::zeros(&[1]);
        let l = huber(&pred, &target, 1.0);
        let g = grad(&l, &[pred], false);
        // Far outside the quadratic region the gradient magnitude is delta.
        assert!((g[0].to_vec()[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mse_gradient() {
        let pred = Tensor::param_from_vec(vec![3.0], &[1]);
        let target = Tensor::from_vec(vec![1.0], &[1]);
        let g = grad(&mse(&pred, &target), &[pred], false);
        assert_eq!(g[0].to_vec(), vec![4.0]);
    }
}
