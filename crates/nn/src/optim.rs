//! Optimizers and learning-rate schedules.
//!
//! Optimizers update the tensors held by [`Param`] slots in place, matching
//! the leaf-update semantics of mainstream frameworks. MAML's inner loop
//! does *not* use these — it swaps in functional "fast weights" so the
//! update itself stays differentiable.

use crate::layers::Param;
use crate::{Elem, Tensor};

/// A first-order optimizer over a fixed parameter list.
pub trait Optimizer {
    /// Applies one update step given gradients aligned with the parameter
    /// list supplied at construction.
    ///
    /// # Panics
    ///
    /// Implementations panic if `grads.len()` differs from the parameter
    /// count.
    fn step(&mut self, grads: &[Tensor]);

    /// Current learning rate.
    fn learning_rate(&self) -> Elem;

    /// Overrides the learning rate (used by schedules).
    fn set_learning_rate(&mut self, lr: Elem);
}

/// Stochastic gradient descent with optional momentum.
///
/// # Example
///
/// ```
/// use metadse_nn::layers::Param;
/// use metadse_nn::optim::{Optimizer, Sgd};
/// use metadse_nn::Tensor;
///
/// let p = Param::new("w", Tensor::param_from_vec(vec![1.0], &[1]));
/// let mut opt = Sgd::new(vec![p.clone()], 0.1, 0.0);
/// opt.step(&[Tensor::from_vec(vec![2.0], &[1])]);
/// assert!((p.get().to_vec()[0] - 0.8).abs() < 1e-12);
/// ```
#[derive(Debug)]
pub struct Sgd {
    params: Vec<Param>,
    lr: Elem,
    momentum: Elem,
    velocity: Vec<Vec<Elem>>,
}

impl Sgd {
    /// Creates an SGD optimizer over `params`.
    pub fn new(params: Vec<Param>, lr: Elem, momentum: Elem) -> Sgd {
        let velocity = params.iter().map(|p| vec![0.0; p.numel()]).collect();
        Sgd {
            params,
            lr,
            momentum,
            velocity,
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, grads: &[Tensor]) {
        assert_eq!(grads.len(), self.params.len(), "gradient count mismatch");
        for ((param, grad), vel) in self.params.iter().zip(grads).zip(&mut self.velocity) {
            let tensor = param.get();
            assert_eq!(tensor.shape(), grad.shape(), "gradient shape mismatch");
            let g = grad.data();
            if self.momentum == 0.0 {
                let lr = self.lr;
                tensor.map_inplace(|i, w| w - lr * g[i]);
            } else {
                for (v, &gi) in vel.iter_mut().zip(g.iter()) {
                    *v = self.momentum * *v + gi;
                }
                let lr = self.lr;
                tensor.map_inplace(|i, w| w - lr * vel[i]);
            }
        }
    }

    fn learning_rate(&self) -> Elem {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: Elem) {
        self.lr = lr;
    }
}

/// Adam optimizer (Kingma & Ba, 2015) with bias correction.
#[derive(Debug)]
pub struct Adam {
    params: Vec<Param>,
    lr: Elem,
    beta1: Elem,
    beta2: Elem,
    eps: Elem,
    t: u64,
    m: Vec<Vec<Elem>>,
    v: Vec<Vec<Elem>>,
}

/// A snapshot of Adam's mutable state, for checkpointing. The first and
/// second moments are aligned with the optimizer's parameter list; the
/// step counter drives bias correction, so restoring it exactly is what
/// makes a resumed run bit-identical to an uninterrupted one.
#[derive(Debug, Clone, PartialEq)]
pub struct AdamState {
    /// Steps taken so far.
    pub t: u64,
    /// First-moment (mean) estimates, one buffer per parameter.
    pub m: Vec<Vec<Elem>>,
    /// Second-moment (uncentered variance) estimates.
    pub v: Vec<Vec<Elem>>,
}

impl Adam {
    /// Creates Adam with the canonical defaults β₁=0.9, β₂=0.999, ε=1e-8.
    pub fn new(params: Vec<Param>, lr: Elem) -> Adam {
        Adam::with_betas(params, lr, 0.9, 0.999, 1e-8)
    }

    /// Copies out the optimizer's mutable state (step counter and both
    /// moment buffers).
    pub fn export_state(&self) -> AdamState {
        AdamState {
            t: self.t,
            m: self.m.clone(),
            v: self.v.clone(),
        }
    }

    /// Restores state captured by [`Adam::export_state`].
    ///
    /// # Errors
    ///
    /// Rejects state whose buffer count or any buffer length disagrees
    /// with this optimizer's parameter list.
    pub fn import_state(&mut self, state: &AdamState) -> Result<(), String> {
        if state.m.len() != self.params.len() || state.v.len() != self.params.len() {
            return Err(format!(
                "optimizer state covers {} parameters, this optimizer has {}",
                state.m.len(),
                self.params.len()
            ));
        }
        for (i, p) in self.params.iter().enumerate() {
            if state.m[i].len() != p.numel() || state.v[i].len() != p.numel() {
                return Err(format!(
                    "moment buffers for parameter {:?} have {} / {} elements, expected {}",
                    p.name(),
                    state.m[i].len(),
                    state.v[i].len(),
                    p.numel()
                ));
            }
        }
        self.t = state.t;
        self.m = state.m.clone();
        self.v = state.v.clone();
        Ok(())
    }

    /// Creates Adam with explicit hyperparameters.
    pub fn with_betas(params: Vec<Param>, lr: Elem, beta1: Elem, beta2: Elem, eps: Elem) -> Adam {
        let m = params.iter().map(|p| vec![0.0; p.numel()]).collect();
        let v = params.iter().map(|p| vec![0.0; p.numel()]).collect();
        Adam {
            params,
            lr,
            beta1,
            beta2,
            eps,
            t: 0,
            m,
            v,
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, grads: &[Tensor]) {
        assert_eq!(grads.len(), self.params.len(), "gradient count mismatch");
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for (((param, grad), m), v) in self
            .params
            .iter()
            .zip(grads)
            .zip(&mut self.m)
            .zip(&mut self.v)
        {
            let tensor = param.get();
            assert_eq!(tensor.shape(), grad.shape(), "gradient shape mismatch");
            let g = grad.data();
            for ((mi, vi), &gi) in m.iter_mut().zip(v.iter_mut()).zip(g.iter()) {
                *mi = self.beta1 * *mi + (1.0 - self.beta1) * gi;
                *vi = self.beta2 * *vi + (1.0 - self.beta2) * gi * gi;
            }
            let (lr, eps) = (self.lr, self.eps);
            tensor.map_inplace(|i, w| {
                let m_hat = m[i] / bc1;
                let v_hat = v[i] / bc2;
                w - lr * m_hat / (v_hat.sqrt() + eps)
            });
        }
    }

    fn learning_rate(&self) -> Elem {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: Elem) {
        self.lr = lr;
    }
}

/// Cosine-annealing learning-rate schedule (the paper's downstream
/// adaptation schedule): decays from `lr_max` to `lr_min` over
/// `total_steps`.
#[derive(Debug, Clone, PartialEq)]
pub struct CosineAnnealing {
    lr_max: Elem,
    lr_min: Elem,
    total_steps: usize,
}

impl CosineAnnealing {
    /// Creates a schedule from `lr_max` down to `lr_min` across
    /// `total_steps` steps.
    ///
    /// # Panics
    ///
    /// Panics if `total_steps` is zero.
    pub fn new(lr_max: Elem, lr_min: Elem, total_steps: usize) -> CosineAnnealing {
        assert!(total_steps > 0, "schedule needs at least one step");
        CosineAnnealing {
            lr_max,
            lr_min,
            total_steps,
        }
    }

    /// Learning rate at `step` (clamped to the final value afterwards).
    pub fn lr_at(&self, step: usize) -> Elem {
        let t = (step.min(self.total_steps)) as Elem / self.total_steps as Elem;
        self.lr_min + 0.5 * (self.lr_max - self.lr_min) * (1.0 + (std::f64::consts::PI * t).cos())
    }

    /// Applies the schedule to an optimizer for the given step.
    pub fn apply(&self, optimizer: &mut dyn Optimizer, step: usize) {
        optimizer.set_learning_rate(self.lr_at(step));
    }
}

/// Rescales gradients in place so their global L2 norm is at most
/// `max_norm`; returns the pre-clip norm.
pub fn clip_grad_norm(grads: &mut [Tensor], max_norm: Elem) -> Elem {
    let mut total = 0.0;
    for g in grads.iter() {
        total += g.data().iter().map(|v| v * v).sum::<Elem>();
    }
    let norm = total.sqrt();
    if norm > max_norm && norm > 0.0 {
        let scale = max_norm / norm;
        for g in grads.iter_mut() {
            *g = g.mul_scalar(scale);
        }
    }
    norm
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::autograd::grad;
    use crate::loss::mse;

    fn quadratic_probe(mut opt: impl Optimizer, steps: usize, param: &Param) -> Elem {
        // Minimize (w - 3)^2.
        let target = Tensor::from_vec(vec![3.0], &[1]);
        for _ in 0..steps {
            let w = param.get();
            let loss = mse(&w, &target);
            let g = grad(&loss, &[w], false);
            opt.step(&g);
        }
        (param.get().to_vec()[0] - 3.0).abs()
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let p = Param::new("w", Tensor::param_from_vec(vec![0.0], &[1]));
        let err = quadratic_probe(Sgd::new(vec![p.clone()], 0.1, 0.0), 100, &p);
        assert!(err < 1e-6, "error {err}");
    }

    #[test]
    fn sgd_momentum_converges_faster_than_plain() {
        let p1 = Param::new("w", Tensor::param_from_vec(vec![0.0], &[1]));
        let p2 = Param::new("w", Tensor::param_from_vec(vec![0.0], &[1]));
        let err_plain = quadratic_probe(Sgd::new(vec![p1.clone()], 0.02, 0.0), 40, &p1);
        let err_momentum = quadratic_probe(Sgd::new(vec![p2.clone()], 0.02, 0.9), 40, &p2);
        assert!(err_momentum < err_plain);
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let p = Param::new("w", Tensor::param_from_vec(vec![0.0], &[1]));
        let err = quadratic_probe(Adam::new(vec![p.clone()], 0.2), 200, &p);
        assert!(err < 1e-3, "error {err}");
    }

    #[test]
    fn adam_first_step_size_is_lr() {
        // With bias correction, |Δw| of the very first Adam step ≈ lr.
        let p = Param::new("w", Tensor::param_from_vec(vec![5.0], &[1]));
        let mut opt = Adam::new(vec![p.clone()], 0.1);
        opt.step(&[Tensor::from_vec(vec![123.0], &[1])]);
        assert!((p.get().to_vec()[0] - 4.9).abs() < 1e-6);
    }

    #[test]
    fn adam_resumed_from_exported_state_matches_uninterrupted_run() {
        let run = |split_at: Option<usize>| {
            let p = Param::new("w", Tensor::param_from_vec(vec![0.0, 5.0], &[2]));
            let mut opt = Adam::new(vec![p.clone()], 0.1);
            for step in 0..20 {
                if Some(step) == split_at {
                    // Simulate a kill + resume: rebuild the optimizer and
                    // restore its exported state.
                    let state = opt.export_state();
                    opt = Adam::new(vec![p.clone()], 0.1);
                    opt.import_state(&state).unwrap();
                }
                let g = Tensor::from_vec(vec![0.3 * step as f64, -1.0], &[2]);
                opt.step(&[g]);
            }
            p.get().to_vec()
        };
        let uninterrupted = run(None);
        assert_eq!(run(Some(7)), uninterrupted);
        assert_eq!(run(Some(13)), uninterrupted);
    }

    #[test]
    fn adam_import_rejects_mismatched_state() {
        let p = Param::new("w", Tensor::param_from_vec(vec![0.0, 0.0], &[2]));
        let mut opt = Adam::new(vec![p.clone()], 0.1);
        let mut state = opt.export_state();
        state.m[0].pop();
        assert!(opt.import_state(&state).is_err());
        let short = AdamState {
            t: 0,
            m: vec![],
            v: vec![],
        };
        assert!(opt.import_state(&short).is_err());
    }

    #[test]
    fn cosine_annealing_endpoints_and_midpoint() {
        let s = CosineAnnealing::new(1.0, 0.1, 10);
        assert!((s.lr_at(0) - 1.0).abs() < 1e-12);
        assert!((s.lr_at(10) - 0.1).abs() < 1e-12);
        assert!((s.lr_at(5) - 0.55).abs() < 1e-12);
        assert!((s.lr_at(100) - 0.1).abs() < 1e-12, "clamps past the end");
    }

    #[test]
    fn clip_grad_norm_rescales() {
        let mut grads = vec![Tensor::from_vec(vec![3.0, 4.0], &[2])];
        let norm = clip_grad_norm(&mut grads, 1.0);
        assert!((norm - 5.0).abs() < 1e-12);
        let v = grads[0].to_vec();
        assert!((v[0] - 0.6).abs() < 1e-12);
        assert!((v[1] - 0.8).abs() < 1e-12);
    }

    #[test]
    fn clip_grad_norm_leaves_small_gradients_alone() {
        let mut grads = vec![Tensor::from_vec(vec![0.3], &[1])];
        clip_grad_norm(&mut grads, 1.0);
        assert_eq!(grads[0].to_vec(), vec![0.3]);
    }
}
