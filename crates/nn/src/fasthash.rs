//! Minimal fast hashing for tensor-id keyed maps.
//!
//! The autograd tape keys its gradient map and visited set by the tensor id,
//! a monotonically increasing `u64`. The std `SipHasher` is DoS-resistant but
//! costs ~1.5ns per lookup key; the tape does several lookups per node per
//! backward pass, all with trusted in-process keys. `IdHasher` replaces it
//! with a single multiply by a 64-bit odd constant (the golden-ratio mixing
//! constant), which distributes sequential ids uniformly across buckets.
//!
//! In-workspace by design: the offline-build policy (see `metadse-rng`)
//! forbids pulling an external `fxhash`/`ahash` style crate.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiply-mix hasher for integer keys produced inside the process.
///
/// Not DoS-resistant — only use for maps keyed by trusted internal ids.
#[derive(Default)]
pub struct IdHasher(u64);

/// 64-bit golden-ratio constant; odd, so multiplication is a bijection
/// modulo 2^64 and sequential keys land in distinct buckets.
const MIX: u64 = 0x9E37_79B9_7F4A_7C15;

impl Hasher for IdHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Fallback for non-integer keys: FNV-1a folded through the mixer.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        self.0 = (self.0 ^ h).wrapping_mul(MIX);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.0 = (self.0 ^ i).wrapping_mul(MIX);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.write_u64(i as u64);
    }
}

/// `HashMap` keyed by an internal integer id.
pub type IdHashMap<K, V> = HashMap<K, V, BuildHasherDefault<IdHasher>>;
/// `HashSet` of internal integer ids.
pub type IdHashSet<K> = HashSet<K, BuildHasherDefault<IdHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_ids_do_not_collide_in_small_maps() {
        let mut map: IdHashMap<u64, u64> = IdHashMap::default();
        for id in 0..10_000u64 {
            map.insert(id, id * 2);
        }
        assert_eq!(map.len(), 10_000);
        for id in 0..10_000u64 {
            assert_eq!(map.get(&id), Some(&(id * 2)));
        }
    }

    #[test]
    fn set_membership_matches_std() {
        let mut set: IdHashSet<u64> = IdHashSet::default();
        assert!(set.insert(7));
        assert!(!set.insert(7));
        assert!(set.contains(&7));
        assert!(!set.contains(&8));
    }

    #[test]
    fn byte_fallback_distinguishes_strings() {
        fn h(s: &str) -> u64 {
            let mut hasher = IdHasher::default();
            hasher.write(s.as_bytes());
            hasher.finish()
        }
        assert_ne!(h("pool_hits"), h("pool_miss"));
    }
}
