//! Reverse-mode automatic differentiation.
//!
//! The central entry point is [`grad`], which walks the computation graph
//! recorded by tensor operations. Because every backward pass is itself
//! written with ordinary tensor operations, passing `create_graph = true`
//! yields gradients that are themselves differentiable — the "double
//! backward" needed by second-order MAML.

use std::cell::{Cell, RefCell};
use std::collections::hash_map::Entry;

use crate::fasthash::{IdHashMap, IdHashSet};
use crate::Tensor;

thread_local! {
    static GRAD_ENABLED: Cell<bool> = const { Cell::new(true) };
}

/// Whether operations currently record graph edges.
pub fn is_grad_enabled() -> bool {
    GRAD_ENABLED.with(|g| g.get())
}

/// RAII guard restoring the previous gradient-recording mode on drop.
#[derive(Debug)]
pub struct GradModeGuard {
    previous: bool,
}

impl GradModeGuard {
    /// Sets gradient recording to `enabled` until the guard is dropped.
    pub fn set(enabled: bool) -> GradModeGuard {
        let previous = GRAD_ENABLED.with(|g| g.replace(enabled));
        GradModeGuard { previous }
    }
}

impl Drop for GradModeGuard {
    fn drop(&mut self) {
        GRAD_ENABLED.with(|g| g.set(self.previous));
    }
}

/// Runs `f` with graph recording disabled (like `torch.no_grad()`).
///
/// # Example
///
/// ```
/// use metadse_nn::{Tensor, autograd};
///
/// let x = Tensor::param_from_vec(vec![2.0], &[1]);
/// let y = autograd::no_grad(|| x.mul(&x));
/// assert!(!y.requires_grad());
/// ```
pub fn no_grad<T>(f: impl FnOnce() -> T) -> T {
    let _guard = GradModeGuard::set(false);
    f()
}

/// Computes `d output / d input` for each tensor in `inputs`.
///
/// `output` may have any shape; the seed gradient is a tensor of ones (so a
/// non-scalar output computes the gradient of its element sum). Inputs that
/// do not influence `output` receive a zero gradient of their own shape.
///
/// With `create_graph = false` the returned gradients are constants; with
/// `create_graph = true` they remain connected to the graph, so they can be
/// differentiated again:
///
/// ```
/// use metadse_nn::{Tensor, autograd};
///
/// let x = Tensor::param_from_vec(vec![3.0], &[1]);
/// let y = x.powf(3.0); // y = x^3
/// let dy = autograd::grad(&y, std::slice::from_ref(&x), true);
/// let d2y = autograd::grad(&dy[0], std::slice::from_ref(&x), false);
/// assert!((dy[0].value() - 27.0).abs() < 1e-9); // 3x^2
/// assert!((d2y[0].value() - 18.0).abs() < 1e-9); // 6x
/// ```
pub fn grad(output: &Tensor, inputs: &[Tensor], create_graph: bool) -> Vec<Tensor> {
    // Reuse the topo-order / visited-set / gradient-map storage across
    // calls: the MAML inner loop calls `grad` thousands of times on graphs
    // of similar size, so the hash tables and vectors stay warm. A
    // reentrant call (none exists today) would simply start from fresh
    // default scratch.
    let mut scratch = SCRATCH.with(|s| std::mem::take(&mut *s.borrow_mut()));
    topological_order_into(output, &mut scratch);
    scratch
        .grads
        .insert(output.id(), Tensor::ones(output.shape()));

    {
        let _guard = GradModeGuard::set(create_graph);
        for t in scratch.order.iter().rev() {
            let Some(g) = scratch.grads.get(&t.id()).cloned() else {
                continue;
            };
            let Some(node) = t.node() else {
                continue;
            };
            let parent_grads = (node.backward)(&g, &node.parents, t);
            debug_assert_eq!(parent_grads.len(), node.parents.len());
            for (parent, pg) in node.parents.iter().zip(parent_grads) {
                if !parent.requires_grad() {
                    continue;
                }
                let Some(pg) = pg else { continue };
                debug_assert_eq!(
                    pg.shape(),
                    parent.shape(),
                    "backward produced gradient of shape {:?} for parent of shape {:?}",
                    pg.shape(),
                    parent.shape()
                );
                match scratch.grads.entry(parent.id()) {
                    Entry::Occupied(mut slot) => {
                        // First-order fast path: add into the existing
                        // buffer instead of allocating a new tensor per
                        // accumulation edge. Only safe when the slot is the
                        // gradient's sole owner and it carries no graph
                        // node — pass-through backwards (`add_scalar`,
                        // same-shape `sum_to`) alias the child's gradient,
                        // which keeps a second handle alive and routes
                        // those through the functional path.
                        let existing = slot.get();
                        if !create_graph && existing.is_exclusive_constant() {
                            existing.accumulate(&pg);
                        } else {
                            let sum = existing.add(&pg);
                            slot.insert(sum);
                        }
                    }
                    Entry::Vacant(slot) => {
                        slot.insert(pg);
                    }
                }
            }
        }
    }

    let result = inputs
        .iter()
        .map(|input| {
            scratch
                .grads
                .get(&input.id())
                .cloned()
                .unwrap_or_else(|| Tensor::zeros(input.shape()))
        })
        .collect();

    // Clear before returning the scratch so held tensors (and their graph
    // subtrees) drop now, not at the start of the next backward pass.
    scratch.order.clear();
    scratch.visited.clear();
    scratch.grads.clear();
    SCRATCH.with(|s| *s.borrow_mut() = scratch);
    result
}

enum Visit {
    Enter(Tensor),
    Exit(Tensor),
}

/// Reusable backward-pass storage; keyed by tensor id with the in-workspace
/// multiply-mix hasher (ids are trusted sequential integers).
#[derive(Default)]
struct Scratch {
    order: Vec<Tensor>,
    visited: IdHashSet<u64>,
    stack: Vec<Visit>,
    grads: IdHashMap<u64, Tensor>,
}

thread_local! {
    static SCRATCH: RefCell<Scratch> = RefCell::new(Scratch::default());
}

/// Appends the topological order (parents before children) of the
/// differentiable subgraph reachable from `root` to `scratch.order`.
fn topological_order_into(root: &Tensor, scratch: &mut Scratch) {
    // Iterative DFS with explicit post-order marking to avoid recursion
    // limits on long chains (e.g. many unrolled inner-loop steps).
    scratch.stack.push(Visit::Enter(root.clone()));
    while let Some(visit) = scratch.stack.pop() {
        match visit {
            Visit::Enter(t) => {
                if scratch.visited.contains(&t.id()) || !t.requires_grad() {
                    continue;
                }
                scratch.visited.insert(t.id());
                scratch.stack.push(Visit::Exit(t.clone()));
                if let Some(node) = t.node() {
                    for parent in &node.parents {
                        if !scratch.visited.contains(&parent.id()) && parent.requires_grad() {
                            scratch.stack.push(Visit::Enter(parent.clone()));
                        }
                    }
                }
            }
            Visit::Exit(t) => scratch.order.push(t),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grad_of_sum_is_ones() {
        let x = Tensor::param_from_vec(vec![1.0, 2.0, 3.0], &[3]);
        let y = x.sum_all();
        let g = grad(&y, std::slice::from_ref(&x), false);
        assert_eq!(g[0].to_vec(), vec![1.0, 1.0, 1.0]);
        assert!(!g[0].requires_grad());
    }

    #[test]
    fn grad_accumulates_over_reused_tensors() {
        // y = x*x + x  =>  dy/dx = 2x + 1
        let x = Tensor::param_from_vec(vec![3.0], &[1]);
        let y = x.mul(&x).add(&x).sum_all();
        let g = grad(&y, std::slice::from_ref(&x), false);
        assert!((g[0].to_vec()[0] - 7.0).abs() < 1e-12);
    }

    #[test]
    fn unrelated_input_gets_zero_gradient() {
        let x = Tensor::param_from_vec(vec![1.0], &[1]);
        let z = Tensor::param_from_vec(vec![5.0], &[1]);
        let y = x.mul_scalar(2.0).sum_all();
        let g = grad(&y, &[z], false);
        assert_eq!(g[0].to_vec(), vec![0.0]);
    }

    #[test]
    fn no_grad_suppresses_graph_recording() {
        let x = Tensor::param_from_vec(vec![2.0], &[1]);
        let y = no_grad(|| x.mul(&x));
        assert!(!y.requires_grad());
        assert!(is_grad_enabled());
    }

    #[test]
    fn grad_mode_guard_restores_state() {
        assert!(is_grad_enabled());
        {
            let _g = GradModeGuard::set(false);
            assert!(!is_grad_enabled());
            {
                let _h = GradModeGuard::set(true);
                assert!(is_grad_enabled());
            }
            assert!(!is_grad_enabled());
        }
        assert!(is_grad_enabled());
    }

    #[test]
    fn second_order_gradient_of_cubic() {
        let x = Tensor::param_from_vec(vec![2.0], &[1]);
        let y = x.powf(3.0).sum_all();
        let dy = grad(&y, std::slice::from_ref(&x), true);
        assert!(dy[0].requires_grad(), "create_graph should keep grads live");
        let d2y = grad(&dy[0].sum_all(), std::slice::from_ref(&x), false);
        // d2/dx2 x^3 = 6x = 12
        assert!((d2y[0].to_vec()[0] - 12.0).abs() < 1e-9);
    }

    #[test]
    fn third_order_gradient_of_quartic() {
        let x = Tensor::param_from_vec(vec![1.5], &[1]);
        let y = x.powf(4.0).sum_all();
        let d1 = grad(&y, std::slice::from_ref(&x), true);
        let d2 = grad(&d1[0].sum_all(), std::slice::from_ref(&x), true);
        let d3 = grad(&d2[0].sum_all(), std::slice::from_ref(&x), false);
        // d3/dx3 x^4 = 24x = 36
        assert!((d3[0].to_vec()[0] - 36.0).abs() < 1e-9);
    }

    #[test]
    fn first_order_gradients_are_detached() {
        let x = Tensor::param_from_vec(vec![2.0], &[1]);
        let y = x.mul(&x).sum_all();
        let g = grad(&y, std::slice::from_ref(&x), false);
        assert!(!g[0].requires_grad());
    }
}
