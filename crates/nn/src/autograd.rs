//! Reverse-mode automatic differentiation.
//!
//! The central entry point is [`grad`], which walks the computation graph
//! recorded by tensor operations. Because every backward pass is itself
//! written with ordinary tensor operations, passing `create_graph = true`
//! yields gradients that are themselves differentiable — the "double
//! backward" needed by second-order MAML.

use std::cell::Cell;
use std::collections::{HashMap, HashSet};

use crate::Tensor;

thread_local! {
    static GRAD_ENABLED: Cell<bool> = const { Cell::new(true) };
}

/// Whether operations currently record graph edges.
pub fn is_grad_enabled() -> bool {
    GRAD_ENABLED.with(|g| g.get())
}

/// RAII guard restoring the previous gradient-recording mode on drop.
#[derive(Debug)]
pub struct GradModeGuard {
    previous: bool,
}

impl GradModeGuard {
    /// Sets gradient recording to `enabled` until the guard is dropped.
    pub fn set(enabled: bool) -> GradModeGuard {
        let previous = GRAD_ENABLED.with(|g| g.replace(enabled));
        GradModeGuard { previous }
    }
}

impl Drop for GradModeGuard {
    fn drop(&mut self) {
        GRAD_ENABLED.with(|g| g.set(self.previous));
    }
}

/// Runs `f` with graph recording disabled (like `torch.no_grad()`).
///
/// # Example
///
/// ```
/// use metadse_nn::{Tensor, autograd};
///
/// let x = Tensor::param_from_vec(vec![2.0], &[1]);
/// let y = autograd::no_grad(|| x.mul(&x));
/// assert!(!y.requires_grad());
/// ```
pub fn no_grad<T>(f: impl FnOnce() -> T) -> T {
    let _guard = GradModeGuard::set(false);
    f()
}

/// Computes `d output / d input` for each tensor in `inputs`.
///
/// `output` may have any shape; the seed gradient is a tensor of ones (so a
/// non-scalar output computes the gradient of its element sum). Inputs that
/// do not influence `output` receive a zero gradient of their own shape.
///
/// With `create_graph = false` the returned gradients are constants; with
/// `create_graph = true` they remain connected to the graph, so they can be
/// differentiated again:
///
/// ```
/// use metadse_nn::{Tensor, autograd};
///
/// let x = Tensor::param_from_vec(vec![3.0], &[1]);
/// let y = x.powf(3.0); // y = x^3
/// let dy = autograd::grad(&y, std::slice::from_ref(&x), true);
/// let d2y = autograd::grad(&dy[0], std::slice::from_ref(&x), false);
/// assert!((dy[0].value() - 27.0).abs() < 1e-9); // 3x^2
/// assert!((d2y[0].value() - 18.0).abs() < 1e-9); // 6x
/// ```
pub fn grad(output: &Tensor, inputs: &[Tensor], create_graph: bool) -> Vec<Tensor> {
    let order = topological_order(output);
    let mut grads: HashMap<u64, Tensor> = HashMap::new();
    grads.insert(output.id(), Tensor::ones(output.shape()));

    {
        let _guard = GradModeGuard::set(create_graph);
        for t in order.iter().rev() {
            let Some(g) = grads.get(&t.id()).cloned() else {
                continue;
            };
            let Some(node) = t.node() else {
                continue;
            };
            let parent_grads = (node.backward)(&g, &node.parents, t);
            debug_assert_eq!(parent_grads.len(), node.parents.len());
            for (parent, pg) in node.parents.iter().zip(parent_grads) {
                if !parent.requires_grad() {
                    continue;
                }
                let Some(pg) = pg else { continue };
                debug_assert_eq!(
                    pg.shape(),
                    parent.shape(),
                    "backward produced gradient of shape {:?} for parent of shape {:?}",
                    pg.shape(),
                    parent.shape()
                );
                match grads.remove(&parent.id()) {
                    Some(existing) => {
                        grads.insert(parent.id(), existing.add(&pg));
                    }
                    None => {
                        grads.insert(parent.id(), pg);
                    }
                }
            }
        }
    }

    inputs
        .iter()
        .map(|input| {
            grads
                .get(&input.id())
                .cloned()
                .unwrap_or_else(|| Tensor::zeros(input.shape()))
        })
        .collect()
}

/// Topological order (parents before children) of the differentiable
/// subgraph reachable from `root`.
fn topological_order(root: &Tensor) -> Vec<Tensor> {
    let mut order = Vec::new();
    let mut visited: HashSet<u64> = HashSet::new();
    // Iterative DFS with explicit post-order marking to avoid recursion
    // limits on long chains (e.g. many unrolled inner-loop steps).
    enum Visit {
        Enter(Tensor),
        Exit(Tensor),
    }
    let mut stack = vec![Visit::Enter(root.clone())];
    while let Some(visit) = stack.pop() {
        match visit {
            Visit::Enter(t) => {
                if visited.contains(&t.id()) || !t.requires_grad() {
                    continue;
                }
                visited.insert(t.id());
                stack.push(Visit::Exit(t.clone()));
                if let Some(node) = t.node() {
                    for parent in &node.parents {
                        if !visited.contains(&parent.id()) && parent.requires_grad() {
                            stack.push(Visit::Enter(parent.clone()));
                        }
                    }
                }
            }
            Visit::Exit(t) => order.push(t),
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grad_of_sum_is_ones() {
        let x = Tensor::param_from_vec(vec![1.0, 2.0, 3.0], &[3]);
        let y = x.sum_all();
        let g = grad(&y, std::slice::from_ref(&x), false);
        assert_eq!(g[0].to_vec(), vec![1.0, 1.0, 1.0]);
        assert!(!g[0].requires_grad());
    }

    #[test]
    fn grad_accumulates_over_reused_tensors() {
        // y = x*x + x  =>  dy/dx = 2x + 1
        let x = Tensor::param_from_vec(vec![3.0], &[1]);
        let y = x.mul(&x).add(&x).sum_all();
        let g = grad(&y, std::slice::from_ref(&x), false);
        assert!((g[0].to_vec()[0] - 7.0).abs() < 1e-12);
    }

    #[test]
    fn unrelated_input_gets_zero_gradient() {
        let x = Tensor::param_from_vec(vec![1.0], &[1]);
        let z = Tensor::param_from_vec(vec![5.0], &[1]);
        let y = x.mul_scalar(2.0).sum_all();
        let g = grad(&y, &[z], false);
        assert_eq!(g[0].to_vec(), vec![0.0]);
    }

    #[test]
    fn no_grad_suppresses_graph_recording() {
        let x = Tensor::param_from_vec(vec![2.0], &[1]);
        let y = no_grad(|| x.mul(&x));
        assert!(!y.requires_grad());
        assert!(is_grad_enabled());
    }

    #[test]
    fn grad_mode_guard_restores_state() {
        assert!(is_grad_enabled());
        {
            let _g = GradModeGuard::set(false);
            assert!(!is_grad_enabled());
            {
                let _h = GradModeGuard::set(true);
                assert!(is_grad_enabled());
            }
            assert!(!is_grad_enabled());
        }
        assert!(is_grad_enabled());
    }

    #[test]
    fn second_order_gradient_of_cubic() {
        let x = Tensor::param_from_vec(vec![2.0], &[1]);
        let y = x.powf(3.0).sum_all();
        let dy = grad(&y, std::slice::from_ref(&x), true);
        assert!(dy[0].requires_grad(), "create_graph should keep grads live");
        let d2y = grad(&dy[0].sum_all(), std::slice::from_ref(&x), false);
        // d2/dx2 x^3 = 6x = 12
        assert!((d2y[0].to_vec()[0] - 12.0).abs() < 1e-9);
    }

    #[test]
    fn third_order_gradient_of_quartic() {
        let x = Tensor::param_from_vec(vec![1.5], &[1]);
        let y = x.powf(4.0).sum_all();
        let d1 = grad(&y, std::slice::from_ref(&x), true);
        let d2 = grad(&d1[0].sum_all(), std::slice::from_ref(&x), true);
        let d3 = grad(&d2[0].sum_all(), std::slice::from_ref(&x), false);
        // d3/dx3 x^4 = 24x = 36
        assert!((d3[0].to_vec()[0] - 36.0).abs() < 1e-9);
    }

    #[test]
    fn first_order_gradients_are_detached() {
        let x = Tensor::param_from_vec(vec![2.0], &[1]);
        let y = x.mul(&x).sum_all();
        let g = grad(&y, std::slice::from_ref(&x), false);
        assert!(!g[0].requires_grad());
    }
}
