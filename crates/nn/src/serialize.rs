//! Parameter checkpointing.
//!
//! A deliberately simple, dependency-free binary format:
//!
//! ```text
//! magic "MDSE" | u32 version | u32 param count |
//!   per param: u32 name len | name bytes | u32 ndim | u64 dims… | f64 data…
//! ```
//!
//! All integers are little-endian. Checkpoints are loaded back into an
//! existing model's [`Param`] list by name, so parameter ordering may
//! differ between save and load as long as names and shapes match.

use std::collections::HashMap;
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::layers::Param;
use crate::{Elem, Tensor};

const MAGIC: &[u8; 4] = b"MDSE";
const VERSION: u32 = 1;

/// Errors produced when loading a checkpoint.
#[derive(Debug)]
pub enum CheckpointError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The file is not a MetaDSE checkpoint or uses an unknown version.
    Format(String),
    /// The checkpoint does not match the model (missing name, wrong shape).
    Mismatch(String),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint i/o error: {e}"),
            CheckpointError::Format(m) => write!(f, "invalid checkpoint format: {m}"),
            CheckpointError::Mismatch(m) => write!(f, "checkpoint/model mismatch: {m}"),
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// Saves the current values of `params` to `path`.
///
/// # Errors
///
/// Returns an error if the file cannot be created or written.
pub fn save_params(params: &[Param], path: impl AsRef<Path>) -> Result<(), CheckpointError> {
    let mut w = BufWriter::new(File::create(path)?);
    w.write_all(MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    w.write_all(&(params.len() as u32).to_le_bytes())?;
    for p in params {
        let name = p.name().as_bytes();
        w.write_all(&(name.len() as u32).to_le_bytes())?;
        w.write_all(name)?;
        let t = p.get();
        w.write_all(&(t.ndim() as u32).to_le_bytes())?;
        for &d in t.shape() {
            w.write_all(&(d as u64).to_le_bytes())?;
        }
        for v in t.to_vec() {
            w.write_all(&v.to_le_bytes())?;
        }
    }
    w.flush()?;
    Ok(())
}

/// Loads a checkpoint into `params`, matching entries by name.
///
/// Every model parameter must be present in the file with an identical
/// shape; extra entries in the file are ignored.
///
/// # Errors
///
/// Returns [`CheckpointError::Format`] for malformed files and
/// [`CheckpointError::Mismatch`] when names or shapes disagree.
pub fn load_params(params: &[Param], path: impl AsRef<Path>) -> Result<(), CheckpointError> {
    let entries = read_entries(path)?;
    for p in params {
        let (shape, data) = entries.get(p.name()).ok_or_else(|| {
            CheckpointError::Mismatch(format!("parameter {:?} not found in checkpoint", p.name()))
        })?;
        if *shape != p.shape() {
            return Err(CheckpointError::Mismatch(format!(
                "parameter {:?} has shape {:?} in checkpoint but {:?} in model",
                p.name(),
                shape,
                p.shape()
            )));
        }
        p.set(Tensor::param_from_vec(data.clone(), shape));
    }
    Ok(())
}

type Entries = HashMap<String, (Vec<usize>, Vec<Elem>)>;

fn read_entries(path: impl AsRef<Path>) -> Result<Entries, CheckpointError> {
    let mut r = BufReader::new(File::open(path)?);
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(CheckpointError::Format("bad magic".into()));
    }
    let version = read_u32(&mut r)?;
    if version != VERSION {
        return Err(CheckpointError::Format(format!(
            "unsupported version {version}"
        )));
    }
    let count = read_u32(&mut r)? as usize;
    let mut entries = HashMap::with_capacity(count);
    for _ in 0..count {
        let name_len = read_u32(&mut r)? as usize;
        let mut name_bytes = vec![0u8; name_len];
        r.read_exact(&mut name_bytes)?;
        let name = String::from_utf8(name_bytes)
            .map_err(|_| CheckpointError::Format("non-UTF8 parameter name".into()))?;
        let ndim = read_u32(&mut r)? as usize;
        let mut shape = Vec::with_capacity(ndim);
        for _ in 0..ndim {
            shape.push(read_u64(&mut r)? as usize);
        }
        let n: usize = shape.iter().product();
        let mut data = Vec::with_capacity(n);
        for _ in 0..n {
            let mut buf = [0u8; 8];
            r.read_exact(&mut buf)?;
            data.push(Elem::from_le_bytes(buf));
        }
        entries.insert(name, (shape, data));
    }
    Ok(entries)
}

fn read_u32(r: &mut impl Read) -> Result<u32, io::Error> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

fn read_u64(r: &mut impl Read) -> Result<u64, io::Error> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Linear, Module};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("metadse-nn-test-{name}-{}", std::process::id()));
        p
    }

    #[test]
    fn roundtrip_restores_values() {
        let mut rng = StdRng::seed_from_u64(1);
        let layer = Linear::new("l", 3, 2, true, &mut rng);
        let params = layer.params();
        let original: Vec<Vec<f64>> = params.iter().map(|p| p.get().to_vec()).collect();
        let path = temp_path("roundtrip");
        save_params(&params, &path).unwrap();
        // Wreck the weights, then restore.
        for p in &params {
            p.get().assign_vec(&vec![0.0; p.numel()]);
        }
        load_params(&params, &path).unwrap();
        for (p, o) in params.iter().zip(&original) {
            assert_eq!(&p.get().to_vec(), o);
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn missing_parameter_is_an_error() {
        let mut rng = StdRng::seed_from_u64(2);
        let saved = Linear::new("a", 2, 2, false, &mut rng);
        let loaded = Linear::new("b", 2, 2, false, &mut rng);
        let path = temp_path("missing");
        save_params(&saved.params(), &path).unwrap();
        let err = load_params(&loaded.params(), &path).unwrap_err();
        assert!(matches!(err, CheckpointError::Mismatch(_)));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn shape_mismatch_is_an_error() {
        let mut rng = StdRng::seed_from_u64(3);
        let saved = Linear::new("l", 2, 2, false, &mut rng);
        let loaded = Linear::new("l", 2, 3, false, &mut rng);
        let path = temp_path("shape");
        save_params(&saved.params(), &path).unwrap();
        let err = load_params(&loaded.params(), &path).unwrap_err();
        assert!(matches!(err, CheckpointError::Mismatch(_)));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn garbage_file_is_a_format_error() {
        let path = temp_path("garbage");
        std::fs::write(&path, b"not a checkpoint").unwrap();
        let err = read_entries(&path).unwrap_err();
        assert!(matches!(err, CheckpointError::Format(_)));
        std::fs::remove_file(path).ok();
    }
}
