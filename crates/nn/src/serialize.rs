//! Parameter and optimizer-state checkpointing.
//!
//! A deliberately simple, dependency-free binary format:
//!
//! ```text
//! magic "MDSE" | u32 version | u32 param count |
//!   per param: u32 name len | name bytes | u32 ndim | u64 dims… | f64 data…
//! ```
//!
//! All integers are little-endian; `f64` values are stored as exact bit
//! patterns, so NaN payloads, signed zeros, and subnormals round-trip
//! unchanged. Checkpoints are loaded back into an existing model's
//! [`Param`] list by name, so parameter ordering may differ between save
//! and load as long as names and shapes match.
//!
//! [`save_params`] writes through [`crate::format::atomic_write`]: an
//! interrupted save can never leave a half-written file at the target
//! path. The same encoding is exposed at the buffer level
//! ([`params_to_bytes`] / [`load_params_from_bytes`], and
//! [`adam_state_to_bytes`] / [`adam_state_from_bytes`] for optimizer
//! moments) so higher-level containers — the training checkpoints in
//! `metadse` — can embed parameter and optimizer payloads verbatim.

use std::collections::HashMap;
use std::io;
use std::path::Path;

use crate::format::{self, ByteReader, ByteWriter, FormatError};
use crate::layers::Param;
use crate::optim::AdamState;
use crate::{Elem, Tensor};

const MAGIC: &[u8; 4] = b"MDSE";
const VERSION: u32 = 1;

/// Errors produced when loading a checkpoint.
#[derive(Debug)]
pub enum CheckpointError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The file is not a MetaDSE checkpoint or uses an unknown version.
    Format(String),
    /// The checkpoint does not match the model (missing name, wrong shape).
    Mismatch(String),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint i/o error: {e}"),
            CheckpointError::Format(m) => write!(f, "invalid checkpoint format: {m}"),
            CheckpointError::Mismatch(m) => write!(f, "checkpoint/model mismatch: {m}"),
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

impl From<FormatError> for CheckpointError {
    fn from(e: FormatError) -> Self {
        CheckpointError::Format(e.0)
    }
}

/// Encodes the current values of `params` in the checkpoint wire format.
pub fn params_to_bytes(params: &[Param]) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.bytes(MAGIC);
    w.u32(VERSION);
    w.u32(params.len() as u32);
    for p in params {
        w.str(p.name());
        let t = p.get();
        w.u32(t.ndim() as u32);
        for &d in t.shape() {
            w.u64(d as u64);
        }
        for v in t.to_vec() {
            w.f64(v);
        }
    }
    w.into_bytes()
}

/// Saves the current values of `params` to `path` atomically.
///
/// # Errors
///
/// Returns an error if the file cannot be created or written.
pub fn save_params(params: &[Param], path: impl AsRef<Path>) -> Result<(), CheckpointError> {
    format::atomic_write(path, &params_to_bytes(params))?;
    Ok(())
}

/// Loads a checkpoint into `params`, matching entries by name.
///
/// Every model parameter must be present in the file with an identical
/// shape; extra entries in the file are ignored.
///
/// # Errors
///
/// Returns [`CheckpointError::Format`] for malformed (including
/// truncated) files and [`CheckpointError::Mismatch`] when names or
/// shapes disagree.
pub fn load_params(params: &[Param], path: impl AsRef<Path>) -> Result<(), CheckpointError> {
    let bytes = std::fs::read(path)?;
    load_params_from_bytes(params, &bytes)
}

/// Buffer-level variant of [`load_params`].
///
/// # Errors
///
/// Same contract as [`load_params`].
pub fn load_params_from_bytes(params: &[Param], bytes: &[u8]) -> Result<(), CheckpointError> {
    let entries: Entries = entries_from_bytes(bytes)?
        .into_iter()
        .map(|e| (e.name, (e.shape, e.data)))
        .collect();
    for p in params {
        let (shape, data) = entries.get(p.name()).ok_or_else(|| {
            CheckpointError::Mismatch(format!("parameter {:?} not found in checkpoint", p.name()))
        })?;
        if *shape != p.shape() {
            return Err(CheckpointError::Mismatch(format!(
                "parameter {:?} has shape {:?} in checkpoint but {:?} in model",
                p.name(),
                shape,
                p.shape()
            )));
        }
        p.set(Tensor::param_from_vec(data.clone(), shape));
    }
    Ok(())
}

/// Encodes an [`AdamState`] (step counter plus both moment buffers).
pub fn adam_state_to_bytes(state: &AdamState) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.u64(state.t);
    w.f64_slices(&state.m);
    w.f64_slices(&state.v);
    w.into_bytes()
}

/// Decodes an [`AdamState`] written by [`adam_state_to_bytes`].
///
/// # Errors
///
/// Returns [`CheckpointError::Format`] on truncated or malformed input
/// (including trailing garbage and first/second moment buffer lists of
/// different shapes).
pub fn adam_state_from_bytes(bytes: &[u8]) -> Result<AdamState, CheckpointError> {
    let mut r = ByteReader::new(bytes);
    let t = r.u64()?;
    let m = r.f64_vecs()?;
    let v = r.f64_vecs()?;
    if r.remaining() != 0 {
        return Err(CheckpointError::Format(format!(
            "{} trailing bytes after optimizer state",
            r.remaining()
        )));
    }
    if m.len() != v.len() || m.iter().zip(&v).any(|(a, b)| a.len() != b.len()) {
        return Err(CheckpointError::Format(
            "first/second moment buffers disagree in shape".into(),
        ));
    }
    Ok(AdamState { t, m, v })
}

type Entries = HashMap<String, (Vec<usize>, Vec<Elem>)>;

/// One named tensor decoded from a parameter payload.
#[derive(Debug, Clone, PartialEq)]
pub struct ParamEntry {
    /// Parameter name (the [`Param::name`] it was saved under).
    pub name: String,
    /// Tensor shape.
    pub shape: Vec<usize>,
    /// Tensor values, row-major, exact bit patterns.
    pub data: Vec<Elem>,
}

/// Decodes a [`params_to_bytes`] payload into its entries, **in file
/// order**, without needing a model instance — the loading path for
/// artifact containers (serving models, inspection tooling) that carry a
/// parameter payload verbatim.
///
/// # Errors
///
/// Returns [`CheckpointError::Format`] for malformed (including
/// truncated) input.
pub fn entries_from_bytes(bytes: &[u8]) -> Result<Vec<ParamEntry>, CheckpointError> {
    let mut r = ByteReader::new(bytes);
    if r.take(4)? != MAGIC {
        return Err(CheckpointError::Format("bad magic".into()));
    }
    let version = r.u32()?;
    if version != VERSION {
        return Err(CheckpointError::Format(format!(
            "unsupported version {version}"
        )));
    }
    let count = r.u32()? as usize;
    let mut entries = Vec::with_capacity(count.min(1024));
    for _ in 0..count {
        let name = r.str()?;
        let ndim = r.u32()? as usize;
        if ndim.saturating_mul(8) > r.remaining() {
            return Err(CheckpointError::Format(format!(
                "parameter {name:?} claims {ndim} dimensions beyond the input"
            )));
        }
        let mut shape = Vec::with_capacity(ndim);
        for _ in 0..ndim {
            shape.push(r.u64()? as usize);
        }
        let n: usize = shape.iter().product();
        if n.saturating_mul(8) > r.remaining() {
            return Err(CheckpointError::Format(format!(
                "parameter {name:?} claims {n} elements beyond the input"
            )));
        }
        let mut data = Vec::with_capacity(n);
        for _ in 0..n {
            data.push(r.f64()?);
        }
        entries.push(ParamEntry { name, shape, data });
    }
    Ok(entries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Linear, Module};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("metadse-nn-test-{name}-{}", std::process::id()));
        p
    }

    #[test]
    fn roundtrip_restores_values() {
        let mut rng = StdRng::seed_from_u64(1);
        let layer = Linear::new("l", 3, 2, true, &mut rng);
        let params = layer.params();
        let original: Vec<Vec<f64>> = params.iter().map(|p| p.get().to_vec()).collect();
        let path = temp_path("roundtrip");
        save_params(&params, &path).unwrap();
        // Wreck the weights, then restore.
        for p in &params {
            p.get().assign_vec(&vec![0.0; p.numel()]);
        }
        load_params(&params, &path).unwrap();
        for (p, o) in params.iter().zip(&original) {
            assert_eq!(&p.get().to_vec(), o);
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn missing_parameter_is_an_error() {
        let mut rng = StdRng::seed_from_u64(2);
        let saved = Linear::new("a", 2, 2, false, &mut rng);
        let loaded = Linear::new("b", 2, 2, false, &mut rng);
        let path = temp_path("missing");
        save_params(&saved.params(), &path).unwrap();
        let err = load_params(&loaded.params(), &path).unwrap_err();
        assert!(matches!(err, CheckpointError::Mismatch(_)));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn shape_mismatch_is_an_error() {
        let mut rng = StdRng::seed_from_u64(3);
        let saved = Linear::new("l", 2, 2, false, &mut rng);
        let loaded = Linear::new("l", 2, 3, false, &mut rng);
        let path = temp_path("shape");
        save_params(&saved.params(), &path).unwrap();
        let err = load_params(&loaded.params(), &path).unwrap_err();
        assert!(matches!(err, CheckpointError::Mismatch(_)));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn garbage_file_is_a_format_error() {
        let err = entries_from_bytes(b"not a checkpoint").unwrap_err();
        assert!(matches!(err, CheckpointError::Format(_)));
    }

    #[test]
    fn entries_from_bytes_preserves_save_order_and_bits() {
        let mut rng = StdRng::seed_from_u64(5);
        let layer = Linear::new("l", 3, 2, true, &mut rng);
        let params = layer.params();
        let entries = entries_from_bytes(&params_to_bytes(&params)).unwrap();
        assert_eq!(entries.len(), params.len());
        for (e, p) in entries.iter().zip(&params) {
            assert_eq!(e.name, p.name());
            assert_eq!(e.shape, p.shape());
            let want = p.get().to_vec();
            assert_eq!(e.data.len(), want.len());
            for (a, b) in e.data.iter().zip(&want) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }
}
