//! Versioned, checksummed binary containers and crash-safe file writes.
//!
//! Every on-disk artifact of the workspace that must survive interrupted
//! processes goes through this module:
//!
//! * [`ByteWriter`] / [`ByteReader`] — little-endian primitive encoding
//!   with checked, truncation-rejecting reads.
//! * [`seal`] / [`unseal`] — wrap a payload in a magic + version header
//!   and an FNV-1a trailer so corruption (truncation, torn writes, bit
//!   flips) is detected before any byte of the payload is trusted:
//!
//!   ```text
//!   magic (8) | u32 version | u64 payload len | payload … | u64 fnv1a
//!   ```
//!
//!   The checksum covers the header *and* the payload, so a sealed file
//!   whose header was spliced onto a different body also fails.
//! * [`atomic_write`] — temp file in the target directory → flush+fsync →
//!   rename, so readers only ever observe the old file or the complete
//!   new one, never a prefix.

use std::fs::File;
use std::io::{self, Write};
use std::path::Path;

/// 64-bit FNV-1a over `bytes` — the workspace's standard content hash.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x100000001b3);
    }
    hash
}

/// Error produced when decoding a sealed container or reading primitives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FormatError(pub String);

impl std::fmt::Display for FormatError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "format error: {}", self.0)
    }
}

impl std::error::Error for FormatError {}

/// Little-endian binary encoder over a growable buffer.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty writer.
    pub fn new() -> ByteWriter {
        ByteWriter::default()
    }

    /// Consumes the writer, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends raw bytes.
    pub fn bytes(&mut self, b: &[u8]) {
        self.buf.extend_from_slice(b);
    }

    /// Appends a `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its exact bit pattern (NaN payloads, signed
    /// zeros, and subnormals all round-trip bit-for-bit).
    pub fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.bytes(s.as_bytes());
    }

    /// Appends a length-prefixed `f64` slice.
    pub fn f64_slice(&mut self, vs: &[f64]) {
        self.u64(vs.len() as u64);
        for &v in vs {
            self.f64(v);
        }
    }

    /// Appends a length-prefixed list of length-prefixed `f64` vectors.
    pub fn f64_slices(&mut self, vss: &[Vec<f64>]) {
        self.u64(vss.len() as u64);
        for vs in vss {
            self.f64_slice(vs);
        }
    }
}

/// Checked little-endian decoder over a byte slice. Every read returns an
/// error instead of panicking when the input is truncated.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// A reader over `buf`, positioned at the start.
    pub fn new(buf: &'a [u8]) -> ByteReader<'a> {
        ByteReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Takes the next `n` raw bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], FormatError> {
        if self.remaining() < n {
            return Err(FormatError(format!(
                "truncated input: wanted {n} bytes at offset {}, {} left",
                self.pos,
                self.remaining()
            )));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads a `u32`.
    pub fn u32(&mut self) -> Result<u32, FormatError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    /// Reads a `u64`.
    pub fn u64(&mut self) -> Result<u64, FormatError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    /// Reads an `f64` bit pattern.
    pub fn f64(&mut self) -> Result<f64, FormatError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, FormatError> {
        let len = self.u32()? as usize;
        // Bound by the remaining input so a corrupt length cannot trigger
        // a huge allocation.
        String::from_utf8(self.take(len)?.to_vec())
            .map_err(|_| FormatError("non-UTF8 string".into()))
    }

    /// Reads a length-prefixed `f64` vector.
    pub fn f64_vec(&mut self) -> Result<Vec<f64>, FormatError> {
        let len = self.u64()? as usize;
        if len.saturating_mul(8) > self.remaining() {
            return Err(FormatError(format!(
                "truncated input: {len}-element f64 vector exceeds {} remaining bytes",
                self.remaining()
            )));
        }
        (0..len).map(|_| self.f64()).collect()
    }

    /// Reads a length-prefixed list of length-prefixed `f64` vectors.
    pub fn f64_vecs(&mut self) -> Result<Vec<Vec<f64>>, FormatError> {
        let len = self.u64()? as usize;
        if len.saturating_mul(8) > self.remaining() {
            return Err(FormatError(format!(
                "truncated input: {len}-vector list exceeds {} remaining bytes",
                self.remaining()
            )));
        }
        (0..len).map(|_| self.f64_vec()).collect()
    }
}

/// Wraps `payload` in the sealed-container framing (magic, version,
/// length, FNV-1a trailer). The result is what [`unseal`] accepts.
pub fn seal(magic: &[u8; 8], version: u32, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 28);
    out.extend_from_slice(magic);
    out.extend_from_slice(&version.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
    let checksum = fnv1a(&out);
    out.extend_from_slice(&checksum.to_le_bytes());
    out
}

/// Validates a sealed container and returns `(version, payload)`.
///
/// # Errors
///
/// Rejects wrong magic, truncated input, payload-length mismatch, and any
/// checksum failure — a torn or bit-flipped file never yields a payload.
pub fn unseal<'a>(magic: &[u8; 8], bytes: &'a [u8]) -> Result<(u32, &'a [u8]), FormatError> {
    const HEADER: usize = 8 + 4 + 8;
    const TRAILER: usize = 8;
    if bytes.len() < HEADER + TRAILER {
        return Err(FormatError(format!(
            "truncated container: {} bytes, need at least {}",
            bytes.len(),
            HEADER + TRAILER
        )));
    }
    if &bytes[..8] != magic {
        return Err(FormatError("bad magic".into()));
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4"));
    let len = u64::from_le_bytes(bytes[12..20].try_into().expect("8")) as usize;
    if bytes.len() != HEADER + len + TRAILER {
        return Err(FormatError(format!(
            "payload length {len} disagrees with container size {}",
            bytes.len()
        )));
    }
    let stated = u64::from_le_bytes(bytes[HEADER + len..].try_into().expect("8"));
    let actual = fnv1a(&bytes[..HEADER + len]);
    if stated != actual {
        return Err(FormatError(format!(
            "checksum mismatch: stored {stated:016x}, computed {actual:016x}"
        )));
    }
    Ok((version, &bytes[HEADER..HEADER + len]))
}

/// Writes `bytes` to `path` atomically: a unique temp file in the same
/// directory is written, flushed, fsynced, and renamed over the target.
/// A crash at any point leaves either the old file or the complete new
/// one — never a prefix.
///
/// # Errors
///
/// Returns any underlying I/O error; the temp file is removed on failure
/// (best effort).
pub fn atomic_write(path: impl AsRef<Path>, bytes: &[u8]) -> io::Result<()> {
    let path = path.as_ref();
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
    let file_name = path
        .file_name()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "path has no file name"))?;
    let tmp_name = format!(
        ".{}.tmp-{}",
        file_name.to_string_lossy(),
        std::process::id()
    );
    let tmp = match dir {
        Some(d) => d.join(&tmp_name),
        None => Path::new(&tmp_name).to_path_buf(),
    };
    let result = (|| {
        let mut f = File::create(&tmp)?;
        f.write_all(bytes)?;
        f.flush()?;
        f.sync_all()?;
        std::fs::rename(&tmp, path)
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    const MAGIC: &[u8; 8] = b"MDSETEST";

    fn sample_payload() -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.u32(7);
        w.u64(u64::MAX);
        w.str("layer.weight");
        w.f64_slice(&[1.5, -0.0, f64::NAN, f64::MIN_POSITIVE / 2.0]);
        w.f64_slices(&[vec![1.0, 2.0], vec![], vec![3.0]]);
        w.into_bytes()
    }

    #[test]
    fn writer_reader_roundtrip_is_exact() {
        let bytes = sample_payload();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.u32().unwrap(), 7);
        assert_eq!(r.u64().unwrap(), u64::MAX);
        assert_eq!(r.str().unwrap(), "layer.weight");
        let vs = r.f64_vec().unwrap();
        assert_eq!(vs[0], 1.5);
        assert_eq!(vs[1].to_bits(), (-0.0f64).to_bits());
        assert!(vs[2].is_nan());
        assert_eq!(vs[3], f64::MIN_POSITIVE / 2.0);
        assert_eq!(
            r.f64_vecs().unwrap(),
            vec![vec![1.0, 2.0], vec![], vec![3.0]]
        );
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn seal_unseal_roundtrip() {
        let payload = sample_payload();
        let sealed = seal(MAGIC, 3, &payload);
        let (version, got) = unseal(MAGIC, &sealed).unwrap();
        assert_eq!(version, 3);
        assert_eq!(got, &payload[..]);
    }

    #[test]
    fn any_single_byte_corruption_is_detected() {
        let sealed = seal(MAGIC, 1, &sample_payload());
        let mut rng = StdRng::seed_from_u64(0xf0);
        for _ in 0..64 {
            let i = rng.gen_range(0..sealed.len());
            let mut bad = sealed.clone();
            bad[i] ^= 1 << rng.gen_range(0..8u32);
            assert!(unseal(MAGIC, &bad).is_err(), "flip at byte {i} undetected");
        }
    }

    #[test]
    fn every_truncation_point_is_rejected() {
        let sealed = seal(MAGIC, 1, &sample_payload());
        for cut in 0..sealed.len() {
            assert!(unseal(MAGIC, &sealed[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn reader_rejects_truncated_primitives() {
        let mut w = ByteWriter::new();
        w.f64_slice(&[1.0, 2.0, 3.0]);
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            assert!(ByteReader::new(&bytes[..cut]).f64_vec().is_err());
        }
    }

    #[test]
    fn corrupt_length_prefix_does_not_allocate_absurdly() {
        let mut w = ByteWriter::new();
        w.u64(u64::MAX); // claims ~1.8e19 elements
        let bytes = w.into_bytes();
        assert!(ByteReader::new(&bytes).f64_vec().is_err());
        assert!(ByteReader::new(&bytes).f64_vecs().is_err());
    }

    #[test]
    fn atomic_write_replaces_contents() {
        let path = std::env::temp_dir().join(format!("metadse-fmt-{}", std::process::id()));
        atomic_write(&path, b"first").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"first");
        atomic_write(&path, b"second").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"second");
        std::fs::remove_file(&path).ok();
    }
}
