//! Property-based tests of the analytical CPU model: architectural
//! monotonicities and output sanity over random (config, workload) pairs.

use proptest::prelude::*;

use metadse_sim::{
    BranchPredictorKind, ConfigPoint, DesignSpace, Simulator, WorkloadProfile,
    WorkloadProfileBuilder,
};

fn space() -> DesignSpace {
    DesignSpace::new()
}

/// Strategy: a random design point as candidate indices.
fn point_strategy() -> impl Strategy<Value = ConfigPoint> {
    let cards: Vec<usize> = space().specs().iter().map(|s| s.cardinality()).collect();
    cards
        .into_iter()
        .map(|c| (0..c).boxed())
        .collect::<Vec<_>>()
        .prop_map(ConfigPoint::new)
}

/// Strategy: a random but valid workload profile.
fn profile_strategy() -> impl Strategy<Value = WorkloadProfile> {
    (
        0.0..1.0f64,   // entropy
        0.0..0.4f64,   // indirect
        2.0..64.0f64,  // call depth
        2.0..512.0f64, // l1 ws
        32.0..8192.0f64,
        0.0..1.0f64, // locality
        1.0..8.0f64, // ilp
        1.0..8.0f64, // mlp
        0.0..0.9f64, // streaming
    )
        .prop_map(
            |(entropy, indirect, depth, ws1, ws2, locality, ilp, mlp, streaming)| {
                WorkloadProfileBuilder::new("prop")
                    .branch_behavior(entropy, indirect, depth)
                    .memory_behavior(ws1, ws2, 32.0, locality, streaming)
                    .parallelism(ilp, mlp)
                    .build()
                    .expect("strategy stays in the valid range")
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn outputs_are_finite_and_bounded(point in point_strategy(), profile in profile_strategy()) {
        let ds = space();
        let sim = Simulator::new();
        let out = sim.simulate_point(&ds, &point, &profile);
        let width = ds.config(&point).pipeline_width as f64;
        prop_assert!(out.ipc > 0.0 && out.ipc <= width + 1e-9);
        prop_assert!(out.power_w > 0.0 && out.power_w.is_finite());
        prop_assert!(out.area_mm2 > 0.0 && out.area_mm2.is_finite());
        prop_assert!((0.0..=1.0).contains(&out.l1d_miss_rate));
        prop_assert!((0.0..=1.0).contains(&out.l2_miss_rate));
        prop_assert!((0.0..=0.5).contains(&out.branch_mispredict_rate));
    }

    #[test]
    fn simulation_is_a_pure_function(point in point_strategy(), profile in profile_strategy()) {
        let ds = space();
        let sim = Simulator::new();
        let a = sim.simulate_point(&ds, &point, &profile);
        let b = sim.simulate_point(&ds, &point, &profile);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn bigger_l1_never_increases_misses(point in point_strategy(), profile in profile_strategy()) {
        let ds = space();
        let sim = Simulator::with_noise(0.0);
        let mut config = ds.config(&point);
        config.l1_cache_kb = 16;
        let small = sim.simulate(&config, &profile).l1d_miss_rate;
        config.l1_cache_kb = 64;
        let big = sim.simulate(&config, &profile).l1d_miss_rate;
        prop_assert!(big <= small + 1e-12, "{big} > {small}");
    }

    #[test]
    fn higher_frequency_never_reduces_power(point in point_strategy(), profile in profile_strategy()) {
        let ds = space();
        let sim = Simulator::with_noise(0.0);
        let mut config = ds.config(&point);
        config.core_freq_ghz = 1.0;
        let slow = sim.simulate(&config, &profile).power_w;
        config.core_freq_ghz = 3.0;
        let fast = sim.simulate(&config, &profile).power_w;
        prop_assert!(fast > slow, "{fast} <= {slow}");
    }

    #[test]
    fn tournament_never_loses_to_bimode(point in point_strategy(), profile in profile_strategy()) {
        let ds = space();
        let sim = Simulator::with_noise(0.0);
        let mut config = ds.config(&point);
        config.branch_predictor = BranchPredictorKind::BiMode;
        let bimode = sim.simulate(&config, &profile).branch_mispredict_rate;
        config.branch_predictor = BranchPredictorKind::Tournament;
        let tournament = sim.simulate(&config, &profile).branch_mispredict_rate;
        prop_assert!(tournament <= bimode + 1e-12);
    }

    #[test]
    fn bigger_rob_never_shrinks_the_window(point in point_strategy(), profile in profile_strategy()) {
        // Note: a bigger ROB can legitimately *lower IPC* on branchy code
        // (longer flush penalty), so the monotone quantity is the
        // structural window, not end-to-end IPC.
        let ds = space();
        let mut config = ds.config(&point);
        config.rob_size = 32;
        let small = metadse_sim::backend::evaluate(&config, &profile).effective_window;
        config.rob_size = 256;
        let big = metadse_sim::backend::evaluate(&config, &profile).effective_window;
        prop_assert!(big >= small - 1e-12, "{big} < {small}");
    }

    #[test]
    fn encode_stays_in_unit_interval(point in point_strategy()) {
        let ds = space();
        let features = ds.encode(&point);
        prop_assert_eq!(features.len(), 21);
        prop_assert!(features.iter().all(|&f| (0.0..=1.0).contains(&f)));
    }

    #[test]
    fn area_monotone_in_cache_size(point in point_strategy()) {
        let ds = space();
        let mut config = ds.config(&point);
        config.l2_cache_kb = 128;
        let small = metadse_sim::power::area_mm2(&config);
        config.l2_cache_kb = 256;
        let big = metadse_sim::power::area_mm2(&config);
        prop_assert!(big > small);
    }
}
