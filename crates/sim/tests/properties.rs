//! Property-style tests of the analytical CPU model: architectural
//! monotonicities and output sanity over random (config, workload) pairs.
//!
//! Each test draws many random cases from a seeded [`StdRng`] (the hermetic
//! build has no proptest), so failures are reproducible from the fixed seed.

use metadse_sim::{
    BranchPredictorKind, ConfigPoint, DesignSpace, Simulator, WorkloadProfile,
    WorkloadProfileBuilder,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CASES: usize = 48;

fn space() -> DesignSpace {
    DesignSpace::new()
}

/// A uniformly random design point as candidate indices.
fn random_point(rng: &mut StdRng) -> ConfigPoint {
    let indices = space()
        .specs()
        .iter()
        .map(|s| rng.gen_range(0..s.cardinality()))
        .collect();
    ConfigPoint::new(indices)
}

/// A random but valid workload profile.
fn random_profile(rng: &mut StdRng) -> WorkloadProfile {
    let entropy = rng.gen_range(0.0..1.0);
    let indirect = rng.gen_range(0.0..0.4);
    let depth = rng.gen_range(2.0..64.0);
    let ws1 = rng.gen_range(2.0..512.0);
    let ws2 = rng.gen_range(32.0..8192.0);
    let locality = rng.gen_range(0.0..1.0);
    let ilp = rng.gen_range(1.0..8.0);
    let mlp = rng.gen_range(1.0..8.0);
    let streaming = rng.gen_range(0.0..0.9);
    WorkloadProfileBuilder::new("prop")
        .branch_behavior(entropy, indirect, depth)
        .memory_behavior(ws1, ws2, 32.0, locality, streaming)
        .parallelism(ilp, mlp)
        .build()
        .expect("sampled values stay in the valid range")
}

#[test]
fn outputs_are_finite_and_bounded() {
    let mut rng = StdRng::seed_from_u64(0x5101);
    for _ in 0..CASES {
        let point = random_point(&mut rng);
        let profile = random_profile(&mut rng);
        let ds = space();
        let sim = Simulator::new();
        let out = sim.simulate_point(&ds, &point, &profile);
        let width = ds.config(&point).pipeline_width as f64;
        assert!(out.ipc > 0.0 && out.ipc <= width + 1e-9);
        assert!(out.power_w > 0.0 && out.power_w.is_finite());
        assert!(out.area_mm2 > 0.0 && out.area_mm2.is_finite());
        assert!((0.0..=1.0).contains(&out.l1d_miss_rate));
        assert!((0.0..=1.0).contains(&out.l2_miss_rate));
        assert!((0.0..=0.5).contains(&out.branch_mispredict_rate));
    }
}

#[test]
fn simulation_is_a_pure_function() {
    let mut rng = StdRng::seed_from_u64(0x5102);
    for _ in 0..CASES {
        let point = random_point(&mut rng);
        let profile = random_profile(&mut rng);
        let ds = space();
        let sim = Simulator::new();
        let a = sim.simulate_point(&ds, &point, &profile);
        let b = sim.simulate_point(&ds, &point, &profile);
        assert_eq!(a, b);
    }
}

#[test]
fn bigger_l1_never_increases_misses() {
    let mut rng = StdRng::seed_from_u64(0x5103);
    for _ in 0..CASES {
        let point = random_point(&mut rng);
        let profile = random_profile(&mut rng);
        let ds = space();
        let sim = Simulator::with_noise(0.0);
        let mut config = ds.config(&point);
        config.l1_cache_kb = 16;
        let small = sim.simulate(&config, &profile).l1d_miss_rate;
        config.l1_cache_kb = 64;
        let big = sim.simulate(&config, &profile).l1d_miss_rate;
        assert!(big <= small + 1e-12, "{big} > {small}");
    }
}

#[test]
fn higher_frequency_never_reduces_power() {
    let mut rng = StdRng::seed_from_u64(0x5104);
    for _ in 0..CASES {
        let point = random_point(&mut rng);
        let profile = random_profile(&mut rng);
        let ds = space();
        let sim = Simulator::with_noise(0.0);
        let mut config = ds.config(&point);
        config.core_freq_ghz = 1.0;
        let slow = sim.simulate(&config, &profile).power_w;
        config.core_freq_ghz = 3.0;
        let fast = sim.simulate(&config, &profile).power_w;
        assert!(fast > slow, "{fast} <= {slow}");
    }
}

#[test]
fn tournament_never_loses_to_bimode() {
    let mut rng = StdRng::seed_from_u64(0x5105);
    for _ in 0..CASES {
        let point = random_point(&mut rng);
        let profile = random_profile(&mut rng);
        let ds = space();
        let sim = Simulator::with_noise(0.0);
        let mut config = ds.config(&point);
        config.branch_predictor = BranchPredictorKind::BiMode;
        let bimode = sim.simulate(&config, &profile).branch_mispredict_rate;
        config.branch_predictor = BranchPredictorKind::Tournament;
        let tournament = sim.simulate(&config, &profile).branch_mispredict_rate;
        assert!(tournament <= bimode + 1e-12);
    }
}

#[test]
fn bigger_rob_never_shrinks_the_window() {
    // Note: a bigger ROB can legitimately *lower IPC* on branchy code
    // (longer flush penalty), so the monotone quantity is the structural
    // window, not end-to-end IPC.
    let mut rng = StdRng::seed_from_u64(0x5106);
    for _ in 0..CASES {
        let point = random_point(&mut rng);
        let profile = random_profile(&mut rng);
        let ds = space();
        let mut config = ds.config(&point);
        config.rob_size = 32;
        let small = metadse_sim::backend::evaluate(&config, &profile).effective_window;
        config.rob_size = 256;
        let big = metadse_sim::backend::evaluate(&config, &profile).effective_window;
        assert!(big >= small - 1e-12, "{big} < {small}");
    }
}

#[test]
fn encode_stays_in_unit_interval() {
    let mut rng = StdRng::seed_from_u64(0x5107);
    for _ in 0..CASES {
        let point = random_point(&mut rng);
        let ds = space();
        let features = ds.encode(&point);
        assert_eq!(features.len(), 21);
        assert!(features.iter().all(|&f| (0.0..=1.0).contains(&f)));
    }
}

#[test]
fn area_monotone_in_cache_size() {
    let mut rng = StdRng::seed_from_u64(0x5108);
    for _ in 0..CASES {
        let point = random_point(&mut rng);
        let ds = space();
        let mut config = ds.config(&point);
        config.l2_cache_kb = 128;
        let small = metadse_sim::power::area_mm2(&config);
        config.l2_cache_kb = 256;
        let big = metadse_sim::power::area_mm2(&config);
        assert!(big > small);
    }
}

/// IPC can never exceed the issue width, whatever the width: the
/// pipeline bound must hold at every candidate width of the Table-I
/// space, not just the sampled one.
#[test]
fn ipc_never_exceeds_issue_width_at_any_width() {
    let mut rng = StdRng::seed_from_u64(0x5109);
    for _ in 0..CASES {
        let point = random_point(&mut rng);
        let profile = random_profile(&mut rng);
        let ds = space();
        let sim = Simulator::with_noise(0.0);
        let mut config = ds.config(&point);
        for width in [1u32, 2, 3, 4, 6, 8, 12] {
            config.pipeline_width = width;
            let out = sim.simulate(&config, &profile);
            assert!(
                out.ipc > 0.0 && out.ipc <= f64::from(width) + 1e-9,
                "width {width}: ipc {} out of (0, width]",
                out.ipc
            );
        }
    }
}

/// Growing either cache strictly grows both area (more SRAM) and total
/// power (more leakage plus higher achieved IPC): larger caches are
/// never free in this model.
#[test]
fn power_and_area_monotone_in_cache_size() {
    let mut rng = StdRng::seed_from_u64(0x510a);
    for _ in 0..CASES {
        let point = random_point(&mut rng);
        let profile = random_profile(&mut rng);
        let ds = space();
        let sim = Simulator::with_noise(0.0);
        let mut config = ds.config(&point);
        config.l1_cache_kb = 16;
        let small_l1 = sim.simulate(&config, &profile);
        config.l1_cache_kb = 64;
        let big_l1 = sim.simulate(&config, &profile);
        assert!(small_l1.power_w > 0.0 && small_l1.area_mm2 > 0.0);
        assert!(big_l1.power_w > small_l1.power_w);
        assert!(big_l1.area_mm2 > small_l1.area_mm2);

        let mut config = ds.config(&point);
        config.l2_cache_kb = 128;
        let small_l2 = sim.simulate(&config, &profile);
        config.l2_cache_kb = 2048;
        let big_l2 = sim.simulate(&config, &profile);
        assert!(big_l2.power_w > small_l2.power_w);
        assert!(big_l2.area_mm2 > small_l2.area_mm2);
    }
}

/// The Table-I space is single-core, so its "more core" axis is compute
/// resources: pipeline width and functional-unit count. Both must
/// strictly grow area (wider fabric, more FUs) and total power (clock
/// tree, leakage, higher activity).
#[test]
fn power_and_area_monotone_in_core_resources() {
    let mut rng = StdRng::seed_from_u64(0x510b);
    for _ in 0..CASES {
        let point = random_point(&mut rng);
        let profile = random_profile(&mut rng);
        let ds = space();
        let sim = Simulator::with_noise(0.0);

        let mut config = ds.config(&point);
        config.pipeline_width = 1;
        let narrow = sim.simulate(&config, &profile);
        config.pipeline_width = 8;
        let wide = sim.simulate(&config, &profile);
        assert!(narrow.power_w > 0.0 && narrow.area_mm2 > 0.0);
        assert!(wide.power_w > narrow.power_w);
        assert!(wide.area_mm2 > narrow.area_mm2);

        let mut config = ds.config(&point);
        config.int_alu = 1;
        config.fp_alu = 1;
        let few = sim.simulate(&config, &profile);
        config.int_alu = 6;
        config.fp_alu = 4;
        let many = sim.simulate(&config, &profile);
        assert!(many.power_w > few.power_w);
        assert!(many.area_mm2 > few.area_mm2);
    }
}
