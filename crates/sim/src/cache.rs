//! Cache hierarchy model.
//!
//! A capacity/conflict/compulsory decomposition in the style of analytical
//! cache models: miss ratios are smooth functions of the working-set to
//! capacity ratio, softened by associativity and line-size effects, so the
//! surrogate-learning problem stays realistic (nonlinear, interaction-rich)
//! without cycle-level simulation.

use crate::design_space::CpuConfig;
use crate::workload::WorkloadProfile;
use crate::Elem;

/// Cache behaviour predicted for a (config, workload) pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CacheModel {
    /// L1 data-cache miss ratio (per memory access).
    pub l1d_miss_rate: Elem,
    /// L1 instruction-cache miss ratio (per instruction).
    pub l1i_miss_rate: Elem,
    /// L2 miss ratio (per L2 access).
    pub l2_miss_rate: Elem,
    /// L1-miss service latency from L2, in core cycles.
    pub l2_latency: Elem,
    /// L2-miss service latency from DRAM, in core cycles (frequency
    /// dependent: a faster core waits more cycles for the same nanoseconds).
    pub dram_latency: Elem,
}

/// Saturating capacity-miss curve: 0 when the working set fits, approaching
/// `ceiling` as the working set dwarfs the cache.
fn capacity_miss(ws_kb: Elem, size_kb: Elem, ceiling: Elem) -> Elem {
    let ratio = ws_kb / size_kb;
    // Below ~70% occupancy misses are negligible; beyond that they rise
    // smoothly and saturate. The slow knee reflects that only part of a
    // working set is hot at any instant (LRU keeps the hot fraction).
    let pressure = (ratio - 0.7).max(0.0);
    ceiling * pressure / (pressure + 4.0)
}

/// Conflict-miss multiplier for a given associativity.
fn conflict_multiplier(assoc: u32, spatial_locality: Elem) -> Elem {
    // Irregular access patterns suffer more conflicts; 4-way roughly halves
    // the conflict overhead of 2-way.
    let irregularity = 1.0 - spatial_locality;
    match assoc {
        0 | 1 => 1.0 + 0.50 * irregularity,
        2 => 1.0 + 0.30 * irregularity,
        4 => 1.0 + 0.12 * irregularity,
        _ => 1.0 + 0.05 * irregularity,
    }
}

/// Evaluates the cache model.
pub fn evaluate(config: &CpuConfig, workload: &WorkloadProfile) -> CacheModel {
    let line = config.cacheline_bytes as Elem;
    // Longer lines amortize compulsory misses when spatial locality is
    // high, but waste capacity when accesses are sparse.
    let line_gain = (line / 64.0).powf(workload.spatial_locality);
    let sparse_waste = 1.0 + (line / 64.0 - 0.5) * (1.0 - workload.spatial_locality) * 0.35;

    // --- L1 data ---
    let l1_size = config.l1_cache_kb as Elem / sparse_waste;
    let compulsory_l1 = 0.012 * (1.0 - 0.75 * workload.spatial_locality) / line_gain;
    let cap_l1 = capacity_miss(workload.data_ws_l1_kb, l1_size, 0.32)
        * conflict_multiplier(config.l1_assoc, workload.spatial_locality);
    let l1d_miss_rate = (compulsory_l1 + cap_l1).min(0.6);

    // --- L1 instruction ---
    let compulsory_l1i = 0.0015;
    let cap_l1i = capacity_miss(workload.code_footprint_kb, config.l1_cache_kb as Elem, 0.15)
        * conflict_multiplier(config.l1_assoc, 0.8);
    let l1i_miss_rate = (compulsory_l1i + cap_l1i).min(0.3);

    // --- L2 (unified, filters L1 misses) ---
    let l2_size = config.l2_cache_kb as Elem / sparse_waste;
    let cap_l2 = capacity_miss(workload.data_ws_l2_kb, l2_size, 0.85)
        * conflict_multiplier(config.l2_assoc, workload.spatial_locality);
    let l2_miss_rate = (workload.streaming + (1.0 - workload.streaming) * cap_l2).min(1.0);

    // --- Latencies (cycles at the configured core frequency) ---
    // L2: fixed pipeline latency plus line transfer at 16 B/cycle.
    let l2_latency = 12.0 + line / 16.0;
    // DRAM: ~80 ns access; cycles scale with core frequency.
    let dram_latency = 80.0 * config.core_freq_ghz + line / 8.0;

    CacheModel {
        l1d_miss_rate,
        l1i_miss_rate,
        l2_miss_rate,
        l2_latency,
        dram_latency,
    }
}

impl CacheModel {
    /// Average extra cycles per *data access* spent below L1, before any
    /// memory-level-parallelism overlap is applied.
    pub fn serial_miss_cycles(&self) -> Elem {
        self.l1d_miss_rate * (self.l2_latency + self.l2_miss_rate * self.dram_latency)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design_space::{ConfigPoint, DesignSpace};
    use crate::workload::WorkloadProfileBuilder;

    fn mid_config() -> CpuConfig {
        let ds = DesignSpace::new();
        let mid = ConfigPoint::new(ds.specs().iter().map(|s| s.cardinality() / 2).collect());
        ds.config(&mid)
    }

    fn workload(l1_ws: f64, l2_ws: f64, locality: f64) -> WorkloadProfile {
        WorkloadProfileBuilder::new("w")
            .memory_behavior(l1_ws, l2_ws, 24.0, locality, 0.1)
            .build()
            .unwrap()
    }

    #[test]
    fn bigger_l1_means_fewer_misses() {
        let wl = workload(96.0, 2048.0, 0.4);
        let mut c = mid_config();
        c.l1_cache_kb = 16;
        let small = evaluate(&c, &wl).l1d_miss_rate;
        c.l1_cache_kb = 64;
        let big = evaluate(&c, &wl).l1d_miss_rate;
        assert!(big < small, "{big} !< {small}");
    }

    #[test]
    fn fitting_working_set_has_tiny_miss_rate() {
        let wl = workload(8.0, 64.0, 0.8);
        let mut c = mid_config();
        c.l1_cache_kb = 64;
        c.l2_cache_kb = 256;
        let m = evaluate(&c, &wl);
        assert!(m.l1d_miss_rate < 0.02, "l1 {}", m.l1d_miss_rate);
        assert!(m.l2_miss_rate < 0.2, "l2 {}", m.l2_miss_rate);
    }

    #[test]
    fn associativity_helps_irregular_workloads_more() {
        let irregular = workload(96.0, 2048.0, 0.1);
        let regular = workload(96.0, 2048.0, 0.9);
        let mut c = mid_config();
        c.l1_assoc = 2;
        let irr2 = evaluate(&c, &irregular).l1d_miss_rate;
        let reg2 = evaluate(&c, &regular).l1d_miss_rate;
        c.l1_assoc = 4;
        let irr4 = evaluate(&c, &irregular).l1d_miss_rate;
        let reg4 = evaluate(&c, &regular).l1d_miss_rate;
        let irr_gain = irr2 - irr4;
        let reg_gain = reg2 - reg4;
        assert!(irr_gain > reg_gain, "{irr_gain} !> {reg_gain}");
    }

    #[test]
    fn long_lines_help_streaming_hurt_pointer_chasing() {
        let streaming = workload(96.0, 2048.0, 0.95);
        let chasing = workload(96.0, 2048.0, 0.05);
        let mut c = mid_config();
        c.cacheline_bytes = 32;
        let s32 = evaluate(&c, &streaming).l1d_miss_rate;
        let p32 = evaluate(&c, &chasing).l1d_miss_rate;
        c.cacheline_bytes = 64;
        let s64 = evaluate(&c, &streaming).l1d_miss_rate;
        let p64 = evaluate(&c, &chasing).l1d_miss_rate;
        assert!(s64 < s32, "streaming should gain from longer lines");
        assert!(
            p64 > p32,
            "pointer chasing should lose capacity to long lines"
        );
    }

    #[test]
    fn dram_cycles_scale_with_frequency() {
        let wl = workload(64.0, 4096.0, 0.5);
        let mut c = mid_config();
        c.core_freq_ghz = 1.0;
        let slow = evaluate(&c, &wl).dram_latency;
        c.core_freq_ghz = 3.0;
        let fast = evaluate(&c, &wl).dram_latency;
        assert!((fast / slow - 2.8).abs() < 0.4, "ratio {}", fast / slow);
    }

    #[test]
    fn streaming_floor_on_l2_misses() {
        let mut wl = workload(16.0, 32.0, 0.9);
        wl.streaming = 0.7;
        let c = mid_config();
        let m = evaluate(&c, &wl);
        assert!(m.l2_miss_rate >= 0.7);
    }

    #[test]
    fn rates_bounded_across_random_space() {
        use rand::Rng;
        let ds = DesignSpace::new();
        let mut rng = rand::rngs::mock::StepRng::new(3, 2654435761);
        for _ in 0..200 {
            let c = ds.config(&ds.random_point(&mut rng));
            let wl = workload(
                rng.gen_range(4.0..512.0),
                rng.gen_range(64.0..8192.0),
                rng.gen_range(0.0..1.0),
            );
            let m = evaluate(&c, &wl);
            assert!((0.0..=0.6).contains(&m.l1d_miss_rate));
            assert!((0.0..=0.3).contains(&m.l1i_miss_rate));
            assert!((0.0..=1.0).contains(&m.l2_miss_rate));
            assert!(m.serial_miss_cycles() >= 0.0);
        }
    }
}
