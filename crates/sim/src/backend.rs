//! Backend structural limits (window, registers, queues, functional
//! units).
//!
//! Each limit is expressed as a sustainable-IPC ceiling in the Little's-law
//! tradition: a structure of `N` entries whose occupants live `L` cycles
//! sustains at most `N / L` instructions per cycle.

use crate::design_space::CpuConfig;
use crate::workload::WorkloadProfile;
use crate::Elem;

/// Architectural registers reserved out of each physical register file.
const ARCH_REGS: Elem = 34.0;

/// Average non-memory instruction lifetime in the window (issue to
/// commit), cycles.
const BASE_LIFETIME: Elem = 5.0;

/// Structural IPC ceilings implied by a configuration for a workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BackendModel {
    /// Effective window size after register-file and LSQ constraints.
    pub effective_window: Elem,
    /// IPC ceiling from the reorder buffer / physical registers.
    pub window_limit: Elem,
    /// IPC ceiling from the instruction queue (scheduler).
    pub issue_limit: Elem,
    /// IPC ceiling from load/store queue capacity.
    pub lsq_limit: Elem,
    /// IPC ceiling from functional-unit throughput.
    pub fu_limit: Elem,
}

/// Per-unit sustained throughput (ops/cycle) of each functional unit class.
mod throughput {
    use crate::Elem;
    pub const INT_ALU: Elem = 1.0;
    pub const INT_MUL: Elem = 0.4; // 2.5-cycle effective initiation interval
    pub const FP_ALU: Elem = 0.6;
    pub const FP_MUL: Elem = 0.35;
}

/// Evaluates the structural limits.
pub fn evaluate(config: &CpuConfig, workload: &WorkloadProfile) -> BackendModel {
    // The in-flight window is the ROB, but it can only fill as far as free
    // physical registers and LSQ slots allow.
    let int_cap =
        ((config.int_regfile as Elem - ARCH_REGS).max(8.0)) / workload.frac_int_writers().max(0.05);
    let fp_cap = if workload.frac_fp_writers() > 0.01 {
        ((config.fp_regfile as Elem - ARCH_REGS).max(8.0)) / workload.frac_fp_writers()
    } else {
        Elem::INFINITY
    };
    let lsq_cap = config.load_store_queue as Elem / workload.frac_mem().max(0.05);
    let effective_window = (config.rob_size as Elem)
        .min(int_cap)
        .min(fp_cap)
        .min(lsq_cap);

    let window_limit = effective_window / BASE_LIFETIME;

    // Scheduler: entries wait ~2.5 cycles on average for operands.
    let issue_limit = config.inst_queue as Elem / 2.5;

    // Loads/stores occupy LSQ slots for their full latency (~4 cycles when
    // hitting in L1).
    let lsq_limit = config.load_store_queue as Elem / (4.0 * workload.frac_mem().max(0.02));

    // Functional-unit throughput per class.
    let fu = |units: u32, thr: Elem, frac: Elem| -> Elem {
        if frac < 1e-9 {
            Elem::INFINITY
        } else {
            units as Elem * thr / frac
        }
    };
    let fu_limit = fu(config.int_alu, throughput::INT_ALU, workload.frac_int_alu)
        .min(fu(
            config.int_mult_div,
            throughput::INT_MUL,
            workload.frac_int_mul,
        ))
        .min(fu(config.fp_alu, throughput::FP_ALU, workload.frac_fp_alu))
        .min(fu(
            config.fp_mult_div,
            throughput::FP_MUL,
            workload.frac_fp_mul,
        ));

    BackendModel {
        effective_window,
        window_limit,
        issue_limit,
        lsq_limit,
        fu_limit,
    }
}

impl BackendModel {
    /// The binding structural IPC ceiling.
    pub fn ipc_ceiling(&self) -> Elem {
        self.window_limit
            .min(self.issue_limit)
            .min(self.lsq_limit)
            .min(self.fu_limit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design_space::{ConfigPoint, DesignSpace};
    use crate::workload::WorkloadProfileBuilder;

    fn mid_config() -> CpuConfig {
        let ds = DesignSpace::new();
        let mid = ConfigPoint::new(ds.specs().iter().map(|s| s.cardinality() / 2).collect());
        ds.config(&mid)
    }

    #[test]
    fn bigger_rob_raises_window_limit() {
        let w = WorkloadProfileBuilder::new("w").build().unwrap();
        let mut c = mid_config();
        c.rob_size = 32;
        let small = evaluate(&c, &w).window_limit;
        c.rob_size = 256;
        let big = evaluate(&c, &w).window_limit;
        assert!(big > small);
    }

    #[test]
    fn register_file_can_cap_the_window() {
        let w = WorkloadProfileBuilder::new("w").build().unwrap();
        let mut c = mid_config();
        c.rob_size = 256;
        c.int_regfile = 64; // only ~30 renames available
        let m = evaluate(&c, &w);
        assert!(
            m.effective_window < 256.0 * 0.5,
            "window {}",
            m.effective_window
        );
        c.int_regfile = 256;
        let m2 = evaluate(&c, &w);
        assert!(m2.effective_window > m.effective_window);
    }

    #[test]
    fn fp_registers_irrelevant_for_integer_code() {
        let w = WorkloadProfileBuilder::new("int").build().unwrap();
        let mut c = mid_config();
        c.fp_regfile = 64;
        let small = evaluate(&c, &w).effective_window;
        c.fp_regfile = 256;
        let big = evaluate(&c, &w).effective_window;
        assert_eq!(small, big);
    }

    #[test]
    fn fp_registers_matter_for_fp_code() {
        let w = WorkloadProfileBuilder::new("fp")
            .mix(0.10, 0.02, 0.30, 0.18, 0.20, 0.10, 0.10)
            .build()
            .unwrap();
        let mut c = mid_config();
        c.rob_size = 256;
        c.fp_regfile = 64;
        let small = evaluate(&c, &w).effective_window;
        c.fp_regfile = 256;
        let big = evaluate(&c, &w).effective_window;
        assert!(big > small);
    }

    #[test]
    fn fp_units_bind_fp_workloads() {
        let w = WorkloadProfileBuilder::new("fp")
            .mix(0.10, 0.02, 0.30, 0.18, 0.20, 0.10, 0.10)
            .build()
            .unwrap();
        let mut c = mid_config();
        c.fp_mult_div = 1;
        let one = evaluate(&c, &w).fu_limit;
        c.fp_mult_div = 4;
        let four = evaluate(&c, &w).fu_limit;
        assert!(four > one);
        // 1 FP multiplier at 0.35/cycle over 18% of instructions: ~1.94 IPC.
        assert!((one - 0.35 / 0.18).abs() < 0.05);
    }

    #[test]
    fn lsq_binds_memory_heavy_workloads() {
        let w = WorkloadProfileBuilder::new("mem")
            .mix(0.20, 0.02, 0.0, 0.0, 0.40, 0.20, 0.18)
            .build()
            .unwrap();
        let mut c = mid_config();
        c.load_store_queue = 20;
        let m = evaluate(&c, &w);
        // 20 / (4 * 0.6) ≈ 8.3
        assert!((m.lsq_limit - 20.0 / 2.4).abs() < 0.01);
        assert!(m.ipc_ceiling() <= m.lsq_limit);
    }

    #[test]
    fn ceiling_is_min_of_components() {
        let w = WorkloadProfileBuilder::new("w").build().unwrap();
        let m = evaluate(&mid_config(), &w);
        let expected = m
            .window_limit
            .min(m.issue_limit)
            .min(m.lsq_limit)
            .min(m.fu_limit);
        assert_eq!(m.ipc_ceiling(), expected);
        assert!(m.ipc_ceiling().is_finite());
        assert!(m.ipc_ceiling() > 0.0);
    }
}
