//! Workload characterization.
//!
//! A [`WorkloadProfile`] is the analytical model's stand-in for a real
//! benchmark binary: instead of executing instructions, the simulator
//! consumes a vector of behavioural statistics (instruction mix, branch
//! predictability, working-set sizes, inherent parallelism). The
//! `metadse-workloads` crate builds one profile per SPEC CPU 2017 workload
//! and perturbs it into SimPoint-style phases.

use crate::Elem;

/// Behavioural statistics describing one workload (or one SimPoint phase).
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadProfile {
    /// Workload name, e.g. `605.mcf_s` or `605.mcf_s#phase3`.
    pub name: String,
    /// Fraction of simple integer ALU instructions.
    pub frac_int_alu: Elem,
    /// Fraction of integer multiply/divide instructions.
    pub frac_int_mul: Elem,
    /// Fraction of floating-point add/compare instructions.
    pub frac_fp_alu: Elem,
    /// Fraction of floating-point multiply/divide instructions.
    pub frac_fp_mul: Elem,
    /// Fraction of loads.
    pub frac_load: Elem,
    /// Fraction of stores.
    pub frac_store: Elem,
    /// Fraction of branches.
    pub frac_branch: Elem,
    /// Difficulty of branch prediction, 0 (trivial) .. 1 (chaotic).
    pub branch_entropy: Elem,
    /// Fraction of branches that are indirect (BTB pressure).
    pub indirect_branch_frac: Elem,
    /// Typical call nesting depth (return-address-stack pressure).
    pub call_depth: Elem,
    /// Primary data working set in KB (pressure on L1).
    pub data_ws_l1_kb: Elem,
    /// Secondary data working set in KB (pressure on L2).
    pub data_ws_l2_kb: Elem,
    /// Instruction footprint in KB (pressure on the I-cache).
    pub code_footprint_kb: Elem,
    /// Spatial locality, 0 (pointer chasing) .. 1 (streaming).
    pub spatial_locality: Elem,
    /// Inherent instruction-level parallelism (dependency-limited IPC).
    pub ilp: Elem,
    /// Inherent memory-level parallelism (overlappable misses).
    pub mlp: Elem,
    /// Fraction of L2 traffic that is streaming (bypasses to DRAM).
    pub streaming: Elem,
}

impl WorkloadProfile {
    /// Fraction of memory instructions (loads + stores).
    pub fn frac_mem(&self) -> Elem {
        self.frac_load + self.frac_store
    }

    /// Fraction of instructions writing an integer register
    /// (integer ops and loads).
    pub fn frac_int_writers(&self) -> Elem {
        self.frac_int_alu + self.frac_int_mul + self.frac_load * 0.7
    }

    /// Fraction of instructions writing a floating-point register.
    pub fn frac_fp_writers(&self) -> Elem {
        self.frac_fp_alu + self.frac_fp_mul + self.frac_load * 0.3 * self.fp_share()
    }

    /// Share of compute that is floating point, in `[0, 1]`.
    pub fn fp_share(&self) -> Elem {
        let fp = self.frac_fp_alu + self.frac_fp_mul;
        let int = self.frac_int_alu + self.frac_int_mul;
        if fp + int == 0.0 {
            0.0
        } else {
            fp / (fp + int)
        }
    }

    /// Validates ranges and that the instruction mix sums to ~1.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), ProfileError> {
        let mix = self.frac_int_alu
            + self.frac_int_mul
            + self.frac_fp_alu
            + self.frac_fp_mul
            + self.frac_load
            + self.frac_store
            + self.frac_branch;
        if (mix - 1.0).abs() > 1e-6 {
            return Err(ProfileError::new(format!(
                "instruction mix of {:?} sums to {mix}, expected 1",
                self.name
            )));
        }
        let fractions = [
            ("frac_int_alu", self.frac_int_alu),
            ("frac_int_mul", self.frac_int_mul),
            ("frac_fp_alu", self.frac_fp_alu),
            ("frac_fp_mul", self.frac_fp_mul),
            ("frac_load", self.frac_load),
            ("frac_store", self.frac_store),
            ("frac_branch", self.frac_branch),
            ("branch_entropy", self.branch_entropy),
            ("indirect_branch_frac", self.indirect_branch_frac),
            ("spatial_locality", self.spatial_locality),
            ("streaming", self.streaming),
        ];
        for (name, v) in fractions {
            if !(0.0..=1.0).contains(&v) {
                return Err(ProfileError::new(format!(
                    "{name} = {v} of {:?} out of [0, 1]",
                    self.name
                )));
            }
        }
        let positives = [
            ("call_depth", self.call_depth),
            ("data_ws_l1_kb", self.data_ws_l1_kb),
            ("data_ws_l2_kb", self.data_ws_l2_kb),
            ("code_footprint_kb", self.code_footprint_kb),
            ("ilp", self.ilp),
            ("mlp", self.mlp),
        ];
        for (name, v) in positives {
            if v <= 0.0 || !v.is_finite() {
                return Err(ProfileError::new(format!(
                    "{name} = {v} of {:?} must be positive and finite",
                    self.name
                )));
            }
        }
        Ok(())
    }
}

/// Error returned when a workload profile violates its invariants.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileError {
    message: String,
}

impl ProfileError {
    fn new(message: String) -> ProfileError {
        ProfileError { message }
    }
}

impl std::fmt::Display for ProfileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid workload profile: {}", self.message)
    }
}

impl std::error::Error for ProfileError {}

/// Non-consuming builder for [`WorkloadProfile`] with sane defaults
/// (a balanced integer workload).
///
/// # Example
///
/// ```
/// use metadse_sim::WorkloadProfileBuilder;
///
/// let profile = WorkloadProfileBuilder::new("pointer_chaser")
///     .mix(0.30, 0.02, 0.0, 0.0, 0.33, 0.15, 0.20)
///     .branch_behavior(0.8, 0.25, 24.0)
///     .memory_behavior(192.0, 4096.0, 64.0, 0.15, 0.9)
///     .parallelism(1.6, 1.8)
///     .build()
///     .expect("valid profile");
/// assert!(profile.frac_mem() > 0.4);
/// ```
#[derive(Debug, Clone)]
pub struct WorkloadProfileBuilder {
    profile: WorkloadProfile,
}

impl WorkloadProfileBuilder {
    /// Starts from a balanced integer workload named `name`.
    pub fn new(name: impl Into<String>) -> WorkloadProfileBuilder {
        WorkloadProfileBuilder {
            profile: WorkloadProfile {
                name: name.into(),
                frac_int_alu: 0.45,
                frac_int_mul: 0.03,
                frac_fp_alu: 0.0,
                frac_fp_mul: 0.0,
                frac_load: 0.25,
                frac_store: 0.10,
                frac_branch: 0.17,
                branch_entropy: 0.4,
                indirect_branch_frac: 0.05,
                call_depth: 12.0,
                data_ws_l1_kb: 32.0,
                data_ws_l2_kb: 512.0,
                code_footprint_kb: 32.0,
                spatial_locality: 0.6,
                ilp: 2.5,
                mlp: 3.0,
                streaming: 0.2,
            },
        }
    }

    /// Sets the instruction mix
    /// `(int_alu, int_mul, fp_alu, fp_mul, load, store, branch)`.
    #[allow(clippy::too_many_arguments)] // mirrors the seven-way instruction mix
    pub fn mix(
        &mut self,
        int_alu: Elem,
        int_mul: Elem,
        fp_alu: Elem,
        fp_mul: Elem,
        load: Elem,
        store: Elem,
        branch: Elem,
    ) -> &mut Self {
        self.profile.frac_int_alu = int_alu;
        self.profile.frac_int_mul = int_mul;
        self.profile.frac_fp_alu = fp_alu;
        self.profile.frac_fp_mul = fp_mul;
        self.profile.frac_load = load;
        self.profile.frac_store = store;
        self.profile.frac_branch = branch;
        self
    }

    /// Sets `(branch_entropy, indirect_fraction, call_depth)`.
    pub fn branch_behavior(
        &mut self,
        entropy: Elem,
        indirect: Elem,
        call_depth: Elem,
    ) -> &mut Self {
        self.profile.branch_entropy = entropy;
        self.profile.indirect_branch_frac = indirect;
        self.profile.call_depth = call_depth;
        self
    }

    /// Sets `(l1_ws_kb, l2_ws_kb, code_kb, spatial_locality, streaming)`.
    pub fn memory_behavior(
        &mut self,
        l1_ws_kb: Elem,
        l2_ws_kb: Elem,
        code_kb: Elem,
        spatial_locality: Elem,
        streaming: Elem,
    ) -> &mut Self {
        self.profile.data_ws_l1_kb = l1_ws_kb;
        self.profile.data_ws_l2_kb = l2_ws_kb;
        self.profile.code_footprint_kb = code_kb;
        self.profile.spatial_locality = spatial_locality;
        self.profile.streaming = streaming;
        self
    }

    /// Sets `(ilp, mlp)`.
    pub fn parallelism(&mut self, ilp: Elem, mlp: Elem) -> &mut Self {
        self.profile.ilp = ilp;
        self.profile.mlp = mlp;
        self
    }

    /// Renames the profile (used when deriving phases).
    pub fn name(&mut self, name: impl Into<String>) -> &mut Self {
        self.profile.name = name.into();
        self
    }

    /// Validates and returns the profile.
    ///
    /// # Errors
    ///
    /// Returns [`ProfileError`] when any invariant is violated.
    pub fn build(&self) -> Result<WorkloadProfile, ProfileError> {
        self.profile.validate()?;
        Ok(self.profile.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_builder_is_valid() {
        let p = WorkloadProfileBuilder::new("w").build().unwrap();
        assert_eq!(p.name, "w");
        assert!((p.frac_mem() - 0.35).abs() < 1e-12);
    }

    #[test]
    fn mix_must_sum_to_one() {
        let err = WorkloadProfileBuilder::new("bad")
            .mix(0.5, 0.0, 0.0, 0.0, 0.1, 0.1, 0.1)
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("sums to"));
    }

    #[test]
    fn out_of_range_fraction_rejected() {
        let err = WorkloadProfileBuilder::new("bad")
            .branch_behavior(1.5, 0.0, 8.0)
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("branch_entropy"));
    }

    #[test]
    fn nonpositive_working_set_rejected() {
        let err = WorkloadProfileBuilder::new("bad")
            .memory_behavior(0.0, 100.0, 10.0, 0.5, 0.1)
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("data_ws_l1_kb"));
    }

    #[test]
    fn fp_share_reflects_mix() {
        let int = WorkloadProfileBuilder::new("int").build().unwrap();
        assert_eq!(int.fp_share(), 0.0);
        let fp = WorkloadProfileBuilder::new("fp")
            .mix(0.10, 0.02, 0.30, 0.18, 0.20, 0.10, 0.10)
            .build()
            .unwrap();
        assert!(fp.fp_share() > 0.7);
    }
}
