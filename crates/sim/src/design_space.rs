//! The out-of-order CPU design space of MetaDSE (paper Table I).
//!
//! Every parameter is a discrete candidate list; a design point is a vector
//! of candidate indices. The order of [`ParamId`] variants fixes both the
//! index layout and the token order fed to the transformer predictor.

use rand::Rng;

use crate::Elem;

/// Identifier of one of the 21 microarchitectural parameters (Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(usize)]
pub enum ParamId {
    /// CPU core frequency in GHz.
    CoreFrequency,
    /// Fetch/decode/rename/dispatch/issue/writeback/commit width.
    PipelineWidth,
    /// Fetch buffer size in bytes.
    FetchBuffer,
    /// Fetch queue size in micro-ops.
    FetchQueue,
    /// Branch predictor type (0 = BiMode, 1 = Tournament).
    BranchPredictor,
    /// Return address stack entries.
    RasSize,
    /// Branch target buffer entries.
    BtbSize,
    /// Reorder buffer entries.
    RobSize,
    /// Physical integer registers.
    IntRegfile,
    /// Physical floating-point registers.
    FpRegfile,
    /// Instruction queue entries.
    InstQueue,
    /// Load/store queue entries.
    LoadStoreQueue,
    /// Integer ALU count.
    IntAlu,
    /// Integer multiplier/divider count.
    IntMultDiv,
    /// Floating-point ALU count.
    FpAlu,
    /// Floating-point multiplier/divider count.
    FpMultDiv,
    /// Cache line size in bytes.
    Cacheline,
    /// L1 cache size in KB (instruction and data).
    L1CacheSize,
    /// L1 cache associativity.
    L1CacheAssoc,
    /// L2 cache size in KB.
    L2CacheSize,
    /// L2 cache associativity.
    L2CacheAssoc,
}

impl ParamId {
    /// All parameters in token order.
    pub const ALL: [ParamId; 21] = [
        ParamId::CoreFrequency,
        ParamId::PipelineWidth,
        ParamId::FetchBuffer,
        ParamId::FetchQueue,
        ParamId::BranchPredictor,
        ParamId::RasSize,
        ParamId::BtbSize,
        ParamId::RobSize,
        ParamId::IntRegfile,
        ParamId::FpRegfile,
        ParamId::InstQueue,
        ParamId::LoadStoreQueue,
        ParamId::IntAlu,
        ParamId::IntMultDiv,
        ParamId::FpAlu,
        ParamId::FpMultDiv,
        ParamId::Cacheline,
        ParamId::L1CacheSize,
        ParamId::L1CacheAssoc,
        ParamId::L2CacheSize,
        ParamId::L2CacheAssoc,
    ];

    /// Position of this parameter in the token/index layout.
    pub fn index(self) -> usize {
        self as usize
    }

    /// Human-readable parameter name.
    pub fn name(self) -> &'static str {
        match self {
            ParamId::CoreFrequency => "core_frequency_ghz",
            ParamId::PipelineWidth => "pipeline_width",
            ParamId::FetchBuffer => "fetch_buffer_bytes",
            ParamId::FetchQueue => "fetch_queue_uops",
            ParamId::BranchPredictor => "branch_predictor",
            ParamId::RasSize => "ras_size",
            ParamId::BtbSize => "btb_size",
            ParamId::RobSize => "rob_size",
            ParamId::IntRegfile => "int_regfile",
            ParamId::FpRegfile => "fp_regfile",
            ParamId::InstQueue => "inst_queue",
            ParamId::LoadStoreQueue => "load_store_queue",
            ParamId::IntAlu => "int_alu",
            ParamId::IntMultDiv => "int_mult_div",
            ParamId::FpAlu => "fp_alu",
            ParamId::FpMultDiv => "fp_mult_div",
            ParamId::Cacheline => "cacheline_bytes",
            ParamId::L1CacheSize => "l1_cache_kb",
            ParamId::L1CacheAssoc => "l1_cache_assoc",
            ParamId::L2CacheSize => "l2_cache_kb",
            ParamId::L2CacheAssoc => "l2_cache_assoc",
        }
    }
}

/// Branch predictor organization (gem5's BiModeBP / TournamentBP).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BranchPredictorKind {
    /// Bi-modal predictor with choice PHT.
    #[default]
    BiMode,
    /// Tournament of local and global history predictors.
    Tournament,
}

/// The specification of a single discrete parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct ParamSpec {
    id: ParamId,
    candidates: Vec<Elem>,
}

impl ParamSpec {
    /// The parameter this spec describes.
    pub fn id(&self) -> ParamId {
        self.id
    }

    /// Candidate values in ascending order.
    pub fn candidates(&self) -> &[Elem] {
        &self.candidates
    }

    /// Number of candidates.
    pub fn cardinality(&self) -> usize {
        self.candidates.len()
    }

    /// Candidate value at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn value(&self, index: usize) -> Elem {
        self.candidates[index]
    }

    /// Normalizes a candidate index to `[0, 1]` by value position.
    pub fn normalize(&self, index: usize) -> Elem {
        let lo = self.candidates[0];
        let hi = *self.candidates.last().expect("non-empty candidates");
        if hi == lo {
            return 0.0;
        }
        (self.candidates[index] - lo) / (hi - lo)
    }
}

fn range_spec(id: ParamId, start: i64, end: i64, stride: i64) -> ParamSpec {
    let mut candidates = Vec::new();
    let mut v = start;
    while v <= end {
        candidates.push(v as Elem);
        v += stride;
    }
    ParamSpec { id, candidates }
}

fn list_spec(id: ParamId, values: &[Elem]) -> ParamSpec {
    ParamSpec {
        id,
        candidates: values.to_vec(),
    }
}

/// A point in the design space: one candidate index per parameter.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ConfigPoint {
    indices: Vec<usize>,
}

impl ConfigPoint {
    /// Wraps raw candidate indices.
    pub fn new(indices: Vec<usize>) -> ConfigPoint {
        ConfigPoint { indices }
    }

    /// Candidate index for `param`.
    pub fn index_of(&self, param: ParamId) -> usize {
        self.indices[param.index()]
    }

    /// All candidate indices in [`ParamId::ALL`] order.
    pub fn indices(&self) -> &[usize] {
        &self.indices
    }
}

/// The full 21-parameter design space of Table I.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignSpace {
    specs: Vec<ParamSpec>,
}

impl Default for DesignSpace {
    fn default() -> Self {
        Self::new()
    }
}

impl DesignSpace {
    /// Builds the MetaDSE design space exactly as in paper Table I.
    pub fn new() -> DesignSpace {
        let specs = vec![
            list_spec(ParamId::CoreFrequency, &[1.0, 1.5, 2.0, 2.5, 3.0]),
            range_spec(ParamId::PipelineWidth, 1, 12, 1),
            list_spec(ParamId::FetchBuffer, &[16.0, 32.0, 64.0]),
            range_spec(ParamId::FetchQueue, 8, 48, 4),
            list_spec(ParamId::BranchPredictor, &[0.0, 1.0]),
            range_spec(ParamId::RasSize, 16, 40, 2),
            list_spec(ParamId::BtbSize, &[1024.0, 2048.0, 4096.0]),
            range_spec(ParamId::RobSize, 32, 256, 16),
            range_spec(ParamId::IntRegfile, 64, 256, 8),
            range_spec(ParamId::FpRegfile, 64, 256, 8),
            range_spec(ParamId::InstQueue, 16, 80, 8),
            range_spec(ParamId::LoadStoreQueue, 20, 48, 4),
            range_spec(ParamId::IntAlu, 3, 8, 1),
            range_spec(ParamId::IntMultDiv, 1, 4, 1),
            range_spec(ParamId::FpAlu, 1, 4, 1),
            range_spec(ParamId::FpMultDiv, 1, 4, 1),
            list_spec(ParamId::Cacheline, &[32.0, 64.0]),
            list_spec(ParamId::L1CacheSize, &[16.0, 32.0, 64.0]),
            list_spec(ParamId::L1CacheAssoc, &[2.0, 4.0]),
            list_spec(ParamId::L2CacheSize, &[128.0, 256.0]),
            list_spec(ParamId::L2CacheAssoc, &[2.0, 4.0]),
        ];
        debug_assert_eq!(specs.len(), ParamId::ALL.len());
        DesignSpace { specs }
    }

    /// Parameter specifications in token order.
    pub fn specs(&self) -> &[ParamSpec] {
        &self.specs
    }

    /// Specification of one parameter.
    pub fn spec(&self, param: ParamId) -> &ParamSpec {
        &self.specs[param.index()]
    }

    /// Number of parameters (tokens).
    pub fn num_params(&self) -> usize {
        self.specs.len()
    }

    /// Total number of distinct configurations.
    pub fn cardinality(&self) -> u128 {
        self.specs.iter().map(|s| s.cardinality() as u128).product()
    }

    /// Uniform random design point.
    pub fn random_point<R: Rng + ?Sized>(&self, rng: &mut R) -> ConfigPoint {
        let indices = self
            .specs
            .iter()
            .map(|s| rng.gen_range(0..s.cardinality()))
            .collect();
        ConfigPoint::new(indices)
    }

    /// Latin-hypercube-style sample: for each parameter, the `n` draws are
    /// stratified across its candidate range before shuffling, giving far
    /// better coverage than i.i.d. sampling at small `n`.
    pub fn sample_lhs<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> Vec<ConfigPoint> {
        let mut columns: Vec<Vec<usize>> = Vec::with_capacity(self.specs.len());
        for spec in &self.specs {
            let card = spec.cardinality();
            let mut column: Vec<usize> = (0..n)
                .map(|i| {
                    // Stratum i covers candidates [i*card/n, (i+1)*card/n).
                    let lo = i * card / n;
                    let hi = (((i + 1) * card).div_ceil(n)).min(card);
                    rng.gen_range(lo..hi.max(lo + 1)).min(card - 1)
                })
                .collect();
            // Shuffle the column so strata are uncorrelated across params.
            for i in (1..column.len()).rev() {
                column.swap(i, rng.gen_range(0..=i));
            }
            columns.push(column);
        }
        (0..n)
            .map(|row| ConfigPoint::new(columns.iter().map(|c| c[row]).collect()))
            .collect()
    }

    /// All design points differing from `point` by one candidate step in one
    /// parameter (used by local search in the explorer).
    pub fn neighbors(&self, point: &ConfigPoint) -> Vec<ConfigPoint> {
        let mut out = Vec::new();
        for (p, spec) in self.specs.iter().enumerate() {
            let i = point.indices()[p];
            if i > 0 {
                let mut idx = point.indices().to_vec();
                idx[p] = i - 1;
                out.push(ConfigPoint::new(idx));
            }
            if i + 1 < spec.cardinality() {
                let mut idx = point.indices().to_vec();
                idx[p] = i + 1;
                out.push(ConfigPoint::new(idx));
            }
        }
        out
    }

    /// Encodes a point as one normalized `[0, 1]` feature per parameter, in
    /// token order — the input representation of every surrogate model in
    /// this reproduction.
    ///
    /// # Panics
    ///
    /// Panics if the point's arity differs from the space or an index is
    /// out of range.
    pub fn encode(&self, point: &ConfigPoint) -> Vec<Elem> {
        assert_eq!(point.indices().len(), self.specs.len(), "arity mismatch");
        self.specs
            .iter()
            .zip(point.indices())
            .map(|(spec, &i)| {
                assert!(i < spec.cardinality(), "candidate index out of range");
                spec.normalize(i)
            })
            .collect()
    }

    /// Materializes the typed configuration at `point`.
    ///
    /// # Panics
    ///
    /// Panics if the point is malformed.
    pub fn config(&self, point: &ConfigPoint) -> CpuConfig {
        let v = |p: ParamId| self.spec(p).value(point.index_of(p));
        CpuConfig {
            core_freq_ghz: v(ParamId::CoreFrequency),
            pipeline_width: v(ParamId::PipelineWidth) as u32,
            fetch_buffer_bytes: v(ParamId::FetchBuffer) as u32,
            fetch_queue_uops: v(ParamId::FetchQueue) as u32,
            branch_predictor: if point.index_of(ParamId::BranchPredictor) == 0 {
                BranchPredictorKind::BiMode
            } else {
                BranchPredictorKind::Tournament
            },
            ras_size: v(ParamId::RasSize) as u32,
            btb_size: v(ParamId::BtbSize) as u32,
            rob_size: v(ParamId::RobSize) as u32,
            int_regfile: v(ParamId::IntRegfile) as u32,
            fp_regfile: v(ParamId::FpRegfile) as u32,
            inst_queue: v(ParamId::InstQueue) as u32,
            load_store_queue: v(ParamId::LoadStoreQueue) as u32,
            int_alu: v(ParamId::IntAlu) as u32,
            int_mult_div: v(ParamId::IntMultDiv) as u32,
            fp_alu: v(ParamId::FpAlu) as u32,
            fp_mult_div: v(ParamId::FpMultDiv) as u32,
            cacheline_bytes: v(ParamId::Cacheline) as u32,
            l1_cache_kb: v(ParamId::L1CacheSize) as u32,
            l1_assoc: v(ParamId::L1CacheAssoc) as u32,
            l2_cache_kb: v(ParamId::L2CacheSize) as u32,
            l2_assoc: v(ParamId::L2CacheAssoc) as u32,
        }
    }
}

/// A fully materialized out-of-order CPU configuration.
///
/// Plain data in the C-struct spirit; fields are public by design.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuConfig {
    /// Core frequency in GHz.
    pub core_freq_ghz: Elem,
    /// Uniform pipeline width (fetch through commit).
    pub pipeline_width: u32,
    /// Fetch buffer size in bytes.
    pub fetch_buffer_bytes: u32,
    /// Fetch queue capacity in micro-ops.
    pub fetch_queue_uops: u32,
    /// Branch predictor organization.
    pub branch_predictor: BranchPredictorKind,
    /// Return address stack entries.
    pub ras_size: u32,
    /// Branch target buffer entries.
    pub btb_size: u32,
    /// Reorder buffer entries.
    pub rob_size: u32,
    /// Physical integer register file size.
    pub int_regfile: u32,
    /// Physical floating-point register file size.
    pub fp_regfile: u32,
    /// Instruction queue entries.
    pub inst_queue: u32,
    /// Load/store queue entries (each).
    pub load_store_queue: u32,
    /// Integer ALUs.
    pub int_alu: u32,
    /// Integer multiplier/dividers.
    pub int_mult_div: u32,
    /// Floating-point ALUs.
    pub fp_alu: u32,
    /// Floating-point multiplier/dividers.
    pub fp_mult_div: u32,
    /// Cache line size in bytes.
    pub cacheline_bytes: u32,
    /// L1 instruction/data cache size in KB.
    pub l1_cache_kb: u32,
    /// L1 associativity.
    pub l1_assoc: u32,
    /// Unified L2 cache size in KB.
    pub l2_cache_kb: u32,
    /// L2 associativity.
    pub l2_assoc: u32,
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn table_i_cardinalities() {
        let ds = DesignSpace::new();
        let card = |p: ParamId| ds.spec(p).cardinality();
        assert_eq!(card(ParamId::CoreFrequency), 5);
        assert_eq!(card(ParamId::PipelineWidth), 12);
        assert_eq!(card(ParamId::FetchBuffer), 3);
        assert_eq!(card(ParamId::FetchQueue), 11); // 8..=48 step 4
        assert_eq!(card(ParamId::BranchPredictor), 2);
        assert_eq!(card(ParamId::RasSize), 13); // 16..=40 step 2
        assert_eq!(card(ParamId::BtbSize), 3);
        assert_eq!(card(ParamId::RobSize), 15); // 32..=256 step 16
        assert_eq!(card(ParamId::IntRegfile), 25); // 64..=256 step 8
        assert_eq!(card(ParamId::FpRegfile), 25);
        assert_eq!(card(ParamId::InstQueue), 9); // 16..=80 step 8
        assert_eq!(card(ParamId::LoadStoreQueue), 8); // 20..=48 step 4
        assert_eq!(card(ParamId::IntAlu), 6);
        assert_eq!(card(ParamId::IntMultDiv), 4);
        assert_eq!(card(ParamId::FpAlu), 4);
        assert_eq!(card(ParamId::FpMultDiv), 4);
        assert_eq!(card(ParamId::Cacheline), 2);
        assert_eq!(card(ParamId::L1CacheSize), 3);
        assert_eq!(card(ParamId::L1CacheAssoc), 2);
        assert_eq!(card(ParamId::L2CacheSize), 2);
        assert_eq!(card(ParamId::L2CacheAssoc), 2);
        assert_eq!(ds.num_params(), 21);
    }

    #[test]
    fn cardinality_is_product_of_specs() {
        let ds = DesignSpace::new();
        let expected: u128 = ds.specs().iter().map(|s| s.cardinality() as u128).product();
        assert_eq!(ds.cardinality(), expected);
        assert!(ds.cardinality() > 1_000_000_000, "space must be huge");
    }

    #[test]
    fn random_points_are_in_range() {
        let ds = DesignSpace::new();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let p = ds.random_point(&mut rng);
            for (spec, &i) in ds.specs().iter().zip(p.indices()) {
                assert!(i < spec.cardinality());
            }
        }
    }

    #[test]
    fn encode_is_normalized_and_ordered() {
        let ds = DesignSpace::new();
        let lo = ConfigPoint::new(vec![0; 21]);
        let hi = ConfigPoint::new(ds.specs().iter().map(|s| s.cardinality() - 1).collect());
        assert_eq!(ds.encode(&lo), vec![0.0; 21]);
        assert_eq!(ds.encode(&hi), vec![1.0; 21]);
    }

    #[test]
    fn config_materializes_expected_values() {
        let ds = DesignSpace::new();
        let p = ConfigPoint::new(vec![0; 21]);
        let c = ds.config(&p);
        assert_eq!(c.core_freq_ghz, 1.0);
        assert_eq!(c.pipeline_width, 1);
        assert_eq!(c.branch_predictor, BranchPredictorKind::BiMode);
        assert_eq!(c.rob_size, 32);
        assert_eq!(c.l2_cache_kb, 128);
        let hi = ConfigPoint::new(ds.specs().iter().map(|s| s.cardinality() - 1).collect());
        let c = ds.config(&hi);
        assert_eq!(c.core_freq_ghz, 3.0);
        assert_eq!(c.pipeline_width, 12);
        assert_eq!(c.branch_predictor, BranchPredictorKind::Tournament);
        assert_eq!(c.rob_size, 256);
        assert_eq!(c.int_regfile, 256);
        assert_eq!(c.fetch_queue_uops, 48);
    }

    #[test]
    fn lhs_covers_the_range() {
        let ds = DesignSpace::new();
        let mut rng = StdRng::seed_from_u64(2);
        let points = ds.sample_lhs(25, &mut rng);
        assert_eq!(points.len(), 25);
        // The int regfile (25 candidates) should be a permutation-like
        // spread: with 25 strata over 25 candidates every index is hit.
        let mut seen: Vec<usize> = points
            .iter()
            .map(|p| p.index_of(ParamId::IntRegfile))
            .collect();
        seen.sort_unstable();
        seen.dedup();
        assert!(
            seen.len() >= 20,
            "LHS should cover most strata, got {}",
            seen.len()
        );
    }

    #[test]
    fn neighbors_differ_in_exactly_one_param() {
        let ds = DesignSpace::new();
        let mut rng = StdRng::seed_from_u64(3);
        let p = ds.random_point(&mut rng);
        for n in ds.neighbors(&p) {
            let diff: usize = n
                .indices()
                .iter()
                .zip(p.indices())
                .filter(|(a, b)| a != b)
                .count();
            assert_eq!(diff, 1);
        }
    }

    #[test]
    fn interior_point_has_two_neighbors_per_param() {
        let ds = DesignSpace::new();
        let p = ConfigPoint::new(ds.specs().iter().map(|s| s.cardinality() / 2).collect());
        let expected: usize = ds
            .specs()
            .iter()
            .map(|s| {
                let i = s.cardinality() / 2;
                usize::from(i > 0) + usize::from(i + 1 < s.cardinality())
            })
            .sum();
        assert_eq!(ds.neighbors(&p).len(), expected);
    }
}
