//! Frontend (fetch) supply model.

use crate::branch::BranchModel;
use crate::cache::CacheModel;
use crate::design_space::CpuConfig;
use crate::workload::WorkloadProfile;
use crate::Elem;

/// Average instruction size in bytes (RISC-style ISA as in the gem5 setup).
const INST_BYTES: Elem = 4.0;

/// Fraction of branches that are taken.
const TAKEN_FRAC: Elem = 0.55;

/// Sustainable instructions fetched per cycle, accounting for the fetch
/// buffer width, fetch-queue smoothing, and taken-branch fragmentation.
pub fn fetch_supply(
    config: &CpuConfig,
    workload: &WorkloadProfile,
    branch: &BranchModel,
    cache: &CacheModel,
) -> Elem {
    let width = config.pipeline_width as Elem;

    // Raw fetch bandwidth: bytes per cycle from the fetch buffer.
    let raw = config.fetch_buffer_bytes as Elem / INST_BYTES;

    // A shallow fetch queue cannot decouple fetch from decode stalls; its
    // smoothing benefit saturates once it covers a few cycles of the
    // machine width.
    let fq = config.fetch_queue_uops as Elem;
    let smoothing = fq / (fq + 1.5 * width);

    // Taken branches fragment fetch lines: everything after the branch in
    // the fetch block is discarded, and BTB misses add a bubble.
    let taken_per_inst = workload.frac_branch * TAKEN_FRAC;
    let fragmentation = 1.0 / (1.0 + taken_per_inst * (raw / 2.0) * 0.25);
    let btb_bubbles = 1.0 / (1.0 + taken_per_inst * branch.btb_miss_rate * 2.0);

    // Instruction-cache misses starve fetch directly.
    let icache_stall = 1.0 / (1.0 + cache.l1i_miss_rate * cache.l2_latency);

    (raw * smoothing * fragmentation * btb_bubbles * icache_stall).min(width)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design_space::{ConfigPoint, DesignSpace};
    use crate::workload::WorkloadProfileBuilder;
    use crate::{branch, cache};

    fn parts(
        mutate: impl FnOnce(&mut CpuConfig),
    ) -> (CpuConfig, WorkloadProfile, BranchModel, CacheModel) {
        let ds = DesignSpace::new();
        let mid = ConfigPoint::new(ds.specs().iter().map(|s| s.cardinality() / 2).collect());
        let mut c = ds.config(&mid);
        mutate(&mut c);
        let w = WorkloadProfileBuilder::new("w").build().unwrap();
        let b = branch::evaluate(&c, &w);
        let k = cache::evaluate(&c, &w);
        (c, w, b, k)
    }

    #[test]
    fn supply_never_exceeds_width() {
        let (c, w, b, k) = parts(|c| {
            c.pipeline_width = 2;
            c.fetch_buffer_bytes = 64;
            c.fetch_queue_uops = 48;
        });
        assert!(fetch_supply(&c, &w, &b, &k) <= 2.0);
    }

    #[test]
    fn bigger_fetch_buffer_increases_supply() {
        let (c16, w, b, k) = parts(|c| c.fetch_buffer_bytes = 16);
        let (c64, _, _, _) = parts(|c| c.fetch_buffer_bytes = 64);
        let s16 = fetch_supply(&c16, &w, &b, &k);
        let s64 = fetch_supply(&c64, &w, &b, &k);
        assert!(s64 > s16, "{s64} !> {s16}");
    }

    #[test]
    fn deeper_fetch_queue_increases_supply() {
        let (c8, w, b, k) = parts(|c| c.fetch_queue_uops = 8);
        let (c48, _, _, _) = parts(|c| c.fetch_queue_uops = 48);
        let s8 = fetch_supply(&c8, &w, &b, &k);
        let s48 = fetch_supply(&c48, &w, &b, &k);
        assert!(s48 > s8, "{s48} !> {s8}");
    }

    #[test]
    fn supply_is_positive_everywhere() {
        use rand::Rng;
        let ds = DesignSpace::new();
        let mut rng = rand::rngs::mock::StepRng::new(11, 6364136223846793005);
        for _ in 0..100 {
            let c = ds.config(&ds.random_point(&mut rng));
            let w = WorkloadProfileBuilder::new("w")
                .branch_behavior(rng.gen_range(0.0..1.0), rng.gen_range(0.0..0.4), 16.0)
                .build()
                .unwrap();
            let b = branch::evaluate(&c, &w);
            let k = cache::evaluate(&c, &w);
            let s = fetch_supply(&c, &w, &b, &k);
            assert!(s > 0.0 && s <= c.pipeline_width as f64);
        }
    }
}
