//! # metadse-sim
//!
//! Analytical out-of-order CPU performance and power model over the
//! 21-parameter design space of the MetaDSE paper (Table I). This crate is
//! the reproduction's substitute for **gem5 + McPAT**: given a
//! [`CpuConfig`] (a design point) and a [`WorkloadProfile`] (behavioural
//! statistics standing in for a SPEC CPU 2017 binary), it returns IPC and
//! power labels in microseconds instead of hours.
//!
//! The performance model follows the mechanistic *interval analysis*
//! tradition: steady-state issue between miss events, with explicit branch
//! and memory penalty terms ([`pipeline`]); the power model follows McPAT's
//! per-structure area/energy decomposition with DVFS voltage scaling
//! ([`power`]). Model components are individually exposed and tested for
//! the architectural monotonicities one expects (more cache → fewer misses,
//! wider pipeline → no IPC loss, higher frequency → superlinear power).
//!
//! # Example
//!
//! ```
//! use metadse_sim::{DesignSpace, Simulator, WorkloadProfileBuilder};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let space = DesignSpace::new();
//! let simulator = Simulator::new();
//! let workload = WorkloadProfileBuilder::new("kernel").build()?;
//!
//! let mut rng = StdRng::seed_from_u64(42);
//! let point = space.random_point(&mut rng);
//! let out = simulator.simulate_point(&space, &point, &workload);
//! println!("IPC = {:.3}, power = {:.2} W", out.ipc, out.power_w);
//! # Ok::<(), metadse_sim::ProfileError>(())
//! ```

pub mod backend;
pub mod branch;
pub mod cache;
pub mod design_space;
pub mod frontend;
pub mod pipeline;
pub mod power;
pub mod simulator;
pub mod workload;

pub use design_space::{
    BranchPredictorKind, ConfigPoint, CpuConfig, DesignSpace, ParamId, ParamSpec,
};
pub use simulator::{SimOutput, Simulator};
pub use workload::{ProfileError, WorkloadProfile, WorkloadProfileBuilder};

/// Scalar type used by the simulator (matches `metadse_nn::Elem`).
pub type Elem = f64;
