//! McPAT-style area, energy, and power model.
//!
//! Follows McPAT's decomposition: per-structure area estimates, dynamic
//! energy per access scaling with structure size, activity factors from the
//! instruction mix and achieved IPC, and leakage proportional to area —
//! with voltage tied to the frequency operating point.

use crate::cache::CacheModel;
use crate::design_space::CpuConfig;
use crate::workload::WorkloadProfile;
use crate::Elem;

/// Area and power breakdown for a configuration at a given activity level.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerModel {
    /// Total core area in mm² (22 nm-ish scaling, indicative only).
    pub area_mm2: Elem,
    /// Dynamic power in watts.
    pub dynamic_w: Elem,
    /// Leakage power in watts.
    pub leakage_w: Elem,
    /// Total power in watts.
    pub total_w: Elem,
    /// Supply voltage at the operating point, volts.
    pub vdd: Elem,
}

/// Supply voltage required for a target frequency (simple DVFS curve).
pub fn vdd_for_frequency(freq_ghz: Elem) -> Elem {
    0.62 + 0.115 * (freq_ghz - 1.0).max(0.0) + 0.012 * (freq_ghz - 1.0).max(0.0).powi(2)
}

/// Core area estimate in mm².
pub fn area_mm2(config: &CpuConfig) -> Elem {
    let w = config.pipeline_width as Elem;
    // SRAM-like arrays: area roughly linear in capacity, with an
    // associativity tax on the caches and a port tax that grows with width.
    let port_tax = 1.0 + 0.08 * (w - 1.0);
    let l1 = 2.0 * 0.030 * config.l1_cache_kb as Elem * (1.0 + 0.06 * config.l1_assoc as Elem);
    let l2 = 0.016 * config.l2_cache_kb as Elem * (1.0 + 0.04 * config.l2_assoc as Elem);
    let rob = 0.0045 * config.rob_size as Elem * port_tax;
    let iq = 0.0085 * config.inst_queue as Elem * port_tax; // CAM is expensive
    let lsq = 0.0095 * config.load_store_queue as Elem * port_tax;
    let rf = 0.0022 * (config.int_regfile + config.fp_regfile) as Elem * port_tax;
    let btb = 0.00045 * config.btb_size as Elem;
    let ras = 0.002 * config.ras_size as Elem;
    let fetch =
        0.004 * config.fetch_buffer_bytes as Elem / 16.0 + 0.003 * config.fetch_queue_uops as Elem;
    // Functional units.
    let fus = 0.28 * config.int_alu as Elem
        + 0.85 * config.int_mult_div as Elem
        + 1.10 * config.fp_alu as Elem
        + 1.65 * config.fp_mult_div as Elem;
    // Rename, bypass network, and control scale superlinearly with width.
    let fabric = 0.55 * w.powf(1.55);
    l1 + l2 + rob + iq + lsq + rf + btb + ras + fetch + fus + fabric
}

/// Dynamic energy per access of an SRAM array of the given capacity
/// (nanojoules; square-root capacity scaling as in CACTI/McPAT fits).
fn array_energy_nj(capacity: Elem) -> Elem {
    0.011 * capacity.sqrt()
}

/// Evaluates power at the activity level implied by `ipc`.
pub fn evaluate(
    config: &CpuConfig,
    workload: &WorkloadProfile,
    cache: &CacheModel,
    ipc: Elem,
) -> PowerModel {
    let vdd = vdd_for_frequency(config.core_freq_ghz);
    let v_sq = (vdd / 0.9) * (vdd / 0.9);
    let area = area_mm2(config);

    // --- Energy per instruction (nJ) ---
    // Frontend: I-cache read amortized over the fetch block, BTB/predictor
    // lookup per instruction.
    let e_icache = array_energy_nj(config.l1_cache_kb as Elem * 1024.0)
        / (config.fetch_buffer_bytes as Elem / 4.0);
    let e_btb = 0.3 * array_energy_nj(config.btb_size as Elem * 8.0);
    // Core: rename/ROB/IQ writes for every instruction; wakeup/select grows
    // with queue size and width.
    let e_rob = array_energy_nj(config.rob_size as Elem * 16.0);
    let e_iq = 1.6 * array_energy_nj(config.inst_queue as Elem * 12.0);
    let e_rf = array_energy_nj((config.int_regfile + config.fp_regfile) as Elem * 8.0)
        * (1.0 + 0.05 * config.pipeline_width as Elem);
    // Memory instructions: D-cache + LSQ search; misses add L2/DRAM energy.
    let e_dcache = array_energy_nj(config.l1_cache_kb as Elem * 1024.0)
        * (1.0 + 0.1 * config.l1_assoc as Elem);
    let e_lsq = 1.3 * array_energy_nj(config.load_store_queue as Elem * 16.0);
    let e_l2 = array_energy_nj(config.l2_cache_kb as Elem * 1024.0)
        * (1.0 + 0.05 * config.l2_assoc as Elem);
    let e_dram = 18.0; // off-chip access, fixed per event
                       // Execution: per-class op energies.
    let e_ops = workload.frac_int_alu * 0.12
        + workload.frac_int_mul * 0.65
        + workload.frac_fp_alu * 0.55
        + workload.frac_fp_mul * 1.05;

    let per_inst = e_icache
        + e_btb * (workload.frac_branch + 0.1)
        + e_rob
        + e_iq
        + e_rf
        + e_ops
        + workload.frac_mem() * (e_dcache + e_lsq)
        + workload.frac_mem() * cache.l1d_miss_rate * e_l2
        + workload.frac_mem() * cache.l1d_miss_rate * cache.l2_miss_rate * e_dram;

    // nJ/inst × inst/cycle × Gcycle/s = W, scaled by V².
    let dynamic_w = per_inst * ipc * config.core_freq_ghz * v_sq;

    // Idle structures still clock: charge a width-dependent floor.
    let clock_w = 0.06 * config.pipeline_width as Elem * config.core_freq_ghz * v_sq;

    // Leakage: proportional to area and supply voltage.
    let leakage_w = 0.052 * area * (vdd / 0.9);

    let total_w = dynamic_w + clock_w + leakage_w;
    PowerModel {
        area_mm2: area,
        dynamic_w: dynamic_w + clock_w,
        leakage_w,
        total_w,
        vdd,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache;
    use crate::design_space::{ConfigPoint, DesignSpace};
    use crate::workload::WorkloadProfileBuilder;

    fn mid_config() -> CpuConfig {
        let ds = DesignSpace::new();
        let mid = ConfigPoint::new(ds.specs().iter().map(|s| s.cardinality() / 2).collect());
        ds.config(&mid)
    }

    fn power_of(c: &CpuConfig, ipc: f64) -> PowerModel {
        let w = WorkloadProfileBuilder::new("w").build().unwrap();
        let k = cache::evaluate(c, &w);
        evaluate(c, &w, &k, ipc)
    }

    #[test]
    fn vdd_increases_with_frequency() {
        assert!(vdd_for_frequency(3.0) > vdd_for_frequency(1.0));
        assert!(vdd_for_frequency(1.0) >= 0.6);
        assert!(vdd_for_frequency(3.0) < 1.1);
    }

    #[test]
    fn power_grows_superlinearly_with_frequency() {
        let mut c = mid_config();
        c.core_freq_ghz = 1.0;
        let p1 = power_of(&c, 1.5).total_w;
        c.core_freq_ghz = 3.0;
        let p3 = power_of(&c, 1.5).total_w;
        assert!(
            p3 > 3.0 * p1,
            "p3 {p3} should exceed 3x p1 {p1} (V² scaling)"
        );
    }

    #[test]
    fn power_grows_with_activity() {
        let c = mid_config();
        assert!(power_of(&c, 3.0).total_w > power_of(&c, 0.5).total_w);
    }

    #[test]
    fn area_grows_with_every_major_structure() {
        let mut base = mid_config();
        base.rob_size = 64;
        base.l1_cache_kb = 16;
        base.l2_cache_kb = 128;
        base.pipeline_width = 4;
        base.fp_mult_div = 1;
        base.int_regfile = 96;
        let a0 = area_mm2(&base);
        let grow = |f: &dyn Fn(&mut CpuConfig)| {
            let mut c = base;
            f(&mut c);
            area_mm2(&c)
        };
        assert!(grow(&|c| c.rob_size = 256) > a0);
        assert!(grow(&|c| c.l1_cache_kb = 64) > a0);
        assert!(grow(&|c| c.l2_cache_kb = 256) > a0);
        assert!(grow(&|c| c.pipeline_width = 12) > a0);
        assert!(grow(&|c| c.fp_mult_div = 4) > a0);
        assert!(grow(&|c| c.int_regfile = 256) > a0);
    }

    #[test]
    fn leakage_tracks_area() {
        let mut small = mid_config();
        small.l2_cache_kb = 128;
        small.rob_size = 32;
        let mut big = small;
        big.l2_cache_kb = 256;
        big.rob_size = 256;
        assert!(power_of(&big, 1.0).leakage_w > power_of(&small, 1.0).leakage_w);
    }

    #[test]
    fn power_in_plausible_watt_range() {
        use rand::Rng;
        let ds = DesignSpace::new();
        let mut rng = rand::rngs::mock::StepRng::new(23, 0x2545F4914F6CDD1D);
        for _ in 0..200 {
            let c = ds.config(&ds.random_point(&mut rng));
            let ipc = rng.gen_range(0.2..4.0);
            let p = power_of(&c, ipc);
            assert!(
                p.total_w > 0.3 && p.total_w < 120.0,
                "power {} out of plausible range",
                p.total_w
            );
            assert!(p.area_mm2 > 1.0 && p.area_mm2 < 120.0);
        }
    }
}
