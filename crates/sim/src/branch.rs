//! Branch prediction model.
//!
//! Estimates per-branch misprediction probability from the predictor
//! organization (type, BTB, RAS) and the workload's control-flow behaviour,
//! plus the flush penalty charged per misprediction.

use crate::design_space::{BranchPredictorKind, CpuConfig};
use crate::workload::WorkloadProfile;
use crate::Elem;

/// Breakdown of the branch behaviour predicted for a (config, workload)
/// pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BranchModel {
    /// Probability a branch direction/target is mispredicted.
    pub mispredict_rate: Elem,
    /// Fraction of taken branches whose target missed in the BTB
    /// (causing a fetch bubble even when the direction was right).
    pub btb_miss_rate: Elem,
    /// Pipeline flush penalty in cycles per misprediction.
    pub penalty_cycles: Elem,
}

/// Fraction of branches that are calls/returns (RAS traffic).
const CALL_RETURN_FRAC: Elem = 0.12;

/// Evaluates the branch model.
pub fn evaluate(config: &CpuConfig, workload: &WorkloadProfile) -> BranchModel {
    let e = workload.branch_entropy;

    // Conditional-direction component. The tournament predictor's local +
    // global histories handle moderately irregular branches much better
    // than the bi-modal predictor; both approach similar floors/ceilings.
    let direction = match config.branch_predictor {
        BranchPredictorKind::BiMode => 0.015 + 0.17 * e.powf(1.4),
        BranchPredictorKind::Tournament => 0.008 + 0.11 * e.powf(1.9),
    };

    // Indirect-target component: the BTB must hold the hot target set.
    // Irregular, indirect-heavy code (interpreters, virtual dispatch) wants
    // thousands of entries.
    let needed_targets = 256.0 + 7000.0 * workload.indirect_branch_frac * (0.3 + 0.7 * e);
    let btb_shortfall = (1.0 - config.btb_size as Elem / needed_targets).max(0.0);
    let btb_miss_rate = (0.6 * btb_shortfall * btb_shortfall).min(0.6);
    let indirect = workload.indirect_branch_frac * btb_miss_rate;

    // Return-address-stack overflow: deep call chains wrap the RAS and
    // corrupt return predictions.
    let overflow =
        ((workload.call_depth - config.ras_size as Elem) / workload.call_depth).clamp(0.0, 1.0);
    let returns = CALL_RETURN_FRAC * 0.5 * overflow;

    let mispredict_rate = (direction + indirect + returns).clamp(0.0, 0.5);

    // Flush penalty grows with frontend depth (wider machines have deeper
    // frontends) and with the window that must refill.
    let penalty_cycles =
        9.0 + 0.6 * config.pipeline_width as Elem + 0.015 * config.rob_size as Elem;

    BranchModel {
        mispredict_rate,
        btb_miss_rate,
        penalty_cycles,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design_space::{ConfigPoint, DesignSpace};
    use crate::workload::WorkloadProfileBuilder;

    fn base_config() -> CpuConfig {
        let ds = DesignSpace::new();
        let mid = ConfigPoint::new(ds.specs().iter().map(|s| s.cardinality() / 2).collect());
        ds.config(&mid)
    }

    #[test]
    fn tournament_beats_bimode_on_irregular_code() {
        let wl = WorkloadProfileBuilder::new("w")
            .branch_behavior(0.7, 0.05, 8.0)
            .build()
            .unwrap();
        let mut c = base_config();
        c.branch_predictor = BranchPredictorKind::BiMode;
        let bimode = evaluate(&c, &wl).mispredict_rate;
        c.branch_predictor = BranchPredictorKind::Tournament;
        let tournament = evaluate(&c, &wl).mispredict_rate;
        assert!(tournament < bimode, "{tournament} !< {bimode}");
    }

    #[test]
    fn mispredict_rate_monotone_in_entropy() {
        let c = base_config();
        let mut last = -1.0;
        for e in [0.0, 0.2, 0.4, 0.6, 0.8, 1.0] {
            let wl = WorkloadProfileBuilder::new("w")
                .branch_behavior(e, 0.05, 8.0)
                .build()
                .unwrap();
            let rate = evaluate(&c, &wl).mispredict_rate;
            assert!(rate > last, "entropy {e}: {rate} !> {last}");
            last = rate;
        }
    }

    #[test]
    fn bigger_btb_helps_indirect_heavy_workloads() {
        let wl = WorkloadProfileBuilder::new("w")
            .branch_behavior(0.6, 0.35, 8.0)
            .build()
            .unwrap();
        let mut c = base_config();
        c.btb_size = 1024;
        let small = evaluate(&c, &wl).mispredict_rate;
        c.btb_size = 4096;
        let big = evaluate(&c, &wl).mispredict_rate;
        assert!(big < small, "{big} !< {small}");
    }

    #[test]
    fn ras_overflow_only_hurts_deep_call_chains() {
        let mut c = base_config();
        c.ras_size = 16;
        let shallow = WorkloadProfileBuilder::new("s")
            .branch_behavior(0.3, 0.05, 6.0)
            .build()
            .unwrap();
        let deep = WorkloadProfileBuilder::new("d")
            .branch_behavior(0.3, 0.05, 60.0)
            .build()
            .unwrap();
        let rs = evaluate(&c, &shallow).mispredict_rate;
        let rd = evaluate(&c, &deep).mispredict_rate;
        assert!(rd > rs);
        c.ras_size = 40;
        let rd_big = evaluate(&c, &deep).mispredict_rate;
        assert!(rd_big < rd);
    }

    #[test]
    fn penalty_grows_with_width_and_rob() {
        let wl = WorkloadProfileBuilder::new("w").build().unwrap();
        let mut c = base_config();
        c.pipeline_width = 2;
        c.rob_size = 32;
        let small = evaluate(&c, &wl).penalty_cycles;
        c.pipeline_width = 12;
        c.rob_size = 256;
        let big = evaluate(&c, &wl).penalty_cycles;
        assert!(big > small + 5.0);
    }

    #[test]
    fn rates_stay_in_bounds() {
        let ds = DesignSpace::new();
        let mut rng = rand::rngs::mock::StepRng::new(7, 104729);
        use rand::Rng;
        for _ in 0..200 {
            let point = ds.random_point(&mut rng);
            let c = ds.config(&point);
            let wl = WorkloadProfileBuilder::new("w")
                .branch_behavior(rng.gen_range(0.0..1.0), rng.gen_range(0.0..0.4), 40.0)
                .build()
                .unwrap();
            let m = evaluate(&c, &wl);
            assert!((0.0..=0.5).contains(&m.mispredict_rate));
            assert!((0.0..=0.6).contains(&m.btb_miss_rate));
            assert!(m.penalty_cycles > 0.0);
        }
    }
}
