//! Interval-analysis performance model.
//!
//! Combines frontend supply, backend structural ceilings, branch flushes,
//! and memory stalls into an IPC estimate, in the spirit of Eyerman et
//! al.'s mechanistic interval model: the machine streams at its steady-state
//! rate between *miss events*, and each event charges a penalty.

use crate::backend::BackendModel;
use crate::branch::BranchModel;
use crate::cache::CacheModel;
use crate::design_space::CpuConfig;
use crate::workload::WorkloadProfile;
use crate::Elem;

/// CPI decomposition produced by the interval model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PipelineModel {
    /// Steady-state IPC between miss events.
    pub steady_ipc: Elem,
    /// CPI contribution of the base pipeline.
    pub cpi_base: Elem,
    /// CPI contribution of branch mispredictions.
    pub cpi_branch: Elem,
    /// CPI contribution of data-memory stalls.
    pub cpi_memory: Elem,
    /// Final instructions per cycle.
    pub ipc: Elem,
}

/// Evaluates the interval model.
pub fn evaluate(
    config: &CpuConfig,
    workload: &WorkloadProfile,
    branch: &BranchModel,
    cache: &CacheModel,
    backend: &BackendModel,
    fetch_supply: Elem,
) -> PipelineModel {
    let width = config.pipeline_width as Elem;

    // Steady-state issue rate: the tightest of dispatch width, fetch
    // supply, inherent ILP, and structural ceilings.
    let steady_ipc = width
        .min(fetch_supply)
        .min(workload.ilp)
        .min(backend.ipc_ceiling())
        .max(0.05);
    let cpi_base = 1.0 / steady_ipc;

    // Branch component: mispredictions per instruction times flush penalty.
    let mispredicts_per_inst = workload.frac_branch * branch.mispredict_rate;
    let cpi_branch = mispredicts_per_inst * branch.penalty_cycles;

    // Memory component: serial miss cycles per access, overlapped by the
    // achievable memory-level parallelism. A larger window and LSQ expose
    // more of the workload's inherent MLP.
    let window_mlp = 1.0 + backend.effective_window / 28.0;
    let lsq_mlp = 1.0 + config.load_store_queue as Elem / 7.0;
    let mlp_eff = workload.mlp.min(window_mlp).min(lsq_mlp).max(1.0);
    // The out-of-order window hides a slice of the L2 hit latency
    // entirely; DRAM latency is only overlapped, not hidden.
    let l2_component = cache.l1d_miss_rate * cache.l2_latency * 0.7;
    let dram_component = cache.l1d_miss_rate * cache.l2_miss_rate * cache.dram_latency;
    let stall_per_access = (l2_component + dram_component) / mlp_eff;
    let cpi_memory = workload.frac_mem() * stall_per_access;

    let cpi = cpi_base + cpi_branch + cpi_memory;
    let ipc = (1.0 / cpi).min(width);

    PipelineModel {
        steady_ipc,
        cpi_base,
        cpi_branch,
        cpi_memory,
        ipc,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design_space::{ConfigPoint, DesignSpace};
    use crate::workload::{WorkloadProfile, WorkloadProfileBuilder};
    use crate::{backend, branch, cache, frontend};

    fn run(c: &CpuConfig, w: &WorkloadProfile) -> PipelineModel {
        let b = branch::evaluate(c, w);
        let k = cache::evaluate(c, w);
        let be = backend::evaluate(c, w);
        let fs = frontend::fetch_supply(c, w, &b, &k);
        evaluate(c, w, &b, &k, &be, fs)
    }

    fn mid_config() -> CpuConfig {
        let ds = DesignSpace::new();
        let mid = ConfigPoint::new(ds.specs().iter().map(|s| s.cardinality() / 2).collect());
        ds.config(&mid)
    }

    #[test]
    fn ipc_is_bounded_by_width() {
        use rand::Rng;
        let ds = DesignSpace::new();
        let mut rng = rand::rngs::mock::StepRng::new(17, 0x9E3779B97F4A7C15);
        for _ in 0..300 {
            let c = ds.config(&ds.random_point(&mut rng));
            let w = WorkloadProfileBuilder::new("w")
                .branch_behavior(rng.gen_range(0.0..1.0), 0.1, 16.0)
                .memory_behavior(
                    rng.gen_range(4.0..512.0),
                    rng.gen_range(64.0..8192.0),
                    32.0,
                    rng.gen_range(0.0..1.0),
                    rng.gen_range(0.0..0.8),
                )
                .parallelism(rng.gen_range(1.0..8.0), rng.gen_range(1.0..8.0))
                .build()
                .unwrap();
            let m = run(&c, &w);
            assert!(m.ipc > 0.0 && m.ipc <= c.pipeline_width as f64);
            assert!(m.cpi_base > 0.0 && m.cpi_branch >= 0.0 && m.cpi_memory >= 0.0);
        }
    }

    #[test]
    fn wider_pipeline_helps_high_ilp_code() {
        let w = WorkloadProfileBuilder::new("w")
            .parallelism(7.0, 4.0)
            .memory_behavior(8.0, 64.0, 16.0, 0.9, 0.05)
            .branch_behavior(0.1, 0.02, 8.0)
            .build()
            .unwrap();
        let mut c = mid_config();
        c.fetch_buffer_bytes = 64;
        c.fetch_queue_uops = 48;
        c.rob_size = 256;
        c.inst_queue = 80;
        c.int_regfile = 256;
        c.pipeline_width = 2;
        let narrow = run(&c, &w).ipc;
        c.pipeline_width = 8;
        let wide = run(&c, &w).ipc;
        assert!(wide > narrow * 1.5, "wide {wide} vs narrow {narrow}");
    }

    #[test]
    fn width_wasted_on_memory_bound_code() {
        let w = WorkloadProfileBuilder::new("mcf-like")
            .mix(0.28, 0.02, 0.0, 0.0, 0.35, 0.12, 0.23)
            .parallelism(1.4, 2.0)
            .memory_behavior(256.0, 8192.0, 24.0, 0.1, 0.3)
            .build()
            .unwrap();
        let mut c = mid_config();
        c.pipeline_width = 2;
        let narrow = run(&c, &w).ipc;
        c.pipeline_width = 12;
        let wide = run(&c, &w).ipc;
        assert!(
            wide < narrow * 1.3,
            "memory-bound code should barely benefit: {narrow} -> {wide}"
        );
    }

    #[test]
    fn higher_frequency_lowers_ipc_of_memory_bound_code() {
        // Same nanoseconds of DRAM cost more cycles at 3 GHz.
        let w = WorkloadProfileBuilder::new("mem")
            .memory_behavior(256.0, 8192.0, 24.0, 0.2, 0.5)
            .parallelism(2.0, 2.0)
            .build()
            .unwrap();
        let mut c = mid_config();
        c.core_freq_ghz = 1.0;
        let slow = run(&c, &w).ipc;
        c.core_freq_ghz = 3.0;
        let fast = run(&c, &w).ipc;
        assert!(fast < slow, "{fast} !< {slow}");
    }

    #[test]
    fn frequency_neutral_for_cache_resident_code() {
        let w = WorkloadProfileBuilder::new("cpu")
            .memory_behavior(4.0, 32.0, 8.0, 0.9, 0.0)
            .parallelism(4.0, 4.0)
            .build()
            .unwrap();
        let mut c = mid_config();
        c.core_freq_ghz = 1.0;
        let slow = run(&c, &w).ipc;
        c.core_freq_ghz = 3.0;
        let fast = run(&c, &w).ipc;
        assert!((slow - fast).abs() / slow < 0.02, "{slow} vs {fast}");
    }

    #[test]
    fn rob_helps_memory_bound_code_via_mlp() {
        let w = WorkloadProfileBuilder::new("mem")
            .memory_behavior(256.0, 8192.0, 24.0, 0.3, 0.4)
            .parallelism(2.5, 6.0)
            .build()
            .unwrap();
        let mut c = mid_config();
        c.load_store_queue = 48;
        c.rob_size = 32;
        let small = run(&c, &w).ipc;
        c.rob_size = 256;
        let big = run(&c, &w).ipc;
        assert!(big > small * 1.1, "{big} vs {small}");
    }

    #[test]
    fn cpi_components_decompose() {
        let w = WorkloadProfileBuilder::new("w").build().unwrap();
        let c = mid_config();
        let m = run(&c, &w);
        let total = m.cpi_base + m.cpi_branch + m.cpi_memory;
        assert!((1.0 / total - m.ipc).abs() < 1e-9 || m.ipc == c.pipeline_width as f64);
    }
}
