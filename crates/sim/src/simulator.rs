//! Top-level simulator façade.
//!
//! [`Simulator::simulate`] composes the branch, cache, frontend, backend,
//! pipeline, and power models into the (IPC, power) labels used throughout
//! the MetaDSE reproduction — the role gem5 + McPAT play in the paper.

use metadse_obs as obs;

use crate::backend;
use crate::branch;
use crate::cache;
use crate::design_space::{ConfigPoint, CpuConfig, DesignSpace};
use crate::frontend;
use crate::pipeline;
use crate::power;
use crate::workload::WorkloadProfile;
use crate::Elem;

/// Full observable output of one simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimOutput {
    /// Instructions per cycle.
    pub ipc: Elem,
    /// Total core power in watts.
    pub power_w: Elem,
    /// Core area in mm².
    pub area_mm2: Elem,
    /// L1 data miss rate (per access).
    pub l1d_miss_rate: Elem,
    /// L2 miss rate (per L2 access).
    pub l2_miss_rate: Elem,
    /// Branch misprediction rate (per branch).
    pub branch_mispredict_rate: Elem,
    /// CPI share of the base pipeline.
    pub cpi_base: Elem,
    /// CPI share of branch flushes.
    pub cpi_branch: Elem,
    /// CPI share of memory stalls.
    pub cpi_memory: Elem,
}

/// The analytical out-of-order CPU simulator.
///
/// # Example
///
/// ```
/// use metadse_sim::{DesignSpace, Simulator, WorkloadProfileBuilder};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let space = DesignSpace::new();
/// let sim = Simulator::new();
/// let mut rng = StdRng::seed_from_u64(1);
/// let point = space.random_point(&mut rng);
/// let workload = WorkloadProfileBuilder::new("demo").build()?;
/// let out = sim.simulate_point(&space, &point, &workload);
/// assert!(out.ipc > 0.0 && out.power_w > 0.0);
/// # Ok::<(), metadse_sim::ProfileError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Simulator {
    /// Amplitude of the deterministic modeling-residue perturbation.
    noise_amplitude: Elem,
}

impl Default for Simulator {
    fn default() -> Self {
        Self::new()
    }
}

impl Simulator {
    /// Simulator with the default ±1.5% deterministic residue.
    pub fn new() -> Simulator {
        Simulator {
            noise_amplitude: 0.015,
        }
    }

    /// Simulator with a custom residue amplitude (0 disables it); useful
    /// for tests that check exact analytical properties.
    pub fn with_noise(noise_amplitude: Elem) -> Simulator {
        assert!(
            (0.0..0.5).contains(&noise_amplitude),
            "amplitude out of range"
        );
        Simulator { noise_amplitude }
    }

    /// Simulates a materialized configuration under `workload`.
    pub fn simulate(&self, config: &CpuConfig, workload: &WorkloadProfile) -> SimOutput {
        let branch_model = branch::evaluate(config, workload);
        let cache_model = cache::evaluate(config, workload);
        let backend_model = backend::evaluate(config, workload);
        let supply = frontend::fetch_supply(config, workload, &branch_model, &cache_model);
        let pipe = pipeline::evaluate(
            config,
            workload,
            &branch_model,
            &cache_model,
            &backend_model,
            supply,
        );

        // Deterministic residue: stands in for the cycle-level effects an
        // analytical model cannot express. Keyed on (config, workload) so
        // repeated simulations are reproducible, as gem5's are.
        let jitter = self.jitter(config, workload);
        let ipc = (pipe.ipc * (1.0 + jitter)).min(config.pipeline_width as Elem);

        let power_model = power::evaluate(config, workload, &cache_model, ipc);
        let power_w = power_model.total_w * (1.0 + 0.6 * jitter);

        obs::counter("sim/simulations", 1);
        obs::histogram("sim/branch_mispredict_rate", branch_model.mispredict_rate);
        obs::histogram("sim/l1d_miss_rate", cache_model.l1d_miss_rate);
        obs::histogram("sim/l2_miss_rate", cache_model.l2_miss_rate);
        obs::histogram("sim/cpi_branch", pipe.cpi_branch);
        obs::histogram("sim/cpi_memory", pipe.cpi_memory);

        SimOutput {
            ipc,
            power_w,
            area_mm2: power_model.area_mm2,
            l1d_miss_rate: cache_model.l1d_miss_rate,
            l2_miss_rate: cache_model.l2_miss_rate,
            branch_mispredict_rate: branch_model.mispredict_rate,
            cpi_base: pipe.cpi_base,
            cpi_branch: pipe.cpi_branch,
            cpi_memory: pipe.cpi_memory,
        }
    }

    /// Simulates a design point of `space` (decode + simulate).
    pub fn simulate_point(
        &self,
        space: &DesignSpace,
        point: &ConfigPoint,
        workload: &WorkloadProfile,
    ) -> SimOutput {
        self.simulate(&space.config(point), workload)
    }

    /// Deterministic perturbation in `[-amplitude, amplitude]` keyed on the
    /// configuration and workload identity (FNV-1a over their bits).
    fn jitter(&self, config: &CpuConfig, workload: &WorkloadProfile) -> Elem {
        if self.noise_amplitude == 0.0 {
            return 0.0;
        }
        let mut hash: u64 = 0xcbf29ce484222325;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                hash ^= b as u64;
                hash = hash.wrapping_mul(0x100000001b3);
            }
        };
        eat(workload.name.as_bytes());
        for v in [
            config.core_freq_ghz,
            config.pipeline_width as Elem,
            config.fetch_buffer_bytes as Elem,
            config.fetch_queue_uops as Elem,
            match config.branch_predictor {
                crate::design_space::BranchPredictorKind::BiMode => 0.0,
                crate::design_space::BranchPredictorKind::Tournament => 1.0,
            },
            config.ras_size as Elem,
            config.btb_size as Elem,
            config.rob_size as Elem,
            config.int_regfile as Elem,
            config.fp_regfile as Elem,
            config.inst_queue as Elem,
            config.load_store_queue as Elem,
            config.int_alu as Elem,
            config.int_mult_div as Elem,
            config.fp_alu as Elem,
            config.fp_mult_div as Elem,
            config.cacheline_bytes as Elem,
            config.l1_cache_kb as Elem,
            config.l1_assoc as Elem,
            config.l2_cache_kb as Elem,
            config.l2_assoc as Elem,
            workload.branch_entropy,
            workload.data_ws_l1_kb,
        ] {
            eat(&v.to_le_bytes());
        }
        // Map to [-1, 1).
        let unit = (hash >> 11) as Elem / (1u64 << 53) as Elem * 2.0 - 1.0;
        unit * self.noise_amplitude
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::WorkloadProfileBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn simulation_is_deterministic() {
        let space = DesignSpace::new();
        let sim = Simulator::new();
        let mut rng = StdRng::seed_from_u64(5);
        let p = space.random_point(&mut rng);
        let w = WorkloadProfileBuilder::new("w").build().unwrap();
        let a = sim.simulate_point(&space, &p, &w);
        let b = sim.simulate_point(&space, &p, &w);
        assert_eq!(a, b);
    }

    #[test]
    fn different_workloads_get_different_labels() {
        let space = DesignSpace::new();
        let sim = Simulator::new();
        let mut rng = StdRng::seed_from_u64(6);
        let p = space.random_point(&mut rng);
        let a = WorkloadProfileBuilder::new("a").build().unwrap();
        let b = WorkloadProfileBuilder::new("b")
            .memory_behavior(256.0, 8192.0, 24.0, 0.1, 0.5)
            .parallelism(1.3, 1.5)
            .build()
            .unwrap();
        let oa = sim.simulate_point(&space, &p, &a);
        let ob = sim.simulate_point(&space, &p, &b);
        assert!((oa.ipc - ob.ipc).abs() > 1e-3);
    }

    #[test]
    fn jitter_is_bounded_and_stable() {
        let space = DesignSpace::new();
        let noisy = Simulator::new();
        let clean = Simulator::with_noise(0.0);
        let mut rng = StdRng::seed_from_u64(7);
        let w = WorkloadProfileBuilder::new("w").build().unwrap();
        for _ in 0..100 {
            let p = space.random_point(&mut rng);
            let on = noisy.simulate_point(&space, &p, &w);
            let oc = clean.simulate_point(&space, &p, &w);
            let rel = (on.ipc - oc.ipc).abs() / oc.ipc;
            assert!(rel <= 0.016, "relative jitter {rel} out of bounds");
        }
    }

    #[test]
    fn outputs_have_plausible_ranges() {
        let space = DesignSpace::new();
        let sim = Simulator::new();
        let mut rng = StdRng::seed_from_u64(8);
        let w = WorkloadProfileBuilder::new("w").build().unwrap();
        let mut ipc_lo = f64::INFINITY;
        let mut ipc_hi = 0.0_f64;
        for _ in 0..300 {
            let p = space.random_point(&mut rng);
            let o = sim.simulate_point(&space, &p, &w);
            assert!(o.ipc > 0.0 && o.ipc <= 12.0);
            assert!(o.power_w > 0.0 && o.power_w < 150.0);
            ipc_lo = ipc_lo.min(o.ipc);
            ipc_hi = ipc_hi.max(o.ipc);
        }
        // The design space must produce a real spread, or DSE is trivial.
        assert!(
            ipc_hi / ipc_lo > 1.8,
            "IPC spread too small: {ipc_lo}..{ipc_hi}"
        );
    }
}
