//! Property-based tests of the workload/dataset layer.

use proptest::prelude::*;

use metadse_sim::{DesignSpace, Simulator};
use metadse_workloads::{Dataset, Metric, PhaseSet, SpecWorkload, TaskSampler, WorkloadSplit};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn any_workload() -> impl Strategy<Value = SpecWorkload> {
    (0usize..SpecWorkload::ALL.len()).prop_map(|i| SpecWorkload::ALL[i])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn phase_weights_always_sum_to_one(w in any_workload()) {
        let set = PhaseSet::generate(w);
        let total: f64 = set.phases().iter().map(|p| p.weight).sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        prop_assert!(set.len() >= 8 && set.len() <= 30);
    }

    #[test]
    fn phases_remain_valid_profiles(w in any_workload()) {
        for phase in PhaseSet::generate(w).phases() {
            prop_assert!(phase.profile.validate().is_ok());
        }
    }

    #[test]
    fn datasets_have_positive_labels(w in any_workload(), seed in 0u64..1000) {
        let space = DesignSpace::new();
        let sim = Simulator::new();
        let mut rng = StdRng::seed_from_u64(seed);
        let ds = Dataset::generate(&space, &sim, w, 12, &mut rng);
        for s in ds.samples() {
            prop_assert!(s.ipc > 0.0 && s.ipc <= 12.0);
            prop_assert!(s.power_w > 0.0);
            prop_assert_eq!(s.features.len(), 21);
        }
    }

    #[test]
    fn tasks_partition_without_overlap(seed in 0u64..1000,
                                       support in 2usize..8,
                                       query in 2usize..8) {
        let space = DesignSpace::new();
        let sim = Simulator::new();
        let mut rng = StdRng::seed_from_u64(seed);
        let ds = Dataset::generate(&space, &sim, SpecWorkload::Xz657, support + query + 4, &mut rng);
        let task = TaskSampler::new(support, query).sample(&ds, Metric::Ipc, &mut rng);
        prop_assert_eq!(task.support_size(), support);
        prop_assert_eq!(task.query_size(), query);
        for s in &task.support_x {
            prop_assert!(!task.query_x.contains(s), "support row leaked into query");
        }
    }

    #[test]
    fn random_splits_are_always_disjoint(seed in 0u64..10_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let split = WorkloadSplit::random(&mut rng);
        prop_assert!(split.is_disjoint());
        prop_assert_eq!(split.train.len() + split.validation.len() + split.test.len(), 17);
    }

    #[test]
    fn csv_roundtrip_is_lossless_enough(seed in 0u64..500) {
        let space = DesignSpace::new();
        let sim = Simulator::new();
        let mut rng = StdRng::seed_from_u64(seed);
        let ds = Dataset::generate(&space, &sim, SpecWorkload::Wrf621, 6, &mut rng);
        let path = std::env::temp_dir().join(format!("metadse-prop-{seed}-{}.csv", std::process::id()));
        ds.write_csv(&path).unwrap();
        let back = Dataset::read_csv(&path).unwrap();
        std::fs::remove_file(&path).ok();
        prop_assert_eq!(back.len(), ds.len());
        for (a, b) in ds.samples().iter().zip(back.samples()) {
            prop_assert!((a.ipc - b.ipc).abs() < 1e-8);
            prop_assert!((a.power_w - b.power_w).abs() < 1e-8);
        }
    }
}
