//! Property-style tests of the workload/dataset layer.
//!
//! Each test draws many random cases from a seeded [`StdRng`] (the hermetic
//! build has no proptest), so failures are reproducible from the fixed seed.

use metadse_sim::{DesignSpace, Simulator};
use metadse_workloads::{Dataset, Metric, PhaseSet, SpecWorkload, TaskSampler, WorkloadSplit};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CASES: usize = 24;

fn any_workload(rng: &mut StdRng) -> SpecWorkload {
    SpecWorkload::ALL[rng.gen_range(0..SpecWorkload::ALL.len())]
}

#[test]
fn phase_weights_always_sum_to_one() {
    let mut rng = StdRng::seed_from_u64(0x7701);
    for _ in 0..CASES {
        let w = any_workload(&mut rng);
        let set = PhaseSet::generate(w);
        let total: f64 = set.phases().iter().map(|p| p.weight).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!(set.len() >= 8 && set.len() <= 30);
    }
}

#[test]
fn phases_remain_valid_profiles() {
    let mut rng = StdRng::seed_from_u64(0x7702);
    for _ in 0..CASES {
        let w = any_workload(&mut rng);
        for phase in PhaseSet::generate(w).phases() {
            assert!(phase.profile.validate().is_ok());
        }
    }
}

#[test]
fn datasets_have_positive_labels() {
    let mut rng = StdRng::seed_from_u64(0x7703);
    for _ in 0..CASES {
        let w = any_workload(&mut rng);
        let seed = rng.gen_range(0u64..1000);
        let space = DesignSpace::new();
        let sim = Simulator::new();
        let mut gen_rng = StdRng::seed_from_u64(seed);
        let ds = Dataset::generate(&space, &sim, w, 12, &mut gen_rng);
        for s in ds.samples() {
            assert!(s.ipc > 0.0 && s.ipc <= 12.0);
            assert!(s.power_w > 0.0);
            assert_eq!(s.features.len(), 21);
        }
    }
}

#[test]
fn tasks_partition_without_overlap() {
    let mut rng = StdRng::seed_from_u64(0x7704);
    for _ in 0..CASES {
        let seed = rng.gen_range(0u64..1000);
        let support = rng.gen_range(2usize..8);
        let query = rng.gen_range(2usize..8);
        let space = DesignSpace::new();
        let sim = Simulator::new();
        let mut task_rng = StdRng::seed_from_u64(seed);
        let ds = Dataset::generate(
            &space,
            &sim,
            SpecWorkload::Xz657,
            support + query + 4,
            &mut task_rng,
        );
        let task = TaskSampler::new(support, query).sample(&ds, Metric::Ipc, &mut task_rng);
        assert_eq!(task.support_size(), support);
        assert_eq!(task.query_size(), query);
        for s in &task.support_x {
            assert!(!task.query_x.contains(s), "support row leaked into query");
        }
    }
}

#[test]
fn random_splits_are_always_disjoint() {
    let mut rng = StdRng::seed_from_u64(0x7705);
    for _ in 0..CASES {
        let seed = rng.gen_range(0u64..10_000);
        let mut split_rng = StdRng::seed_from_u64(seed);
        let split = WorkloadSplit::random(&mut split_rng);
        assert!(split.is_disjoint());
        assert_eq!(
            split.train.len() + split.validation.len() + split.test.len(),
            17
        );
    }
}

#[test]
fn csv_roundtrip_is_lossless_enough() {
    let mut rng = StdRng::seed_from_u64(0x7706);
    for _ in 0..CASES {
        let seed = rng.gen_range(0u64..500);
        let space = DesignSpace::new();
        let sim = Simulator::new();
        let mut gen_rng = StdRng::seed_from_u64(seed);
        let ds = Dataset::generate(&space, &sim, SpecWorkload::Wrf621, 6, &mut gen_rng);
        let path =
            std::env::temp_dir().join(format!("metadse-prop-{seed}-{}.csv", std::process::id()));
        ds.write_csv(&path).unwrap();
        let back = Dataset::read_csv(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(back.len(), ds.len());
        for (a, b) in ds.samples().iter().zip(back.samples()) {
            assert!((a.ipc - b.ipc).abs() < 1e-8);
            assert!((a.power_w - b.power_w).abs() < 1e-8);
        }
    }
}
