//! Synthetic profiles of the SPEC CPU 2017 speed suite.
//!
//! Real SPEC binaries are licensed and take days of simulation; each
//! workload here is instead a hand-written behavioural profile whose
//! characteristics echo the published analyses of the suite (instruction
//! mixes, branch behaviour, memory-boundedness). What matters for
//! reproducing MetaDSE is that the *diversity* of the suite is preserved:
//! pointer-chasing `605.mcf_s` behaves nothing like streaming
//! `603.bwaves_s`, which is exactly the cross-workload dissimilarity the
//! paper's Fig. 2 motivates.

use metadse_sim::{WorkloadProfile, WorkloadProfileBuilder};

/// A SPEC CPU 2017 speed-suite workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(non_camel_case_types)]
pub enum SpecWorkload {
    /// 600.perlbench_s — Perl interpreter (indirect-branch heavy).
    Perlbench600,
    /// 602.gcc_s — C compiler (large code footprint, irregular).
    Gcc602,
    /// 605.mcf_s — vehicle scheduling (pointer-chasing, memory bound).
    Mcf605,
    /// 620.omnetpp_s — discrete event simulation (pointer heavy).
    Omnetpp620,
    /// 623.xalancbmk_s — XML transformation (virtual dispatch).
    Xalancbmk623,
    /// 625.x264_s — video encoding (high ILP, streaming).
    X264_625,
    /// 631.deepsjeng_s — chess search (hard branches).
    Deepsjeng631,
    /// 641.leela_s — Go engine (branchy, cache resident).
    Leela641,
    /// 648.exchange2_s — puzzle recursion (compute bound, deep calls).
    Exchange2_648,
    /// 657.xz_s — compression (data-dependent branches).
    Xz657,
    /// 603.bwaves_s — explicit fluid dynamics (FP streaming).
    Bwaves603,
    /// 607.cactuBSSN_s — numerical relativity stencil.
    CactuBssn607,
    /// 619.lbm_s — lattice Boltzmann (bandwidth bound).
    Lbm619,
    /// 621.wrf_s — weather model (mixed FP).
    Wrf621,
    /// 627.cam4_s — atmosphere model (big code, mixed FP).
    Cam4_627,
    /// 628.pop2_s — ocean model.
    Pop2_628,
    /// 638.imagick_s — image manipulation (compute bound FP).
    Imagick638,
    /// 644.nab_s — molecular dynamics (compute bound FP).
    Nab644,
    /// 649.fotonik3d_s — electromagnetics FDTD (FP streaming).
    Fotonik3d649,
    /// 654.roms_s — regional ocean model (FP streaming).
    Roms654,
}

impl SpecWorkload {
    /// All 20 speed-suite workloads.
    pub const ALL: [SpecWorkload; 20] = [
        SpecWorkload::Perlbench600,
        SpecWorkload::Gcc602,
        SpecWorkload::Mcf605,
        SpecWorkload::Omnetpp620,
        SpecWorkload::Xalancbmk623,
        SpecWorkload::X264_625,
        SpecWorkload::Deepsjeng631,
        SpecWorkload::Leela641,
        SpecWorkload::Exchange2_648,
        SpecWorkload::Xz657,
        SpecWorkload::Bwaves603,
        SpecWorkload::CactuBssn607,
        SpecWorkload::Lbm619,
        SpecWorkload::Wrf621,
        SpecWorkload::Cam4_627,
        SpecWorkload::Pop2_628,
        SpecWorkload::Imagick638,
        SpecWorkload::Nab644,
        SpecWorkload::Fotonik3d649,
        SpecWorkload::Roms654,
    ];

    /// Canonical SPEC name, e.g. `"605.mcf_s"`.
    pub fn name(self) -> &'static str {
        match self {
            SpecWorkload::Perlbench600 => "600.perlbench_s",
            SpecWorkload::Gcc602 => "602.gcc_s",
            SpecWorkload::Mcf605 => "605.mcf_s",
            SpecWorkload::Omnetpp620 => "620.omnetpp_s",
            SpecWorkload::Xalancbmk623 => "623.xalancbmk_s",
            SpecWorkload::X264_625 => "625.x264_s",
            SpecWorkload::Deepsjeng631 => "631.deepsjeng_s",
            SpecWorkload::Leela641 => "641.leela_s",
            SpecWorkload::Exchange2_648 => "648.exchange2_s",
            SpecWorkload::Xz657 => "657.xz_s",
            SpecWorkload::Bwaves603 => "603.bwaves_s",
            SpecWorkload::CactuBssn607 => "607.cactuBSSN_s",
            SpecWorkload::Lbm619 => "619.lbm_s",
            SpecWorkload::Wrf621 => "621.wrf_s",
            SpecWorkload::Cam4_627 => "627.cam4_s",
            SpecWorkload::Pop2_628 => "628.pop2_s",
            SpecWorkload::Imagick638 => "638.imagick_s",
            SpecWorkload::Nab644 => "644.nab_s",
            SpecWorkload::Fotonik3d649 => "649.fotonik3d_s",
            SpecWorkload::Roms654 => "654.roms_s",
        }
    }

    /// Looks a workload up by its canonical name.
    pub fn from_name(name: &str) -> Option<SpecWorkload> {
        SpecWorkload::ALL.iter().copied().find(|w| w.name() == name)
    }

    /// Whether the workload belongs to the integer half of the suite.
    pub fn is_integer(self) -> bool {
        matches!(
            self,
            SpecWorkload::Perlbench600
                | SpecWorkload::Gcc602
                | SpecWorkload::Mcf605
                | SpecWorkload::Omnetpp620
                | SpecWorkload::Xalancbmk623
                | SpecWorkload::X264_625
                | SpecWorkload::Deepsjeng631
                | SpecWorkload::Leela641
                | SpecWorkload::Exchange2_648
                | SpecWorkload::Xz657
        )
    }

    /// The hand-crafted behavioural profile of this workload.
    pub fn profile(self) -> WorkloadProfile {
        let mut b = WorkloadProfileBuilder::new(self.name());
        match self {
            SpecWorkload::Perlbench600 => b
                .mix(0.36, 0.02, 0.0, 0.0, 0.26, 0.13, 0.23)
                .branch_behavior(0.55, 0.30, 40.0)
                .memory_behavior(48.0, 1024.0, 96.0, 0.35, 0.05)
                .parallelism(2.2, 2.5),
            SpecWorkload::Gcc602 => b
                .mix(0.34, 0.02, 0.0, 0.0, 0.27, 0.14, 0.23)
                .branch_behavior(0.60, 0.20, 48.0)
                .memory_behavior(96.0, 3072.0, 160.0, 0.30, 0.05)
                .parallelism(2.0, 2.5),
            SpecWorkload::Mcf605 => b
                .mix(0.30, 0.02, 0.0, 0.0, 0.37, 0.08, 0.23)
                .branch_behavior(0.65, 0.05, 12.0)
                .memory_behavior(320.0, 8192.0, 16.0, 0.08, 0.15)
                .parallelism(1.4, 5.0),
            SpecWorkload::Omnetpp620 => b
                .mix(0.33, 0.02, 0.0, 0.0, 0.30, 0.13, 0.22)
                .branch_behavior(0.50, 0.25, 36.0)
                .memory_behavior(128.0, 4096.0, 72.0, 0.15, 0.05)
                .parallelism(1.8, 2.0),
            SpecWorkload::Xalancbmk623 => b
                .mix(0.34, 0.01, 0.0, 0.0, 0.29, 0.11, 0.25)
                .branch_behavior(0.45, 0.35, 44.0)
                .memory_behavior(64.0, 2048.0, 120.0, 0.25, 0.05)
                .parallelism(2.0, 2.2),
            SpecWorkload::X264_625 => b
                .mix(0.42, 0.05, 0.02, 0.01, 0.28, 0.12, 0.10)
                .branch_behavior(0.20, 0.05, 10.0)
                .memory_behavior(40.0, 512.0, 40.0, 0.85, 0.30)
                .parallelism(5.5, 4.0),
            SpecWorkload::Deepsjeng631 => b
                .mix(0.44, 0.03, 0.0, 0.0, 0.24, 0.09, 0.20)
                .branch_behavior(0.75, 0.08, 30.0)
                .memory_behavior(48.0, 768.0, 48.0, 0.40, 0.02)
                .parallelism(2.6, 2.0),
            SpecWorkload::Leela641 => b
                .mix(0.42, 0.04, 0.01, 0.01, 0.25, 0.09, 0.18)
                .branch_behavior(0.70, 0.06, 26.0)
                .memory_behavior(32.0, 512.0, 40.0, 0.45, 0.02)
                .parallelism(2.4, 2.0),
            SpecWorkload::Exchange2_648 => b
                .mix(0.50, 0.02, 0.0, 0.0, 0.20, 0.08, 0.20)
                .branch_behavior(0.35, 0.02, 56.0)
                .memory_behavior(12.0, 64.0, 28.0, 0.70, 0.0)
                .parallelism(3.2, 1.5),
            SpecWorkload::Xz657 => b
                .mix(0.40, 0.04, 0.0, 0.0, 0.27, 0.11, 0.18)
                .branch_behavior(0.68, 0.04, 14.0)
                .memory_behavior(96.0, 6144.0, 24.0, 0.50, 0.25)
                .parallelism(2.2, 3.0),
            SpecWorkload::Bwaves603 => b
                .mix(0.12, 0.01, 0.33, 0.22, 0.22, 0.07, 0.03)
                .branch_behavior(0.05, 0.01, 8.0)
                .memory_behavior(224.0, 8192.0, 16.0, 0.95, 0.75)
                .parallelism(6.5, 7.0),
            SpecWorkload::CactuBssn607 => b
                .mix(0.14, 0.01, 0.30, 0.24, 0.21, 0.07, 0.03)
                .branch_behavior(0.08, 0.01, 10.0)
                .memory_behavior(192.0, 6144.0, 56.0, 0.80, 0.50)
                .parallelism(5.5, 5.0),
            SpecWorkload::Lbm619 => b
                .mix(0.10, 0.01, 0.28, 0.22, 0.23, 0.13, 0.03)
                .branch_behavior(0.04, 0.01, 6.0)
                .memory_behavior(256.0, 8192.0, 8.0, 0.90, 0.85)
                .parallelism(4.5, 7.5),
            SpecWorkload::Wrf621 => b
                .mix(0.18, 0.02, 0.28, 0.17, 0.22, 0.08, 0.05)
                .branch_behavior(0.25, 0.03, 22.0)
                .memory_behavior(96.0, 3072.0, 128.0, 0.65, 0.30)
                .parallelism(4.0, 4.0),
            SpecWorkload::Cam4_627 => b
                .mix(0.20, 0.02, 0.26, 0.15, 0.22, 0.08, 0.07)
                .branch_behavior(0.30, 0.04, 30.0)
                .memory_behavior(80.0, 2560.0, 144.0, 0.60, 0.25)
                .parallelism(3.6, 3.5),
            SpecWorkload::Pop2_628 => b
                .mix(0.17, 0.02, 0.27, 0.17, 0.22, 0.09, 0.06)
                .branch_behavior(0.20, 0.03, 20.0)
                .memory_behavior(112.0, 4096.0, 96.0, 0.70, 0.40)
                .parallelism(4.2, 4.5),
            SpecWorkload::Imagick638 => b
                .mix(0.22, 0.03, 0.30, 0.18, 0.17, 0.06, 0.04)
                .branch_behavior(0.10, 0.02, 12.0)
                .memory_behavior(16.0, 192.0, 32.0, 0.90, 0.10)
                .parallelism(6.0, 3.0),
            SpecWorkload::Nab644 => b
                .mix(0.20, 0.02, 0.31, 0.19, 0.18, 0.06, 0.04)
                .branch_behavior(0.12, 0.02, 14.0)
                .memory_behavior(24.0, 256.0, 24.0, 0.75, 0.05)
                .parallelism(5.0, 2.5),
            SpecWorkload::Fotonik3d649 => b
                .mix(0.12, 0.01, 0.30, 0.21, 0.24, 0.09, 0.03)
                .branch_behavior(0.05, 0.01, 8.0)
                .memory_behavior(208.0, 8192.0, 16.0, 0.92, 0.80)
                .parallelism(5.0, 7.0),
            SpecWorkload::Roms654 => b
                .mix(0.14, 0.02, 0.29, 0.19, 0.23, 0.09, 0.04)
                .branch_behavior(0.15, 0.02, 16.0)
                .memory_behavior(160.0, 6144.0, 64.0, 0.80, 0.55)
                .parallelism(4.5, 5.5),
        };
        b.build().expect("hand-crafted SPEC profiles are valid")
    }
}

impl std::fmt::Display for SpecWorkload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Train/validation/test assignment of workloads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkloadSplit {
    /// Source workloads used for meta-training.
    pub train: Vec<SpecWorkload>,
    /// Workloads used for meta-validation (epoch selection).
    pub validation: Vec<SpecWorkload>,
    /// Unseen target workloads used for final evaluation.
    pub test: Vec<SpecWorkload>,
}

impl WorkloadSplit {
    /// The paper's split: the five test workloads named in Table II, with
    /// 7 training and 5 validation workloads drawn from the rest (both
    /// halves of the suite represented).
    pub fn paper() -> WorkloadSplit {
        WorkloadSplit {
            train: vec![
                SpecWorkload::Gcc602,
                SpecWorkload::X264_625,
                SpecWorkload::Deepsjeng631,
                SpecWorkload::Xz657,
                SpecWorkload::Bwaves603,
                SpecWorkload::Lbm619,
                SpecWorkload::Imagick638,
            ],
            validation: vec![
                SpecWorkload::Leela641,
                SpecWorkload::Exchange2_648,
                SpecWorkload::CactuBssn607,
                SpecWorkload::Wrf621,
                SpecWorkload::Fotonik3d649,
            ],
            test: vec![
                SpecWorkload::Perlbench600,
                SpecWorkload::Mcf605,
                SpecWorkload::Omnetpp620,
                SpecWorkload::Xalancbmk623,
                SpecWorkload::Cam4_627,
            ],
        }
    }

    /// A random 7/5/5 split (the paper iterates such splits for
    /// robustness).
    pub fn random<R: rand::Rng + ?Sized>(rng: &mut R) -> WorkloadSplit {
        let mut all = SpecWorkload::ALL.to_vec();
        for i in (1..all.len()).rev() {
            all.swap(i, rng.gen_range(0..=i));
        }
        WorkloadSplit {
            train: all[0..7].to_vec(),
            validation: all[7..12].to_vec(),
            test: all[12..17].to_vec(),
        }
    }

    /// Checks the three partitions are pairwise disjoint.
    pub fn is_disjoint(&self) -> bool {
        let mut seen = std::collections::HashSet::new();
        self.train
            .iter()
            .chain(&self.validation)
            .chain(&self.test)
            .all(|w| seen.insert(*w))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn all_profiles_are_valid() {
        for w in SpecWorkload::ALL {
            let p = w.profile();
            assert!(p.validate().is_ok(), "{} invalid: {:?}", w, p.validate());
            assert_eq!(p.name, w.name());
        }
    }

    #[test]
    fn names_roundtrip() {
        for w in SpecWorkload::ALL {
            assert_eq!(SpecWorkload::from_name(w.name()), Some(w));
        }
        assert_eq!(SpecWorkload::from_name("999.bogus"), None);
    }

    #[test]
    fn ten_integer_ten_fp() {
        let ints = SpecWorkload::ALL.iter().filter(|w| w.is_integer()).count();
        assert_eq!(ints, 10);
    }

    #[test]
    fn integer_workloads_have_low_fp_share() {
        for w in SpecWorkload::ALL {
            let p = w.profile();
            if w.is_integer() {
                assert!(p.fp_share() < 0.1, "{w} fp share {}", p.fp_share());
            } else {
                assert!(p.fp_share() > 0.5, "{w} fp share {}", p.fp_share());
            }
        }
    }

    #[test]
    fn mcf_is_the_most_memory_hostile() {
        let mcf = SpecWorkload::Mcf605.profile();
        for w in SpecWorkload::ALL {
            if w != SpecWorkload::Mcf605 {
                let p = w.profile();
                assert!(
                    mcf.data_ws_l1_kb >= p.data_ws_l1_kb
                        || mcf.spatial_locality <= p.spatial_locality,
                    "{w} should not dominate mcf's memory hostility"
                );
            }
        }
        assert!(mcf.spatial_locality < 0.1);
    }

    #[test]
    fn paper_split_matches_table_ii() {
        let s = WorkloadSplit::paper();
        assert_eq!(s.train.len(), 7);
        assert_eq!(s.validation.len(), 5);
        assert_eq!(s.test.len(), 5);
        assert!(s.is_disjoint());
        let test_names: Vec<&str> = s.test.iter().map(|w| w.name()).collect();
        assert_eq!(
            test_names,
            vec![
                "600.perlbench_s",
                "605.mcf_s",
                "620.omnetpp_s",
                "623.xalancbmk_s",
                "627.cam4_s"
            ]
        );
    }

    #[test]
    fn random_splits_are_disjoint_and_sized() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..20 {
            let s = WorkloadSplit::random(&mut rng);
            assert!(s.is_disjoint());
            assert_eq!(s.train.len(), 7);
            assert_eq!(s.validation.len(), 5);
            assert_eq!(s.test.len(), 5);
        }
    }
}
