//! Labeled dataset generation.
//!
//! A dataset row pairs an encoded design point (21 normalized features)
//! with its simulated labels (IPC and power), aggregated over the
//! workload's SimPoint phases the way full-program metrics are derived
//! from SimPoints: instruction-weighted cycles.

use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::Path;

use rand::Rng;

use metadse_obs as obs;
use metadse_parallel::ParallelConfig;
use metadse_sim::{ConfigPoint, DesignSpace, Elem, Simulator};

use crate::phases::PhaseSet;
use crate::spec::SpecWorkload;

/// Which label a model predicts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Metric {
    /// Instructions per cycle.
    #[default]
    Ipc,
    /// Total core power in watts.
    Power,
}

impl Metric {
    /// Display name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            Metric::Ipc => "IPC",
            Metric::Power => "Power",
        }
    }
}

/// One labeled design point.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Normalized design-point encoding (21 features in `[0, 1]`).
    pub features: Vec<Elem>,
    /// Phase-aggregated instructions per cycle.
    pub ipc: Elem,
    /// Phase-aggregated power in watts.
    pub power_w: Elem,
}

impl Sample {
    /// The label selected by `metric`.
    pub fn label(&self, metric: Metric) -> Elem {
        match metric {
            Metric::Ipc => self.ipc,
            Metric::Power => self.power_w,
        }
    }
}

/// A labeled dataset for one workload.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    workload_name: String,
    samples: Vec<Sample>,
}

impl Dataset {
    /// Creates a dataset from parts (used by readers and tests).
    pub fn from_samples(workload_name: impl Into<String>, samples: Vec<Sample>) -> Dataset {
        Dataset {
            workload_name: workload_name.into(),
            samples,
        }
    }

    /// Simulates `n` uniform-random design points for `workload`, using
    /// the default thread count (`METADSE_THREADS`, else the machine).
    pub fn generate<R: Rng + ?Sized>(
        space: &DesignSpace,
        simulator: &Simulator,
        workload: SpecWorkload,
        n: usize,
        rng: &mut R,
    ) -> Dataset {
        Self::generate_with(
            space,
            simulator,
            workload,
            n,
            rng,
            &ParallelConfig::default(),
        )
    }

    /// Simulates `n` uniform-random design points for `workload` with an
    /// explicit thread configuration.
    ///
    /// Points are sampled serially from `rng` on the calling thread, so
    /// the RNG stream — and therefore the dataset — is bit-identical for
    /// every thread count.
    pub fn generate_with<R: Rng + ?Sized>(
        space: &DesignSpace,
        simulator: &Simulator,
        workload: SpecWorkload,
        n: usize,
        rng: &mut R,
        parallel: &ParallelConfig,
    ) -> Dataset {
        let points: Vec<ConfigPoint> = (0..n).map(|_| space.random_point(rng)).collect();
        Self::generate_at_with(space, simulator, workload, &points, parallel)
    }

    /// Simulates the given design points for `workload`, using the default
    /// thread count (`METADSE_THREADS`, else the machine).
    pub fn generate_at(
        space: &DesignSpace,
        simulator: &Simulator,
        workload: SpecWorkload,
        points: &[ConfigPoint],
    ) -> Dataset {
        Self::generate_at_with(
            space,
            simulator,
            workload,
            points,
            &ParallelConfig::default(),
        )
    }

    /// Simulates the given design points for `workload` with an explicit
    /// thread configuration.
    ///
    /// Each point's simulation is a pure function of the point, so
    /// fanning points out across threads and collecting results in point
    /// order yields bit-identical datasets for every thread count.
    pub fn generate_at_with(
        space: &DesignSpace,
        simulator: &Simulator,
        workload: SpecWorkload,
        points: &[ConfigPoint],
        parallel: &ParallelConfig,
    ) -> Dataset {
        let _span = obs::span("dataset/generate");
        obs::counter("dataset/points", points.len() as u64);
        let phases = PhaseSet::generate(workload);
        obs::counter(
            "dataset/phase_sims",
            (points.len() * phases.phases().len()) as u64,
        );
        let samples = parallel.run_indexed(points.len(), |i| {
            let point = &points[i];
            let features = space.encode(point);
            let config = space.config(point);
            // Aggregate over phases the way SimPoint does for the full
            // program: each phase contributes `weight` instructions,
            // so cycles add as weight / IPC and power is time-weighted.
            let mut cycles = 0.0;
            let mut energy_like = 0.0;
            for phase in phases.phases() {
                let out = simulator.simulate(&config, &phase.profile);
                let phase_cycles = phase.weight / out.ipc.max(1e-6);
                cycles += phase_cycles;
                energy_like += out.power_w * phase_cycles;
            }
            Sample {
                features,
                ipc: 1.0 / cycles,
                power_w: energy_like / cycles,
            }
        });
        Dataset {
            workload_name: workload.name().to_string(),
            samples,
        }
    }

    /// The workload this dataset was generated for.
    pub fn workload_name(&self) -> &str {
        &self.workload_name
    }

    /// The rows.
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the dataset has no rows.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Number of features per row (21 for the MetaDSE space).
    ///
    /// # Panics
    ///
    /// Panics on an empty dataset.
    pub fn feature_dim(&self) -> usize {
        self.samples
            .first()
            .expect("feature_dim of empty dataset")
            .features
            .len()
    }

    /// All labels for `metric`, row order.
    pub fn labels(&self, metric: Metric) -> Vec<Elem> {
        self.samples.iter().map(|s| s.label(metric)).collect()
    }

    /// All feature rows (borrowed).
    pub fn features(&self) -> Vec<&[Elem]> {
        self.samples.iter().map(|s| s.features.as_slice()).collect()
    }

    /// Writes the dataset as CSV (`f0..f20, ipc, power_w` with a header).
    ///
    /// # Errors
    ///
    /// Returns any underlying I/O error.
    pub fn write_csv(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let mut w = BufWriter::new(File::create(path)?);
        writeln!(w, "# workload: {}", self.workload_name)?;
        let dim = if self.samples.is_empty() {
            0
        } else {
            self.feature_dim()
        };
        let header: Vec<String> = (0..dim)
            .map(|i| format!("f{i}"))
            .chain(["ipc".to_string(), "power_w".to_string()])
            .collect();
        writeln!(w, "{}", header.join(","))?;
        for s in &self.samples {
            let mut row: Vec<String> = s.features.iter().map(|v| format!("{v:.9}")).collect();
            row.push(format!("{:.9}", s.ipc));
            row.push(format!("{:.9}", s.power_w));
            writeln!(w, "{}", row.join(","))?;
        }
        w.flush()
    }

    /// Reads a dataset previously written by [`Dataset::write_csv`].
    ///
    /// # Errors
    ///
    /// Returns an I/O error, or `InvalidData` for malformed content.
    pub fn read_csv(path: impl AsRef<Path>) -> io::Result<Dataset> {
        let r = BufReader::new(File::open(path)?);
        let mut lines = r.lines();
        let workload_name = match lines.next() {
            Some(Ok(line)) if line.starts_with("# workload: ") => {
                line.trim_start_matches("# workload: ").to_string()
            }
            _ => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "missing workload header",
                ))
            }
        };
        // Skip the column header.
        lines.next();
        let mut samples = Vec::new();
        for line in lines {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            let fields: Vec<Elem> = line
                .split(',')
                .map(|f| {
                    f.trim().parse::<Elem>().map_err(|e| {
                        io::Error::new(io::ErrorKind::InvalidData, format!("bad number: {e}"))
                    })
                })
                .collect::<Result<_, _>>()?;
            if fields.len() < 3 {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "row needs at least one feature and two labels",
                ));
            }
            let n = fields.len();
            samples.push(Sample {
                features: fields[..n - 2].to_vec(),
                ipc: fields[n - 2],
                power_w: fields[n - 1],
            });
        }
        Ok(Dataset {
            workload_name,
            samples,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_dataset(n: usize, seed: u64) -> Dataset {
        let space = DesignSpace::new();
        let sim = Simulator::new();
        let mut rng = StdRng::seed_from_u64(seed);
        Dataset::generate(&space, &sim, SpecWorkload::Xz657, n, &mut rng)
    }

    #[test]
    fn generation_shapes_and_ranges() {
        let ds = small_dataset(20, 1);
        assert_eq!(ds.len(), 20);
        assert_eq!(ds.feature_dim(), 21);
        for s in ds.samples() {
            assert!(s.features.iter().all(|&f| (0.0..=1.0).contains(&f)));
            assert!(s.ipc > 0.0 && s.ipc <= 12.0);
            assert!(s.power_w > 0.0);
        }
    }

    #[test]
    fn generation_is_deterministic_in_the_seed() {
        assert_eq!(small_dataset(10, 7), small_dataset(10, 7));
        assert_ne!(small_dataset(10, 7), small_dataset(10, 8));
    }

    #[test]
    fn generation_is_bit_identical_across_thread_counts() {
        let space = DesignSpace::new();
        let sim = Simulator::new();
        let run = |threads: usize| {
            let mut rng = StdRng::seed_from_u64(99);
            Dataset::generate_with(
                &space,
                &sim,
                SpecWorkload::Xz657,
                16,
                &mut rng,
                // Cutoff 1 + oversubscribe: really spawn workers for these
                // 16 points even on a single-core host.
                &ParallelConfig::with_threads(threads)
                    .with_serial_cutoff(1)
                    .oversubscribed(),
            )
        };
        let serial = run(1);
        for threads in [2, 4, 7] {
            let parallel = run(threads);
            // PartialEq over f64 fields: bit-identical samples, same order.
            assert_eq!(serial, parallel, "threads={threads} diverged");
        }
    }

    #[test]
    fn labels_match_metric_selection() {
        let ds = small_dataset(5, 2);
        let ipc = ds.labels(Metric::Ipc);
        let power = ds.labels(Metric::Power);
        for (s, (&i, &p)) in ds.samples().iter().zip(ipc.iter().zip(&power)) {
            assert_eq!(s.ipc, i);
            assert_eq!(s.power_w, p);
        }
    }

    #[test]
    fn phase_aggregate_is_within_phase_extremes() {
        // The harmonic-mean aggregate can never exceed the best phase or
        // undercut the worst one.
        let space = DesignSpace::new();
        let sim = Simulator::new();
        let mut rng = StdRng::seed_from_u64(3);
        let point = space.random_point(&mut rng);
        let config = space.config(&point);
        let phases = PhaseSet::generate(SpecWorkload::Cam4_627);
        let per_phase: Vec<f64> = phases
            .phases()
            .iter()
            .map(|ph| sim.simulate(&config, &ph.profile).ipc)
            .collect();
        let ds = Dataset::generate_at(&space, &sim, SpecWorkload::Cam4_627, &[point]);
        let agg = ds.samples()[0].ipc;
        let lo = per_phase.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = per_phase.iter().cloned().fold(0.0, f64::max);
        assert!(agg >= lo && agg <= hi, "{agg} outside [{lo}, {hi}]");
    }

    #[test]
    fn csv_roundtrip() {
        let ds = small_dataset(8, 4);
        let mut path = std::env::temp_dir();
        path.push(format!("metadse-ds-{}.csv", std::process::id()));
        ds.write_csv(&path).unwrap();
        let back = Dataset::read_csv(&path).unwrap();
        assert_eq!(back.workload_name(), ds.workload_name());
        assert_eq!(back.len(), ds.len());
        for (a, b) in ds.samples().iter().zip(back.samples()) {
            assert!((a.ipc - b.ipc).abs() < 1e-8);
            assert!((a.power_w - b.power_w).abs() < 1e-8);
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn read_csv_rejects_garbage() {
        let mut path = std::env::temp_dir();
        path.push(format!("metadse-bad-{}.csv", std::process::id()));
        std::fs::write(&path, "nonsense\n1,2\n").unwrap();
        assert!(Dataset::read_csv(&path).is_err());
        std::fs::remove_file(path).ok();
    }
}
