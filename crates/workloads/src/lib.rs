//! # metadse-workloads
//!
//! Synthetic SPEC CPU 2017 workloads and dataset machinery for the MetaDSE
//! reproduction. This crate stands in for the paper's benchmark
//! infrastructure:
//!
//! * [`SpecWorkload`] — hand-crafted behavioural profiles for all 20
//!   speed-suite workloads, preserving the suite's diversity (pointer
//!   chasers, interpreters, FP streaming kernels, …),
//! * [`PhaseSet`] — SimPoint-style decomposition into at most 30 weighted
//!   phases of ten million instructions,
//! * [`Dataset`] — labeled (design point → IPC/power) rows produced by the
//!   analytical simulator, with CSV round-tripping,
//! * [`TaskSampler`] — few-shot support/query task sampling, the unit of
//!   meta-learning,
//! * [`WorkloadSplit`] — the paper's 7 train / 5 validation / 5 test
//!   assignment (test = Table II's five workloads) and random re-splits.
//!
//! # Example
//!
//! ```
//! use metadse_sim::{DesignSpace, Simulator};
//! use metadse_workloads::{Dataset, Metric, SpecWorkload, TaskSampler};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let space = DesignSpace::new();
//! let sim = Simulator::new();
//! let mut rng = StdRng::seed_from_u64(0);
//! let data = Dataset::generate(&space, &sim, SpecWorkload::Mcf605, 60, &mut rng);
//! let task = TaskSampler::new(5, 45).sample(&data, Metric::Ipc, &mut rng);
//! assert_eq!(task.support_size(), 5);
//! ```

pub mod dataset;
pub mod phases;
pub mod spec;
pub mod tasks;

pub use dataset::{Dataset, Metric, Sample};
pub use phases::{Phase, PhaseSet, INSTRUCTIONS_PER_PHASE, MAX_PHASES};
pub use spec::{SpecWorkload, WorkloadSplit};
pub use tasks::{Task, TaskSampler};
