//! SimPoint-style phase decomposition.
//!
//! The paper evaluates each SPEC workload through SimPoints: at most 30
//! representative clusters of ten million instructions each, weighted by
//! how much of the execution they represent. Here phases are deterministic
//! perturbations of a workload's base profile — program phases genuinely
//! differ in mix, locality, and predictability, and the weighted
//! aggregation over phases is what produces a workload's label.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use metadse_sim::{Elem, WorkloadProfile};

use crate::spec::SpecWorkload;

/// Number of instructions represented by one phase (ten million, as in the
/// paper).
pub const INSTRUCTIONS_PER_PHASE: u64 = 10_000_000;

/// Maximum number of phases per workload (paper: "at most 30 clusters").
pub const MAX_PHASES: usize = 30;

/// One SimPoint phase: a perturbed profile plus its execution weight.
#[derive(Debug, Clone, PartialEq)]
pub struct Phase {
    /// Behavioural profile of this phase.
    pub profile: WorkloadProfile,
    /// Fraction of the workload's execution this phase represents
    /// (weights over a workload sum to 1).
    pub weight: Elem,
}

/// The phase decomposition of one workload.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseSet {
    workload: SpecWorkload,
    phases: Vec<Phase>,
}

impl PhaseSet {
    /// Deterministically decomposes `workload` into SimPoint phases.
    ///
    /// Phase count (8..=30) and perturbations derive from a seed hashed
    /// from the workload name, so every call returns identical phases —
    /// matching how SimPoint clustering of a fixed binary is reproducible.
    pub fn generate(workload: SpecWorkload) -> PhaseSet {
        let base = workload.profile();
        let mut rng = StdRng::seed_from_u64(name_seed(workload.name()));
        let count = 8 + (rng.gen_range(0..=(MAX_PHASES - 8)));

        // Execution weights: exponential draws normalized to 1 (a few hot
        // phases dominating, as SimPoint typically finds).
        let raw: Vec<Elem> = (0..count)
            .map(|_| -(rng.gen_range(Elem::EPSILON..1.0)).ln())
            .collect();
        let total: Elem = raw.iter().sum();

        let phases = raw
            .into_iter()
            .map(|w| Phase {
                profile: perturb(&base, &mut rng),
                weight: w / total,
            })
            .collect();
        PhaseSet { workload, phases }
    }

    /// The workload these phases decompose.
    pub fn workload(&self) -> SpecWorkload {
        self.workload
    }

    /// The phases, hot weights first not guaranteed (SimPoint order).
    pub fn phases(&self) -> &[Phase] {
        &self.phases
    }

    /// Number of phases.
    pub fn len(&self) -> usize {
        self.phases.len()
    }

    /// Whether the set is empty (never true for generated sets).
    pub fn is_empty(&self) -> bool {
        self.phases.is_empty()
    }
}

/// Multiplicative perturbation of the base profile (±15% on continuous
/// behaviour, mix re-normalized), keeping every field in its legal range.
fn perturb(base: &WorkloadProfile, rng: &mut StdRng) -> WorkloadProfile {
    let mut p = base.clone();
    let wiggle = |v: Elem, lo: Elem, hi: Elem, rng: &mut StdRng| -> Elem {
        (v * rng.gen_range(0.85..1.15)).clamp(lo, hi)
    };

    // Instruction mix: perturb then renormalize.
    let mut mix = [
        p.frac_int_alu,
        p.frac_int_mul,
        p.frac_fp_alu,
        p.frac_fp_mul,
        p.frac_load,
        p.frac_store,
        p.frac_branch,
    ];
    for m in &mut mix {
        *m *= rng.gen_range(0.85..1.15);
    }
    let total: Elem = mix.iter().sum();
    for m in &mut mix {
        *m /= total;
    }
    [
        p.frac_int_alu,
        p.frac_int_mul,
        p.frac_fp_alu,
        p.frac_fp_mul,
        p.frac_load,
        p.frac_store,
        p.frac_branch,
    ] = mix;

    p.branch_entropy = wiggle(p.branch_entropy, 0.0, 1.0, rng);
    p.indirect_branch_frac = wiggle(p.indirect_branch_frac, 0.0, 1.0, rng);
    p.call_depth = wiggle(p.call_depth, 1.0, 128.0, rng);
    p.data_ws_l1_kb = wiggle(p.data_ws_l1_kb, 1.0, 1024.0, rng);
    p.data_ws_l2_kb = wiggle(p.data_ws_l2_kb, 8.0, 16384.0, rng);
    p.code_footprint_kb = wiggle(p.code_footprint_kb, 1.0, 512.0, rng);
    p.spatial_locality = wiggle(p.spatial_locality, 0.0, 1.0, rng);
    p.ilp = wiggle(p.ilp, 1.0, 8.0, rng);
    p.mlp = wiggle(p.mlp, 1.0, 8.0, rng);
    p.streaming = wiggle(p.streaming, 0.0, 1.0, rng);
    p
}

/// FNV-1a hash of a workload name, used as the phase seed.
fn name_seed(name: &str) -> u64 {
    let mut hash: u64 = 0xcbf29ce484222325;
    for b in name.bytes() {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x100000001b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = PhaseSet::generate(SpecWorkload::Mcf605);
        let b = PhaseSet::generate(SpecWorkload::Mcf605);
        assert_eq!(a, b);
    }

    #[test]
    fn phase_counts_within_simpoint_bounds() {
        for w in SpecWorkload::ALL {
            let set = PhaseSet::generate(w);
            assert!(
                (8..=MAX_PHASES).contains(&set.len()),
                "{w} has {} phases",
                set.len()
            );
        }
    }

    #[test]
    fn weights_sum_to_one() {
        for w in SpecWorkload::ALL {
            let set = PhaseSet::generate(w);
            let total: f64 = set.phases().iter().map(|p| p.weight).sum();
            assert!((total - 1.0).abs() < 1e-9, "{w} weights sum to {total}");
            assert!(set.phases().iter().all(|p| p.weight > 0.0));
        }
    }

    #[test]
    fn phases_are_valid_profiles() {
        for w in SpecWorkload::ALL {
            for phase in PhaseSet::generate(w).phases() {
                assert!(
                    phase.profile.validate().is_ok(),
                    "{w} phase invalid: {:?}",
                    phase.profile.validate()
                );
            }
        }
    }

    #[test]
    fn phases_differ_from_base_but_stay_close() {
        let base = SpecWorkload::Mcf605.profile();
        let set = PhaseSet::generate(SpecWorkload::Mcf605);
        let mut any_different = false;
        for phase in set.phases() {
            if (phase.profile.data_ws_l1_kb - base.data_ws_l1_kb).abs() > 1e-9 {
                any_different = true;
            }
            // Perturbation is bounded: a phase cannot flip the workload's
            // fundamental character.
            assert!(phase.profile.data_ws_l1_kb > base.data_ws_l1_kb * 0.7);
            assert!(phase.profile.data_ws_l1_kb < base.data_ws_l1_kb * 1.3);
        }
        assert!(
            any_different,
            "phases should not all equal the base profile"
        );
    }

    #[test]
    fn different_workloads_get_different_phase_structure() {
        let a = PhaseSet::generate(SpecWorkload::Mcf605);
        let b = PhaseSet::generate(SpecWorkload::Bwaves603);
        assert_ne!(a.len(), 0);
        assert!(a.len() != b.len() || a.phases()[0].weight != b.phases()[0].weight);
    }
}
