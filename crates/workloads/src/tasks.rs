//! Few-shot task sampling.
//!
//! Meta-learning treats each workload as a distribution of *tasks*: a task
//! is a small support set (the shots a practitioner could afford to
//! simulate) plus a query set (what the adapted model is judged on). The
//! paper samples 200 tasks per workload for training and 1000 for
//! evaluation.

use rand::Rng;

use metadse_sim::Elem;

use crate::dataset::{Dataset, Metric};

/// A few-shot regression task.
#[derive(Debug, Clone, PartialEq)]
pub struct Task {
    /// Support features, `support_size × feature_dim`.
    pub support_x: Vec<Vec<Elem>>,
    /// Support labels.
    pub support_y: Vec<Elem>,
    /// Query features, `query_size × feature_dim`.
    pub query_x: Vec<Vec<Elem>>,
    /// Query labels.
    pub query_y: Vec<Elem>,
}

impl Task {
    /// Number of support shots.
    pub fn support_size(&self) -> usize {
        self.support_x.len()
    }

    /// Number of query points.
    pub fn query_size(&self) -> usize {
        self.query_x.len()
    }
}

/// Samples few-shot tasks from per-workload datasets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaskSampler {
    support_size: usize,
    query_size: usize,
}

impl TaskSampler {
    /// Creates a sampler producing `support_size`-shot tasks with
    /// `query_size` query points.
    ///
    /// # Panics
    ///
    /// Panics if either size is zero.
    pub fn new(support_size: usize, query_size: usize) -> TaskSampler {
        assert!(support_size > 0 && query_size > 0, "sizes must be positive");
        TaskSampler {
            support_size,
            query_size,
        }
    }

    /// Support size of sampled tasks.
    pub fn support_size(&self) -> usize {
        self.support_size
    }

    /// Query size of sampled tasks.
    pub fn query_size(&self) -> usize {
        self.query_size
    }

    /// Draws one task from `dataset` without replacement.
    ///
    /// # Panics
    ///
    /// Panics if the dataset has fewer than `support + query` rows.
    pub fn sample<R: Rng + ?Sized>(&self, dataset: &Dataset, metric: Metric, rng: &mut R) -> Task {
        let need = self.support_size + self.query_size;
        assert!(
            dataset.len() >= need,
            "dataset {} has {} rows; task needs {need}",
            dataset.workload_name(),
            dataset.len()
        );
        // Partial Fisher-Yates: choose `need` distinct indices.
        let mut indices: Vec<usize> = (0..dataset.len()).collect();
        for i in 0..need {
            let j = rng.gen_range(i..indices.len());
            indices.swap(i, j);
        }
        let pick = |range: std::ops::Range<usize>| -> (Vec<Vec<Elem>>, Vec<Elem>) {
            let mut xs = Vec::with_capacity(range.len());
            let mut ys = Vec::with_capacity(range.len());
            for &idx in &indices[range] {
                let s = &dataset.samples()[idx];
                xs.push(s.features.clone());
                ys.push(s.label(metric));
            }
            (xs, ys)
        };
        let (support_x, support_y) = pick(0..self.support_size);
        let (query_x, query_y) = pick(self.support_size..need);
        Task {
            support_x,
            support_y,
            query_x,
            query_y,
        }
    }

    /// Draws `n` independent tasks.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`TaskSampler::sample`].
    pub fn sample_many<R: Rng + ?Sized>(
        &self,
        dataset: &Dataset,
        metric: Metric,
        n: usize,
        rng: &mut R,
    ) -> Vec<Task> {
        (0..n).map(|_| self.sample(dataset, metric, rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Sample;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy_dataset(n: usize) -> Dataset {
        let samples = (0..n)
            .map(|i| Sample {
                features: vec![i as f64, (i * i) as f64],
                ipc: i as f64,
                power_w: 10.0 * i as f64,
            })
            .collect();
        Dataset::from_samples("toy", samples)
    }

    #[test]
    fn task_shapes() {
        let ds = toy_dataset(60);
        let sampler = TaskSampler::new(5, 45);
        let mut rng = StdRng::seed_from_u64(1);
        let t = sampler.sample(&ds, Metric::Ipc, &mut rng);
        assert_eq!(t.support_size(), 5);
        assert_eq!(t.query_size(), 45);
        assert_eq!(t.support_x[0].len(), 2);
    }

    #[test]
    fn support_and_query_are_disjoint() {
        let ds = toy_dataset(30);
        let sampler = TaskSampler::new(10, 20);
        let mut rng = StdRng::seed_from_u64(2);
        let t = sampler.sample(&ds, Metric::Ipc, &mut rng);
        // Feature vectors are unique per row in the toy dataset, so overlap
        // would show as equal rows.
        for s in &t.support_x {
            assert!(!t.query_x.contains(s), "support row leaked into query");
        }
        // All 30 rows used exactly once.
        let mut all: Vec<f64> = t.support_y.iter().chain(&t.query_y).copied().collect();
        all.sort_by(f64::total_cmp);
        let expected: Vec<f64> = (0..30).map(|i| i as f64).collect();
        assert_eq!(all, expected);
    }

    #[test]
    fn metric_selects_labels() {
        let ds = toy_dataset(20);
        let sampler = TaskSampler::new(3, 3);
        let mut rng = StdRng::seed_from_u64(3);
        let t_ipc = sampler.sample(&ds, Metric::Ipc, &mut rng);
        let mut rng = StdRng::seed_from_u64(3);
        let t_pow = sampler.sample(&ds, Metric::Power, &mut rng);
        for (a, b) in t_ipc.support_y.iter().zip(&t_pow.support_y) {
            assert!((b - 10.0 * a).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "task needs")]
    fn undersized_dataset_panics() {
        let ds = toy_dataset(5);
        let sampler = TaskSampler::new(5, 45);
        let mut rng = StdRng::seed_from_u64(4);
        let _ = sampler.sample(&ds, Metric::Ipc, &mut rng);
    }

    #[test]
    fn sample_many_produces_distinct_tasks() {
        let ds = toy_dataset(100);
        let sampler = TaskSampler::new(5, 10);
        let mut rng = StdRng::seed_from_u64(5);
        let tasks = sampler.sample_many(&ds, Metric::Ipc, 10, &mut rng);
        assert_eq!(tasks.len(), 10);
        assert!(tasks.windows(2).any(|w| w[0] != w[1]));
    }
}
