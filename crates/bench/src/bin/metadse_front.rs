//! `metadse-front` — the sharded serving front door, batteries
//! included.
//!
//! Launches N shard worker processes (re-executions of this binary with
//! the `--shard-worker` flag), blocks until every shard's readiness
//! barrier passes, then serves the front-door socket until killed.
//! Crashed shards are respawned by the built-in supervisor; clients
//! speak the binary frame protocol of [`metadse_serve::shard`] (see
//! [`metadse_serve::FrontClient`]).
//!
//! ```text
//! metadse-front --registry results/models --socket /run/mdse/front.sock --shards 4
//! METADSE_SHARDS=4 metadse-front --registry results/models
//! ```
//!
//! Flags:
//!
//! - `--registry DIR` (required) — registry root shared by all shards;
//! - `--socket PATH` — client socket (default `<dir>/front.sock`);
//! - `--dir DIR` — socket scratch directory (default
//!   `$TMPDIR/metadse-front-<pid>`);
//! - `--shards N` — worker count (default `METADSE_SHARDS`, else 1);
//! - `--workers/--max-batch/--max-wait-us` — per-shard serving tuning;
//! - `--duration SECS` — exit after this long (default: run forever).

#[cfg(unix)]
fn run() -> Result<(), String> {
    use std::path::PathBuf;
    use std::time::Duration;

    use metadse_bench::fleet::{launch, FleetOptions};
    use metadse_bench::report;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut registry: Option<PathBuf> = None;
    let mut socket: Option<PathBuf> = None;
    let mut dir: Option<PathBuf> = None;
    let mut shards = metadse::shard::shard_count_from_env().unwrap_or(1);
    let mut workers = 1usize;
    let mut max_batch = 8usize;
    let mut max_wait_us = 100u64;
    let mut duration: Option<u64> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--registry" => registry = Some(PathBuf::from(value("--registry")?)),
            "--socket" => socket = Some(PathBuf::from(value("--socket")?)),
            "--dir" => dir = Some(PathBuf::from(value("--dir")?)),
            "--shards" => {
                shards = value("--shards")?
                    .parse()
                    .map_err(|e| format!("--shards: {e}"))?;
            }
            "--workers" => {
                workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?;
            }
            "--max-batch" => {
                max_batch = value("--max-batch")?
                    .parse()
                    .map_err(|e| format!("--max-batch: {e}"))?;
            }
            "--max-wait-us" => {
                max_wait_us = value("--max-wait-us")?
                    .parse()
                    .map_err(|e| format!("--max-wait-us: {e}"))?;
            }
            "--duration" => {
                duration = Some(
                    value("--duration")?
                        .parse()
                        .map_err(|e| format!("--duration: {e}"))?,
                );
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    let registry = registry.ok_or("--registry is required")?;
    if shards == 0 {
        return Err("--shards must be at least 1".to_string());
    }
    let dir = dir.unwrap_or_else(|| {
        std::env::temp_dir().join(format!("metadse-front-{}", std::process::id()))
    });

    let mut opts = FleetOptions::new(&dir, registry, shards);
    opts.workers = workers;
    opts.max_batch = max_batch;
    opts.max_wait_us = max_wait_us;
    let fleet = launch(&opts).map_err(|e| format!("fleet launch failed: {e}"))?;
    // The in-process Front binds `<dir>/front.sock`; an explicit
    // `--socket` is honoured via a symlink so the Front keeps owning
    // (and cleaning up) its own path.
    if let Some(requested) = socket {
        if requested != fleet.socket() {
            let _ = std::fs::remove_file(&requested);
            std::os::unix::fs::symlink(fleet.socket(), &requested)
                .map_err(|e| format!("linking {}: {e}", requested.display()))?;
            report::kv("client socket", requested.display());
        }
    }
    report::kv("front socket", fleet.socket().display());
    report::kv("shards", shards);

    match duration {
        Some(secs) => std::thread::sleep(Duration::from_secs(secs)),
        None => loop {
            std::thread::sleep(Duration::from_secs(3600));
        },
    }
    fleet.shutdown();
    Ok(())
}

fn main() {
    #[cfg(unix)]
    {
        if let Some(code) = metadse_serve::shard::run_worker_if_flagged() {
            std::process::exit(code);
        }
        if let Err(e) = run() {
            eprintln!("metadse-front: {e}");
            std::process::exit(2);
        }
    }
    #[cfg(not(unix))]
    {
        eprintln!("metadse-front: unix sockets unavailable on this platform");
        std::process::exit(1);
    }
}
