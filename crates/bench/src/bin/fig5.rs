//! Regenerates paper Fig. 5: IPC RMSE per test workload for TrEnDSE,
//! TrEnDSE-Transformer, MetaDSE-w/o-WAM, and MetaDSE, plus the GEOMEAN
//! column and the headline improvement percentages.

use metadse::experiment::{run_fig5, Environment};
use metadse_bench::{banner, f4, report, scale_from_args, write_csv};

fn main() {
    let scale = scale_from_args();
    banner(
        "Fig. 5 — per-workload IPC RMSE of the four frameworks",
        &scale,
    );
    let env = Environment::build(&scale, scale.seed);
    let result = run_fig5(&env, &scale);

    let mut rows = vec![vec![
        "workload".to_string(),
        "TrEnDSE".to_string(),
        "TrEnDSE-Transformer".to_string(),
        "MetaDSE-w/o-WAM".to_string(),
        "MetaDSE".to_string(),
    ]];
    for row in result.rows.iter().chain(std::iter::once(&result.geomean)) {
        rows.push(vec![
            row.workload.clone(),
            f4(row.trendse),
            f4(row.trendse_transformer),
            f4(row.metadse_no_wam),
            f4(row.metadse),
        ]);
    }
    report::table(&rows);

    let g = &result.geomean;
    report::line(format!(
        "MetaDSE vs TrEnDSE (geomean RMSE): {:+.1}%  (paper: -44.3%)",
        (g.metadse / g.trendse - 1.0) * 100.0
    ));
    report::line(format!(
        "WAM contribution (MetaDSE vs w/o WAM): {:+.1}%  (paper: -27%)",
        (g.metadse / g.metadse_no_wam - 1.0) * 100.0
    ));
    match write_csv("fig5_ipc_rmse", &rows) {
        Ok(p) => report::kv("wrote", p.display()),
        Err(e) => report::warn(format!("could not write CSV: {e}")),
    }
}
