//! Regenerates paper Fig. 6: sensitivity of transfer quality to the
//! upstream (pre-training) support-set size, with the downstream support
//! size fixed at ten. The paper observes an optimum where the upstream
//! size aligns with the downstream size.

use metadse::experiment::{run_fig6, Environment};
use metadse_bench::{banner, f4, report, scale_from_args, write_csv};

fn main() {
    let scale = scale_from_args();
    banner("Fig. 6 — pre-training support-size sensitivity", &scale);
    let env = Environment::build(&scale, scale.seed);
    let sizes = [5usize, 10, 20, 30, 40];
    let result = run_fig6(&env, &scale, &sizes);

    let mut rows = vec![vec![
        "pretrain support".to_string(),
        "IPC RMSE".to_string(),
        "explained variance".to_string(),
    ]];
    for p in &result.points {
        rows.push(vec![p.pretrain_support.to_string(), f4(p.rmse), f4(p.ev)]);
    }
    report::table(&rows);
    report::kv("downstream support fixed at", result.downstream_support);
    let best = result
        .points
        .iter()
        .min_by(|a, b| a.rmse.total_cmp(&b.rmse))
        .expect("non-empty sweep");
    report::line(format!(
        "best RMSE at upstream support {} (paper: optimum near the downstream size)",
        best.pretrain_support
    ));
    match write_csv("fig6_pretrain_sensitivity", &rows) {
        Ok(p) => report::kv("wrote", p.display()),
        Err(e) => report::warn(format!("could not write CSV: {e}")),
    }
}
