//! End-to-end trace of a small pretrain + adapt pipeline.
//!
//! Runs dataset simulation, MAML pre-training, WAM mask generation and a
//! downstream adaptation sweep under a root span, then writes every span
//! and metric to `TRACE_results.jsonl` and prints the span-tree summary.
//! A second section reproduces the PR1 `t4`-slower-than-`t1` benchmark
//! anomaly and attributes it with the trace counters.
//!
//! ```text
//! cargo run --release -p metadse-bench --features obs --bin trace_report
//! ```
//!
//! Without `--features obs` the pipeline still runs (instrumentation
//! compiles to no-ops) but the trace is empty.

use std::path::Path;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

use metadse::experiment::{pretrain_metadse, Environment, Scale};
use metadse::maml::MamlConfig;
use metadse::wam::{self, AdaptConfig};
use metadse::ServablePredictor;
use metadse_bench::report;
use metadse_bench::serving::{request_row, DISPATCH_GEOM};
use metadse_bench::timing::{black_box, human_ns};
use metadse_obs as obs;
use metadse_parallel::ParallelConfig;
use metadse_serve::plan::{OP_KINDS, OP_KIND_NAMES};
use metadse_serve::{BatchConfig, ModelRegistry, PlanCacheStats, ServeConfig, Server};
use metadse_sim::{DesignSpace, Simulator};
use metadse_workloads::{Dataset, Metric, SpecWorkload, Task, TaskSampler, WorkloadSplit};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A four-workload split small enough to trace in seconds.
fn tiny_split() -> WorkloadSplit {
    WorkloadSplit {
        train: vec![SpecWorkload::Gcc602, SpecWorkload::Lbm619],
        validation: vec![SpecWorkload::Mcf605],
        test: vec![SpecWorkload::Nab644],
    }
}

/// A seconds-scale configuration exercising every instrumented stage.
fn tiny_scale() -> Scale {
    let mut scale = Scale::quick();
    scale.samples_per_workload = 60;
    scale.maml = MamlConfig {
        epochs: 2,
        iterations_per_epoch: 2,
        inner_steps: 2,
        support_size: 5,
        query_size: 15,
        val_tasks: 1,
        ..MamlConfig::tiny()
    };
    scale
}

/// Best-of-`reps` wall time of `f`.
fn time_min<T>(reps: usize, mut f: impl FnMut() -> T) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..reps {
        let start = Instant::now();
        black_box(f());
        best = best.min(start.elapsed());
    }
    best
}

/// Times one dataset-generation and one adaptation-sweep run under
/// `parallel`, returning `(dataset_wall, sweep_wall)`.
fn fanout_walls(tasks: &[Task], parallel: &ParallelConfig) -> (Duration, Duration) {
    let space = DesignSpace::new();
    let simulator = Simulator::new();
    let dataset = time_min(3, || {
        let mut rng = StdRng::seed_from_u64(7);
        Dataset::generate_with(
            &space,
            &simulator,
            SpecWorkload::Xalancbmk623,
            200,
            &mut rng,
            parallel,
        )
    });
    let model = metadse::predictor::TransformerPredictor::new(tiny_scale().predictor, 9);
    let adapt = AdaptConfig {
        steps: 5,
        ..AdaptConfig::default()
    };
    let sweep = time_min(2, || {
        wam::adapt_sweep(&model, tasks, None, &adapt, parallel)
    });
    (dataset, sweep)
}

/// Drives a batched workload through a scratch server with coalescing
/// width `max_batch` and returns the tenant's accumulated phase sums
/// `(queue_wait_us, assembly_us, forward_us, reply_us, e2e_us)` — the
/// per-request trace attribution rolled up per fingerprint — plus the
/// registry's plan-cache stats for the run. The `serve/batch` and
/// `serve/forward` spans these phases correspond to land in
/// `TRACE_results.jsonl` when obs is compiled in.
fn serve_phase_sums(
    max_batch: usize,
    rounds: usize,
    plan: bool,
) -> ((u64, u64, u64, u64, u64), PlanCacheStats) {
    let model = metadse::predictor::TransformerPredictor::new(DISPATCH_GEOM, 9);
    let servable = ServablePredictor::capture(&model, None, "ipc");
    let dir = std::env::temp_dir().join(format!(
        "metadse_trace_serve_b{max_batch}_p{}_{}",
        plan as u8,
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let registry = Arc::new(ModelRegistry::open(dir.clone(), 2));
    registry.publish("trace", &servable).expect("publish model");
    let server = Server::start(
        Arc::clone(&registry),
        ServeConfig {
            batch: BatchConfig {
                max_batch,
                max_wait_us: 200,
                queue_capacity: 4096,
            },
            workers: 1,
            plan,
        },
    );
    let arity = DISPATCH_GEOM.num_params;
    for round in 0..rounds {
        // Submit one coalescing window's worth at once, then wait them
        // all, so the worker actually assembles `max_batch`-row batches.
        let tickets: Vec<_> = (0..max_batch)
            .map(|i| server.submit("trace", &request_row(round * max_batch + i, arity), None))
            .collect();
        for t in tickets {
            t.wait().expect("trace serve request");
        }
    }
    let tenants = server.stats().tenants();
    let (_, tenant) = tenants.first().expect("tenant row");
    let sums = (
        tenant.queue_wait_us.load(Ordering::Relaxed),
        tenant.assembly_us.load(Ordering::Relaxed),
        tenant.forward_us.load(Ordering::Relaxed),
        tenant.reply_us.load(Ordering::Relaxed),
        tenant.e2e_us.load(Ordering::Relaxed),
    );
    let plan_stats = registry.plan_cache_stats();
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
    (sums, plan_stats)
}

fn main() {
    report::banner("MetaDSE trace report — pretrain + adapt pipeline");
    if !obs::enabled() {
        report::warn("built without --features obs: the trace below will be empty");
    }
    report::kv(
        "hardware threads",
        metadse_parallel::available_parallelism(),
    );
    report::kv(
        "default serial cutoff",
        metadse_parallel::DEFAULT_SERIAL_CUTOFF,
    );

    // --- Traced pipeline -------------------------------------------------
    let scale = tiny_scale();
    let tasks: Vec<Task> = {
        let _root = obs::span("trace/pipeline");
        let env = Environment::build_with_split(&scale, tiny_split(), scale.seed);
        let (model, mask) = pretrain_metadse(&env, &scale, Metric::Ipc, &scale.maml);

        let mut rng = StdRng::seed_from_u64(11);
        let sampler = TaskSampler::new(scale.eval_support, scale.eval_query);
        let dataset = env.dataset(SpecWorkload::Nab644);
        let tasks: Vec<Task> = (0..8)
            .map(|_| sampler.sample(dataset, Metric::Ipc, &mut rng))
            .collect();
        black_box(wam::adapt_sweep(
            &model,
            &tasks,
            Some(&mask),
            &scale.adapt,
            &scale.parallel,
        ));
        tasks
    };

    // --- t1 vs t4 attribution --------------------------------------------
    report::section("t1 vs t4 attribution");
    let rebuilds_before = obs::counter_value("maml/worker_rebuilds");
    let (d_t1, s_t1) = fanout_walls(&tasks, &ParallelConfig::serial());
    let (d_t4, s_t4) = fanout_walls(&tasks, &ParallelConfig::with_threads(4));
    let (d_t4f, s_t4f) = fanout_walls(
        &tasks,
        &ParallelConfig::with_threads(4)
            .with_serial_cutoff(1)
            .oversubscribed(),
    );
    let rebuilds = obs::counter_value("maml/worker_rebuilds") - rebuilds_before;

    report::table(&[
        vec![
            "fan-out".to_string(),
            "t1".to_string(),
            "t4 (default)".to_string(),
            "t4 (forced)".to_string(),
        ],
        vec![
            "dataset/generate 200pts".to_string(),
            human_ns(d_t1.as_nanos()),
            human_ns(d_t4.as_nanos()),
            human_ns(d_t4f.as_nanos()),
        ],
        vec![
            "wam/adapt_sweep 8 tasks".to_string(),
            human_ns(s_t1.as_nanos()),
            human_ns(s_t4.as_nanos()),
            human_ns(s_t4f.as_nanos()),
        ],
    ]);
    report::kv("worker model rebuilds during forced runs", rebuilds);
    report::line(format!(
        "attribution: the PR1 anomaly (t4 slower than t1) came from forcing 4 \
         workers onto {} hardware thread(s) — spawn + join + time-slicing is \
         pure overhead when no cores are free — and from each spawned worker \
         rebuilding a thread-local predictor from the parameter snapshot \
         ({rebuilds} rebuilds in the forced runs above). The default config \
         now clamps workers to the machine and runs fan-outs below {} items \
         inline, so the default t4 column tracks t1.",
        metadse_parallel::available_parallelism(),
        metadse_parallel::DEFAULT_SERIAL_CUTOFF,
    ));

    // --- Allocation-free hot path ----------------------------------------
    report::section("buffer pool and fused kernels");
    let pool_hits = obs::counter_value("nn/pool_hits");
    let pool_misses = obs::counter_value("nn/pool_misses");
    let fused_calls = obs::counter_value("nn/fused_calls");
    report::kv("nn/pool_hits", pool_hits);
    report::kv("nn/pool_misses", pool_misses);
    report::kv("nn/fused_calls", fused_calls);
    let total = pool_hits + pool_misses;
    if total > 0 {
        report::line(format!(
            "attribution: {:.1}% of tensor buffers in the runs above came out \
             of the thread-local pool instead of the allocator; {fused_calls} \
             forward ops ran as fused single-node kernels.",
            100.0 * pool_hits as f64 / total as f64,
        ));
    }

    // --- Serve pipeline attribution ---------------------------------------
    report::section("serve pipeline: queue-wait vs forward share");
    let mut rows = vec![vec![
        "batch size".to_string(),
        "queue-wait".to_string(),
        "assembly".to_string(),
        "forward".to_string(),
        "reply".to_string(),
        "e2e/request".to_string(),
    ]];
    let op_us_before: Vec<u64> = OP_KIND_NAMES
        .iter()
        .map(|name| obs::counter_value(&format!("serve/plan_op/{name}_us")))
        .collect();
    let mut plan_totals = PlanCacheStats::default();
    for &max_batch in &[1usize, 8, 32] {
        let requests = 16 * max_batch;
        let ((queue, assembly, forward, reply, e2e), plan_stats) =
            serve_phase_sums(max_batch, 16, true);
        plan_totals.hits += plan_stats.hits;
        plan_totals.misses += plan_stats.misses;
        plan_totals.compile_us += plan_stats.compile_us;
        let share = |phase: u64| {
            if e2e == 0 {
                "-".to_string()
            } else {
                format!("{:.1}%", 100.0 * phase as f64 / e2e as f64)
            }
        };
        rows.push(vec![
            max_batch.to_string(),
            share(queue),
            share(assembly),
            share(forward),
            share(reply),
            human_ns(u128::from(e2e / requests as u64) * 1000),
        ]);
    }
    report::table(&rows);
    report::line(
        "attribution: per-request phase timings from the serve trace plane, \
         rolled up per tenant. As the coalescing width grows, queue-wait's \
         share of end-to-end latency rises (requests sit in the batcher \
         while the window fills) and forward's share falls (one model \
         forward amortizes across every coalesced row) — the micro-batching \
         trade the dispatch-bound geometry is built to expose. The matching \
         `serve/batch` and `serve/forward` spans are in the trace below.",
    );

    // --- Plan compile time and per-op forward attribution -----------------
    report::section("compiled plans: compile time and per-op forward share");
    report::kv("serve/plan_cache_hits", plan_totals.hits);
    report::kv("serve/plan_cache_misses", plan_totals.misses);
    report::kv(
        "serve/plan_compile_us",
        human_ns(u128::from(plan_totals.compile_us) * 1000),
    );
    let op_us: Vec<u64> = OP_KIND_NAMES
        .iter()
        .zip(&op_us_before)
        .map(|(name, before)| {
            obs::counter_value(&format!("serve/plan_op/{name}_us")).saturating_sub(*before)
        })
        .collect();
    let forward_total: u64 = op_us.iter().sum();
    if forward_total > 0 {
        let mut order: Vec<usize> = (0..OP_KINDS).collect();
        order.sort_by_key(|&i| std::cmp::Reverse(op_us[i]));
        let mut op_rows = vec![vec![
            "plan op".to_string(),
            "forward time".to_string(),
            "share".to_string(),
        ]];
        for i in order {
            if op_us[i] == 0 {
                continue;
            }
            op_rows.push(vec![
                OP_KIND_NAMES[i].to_string(),
                human_ns(u128::from(op_us[i]) * 1000),
                format!("{:.1}%", 100.0 * op_us[i] as f64 / forward_total as f64),
            ]);
        }
        report::table(&op_rows);
        report::line(format!(
            "attribution: the serve runs above executed through compiled \
             fixed-shape plans — {} compile(s) totalling {}, and every \
             subsequent batch reused a worker-memoized plan ({} cache \
             hit(s); workers re-consult the cache only on hot-swap). The \
             per-op rows split the plan executor's forward time by IR op \
             kind via the `serve/plan_op/*` counters; on the \
             dispatch-bound geometry the linear/attention ops dominate \
             while shape plumbing (split/merge heads) stays marginal.",
            plan_totals.misses,
            human_ns(u128::from(plan_totals.compile_us) * 1000),
            plan_totals.hits,
        ));
    } else {
        report::line(
            "per-op attribution requires --features obs (the \
             serve/plan_op/* counters compile to no-ops without it).",
        );
    }

    // --- Trace artifacts --------------------------------------------------
    report::section("span tree and metrics");
    report::line(obs::summary());
    let path = Path::new("TRACE_results.jsonl");
    match obs::write_jsonl(path) {
        Ok(()) => report::kv("wrote", path.display()),
        Err(e) => report::warn(format!("could not write {}: {e}", path.display())),
    }
}
