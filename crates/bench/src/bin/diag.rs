//! Diagnostic: per-workload label statistics and cross-workload transfer
//! difficulty of the simulated environment (not a paper experiment; used
//! to sanity-check that the reproduction's learning problem has the
//! paper's character).

use metadse::experiment::Environment;
use metadse_bench::{report, scale_from_args};
use metadse_mlkit::metrics::{mean, std_dev};
use metadse_mlkit::{GradientBoosting, Regressor};
use metadse_workloads::Metric;

fn main() {
    let scale = scale_from_args();
    let env = Environment::build(&scale, scale.seed);

    let mut rows = vec![vec![
        "workload".to_string(),
        "ipc mean".to_string(),
        "ipc std".to_string(),
        "ipc min".to_string(),
        "ipc max".to_string(),
    ]];
    for (w, ds) in &env.datasets {
        let y = ds.labels(Metric::Ipc);
        let lo = y.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = y.iter().cloned().fold(0.0_f64, f64::max);
        rows.push(vec![
            w.name().to_string(),
            format!("{:.3}", mean(&y)),
            format!("{:.3}", std_dev(&y)),
            format!("{lo:.3}"),
            format!("{hi:.3}"),
        ]);
    }
    report::table(&rows);

    // Cross-workload transfer probe: fit GBRT on one workload, test on
    // another (normalized RMSE = RMSE / target std). Low values mean the
    // environment transfers easily (unlike the paper's gem5 data).
    report::line("cross-workload GBRT transfer (train row -> test col), RMSE/std:");
    let probe: Vec<_> = env.datasets.keys().copied().take(6).collect();
    let mut t = vec![vec!["".to_string()]
        .into_iter()
        .chain(probe.iter().map(|w| w.name().chars().take(7).collect()))
        .collect::<Vec<String>>()];
    for &a in &probe {
        let da = env.dataset(a);
        let xa: Vec<Vec<f64>> = da.samples().iter().map(|s| s.features.clone()).collect();
        let ya = da.labels(Metric::Ipc);
        let mut g = GradientBoosting::new(120, 0.1, 3, 2);
        g.fit(&xa, &ya);
        let mut row = vec![a.name().chars().take(7).collect::<String>()];
        for &b in &probe {
            let db = env.dataset(b);
            let xb: Vec<Vec<f64>> = db.samples().iter().map(|s| s.features.clone()).collect();
            let yb = db.labels(Metric::Ipc);
            let rmse = metadse_mlkit::metrics::rmse(&yb, &g.predict(&xb));
            row.push(format!("{:.2}", rmse / std_dev(&yb)));
        }
        t.push(row);
    }
    report::table(&t);
}
