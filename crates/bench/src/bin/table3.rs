//! Regenerates paper Table III: IPC RMSE as the downstream adaptation
//! support size K grows from 5 to 40 (upstream support fixed at 10), for
//! RF, GBRT, Baseline (MetaDSE-w/o-WAM), and MetaDSE. The paper's
//! observation: MetaDSE is already accurate at K = 5 where the baselines
//! degrade sharply.

use metadse::experiment::{run_table3, Environment};
use metadse_bench::{banner, f4, report, scale_from_args, write_csv};

fn main() {
    let scale = scale_from_args();
    banner("Table III — downstream support-size sensitivity", &scale);
    let env = Environment::build(&scale, scale.seed);
    let ks = [5usize, 10, 20, 30, 40];
    let result = run_table3(&env, &scale, &ks);

    let mut header = vec!["model / K".to_string()];
    header.extend(ks.iter().map(|k| k.to_string()));
    let mut rows = vec![header];
    for row in &result.rows {
        let mut r = vec![row.model.clone()];
        r.extend(row.rmse_by_k.iter().map(|(_, v)| f4(*v)));
        rows.push(r);
    }
    report::table(&rows);

    let meta = &result.rows.last().expect("MetaDSE row").rmse_by_k;
    let (k5, k40) = (meta[0].1, meta[meta.len() - 1].1);
    report::line(format!(
        "MetaDSE few-shot robustness: RMSE grows only {:.1}% when shots drop 40 -> 5",
        (k5 / k40 - 1.0) * 100.0
    ));
    match write_csv("table3_support_sweep", &rows) {
        Ok(p) => report::kv("wrote", p.display()),
        Err(e) => report::warn(format!("could not write CSV: {e}")),
    }
}
